//! A tour of the five storage formats on the paper's Figure 1/2 example
//! scale: prints the actual arrays of COO, sCOO, HiCOO, gHiCOO and sHiCOO.
//!
//! ```text
//! cargo run --example format_tour
//! ```

use pasta::core::{
    CooTensor, GHiCooTensor, HiCooTensor, ModeIndex, SHiCooTensor, SemiCooTensor, Shape,
};

fn main() -> Result<(), pasta::core::Error> {
    // A general 4x4x4 sparse tensor (Figure 1(a) spirit).
    let coo = CooTensor::from_entries(
        Shape::new(vec![4, 4, 4]),
        vec![
            (vec![0, 0, 0], 1.0_f32),
            (vec![0, 1, 0], 2.0),
            (vec![1, 0, 1], 3.0),
            (vec![2, 2, 2], 4.0),
            (vec![3, 2, 3], 5.0),
            (vec![3, 3, 3], 6.0),
        ],
    )?;
    println!("=== COO (Figure 1a) — {} bytes ===", coo.storage_bytes());
    for m in 0..3 {
        println!("  inds[{m}] = {:?}", coo.mode_inds(m));
    }
    println!("  vals    = {:?}", coo.vals());

    // HiCOO with B = 2 (Figure 2a).
    let hicoo = HiCooTensor::from_coo(&coo, 2)?;
    println!("\n=== HiCOO, B = 2 (Figure 2a) — {} bytes ===", hicoo.storage_bytes());
    println!("  bptr  = {:?}", hicoo.bptr());
    for m in 0..3 {
        println!(
            "  binds[{m}] = {:?}  einds[{m}] = {:?}",
            hicoo.mode_binds(m),
            hicoo.mode_einds(m)
        );
    }
    println!("  vals  = {:?}", hicoo.vals());

    // gHiCOO compressing modes 0 and 1 only (Figure 2b).
    let ghicoo = GHiCooTensor::from_coo(&coo, 2, &[true, true, false])?;
    println!(
        "\n=== gHiCOO, modes {{0,1}} blocked (Figure 2b) — {} bytes ===",
        ghicoo.storage_bytes()
    );
    println!("  bptr = {:?}", ghicoo.bptr());
    for m in 0..3 {
        match ghicoo.mode_index(m) {
            ModeIndex::Blocked { binds, einds } => {
                println!("  mode {m}: blocked, binds = {binds:?}, einds = {einds:?}")
            }
            ModeIndex::Full(finds) => println!("  mode {m}: full COO indices = {finds:?}"),
        }
    }

    // A semi-sparse tensor with dense mode 2 (Figure 1b) in sCOO and sHiCOO.
    let scoo = SemiCooTensor::from_fibers(
        Shape::new(vec![4, 4, 2]),
        vec![2],
        vec![vec![0, 1, 3], vec![0, 2, 3]],
        vec![1.0_f32, 2.0, 3.0, 4.0, 5.0, 6.0],
    )?;
    println!("\n=== sCOO, dense mode 2 (Figure 1b) — {} bytes ===", scoo.storage_bytes());
    for (k, &m) in scoo.sparse_modes().iter().enumerate() {
        println!("  sparse inds[mode {m}] = {:?}", scoo.sparse_inds(k));
    }
    for f in 0..scoo.num_fibers() {
        println!("  fiber {f} at {:?}: {:?}", scoo.fiber_coords(f), scoo.fiber_vals(f));
    }

    let shicoo = SHiCooTensor::from_scoo(&scoo, 2)?;
    println!("\n=== sHiCOO, B = 2 (Figure 2c) — {} bytes ===", shicoo.storage_bytes());
    println!(
        "  {} blocks over {} fibers, dense volume {}",
        shicoo.num_blocks(),
        shicoo.num_fibers(),
        shicoo.dense_volume()
    );
    for b in 0..shicoo.num_blocks() {
        for f in shicoo.block_range(b) {
            println!(
                "  block {b}, fiber {f}: sparse coords {:?}, values {:?}",
                shicoo.fiber_coords(b, f),
                shicoo.fiber_vals(f)
            );
        }
    }
    Ok(())
}
