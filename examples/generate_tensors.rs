//! Generate synthetic tensors from the Table II profiles and write them in
//! the FROSTT `.tns` interchange format.
//!
//! ```text
//! cargo run --release --example generate_tensors -- s1 s4 r12 0.1 /tmp/tensors
//! ```
//!
//! Arguments: any number of profile ids/names, an optional scale fraction,
//! and an optional output directory (default `./tensors`).

use pasta::core::io::write_tns;
use pasta::gen::find_profile;
use std::fs::{create_dir_all, File};
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut keys: Vec<String> = Vec::new();
    let mut scale = 0.1f64;
    let mut out_dir = "tensors".to_string();
    for a in &args {
        if let Ok(s) = a.parse::<f64>() {
            scale = s;
        } else if a.contains('/') || a.contains('\\') {
            out_dir = a.clone();
        } else {
            keys.push(a.clone());
        }
    }
    if keys.is_empty() {
        keys = vec!["regS".into(), "irrS".into(), "regS4d".into()];
    }

    create_dir_all(&out_dir)?;
    for key in &keys {
        let Some(profile) = find_profile(key) else {
            eprintln!("unknown profile {key:?}, skipping");
            continue;
        };
        let t = profile.generate_scaled(scale)?;
        let path = format!("{out_dir}/{}.tns", profile.name);
        let mut w = BufWriter::new(File::create(&path)?);
        write_tns(&t, &mut w)?;
        println!(
            "{}: wrote {} ({} non-zeros, {} — scaled from the paper's {})",
            profile.id,
            path,
            t.nnz(),
            t.shape(),
            pasta::core::stats::human_count(profile.paper_nnz as usize)
        );
    }
    Ok(())
}
