//! Multi-GPU MTTKRP on the simulated DGX box — the paper's "multiple GPUs"
//! future-work platform. Shards the non-zeros across 1–8 V100s, all-reduces
//! the output factor matrix over NVLink, and reports the scaling curve.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use pasta::core::{seeded_matrix, DenseMatrix};
use pasta::gen::KroneckerGen;
use pasta::simt::{launch, launch_multi, v100, GpuMttkrpCoo, Interconnect};

fn main() -> Result<(), pasta::core::Error> {
    let x = KroneckerGen::new(3).generate(&[16_384, 16_384, 16_384], 120_000, 42)?;
    let r = 16;
    let factors: Vec<DenseMatrix<f32>> =
        (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, r, m as u64)).collect();
    let reduce_bytes = (x.shape().dim(0) as u64) * r as u64 * 4;
    println!(
        "MTTKRP on {} ({} nnz, R = {r}); all-reduce payload {} KiB",
        x.shape(),
        x.nnz(),
        reduce_bytes >> 10
    );

    let mut single = GpuMttkrpCoo::new(&x, &factors, 0)?;
    let t1 = launch(&v100(), &mut single).time;
    println!("\n 1x V100: {:>9.1} us (baseline)", t1 * 1e6);

    for g in [2usize, 4, 8] {
        let shards = x.split_nnz(g);
        let mut kernels: Vec<GpuMttkrpCoo> =
            shards.iter().map(|s| GpuMttkrpCoo::new(s, &factors, 0)).collect::<Result<_, _>>()?;
        let stats =
            launch_multi(&vec![v100(); g], &mut kernels, &Interconnect::nvlink(), reduce_bytes);
        println!(
            "{g:>2}x V100: {:>9.1} us (compute {:.1} us + all-reduce {:.1} us) -> speedup {:.2}x",
            stats.time * 1e6,
            stats.compute_time * 1e6,
            stats.comm_time * 1e6,
            stats.speedup_over(t1)
        );
    }
    println!("\ncompute scales with devices; the all-reduce latency floor caps the step speedup");
    Ok(())
}
