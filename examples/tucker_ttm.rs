//! Tucker decomposition via TTM-chains (HOOI) — the paper's named
//! future-work extension, built on the suite's TTM kernel.
//!
//! ```text
//! cargo run --release --example tucker_ttm
//! ```

use pasta::algos::{tucker_hooi, TuckerOptions};
use pasta::core::{CooTensor, Shape};
use pasta::kernels::Ctx;

fn main() -> Result<(), pasta::core::Error> {
    // A block-structured tensor: two dense clusters plus noise. Tucker with
    // small ranks should capture the clusters.
    let mut x = CooTensor::<f64>::new(Shape::new(vec![60, 60, 60]));
    for i in 0..12u32 {
        for j in 0..12u32 {
            for k in 0..12u32 {
                x.push(&[i, j, k], 2.0)?;
                x.push(&[40 + i, 40 + j, 40 + k], -1.5)?;
            }
        }
    }
    for s in 0..200u32 {
        x.push(&[(s * 7) % 60, (s * 11) % 60, (s * 13) % 60], 0.05)?;
    }
    x.dedup_sum();
    println!("input: {} with {} non-zeros", x.shape(), x.nnz());

    for ranks in [vec![2, 2, 2], vec![4, 4, 4], vec![8, 8, 8]] {
        let t0 = std::time::Instant::now();
        let model = tucker_hooi(
            &x,
            &TuckerOptions { ranks: ranks.clone(), max_iters: 4, seed: 3, ctx: Ctx::parallel() },
        )?;
        println!(
            "ranks {:?}: captured energy {:.4} (core {} entries) in {:.2?}",
            ranks,
            model.energy,
            model.core.len(),
            t0.elapsed()
        );
    }
    Ok(())
}
