//! CP decomposition of a synthetic tensor with CP-ALS — the application
//! behind MTTKRP (Section II-E of the paper).
//!
//! ```text
//! cargo run --release --example cpd_als
//! ```

use pasta::algos::{cp_als, CpdBackend, CpdOptions};
use pasta::gen::KroneckerGen;
use pasta::kernels::Ctx;

fn main() -> Result<(), pasta::core::Error> {
    // A Kronecker tensor has strong multilinear structure: CP-ALS finds it.
    let x = KroneckerGen::new(3).generate(&[512, 512, 512], 40_000, 42)?;
    println!("decomposing {} ({} non-zeros)", x.shape(), x.nnz());

    for (label, backend) in [("COO", CpdBackend::Coo), ("HiCOO(128)", CpdBackend::Hicoo(128))] {
        let t0 = std::time::Instant::now();
        let model = cp_als(
            &x,
            &CpdOptions {
                rank: 16,
                max_iters: 20,
                tol: 1e-6,
                seed: 7,
                ctx: Ctx::parallel(),
                backend,
            },
        )?;
        println!(
            "{label}: fit {:.4} after {} sweeps in {:.2?}; lambda[0..4] = {:?}",
            model.fit,
            model.iters,
            t0.elapsed(),
            &model.lambda[..4.min(model.lambda.len())]
        );
    }
    Ok(())
}
