//! Run the paper's GPU kernels on the simulated P100 and V100 and compare
//! the behavior the paper reports: COO-MTTKRP beats the block-parallel
//! HiCOO-MTTKRP on GPUs, and V100 outpaces P100.
//!
//! ```text
//! cargo run --release --example gpu_sim
//! ```

use pasta::core::{seeded_matrix, DenseMatrix, HiCooTensor};
use pasta::gen::PowerLawGen;
use pasta::simt::{
    launch, p100, v100, GpuMttkrpCoo, GpuMttkrpHicoo, GpuMttkrpHicooBalanced, GpuTsCoo, GpuTtvCoo,
};

fn main() -> Result<(), pasta::core::Error> {
    let x = PowerLawGen::new(1.5).generate3(20_000, 64, 60_000, 42)?;
    let hicoo = HiCooTensor::from_coo(&x, 128)?;
    println!(
        "tensor {} ({} nnz); HiCOO: {} blocks, max block {} nnz",
        x.shape(),
        x.nnz(),
        hicoo.num_blocks(),
        (0..hicoo.num_blocks()).map(|b| hicoo.block_range(b).len()).max().unwrap_or(0)
    );

    for device in [p100(), v100()] {
        println!("\n=== {} ===", device.name);

        let mut ts = GpuTsCoo::new(&x, pasta::kernels::TsOp::Mul, 2.0)?;
        let s = launch(&device, &mut ts);
        println!(
            "COO-TS-GPU:        {:>8.2} GFLOPS | {:.0}% of obtainable BW | bound: {:?}",
            s.gflops(),
            100.0 * s.bw_efficiency(&device),
            s.bound
        );

        let v = pasta::core::seeded_vector(x.shape().dim(2) as usize, 7);
        let mut ttv = GpuTtvCoo::new(&x, &v, 2)?;
        let s = launch(&device, &mut ttv);
        println!(
            "COO-TTV-GPU:       {:>8.2} GFLOPS | L2 hit {:.0}% | bound: {:?}",
            s.gflops(),
            100.0 * s.l2_hit_ratio,
            s.bound
        );

        let factors: Vec<DenseMatrix<f32>> =
            (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, 16, 11 + m as u64)).collect();
        let mut mc = GpuMttkrpCoo::new(&x, &factors, 0)?;
        let sc = launch(&device, &mut mc);
        let mut mh = GpuMttkrpHicoo::new(&hicoo, &factors, 0)?;
        let sh = launch(&device, &mut mh);
        println!(
            "COO-MTTKRP-GPU:    {:>8.2} GFLOPS | {} atomics, hottest address {}x | bound: {:?}",
            sc.gflops(),
            sc.atomics,
            sc.max_line_conflicts,
            sc.bound
        );
        println!(
            "HiCOO-MTTKRP-GPU:  {:>8.2} GFLOPS | {} CUDA blocks (one per tensor block) | bound: {:?}",
            sh.gflops(),
            sh.blocks,
            sh.bound
        );
        if sh.gflops() < sc.gflops() {
            println!("  -> block-level load imbalance costs HiCOO the GPU round, as in the paper");
        }

        // The B-CSF-style fix: bounded work units restore the balance.
        let mut mb = GpuMttkrpHicooBalanced::new(&hicoo, &factors, 0, 128)?;
        let sb = launch(&device, &mut mb);
        println!(
            "  balanced variant: {:>8.2} GFLOPS over {} work units ({}x vs plain HiCOO)",
            sb.gflops(),
            mb.num_units(),
            (sb.gflops() / sh.gflops()).round()
        );
    }
    Ok(())
}
