//! Quickstart: build a sparse tensor, convert formats, run all five kernels.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pasta::core::{seeded_matrix, seeded_vector, CooTensor, HiCooTensor, TensorStats};
use pasta::gen::PowerLawGen;
use pasta::kernels::{mttkrp_coo, tew_coo, ts_coo, ttm_coo, ttv_coo, Ctx, EwOp, Kernel, TsOp};

fn main() -> Result<(), pasta::core::Error> {
    // 1. Generate a small irregular third-order tensor (two power-law modes,
    //    one short dense-ish mode), as the paper's synthetic dataset does.
    let gen = PowerLawGen::new(1.5);
    let x: CooTensor<f32> = gen.generate3(10_000, 32, 50_000, 42)?;
    let stats = TensorStats::compute(&x);
    println!("tensor: {} | {} non-zeros | density {:.2e}", x.shape(), x.nnz(), stats.density);
    println!("mode fiber counts: {:?}", stats.fiber_counts);

    // 2. Convert to HiCOO with the paper's block size B = 128.
    let hicoo = HiCooTensor::from_coo(&x, 128)?;
    println!(
        "formats: COO {} bytes, HiCOO {} bytes ({} blocks, {:.1} nnz/block)",
        x.storage_bytes(),
        hicoo.storage_bytes(),
        hicoo.num_blocks(),
        hicoo.avg_block_nnz()
    );

    // 3. Run every kernel.
    let ctx = Ctx::parallel();
    let y = ts_coo(TsOp::Mul, &x, 2.0, &ctx)?;
    let z = tew_coo(EwOp::Add, &x, &y, &ctx)?;
    println!("TEW(x, 2x): first value {} -> {}", x.vals()[0], z.vals()[0]);

    let v = seeded_vector::<f32>(x.shape().dim(2) as usize, 7);
    let ttv_out = ttv_coo(&x, &v, 2, &ctx)?;
    println!("TTV mode 2: {} output non-zeros (= mode-2 fibers)", ttv_out.nnz());

    let u = seeded_matrix::<f32>(x.shape().dim(2) as usize, 16, 9);
    let ttm_out = ttm_coo(&x, &u, 2, &ctx)?;
    println!(
        "TTM mode 2 (R = 16): {} fibers x {} dense values",
        ttm_out.num_fibers(),
        ttm_out.dense_volume()
    );

    let factors: Vec<_> = (0..3)
        .map(|m| seeded_matrix::<f32>(x.shape().dim(m) as usize, 16, 11 + m as u64))
        .collect();
    let a = mttkrp_coo(&x, &factors, 0, &ctx)?;
    println!("MTTKRP mode 0: output {}x{} matrix", a.rows(), a.cols());

    // 4. Operational intensities (Table I) for this tensor.
    for k in Kernel::ALL {
        let p = pasta::kernels::CostParams {
            m: x.nnz() as f64,
            mf: stats.fiber_counts[2] as f64,
            r: 16.0,
            nb: hicoo.num_blocks() as f64,
            block_size: 128.0,
        };
        let c = pasta::kernels::kernel_cost(k, &p);
        println!("{k}: OI(COO) = {:.4}, OI(HiCOO) = {:.4}", c.coo_oi(), c.hicoo_oi());
    }
    Ok(())
}
