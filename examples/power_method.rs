//! The tensor power method on a symmetric tensor — the TTV application of
//! Section II-C.
//!
//! ```text
//! cargo run --release --example power_method
//! ```

use pasta::algos::{tensor_power_method, PowerOptions};
use pasta::core::{CooTensor, Shape};

fn main() -> Result<(), pasta::core::Error> {
    // Build lambda1 v1^3 + lambda2 v2^3 with orthogonal sparse v1, v2 over a
    // 64-dim space: the power method must find (lambda1, v1) first.
    let d = 64u32;
    let mut x = CooTensor::<f64>::new(Shape::new(vec![d, d, d]));
    // v1 = e3, v2 = e17 (orthonormal).
    x.push(&[3, 3, 3], 9.0)?;
    x.push(&[17, 17, 17], 4.0)?;
    // Light noise away from the eigen-structure.
    for s in 0..50u32 {
        let (i, j, k) = ((s * 5) % d, (s * 7 + 1) % d, (s * 11 + 2) % d);
        if i != j && j != k {
            x.push(&[i, j, k], 0.01)?;
        }
    }
    x.dedup_sum();

    let r = tensor_power_method(
        &x,
        &PowerOptions { max_iters: 200, tol: 1e-10, seed: 5, ..Default::default() },
    )?;
    println!(
        "dominant eigenvalue {:.4} after {} iterations (converged: {})",
        r.lambda, r.iters, r.converged
    );
    let (argmax, maxv) = r
        .vector
        .as_slice()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .unwrap();
    println!("eigenvector concentrates on index {argmax} (|v| = {:.4})", maxv.abs());
    assert!((r.lambda - 9.0).abs() < 0.2, "expected the lambda=9 component");
    assert_eq!(argmax, 3);
    println!("matches the planted (9, e3) component");
    Ok(())
}
