//! Property-based tests for the expression-graph layer: randomly generated
//! well-typed chains (TEW/TS/TTV/TTM, depth ≤ 4) over orders 3–4 are
//! lowered through the planner and executed, then compared against the
//! same steps composed one kernel at a time with materialized
//! intermediates. Every chain runs across pool sizes 1/2/4 and under both
//! the cost-model (`Auto`) and forced kernel-at-a-time (`Materialize`)
//! fusion choices, so the fused head, the materializing suffix, and the
//! boundary the planner picks between them are all pinned to the same
//! reference.

use pasta::core::{seeded_matrix, seeded_vector, CooTensor, Shape};
use pasta::kernels::{
    counters, lower, tew_coo_same_pattern, ts_coo, ttm_coo, ttv_coo, Bindings, CounterId, Ctx,
    EwOp, ExprGraph, ExprOut, FusionChoice, MatOperand, TsOp, VecOperand,
};
use pasta::par::Schedule;
use pasta_conformance::oracle::worst_ulp;
use proptest::prelude::*;

fn ctx_with(threads: usize) -> Ctx {
    Ctx::new(threads, Schedule::Static)
}

/// Explicit ULP budgets, matching the fused-layer chain budgets: the
/// lowered plan accumulates fused contractions in one pass while the
/// composed reference rounds once per kernel step.
const TTV_CHAIN_ULP: u64 = 512;
const TTM_CHAIN_ULP: u64 = 1024;

const POOLS: [usize; 3] = [1, 2, 4];
const DENSE_CAP: usize = 1 << 22;

fn tensor_from(dims: &[u32], entries: Vec<(Vec<u32>, f64)>) -> CooTensor<f64> {
    let mut t = CooTensor::new(Shape::new(dims.to_vec()));
    for (coords, v) in entries {
        t.push(&coords, v).unwrap();
    }
    t.dedup_sum();
    t
}

fn entries3() -> impl Strategy<Value = Vec<(Vec<u32>, f64)>> {
    proptest::collection::vec(
        ((0u32..10, 0u32..7, 0u32..6), -50i32..50)
            .prop_map(|((i, j, k), v)| (vec![i, j, k], f64::from(v) / 8.0)),
        1..50,
    )
}

fn entries4() -> impl Strategy<Value = Vec<(Vec<u32>, f64)>> {
    proptest::collection::vec(
        ((0u32..6, 0u32..5, 0u32..4, 0u32..3), -50i32..50)
            .prop_map(|((i, j, k, l), v)| (vec![i, j, k, l], f64::from(v) / 8.0)),
        1..40,
    )
}

/// Raw step descriptors: `(kind, a, b)` decoded against the evolving shape.
fn raw_steps() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..3, 0u8..255, 0u8..255), 0..4)
}

/// A decoded, concrete chain step. Operand sizes are resolved at decode
/// time against the shape the step sees, so the graph build and the
/// composed reference derive identical operands from the step index.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Same-pattern elementwise multiply against a derived operand.
    Tew,
    /// Tensor-scalar op.
    Ts(TsOp, f64),
    /// Contract `mode` (current-relative) with a vector of `len`.
    Ttv { mode: usize, len: usize },
    /// Multiply `mode` (current-relative, `rows` wide) by a `rows`×`rank`
    /// matrix.
    Ttm { mode: usize, rows: usize, rank: usize },
}

/// The same-pattern TEW operand: the base tensor's pattern with distinct
/// values, so the elementwise fold is not a disguised scalar op.
fn tew_operand(x: &CooTensor<f64>) -> CooTensor<f64> {
    let mut y = x.clone();
    for (e, v) in y.vals_mut().iter_mut().enumerate() {
        *v = 1.0 + f64::from((e % 7) as u32) * 0.25;
    }
    y
}

/// Per-step operand seed: a fixed offset plus the step index, shared by
/// the graph build and the composed reference.
fn step_seed(i: usize) -> u64 {
    0xC0 + i as u64
}

/// Decodes raw `(kind, a, b)` triples into concrete well-typed steps
/// against the evolving shape. Returns the steps and the chain's ULP
/// budget (TTM chains carry the wider fused-TTM budget).
fn decode(x: &CooTensor<f64>, tew_first: bool, raw: &[(u8, u8, u8)]) -> (Vec<Step>, u64) {
    let mut dims: Vec<u32> = x.shape().dims().to_vec();
    let mut steps = Vec::new();
    if tew_first {
        steps.push(Step::Tew);
    }
    let mut budget = TTV_CHAIN_ULP;
    for &(kind, a, b) in raw {
        match kind {
            0 => {
                let op = if a % 2 == 0 { TsOp::Mul } else { TsOp::Add };
                steps.push(Step::Ts(op, 0.5 + f64::from(b % 8) * 0.25));
            }
            // TTV removes a mode; keep at least an order-1 result so the
            // chain stays in sparse-tensor land.
            1 if dims.len() >= 2 => {
                let mode = a as usize % dims.len();
                steps.push(Step::Ttv { mode, len: dims[mode] as usize });
                dims.remove(mode);
            }
            _ => {
                let mode = a as usize % dims.len();
                let rank = 1 + b as usize % 3;
                steps.push(Step::Ttm { mode, rows: dims[mode] as usize, rank });
                dims[mode] = rank as u32;
                budget = TTM_CHAIN_ULP;
            }
        }
    }
    (steps, budget)
}

/// The composed kernel-at-a-time reference: every step materializes its
/// intermediate through the raw kernels, sequentially.
fn composed(x: &CooTensor<f64>, steps: &[Step]) -> Vec<f64> {
    let ctx = Ctx::sequential();
    let mut cur = x.clone();
    for (i, st) in steps.iter().enumerate() {
        cur = match *st {
            Step::Tew => tew_coo_same_pattern(EwOp::Mul, &cur, &tew_operand(x), &ctx).unwrap(),
            Step::Ts(op, s) => ts_coo(op, &cur, s, &ctx).unwrap(),
            Step::Ttv { mode, len } => {
                ttv_coo(&cur, &seeded_vector(len, step_seed(i)), mode, &ctx).unwrap()
            }
            Step::Ttm { mode, rows, rank } => {
                ttm_coo(&cur, &seeded_matrix(rows, rank, step_seed(i)), mode, &ctx)
                    .unwrap()
                    .to_coo()
            }
        };
    }
    cur.to_dense(DENSE_CAP)
}

/// Builds the expression graph for `steps` rooted at `x`.
fn build_graph<'a>(
    g: &mut ExprGraph<'a, f64>,
    x: &'a CooTensor<f64>,
    steps: &[Step],
) -> pasta::kernels::ExprId {
    let mut id = g.leaf(x);
    for (i, st) in steps.iter().enumerate() {
        id = match *st {
            Step::Tew => g.tew(id, EwOp::Mul, tew_operand(x)).unwrap(),
            Step::Ts(op, s) => g.ts(id, op, s).unwrap(),
            Step::Ttv { mode, len } => {
                g.ttv(id, mode, VecOperand::Owned(seeded_vector(len, step_seed(i)))).unwrap()
            }
            Step::Ttm { mode, rows, rank } => {
                g.ttm(id, mode, MatOperand::Owned(seeded_matrix(rows, rank, step_seed(i)))).unwrap()
            }
        };
    }
    id
}

fn expr_out_dense(out: ExprOut<f64>) -> Vec<f64> {
    match out {
        ExprOut::Coo(t) => t.to_dense(DENSE_CAP),
        ExprOut::Semi(s) => s.to_coo().to_dense(DENSE_CAP),
        ExprOut::Dense { vals, .. } => vals,
        ExprOut::Matrix(m) => m.as_slice().to_vec(),
    }
}

/// Lowers and executes the chain under every pool size and both fusion
/// choices, asserting each result against the composed reference.
fn check_chain(x: &CooTensor<f64>, tew_first: bool, raw: &[(u8, u8, u8)]) {
    let (steps, budget) = decode(x, tew_first, raw);
    let want = composed(x, &steps);
    for threads in POOLS {
        for fusion in [FusionChoice::Auto, FusionChoice::Materialize] {
            let ctx = ctx_with(threads).with_fusion(fusion);
            let mut g = ExprGraph::new();
            let root = build_graph(&mut g, x, &steps);
            let plan = lower(&g, root, &ctx).unwrap();
            let got = expr_out_dense(plan.execute(&Bindings::none()).unwrap());
            let w = worst_ulp(&got, &want).unwrap_or(u64::MAX);
            assert!(
                w <= budget,
                "t{threads} {fusion:?}: worst {w} ULP > {budget} (chain {steps:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random well-typed chains over an order-3 tensor match the composed
    /// kernel-at-a-time reference under every pool size and fusion choice.
    #[test]
    fn prop_random_chain_order3(
        entries in entries3(),
        tew_sel in 0u8..2,
        raw in raw_steps(),
    ) {
        let x = tensor_from(&[10, 7, 6], entries);
        check_chain(&x, tew_sel == 1, &raw);
    }

    /// Random well-typed chains over an order-4 tensor.
    #[test]
    fn prop_random_chain_order4(
        entries in entries4(),
        tew_sel in 0u8..2,
        raw in raw_steps(),
    ) {
        let x = tensor_from(&[6, 5, 4, 3], entries);
        check_chain(&x, tew_sel == 1, &raw);
    }
}

/// The acceptance invariant, restated at the graph layer: a mixed
/// TEW→TTV→TTM→TS chain lowers fully fused under the forced-fuse choice —
/// zero materialized edges, no intermediate sparse tensors — and still
/// matches the composed reference.
#[test]
fn forced_fusion_materializes_nothing_on_mixed_chains() {
    let x = tensor_from(
        &[10, 7, 6],
        (0..60u32).map(|i| (vec![i % 10, (i * 3) % 7, (i * 5) % 6], f64::from(i) - 30.0)).collect(),
    );
    let steps = [
        Step::Tew,
        Step::Ttv { mode: 2, len: 6 },
        Step::Ttm { mode: 0, rows: 10, rank: 3 },
        Step::Ts(TsOp::Mul, 0.5),
    ];
    let want = composed(&x, &steps);
    let ctx = ctx_with(2).with_fusion(FusionChoice::Fuse);
    pasta::obs::set_counting(true);
    let before = counters().snapshot();

    let mut g = ExprGraph::new();
    let root = build_graph(&mut g, &x, &steps);
    let plan = lower(&g, root, &ctx).unwrap();
    assert!(plan.fully_fused(), "forced fusion must fuse every edge");
    assert_eq!(plan.materialized_edges(), 0);
    assert_eq!(plan.fused_edges(), steps.len() as u64);
    let got = expr_out_dense(plan.execute(&Bindings::none()).unwrap());

    let after = counters().snapshot();
    assert_eq!(
        after[CounterId::FusedMaterialized],
        before[CounterId::FusedMaterialized],
        "a fully fused plan must not materialize intermediate sparse tensors"
    );
    assert!(after[CounterId::ExprPlans] > before[CounterId::ExprPlans]);
    assert!(
        after[CounterId::ExprFusedEdges] >= before[CounterId::ExprFusedEdges] + steps.len() as u64
    );

    let w = worst_ulp(&got, &want).unwrap_or(u64::MAX);
    assert!(w <= TTM_CHAIN_ULP, "worst {w} ULP");
}
