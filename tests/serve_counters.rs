//! Counter contracts for the serving layer, isolated in their own test
//! binary: `serve.*`/`cache.*` counters are process-global, so delta
//! assertions would race against any parallel test that touches a server.
//! This binary holds exactly one `#[test]` so every phase runs alone.

use pasta::core::{CooTensor, Shape};
use pasta::kernels::{counters, CounterId, EwOp};
use pasta::serve::{Catalog, MttkrpRoute, OpSpec, Request, Server, ServerConfig};

fn tensor() -> CooTensor<f32> {
    let mut t = CooTensor::new(Shape::new(vec![8, 6, 5]));
    for i in 0..40u32 {
        t.push(&[i % 8, (i * 3) % 6, (i * 7) % 5], f32::from(i as u16) - 20.0).unwrap();
    }
    t.dedup_sum();
    t
}

fn server(cache_bytes: usize) -> Server {
    let mut catalog = Catalog::new();
    catalog.insert(0, "counters", tensor());
    Server::new(
        catalog,
        ServerConfig { threads: 2, shards: 4, shard_nnz_threshold: 1, cache_bytes },
    )
}

/// A conversion-heavy window: TTV (CSF plan), TTM (plan), both MTTKRP
/// routes (sorted copy, HiCOO blocking), plus one element-wise request.
fn window() -> Vec<Request> {
    let seed = 11;
    [
        OpSpec::Tew { op: EwOp::Add, seed },
        OpSpec::Ttv { mode: 1, seed },
        OpSpec::Ttm { mode: 0, rank: 3, seed },
        OpSpec::Mttkrp { mode: 0, rank: 3, seed, route: MttkrpRoute::Coo },
        OpSpec::Mttkrp { mode: 1, rank: 3, seed, route: MttkrpRoute::Hicoo(4) },
    ]
    .into_iter()
    .map(|op| Request { tensor: 0, op })
    .collect()
}

#[test]
fn serve_and_cache_counter_contracts() {
    // Phase 1 — caching disabled: serve.* counters move, cache.* counters
    // are zero-delta (not merely cold: the cacheless path must never
    // touch them).
    pasta::obs::set_counting(true);
    let before = counters().snapshot();
    let mut cacheless = server(0);
    for _ in 0..2 {
        let n = cacheless.submit(window()).unwrap().len();
        assert_eq!(n, window().len());
    }
    let after = counters().snapshot();
    for id in [CounterId::CacheHits, CounterId::CacheMisses, CounterId::CacheEvictions] {
        assert_eq!(after[id], before[id], "cacheless server moved {id:?}");
    }
    assert_eq!(
        after[CounterId::ServeRequests],
        before[CounterId::ServeRequests] + 2 * window().len() as u64
    );
    assert!(after[CounterId::ServeBatches] > before[CounterId::ServeBatches]);
    assert!(
        after[CounterId::ServeShardTasks] > before[CounterId::ServeShardTasks],
        "sharded owner-computes MTTKRP must issue shard tasks"
    );

    // Phase 2 — caching enabled: the cold pass misses and builds, the
    // warm pass answers every conversion-backed request from the cache
    // without a single new miss.
    let mut cached = server(64 << 20);
    let mid = counters().snapshot();
    cached.submit(window()).unwrap();
    let cold = counters().snapshot();
    assert!(cold[CounterId::CacheMisses] > mid[CounterId::CacheMisses]);
    assert_eq!(cold[CounterId::CacheHits], mid[CounterId::CacheHits]);
    cached.submit(window()).unwrap();
    let warm = counters().snapshot();
    assert!(warm[CounterId::CacheHits] > cold[CounterId::CacheHits]);
    assert_eq!(warm[CounterId::CacheMisses], cold[CounterId::CacheMisses]);

    // Phase 3 — counting disabled: the whole serving path is zero-delta
    // (the observability layer's global contract extends to serve.* and
    // cache.*).
    pasta::obs::set_counting(false);
    let base = counters().snapshot();
    let mut quiet = server(64 << 20);
    quiet.submit(window()).unwrap();
    quiet.submit(window()).unwrap();
    let still = counters().snapshot();
    for id in [
        CounterId::ServeRequests,
        CounterId::ServeBatches,
        CounterId::ServeShardTasks,
        CounterId::CacheHits,
        CounterId::CacheMisses,
        CounterId::CacheEvictions,
    ] {
        assert_eq!(still[id], base[id], "counting disabled but {id:?} moved");
    }
    pasta::obs::set_counting(true);
}
