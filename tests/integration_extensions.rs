//! Integration tests for the suite's future-work extensions: CSF, F-COO,
//! reordering, feature mimicry, validators, the balanced GPU MTTKRP and
//! multi-GPU sharding — all exercised together on generated tensors.

use pasta::core::{
    seeded_matrix, seeded_vector, validate_coo, validate_csf, validate_ghicoo, validate_hicoo,
    CooTensor, CsfTensor, DenseMatrix, FCooTensor, GHiCooTensor, HiCooTensor, Relabel, Value,
};
use pasta::gen::{extract_features, KroneckerGen, PowerLawGen};
use pasta::kernels::{mttkrp_coo, mttkrp_csf_root, ttv_coo, ttv_fcoo, Ctx};
use pasta::simt::{launch, launch_multi, v100, GpuMttkrpCoo, Interconnect};

fn tensor() -> CooTensor<f32> {
    PowerLawGen::new(1.5).generate3(4_000, 24, 15_000, 42).unwrap()
}

#[test]
fn all_formats_validate_on_generated_data() {
    let x = tensor();
    validate_coo(&x).unwrap();
    validate_hicoo(&HiCooTensor::from_coo(&x, 128).unwrap()).unwrap();
    validate_ghicoo(&GHiCooTensor::from_coo(&x, 64, &[true, true, false]).unwrap()).unwrap();
    validate_csf(&CsfTensor::from_coo(&x, &[0, 1, 2]).unwrap()).unwrap();
}

#[test]
fn csf_and_coo_mttkrp_agree_on_generated_data() {
    let x = tensor();
    let factors: Vec<DenseMatrix<f32>> =
        (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, 8, m as u64)).collect();
    let ctx = Ctx::sequential();
    for n in 0..3 {
        let mut order: Vec<usize> = vec![n];
        order.extend((0..3).filter(|&m| m != n));
        let csf = CsfTensor::from_coo(&x, &order).unwrap();
        let a = mttkrp_csf_root(&csf, &factors, &ctx).unwrap();
        let b = mttkrp_coo(&x, &factors, n, &ctx).unwrap();
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(p.approx_eq(*q, 1e-3), "mode {n}: {p} vs {q}");
        }
    }
}

#[test]
fn fcoo_and_coo_ttv_agree_on_generated_data() {
    let x = tensor();
    let ctx = Ctx::parallel();
    for n in 0..3 {
        let v = seeded_vector::<f32>(x.shape().dim(n) as usize, 7);
        let a = ttv_coo(&x, &v, n, &ctx).unwrap();
        let fc = FCooTensor::from_coo(&x, n).unwrap();
        let b = ttv_fcoo(&fc, &v, &ctx).unwrap();
        assert_eq!(a.nnz(), b.nnz(), "mode {n}");
        let mut a2 = a;
        a2.sort();
        let mut b2 = b;
        b2.sort();
        for (p, q) in a2.vals().iter().zip(b2.vals()) {
            assert!(p.approx_eq(*q, 1e-3), "mode {n}: {p} vs {q}");
        }
    }
}

#[test]
fn reordering_preserves_kernel_results_up_to_renaming() {
    let x = tensor();
    let relabel = Relabel::by_degree(&x);
    let y = relabel.apply(&x).unwrap();
    let ctx = Ctx::sequential();

    // TTV in mode 2 with a vector renamed by the same map gives the same
    // value multiset.
    let v = seeded_vector::<f32>(x.shape().dim(2) as usize, 7);
    let mut v2 = v.clone();
    for (old, &new) in relabel.map(2).iter().enumerate() {
        v2[new as usize] = v[old];
    }
    let a = ttv_coo(&x, &v, 2, &ctx).unwrap();
    let b = ttv_coo(&y, &v2, 2, &ctx).unwrap();
    let mut av: Vec<f32> = a.vals().to_vec();
    let mut bv: Vec<f32> = b.vals().to_vec();
    av.sort_by(|p, q| p.partial_cmp(q).unwrap());
    bv.sort_by(|p, q| p.partial_cmp(q).unwrap());
    assert_eq!(av.len(), bv.len());
    for (p, q) in av.iter().zip(&bv) {
        assert!(p.approx_eq(*q, 1e-4), "{p} vs {q}");
    }
}

#[test]
fn mimicry_matches_shape_and_rough_skew() {
    let original = tensor();
    let spec = extract_features(&original);
    let clone = spec.generate(123).unwrap();
    assert_eq!(clone.shape(), original.shape());
    let fc = extract_features(&clone);
    // The skewed modes stay skewed, the short mode stays flat.
    assert_eq!(fc.mode_dists(), spec.mode_dists());
    assert!(fc.modes[0].head_mass > 2.0 * fc.modes[2].head_mass);
}

#[test]
fn multi_gpu_shards_reproduce_single_device_output() {
    let x = KroneckerGen::new(3).generate(&[512, 512, 512], 10_000, 3).unwrap();
    let factors: Vec<DenseMatrix<f32>> = (0..3).map(|m| seeded_matrix(512, 4, m as u64)).collect();
    let mut single = GpuMttkrpCoo::new(&x, &factors, 1).unwrap();
    launch(&v100(), &mut single);

    let shards = x.split_nnz(3);
    assert_eq!(shards.iter().map(|s| s.nnz()).sum::<usize>(), x.nnz());
    let mut kernels: Vec<GpuMttkrpCoo> =
        shards.iter().map(|s| GpuMttkrpCoo::new(s, &factors, 1).unwrap()).collect();
    let stats = launch_multi(&vec![v100(); 3], &mut kernels, &Interconnect::nvlink(), 512 * 4 * 4);
    assert!(stats.time > 0.0);

    let mut acc = vec![0.0f32; 512 * 4];
    for k in &kernels {
        for (a, &v) in acc.iter_mut().zip(k.output().as_slice()) {
            *a += v;
        }
    }
    for (a, &b) in acc.iter().zip(single.output().as_slice()) {
        assert!(a.approx_eq(b, 1e-3), "{a} vs {b}");
    }
}
