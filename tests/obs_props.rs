//! Property-based tests for the pasta-obs tracing layer: enabling span
//! recording must not perturb kernel numerics (bit-identical outputs across
//! pool sizes 1/2/4), and the chrome://tracing exporter must emit
//! well-formed JSON whose begin/end pairs nest properly for arbitrary span
//! trees.
//!
//! Tracing is a process-global flag, so every test that toggles it holds
//! `TRACE_LOCK` for its whole body.

use pasta::core::{seeded_matrix, seeded_vector, CooTensor, DenseMatrix, DenseVector, Shape};
use pasta::kernels::{mttkrp_coo, ttm_coo, ttv_coo, Ctx};
use pasta::obs::{
    chrome_trace_json, instant, reset_events, set_tracing, span, validate_chrome_trace,
};
use pasta::par::Schedule;
use proptest::prelude::*;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

const POOLS: [usize; 3] = [1, 2, 4];

fn tensor_from(dims: &[u32], entries: Vec<(Vec<u32>, f64)>) -> CooTensor<f64> {
    let mut t = CooTensor::new(Shape::new(dims.to_vec()));
    for (coords, v) in entries {
        t.push(&coords, v).unwrap();
    }
    t.dedup_sum();
    t
}

fn entries3() -> impl Strategy<Value = Vec<(Vec<u32>, f64)>> {
    proptest::collection::vec(
        ((0u32..10, 0u32..7, 0u32..6), -50i32..50)
            .prop_map(|((i, j, k), v)| (vec![i, j, k], f64::from(v) / 8.0)),
        1..50,
    )
}

/// Runs TTV, TTM and MTTKRP and returns every output value bit pattern.
fn kernel_bits(x: &CooTensor<f64>, ctx: &Ctx) -> Vec<u64> {
    let mut bits = Vec::new();
    let v: DenseVector<f64> = seeded_vector(x.shape().dim(2) as usize, 7);
    let y = ttv_coo(x, &v, 2, ctx).unwrap();
    bits.extend(y.vals().iter().map(|f| f.to_bits()));
    let u: DenseMatrix<f64> = seeded_matrix(x.shape().dim(0) as usize, 4, 9);
    let t = ttm_coo(x, &u, 0, ctx).unwrap();
    bits.extend(t.vals().iter().map(|f| f.to_bits()));
    let factors: Vec<DenseMatrix<f64>> =
        (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, 4, 11 + m as u64)).collect();
    let g = mttkrp_coo(x, &factors, 1, ctx).unwrap();
    bits.extend(g.as_slice().iter().map(|f| f.to_bits()));
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tracing on vs off yields bit-identical kernel outputs at every pool
    /// size — recording spans must have zero numeric impact.
    #[test]
    fn kernels_bit_identical_with_tracing_on_vs_off(entries in entries3()) {
        let guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let x = tensor_from(&[10, 7, 6], entries);
        for threads in POOLS {
            let ctx = Ctx::new(threads, Schedule::Static);
            set_tracing(false);
            let off = kernel_bits(&x, &ctx);
            set_tracing(true);
            let on = kernel_bits(&x, &ctx);
            set_tracing(false);
            prop_assert_eq!(&off, &on, "pool size {}", threads);
        }
        reset_events();
        drop(guard);
    }

    /// Arbitrary span trees (nested scopes, interleaved instants, across
    /// pool sizes) always export as well-formed, properly nested JSON.
    #[test]
    fn exporter_emits_wellformed_nested_json(
        depths in proptest::collection::vec(1usize..5, 1..8),
        entries in entries3(),
    ) {
        let guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_events();
        set_tracing(true);
        const NAMES: [&str; 4] = ["obs.a", "obs.b", "obs.c", "obs.d"];
        fn nest(depth: usize) {
            let _s = span("bench", NAMES[depth % NAMES.len()]);
            instant("bench", "obs.tick", "", depth as u64, 0, 0);
            if depth > 0 {
                nest(depth - 1);
            }
        }
        for &d in &depths {
            nest(d);
        }
        // Real kernel work on a real pool interleaves worker-thread events.
        let x = tensor_from(&[10, 7, 6], entries);
        for threads in POOLS {
            let _ = kernel_bits(&x, &Ctx::new(threads, Schedule::Static));
        }
        set_tracing(false);
        let json = chrome_trace_json();
        let spans = validate_chrome_trace(&json);
        prop_assert!(spans.is_ok(), "invalid trace: {:?}", spans);
        prop_assert!(spans.unwrap() >= depths.iter().map(|d| d + 1).sum::<usize>());
        reset_events();
        drop(guard);
    }
}
