//! Cross-crate integration tests: every kernel agrees across COO, HiCOO,
//! sequential, parallel and the dense oracle, on generated (realistic)
//! tensors; plus property-based algebraic identities.

use pasta::core::{
    seeded_matrix, seeded_vector, CooTensor, DenseMatrix, HiCooTensor, Shape, Value,
};
use pasta::gen::{KroneckerGen, PowerLawGen};
use pasta::kernels::dense_ref;
use pasta::kernels::{
    mttkrp_coo, mttkrp_hicoo, tew_coo_general, tew_coo_same_pattern, tew_hicoo, ts_coo, ts_hicoo,
    ttm_coo, ttm_hicoo, ttv_coo, ttv_hicoo, Ctx, EwOp, TsOp,
};
use pasta_conformance::oracle::assert_close;
use proptest::prelude::*;

fn gen3() -> CooTensor<f32> {
    PowerLawGen::new(1.5).generate3(300, 12, 2_000, 42).unwrap()
}

fn gen4() -> CooTensor<f32> {
    KroneckerGen::new(4).generate(&[32, 32, 32, 16], 1_500, 7).unwrap()
}

#[test]
fn ttv_all_formats_agree_with_dense() {
    for x in [gen3(), gen4()] {
        for n in 0..x.order() {
            let v = seeded_vector::<f32>(x.shape().dim(n) as usize, 3);
            let (shape, dense) = dense_ref::ttv_dense(&x, &v, n).unwrap();
            let seq = ttv_coo(&x, &v, n, &Ctx::sequential()).unwrap();
            let par = ttv_coo(&x, &v, n, &Ctx::parallel()).unwrap();
            let hic = ttv_hicoo(&x, &v, n, 16, &Ctx::parallel()).unwrap();
            assert_eq!(seq.shape(), &shape);
            assert_close(&seq.to_dense(1 << 22), &dense, 1e-3);
            assert_close(&par.to_dense(1 << 22), &dense, 1e-3);
            assert_close(&hic.to_coo().to_dense(1 << 22), &dense, 1e-3);
        }
    }
}

#[test]
fn ttm_all_formats_agree_with_dense() {
    let x = gen3();
    for n in 0..3 {
        let u = seeded_matrix::<f32>(x.shape().dim(n) as usize, 16, 5);
        let (_, dense) = dense_ref::ttm_dense(&x, &u, n).unwrap();
        let coo = ttm_coo(&x, &u, n, &Ctx::parallel()).unwrap();
        let hic = ttm_hicoo(&x, &u, n, 8, &Ctx::parallel()).unwrap();
        assert_close(&coo.to_coo().to_dense(1 << 22), &dense, 1e-3);
        assert_close(&hic.to_scoo().unwrap().to_coo().to_dense(1 << 22), &dense, 1e-3);
    }
}

#[test]
fn mttkrp_all_formats_agree_with_dense() {
    for x in [gen3(), gen4()] {
        let factors: Vec<DenseMatrix<f32>> = (0..x.order())
            .map(|m| seeded_matrix(x.shape().dim(m) as usize, 8, 11 + m as u64))
            .collect();
        let hicoo = HiCooTensor::from_coo(&x, 16).unwrap();
        for n in 0..x.order() {
            let want = dense_ref::mttkrp_dense(&x, &factors, n).unwrap();
            let seq = mttkrp_coo(&x, &factors, n, &Ctx::sequential()).unwrap();
            let par = mttkrp_coo(&x, &factors, n, &Ctx::parallel()).unwrap();
            let hic = mttkrp_hicoo(&hicoo, &factors, n, &Ctx::parallel()).unwrap();
            assert_close(seq.as_slice(), want.as_slice(), 1e-3);
            assert_close(par.as_slice(), want.as_slice(), 1e-3);
            assert_close(hic.as_slice(), want.as_slice(), 1e-3);
        }
    }
}

#[test]
fn tew_ts_formats_agree() {
    let x = gen3();
    let ctx = Ctx::parallel();
    let y = ts_coo(TsOp::Add, &x, 0.5, &ctx).unwrap();
    let hx = HiCooTensor::from_coo(&x, 32).unwrap();
    let hy = HiCooTensor::from_coo(&y, 32).unwrap();
    for op in EwOp::ALL {
        let coo = tew_coo_same_pattern(op, &x, &y, &ctx).unwrap();
        let hic = tew_hicoo(op, &hx, &hy, &ctx).unwrap();
        let mut a = hic.to_coo();
        a.sort();
        let mut b = coo;
        b.sort();
        assert_eq!(a, b, "{op}");
    }
    for op in TsOp::ALL {
        let coo = ts_coo(op, &x, 2.5, &ctx).unwrap();
        let hic = ts_hicoo(op, &hx, 2.5, &ctx).unwrap();
        let mut a = hic.to_coo();
        a.sort();
        let mut b = coo;
        b.sort();
        assert_eq!(a, b, "{op}");
    }
}

#[test]
fn cpd_pipeline_runs_on_generated_data() {
    let x = KroneckerGen::new(3).generate(&[64, 64, 64], 3_000, 5).unwrap();
    let model = pasta::algos::cp_als(
        &x,
        &pasta::algos::CpdOptions {
            rank: 4,
            max_iters: 10,
            ctx: Ctx::parallel(),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(model.factors.len(), 3);
    assert!(model.fit.is_finite());
    assert!(model.lambda.iter().all(|l| l.is_finite()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TEW general-path algebra: (x + y) - y == x on the union pattern.
    #[test]
    fn prop_tew_add_sub_inverse(
        xe in proptest::collection::vec(((0u32..20, 0u32..20), 1i32..100), 1..20),
        ye in proptest::collection::vec(((0u32..20, 0u32..20), 1i32..100), 1..20),
    ) {
        let shape = Shape::new(vec![20, 20]);
        let mut x = CooTensor::<f64>::new(shape.clone());
        for ((i, j), v) in xe { x.push(&[i, j], v as f64).unwrap(); }
        x.dedup_sum();
        let mut y = CooTensor::<f64>::new(shape);
        for ((i, j), v) in ye { y.push(&[i, j], v as f64).unwrap(); }
        y.dedup_sum();

        let sum = tew_coo_general(EwOp::Add, &x, &y).unwrap();
        let back = tew_coo_general(EwOp::Sub, &sum, &y).unwrap();
        // back must equal x wherever x is non-zero.
        for (coords, v) in x.iter() {
            let got = back.get(&coords).unwrap_or(0.0);
            prop_assert!(got.approx_eq(v, 1e-9), "{got} vs {v}");
        }
        // and zero elsewhere.
        prop_assert!(back.nnz() <= x.nnz() + y.nnz());
    }

    /// TTV linearity: X x_n (a*v) == a * (X x_n v).
    #[test]
    fn prop_ttv_linear(
        entries in proptest::collection::vec(((0u32..12, 0u32..12, 0u32..12), -20i32..20), 1..25),
        a in 1u32..8,
        n in 0usize..3,
    ) {
        let mut x = CooTensor::<f64>::new(Shape::new(vec![12, 12, 12]));
        for ((i, j, k), v) in entries { x.push(&[i, j, k], v as f64).unwrap(); }
        x.dedup_sum();
        let v = seeded_vector::<f64>(12, 99);
        let av: pasta::core::DenseVector<f64> =
            v.as_slice().iter().map(|&e| e * a as f64).collect();

        let y1 = ttv_coo(&x, &av, n, &Ctx::sequential()).unwrap();
        let y2 = ttv_coo(&x, &v, n, &Ctx::sequential()).unwrap();
        prop_assert_eq!(y1.nnz(), y2.nnz());
        for (w1, w2) in y1.vals().iter().zip(y2.vals()) {
            prop_assert!(w1.approx_eq(w2 * a as f64, 1e-9));
        }
    }

    /// MTTKRP with all-ones factors sums fiber values into the output rows.
    #[test]
    fn prop_mttkrp_ones_marginalizes(
        entries in proptest::collection::vec(((0u32..10, 0u32..10, 0u32..10), 1i32..50), 1..30),
    ) {
        let mut x = CooTensor::<f64>::new(Shape::new(vec![10, 10, 10]));
        for ((i, j, k), v) in entries { x.push(&[i, j, k], v as f64).unwrap(); }
        x.dedup_sum();
        let ones: Vec<DenseMatrix<f64>> =
            (0..3).map(|_| DenseMatrix::from_fn(10, 2, |_, _| 1.0)).collect();
        let out = mttkrp_coo(&x, &ones, 0, &Ctx::sequential()).unwrap();
        // Row i = total mass of slice i, in every column.
        for i in 0..10usize {
            let slice_sum: f64 = x
                .iter()
                .filter(|(c, _)| c[0] == i as u32)
                .map(|(_, v)| v)
                .sum();
            prop_assert!(out.get(i, 0).approx_eq(slice_sum, 1e-9));
            prop_assert!(out.get(i, 1).approx_eq(slice_sum, 1e-9));
        }
    }

    /// TS mul-then-div returns the original values.
    #[test]
    fn prop_ts_mul_div_inverse(
        entries in proptest::collection::vec(((0u32..15, 0u32..15), -100i32..100), 1..30),
        s in prop::sample::select(vec![0.5f32, 2.0, 4.0, 8.0]),
    ) {
        let mut x = CooTensor::<f32>::new(Shape::new(vec![15, 15]));
        for ((i, j), v) in entries { x.push(&[i, j], v as f32).unwrap(); }
        let ctx = Ctx::sequential();
        let y = ts_coo(TsOp::Mul, &x, s, &ctx).unwrap();
        let z = ts_coo(TsOp::Div, &y, s, &ctx).unwrap();
        // Powers of two divide exactly in binary floating point.
        prop_assert_eq!(z.vals(), x.vals());
    }
}
