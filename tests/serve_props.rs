//! Property-based differential tier for the serving layer: every response
//! the `pasta-serve` front-end produces must match [`direct_eval`] — the
//! sequential, service-free reference — on the same tensor and spec,
//! across batch sizes, shard counts 1/2/4, pool sizes 1/2/4, and with the
//! conversion cache on or off.
//!
//! Budgets follow the conformance matrix: element-wise lanes, the
//! owner-computes MTTKRP routes and the sequential decomposition jobs are
//! bit-identical (0 ULP) contracts; TTV and TTM carry the single-kernel
//! reduction budgets. No counter deltas are asserted here (counters are
//! process-global and this binary's tests run in parallel); the cache
//! behavior checks use the per-response `cache_hit` flag instead, and the
//! counter contracts live in the dedicated `serve_counters` binary.

use pasta::core::{CooTensor, Shape};
use pasta::kernels::{EwOp, TsOp};
use pasta::serve::{direct_eval, Catalog, MttkrpRoute, OpSpec, Request, Server, ServerConfig};
use pasta_conformance::oracle::worst_ulp;
use proptest::prelude::*;

const TTV_ULP: u64 = 256;
const TTM_ULP: u64 = 256;

/// Pool and shard widths exercised per case; the threshold of 1 forces
/// sharding for every non-empty tensor.
const WIDTHS: [usize; 3] = [1, 2, 4];

fn cfg(threads: usize, shards: usize, cache_bytes: usize) -> ServerConfig {
    ServerConfig { threads, shards, shard_nnz_threshold: 1, cache_bytes }
}

fn tensor_from(dims: &[u32], entries: Vec<(Vec<u32>, f32)>) -> CooTensor<f32> {
    let mut t = CooTensor::new(Shape::new(dims.to_vec()));
    for (coords, v) in entries {
        t.push(&coords, v).unwrap();
    }
    t.dedup_sum();
    t
}

fn entries3() -> impl Strategy<Value = Vec<(Vec<u32>, f32)>> {
    proptest::collection::vec(
        ((0u32..10, 0u32..7, 0u32..6), -50i32..50)
            .prop_map(|((i, j, k), v)| (vec![i, j, k], v as f32 / 8.0)),
        1..50,
    )
}

fn entries4() -> impl Strategy<Value = Vec<(Vec<u32>, f32)>> {
    proptest::collection::vec(
        ((0u32..6, 0u32..5, 0u32..4, 0u32..3), -50i32..50)
            .prop_map(|((i, j, k, l), v)| (vec![i, j, k, l], v as f32 / 8.0)),
        1..40,
    )
}

fn server_over(x: &CooTensor<f32>, cfg: ServerConfig) -> Server {
    let mut catalog = Catalog::new();
    catalog.insert(0, "prop", x.clone());
    Server::new(catalog, cfg)
}

/// Every kernel spec exercised by the differential props, with its budget.
fn kernel_specs(x: &CooTensor<f32>, seed: u64) -> Vec<(OpSpec, u64)> {
    let mode = (seed as usize) % x.order();
    let mut specs: Vec<(OpSpec, u64)> =
        EwOp::ALL.into_iter().map(|op| (OpSpec::Tew { op, seed }, 0)).collect();
    specs.extend(TsOp::ALL.into_iter().map(|op| (OpSpec::Ts { op, scalar: 1.5 }, 0)));
    specs.push((OpSpec::Ttv { mode, seed }, TTV_ULP));
    specs.push((OpSpec::Ttm { mode, rank: 3, seed }, TTM_ULP));
    specs.push((OpSpec::Mttkrp { mode, rank: 3, seed, route: MttkrpRoute::Coo }, 0));
    specs.push((OpSpec::Mttkrp { mode, rank: 3, seed, route: MttkrpRoute::Hicoo(4) }, 0));
    specs
}

/// One request per spec, submitted in its own window against servers of
/// every pool/shard width, cache on and off — each response within budget
/// of the direct reference, and degenerate specs rejected on both sides.
fn check_service_matches_direct(x: &CooTensor<f32>, specs: &[(OpSpec, u64)]) {
    for &(op, budget) in specs {
        let direct = direct_eval(x, &op);
        for threads in WIDTHS {
            for shards in WIDTHS {
                for cache_bytes in [0, 1 << 20] {
                    let mut server = server_over(x, cfg(threads, shards, cache_bytes));
                    let served = server.submit([Request { tensor: 0, op }]);
                    match (&served, &direct) {
                        (Ok(resp), Ok(want)) => {
                            let got = &resp[0].values;
                            let w = worst_ulp(got, want).unwrap_or(u64::MAX);
                            assert!(
                                w <= budget,
                                "{} t{threads} s{shards} c{cache_bytes}: worst {w} ULP \
                                 (budget {budget})",
                                op.label(),
                            );
                        }
                        (Err(_), Err(_)) => {}
                        _ => panic!(
                            "{} t{threads} s{shards}: service {:?} vs direct {:?}",
                            op.label(),
                            served.as_ref().map(|_| "ok"),
                            direct.as_ref().map(|_| "ok"),
                        ),
                    }
                }
            }
        }
    }
}

/// The whole spec list submitted as ONE window (the server batches
/// compatible requests, including duplicates), replies in admission
/// order, each within budget of direct.
fn check_batched_window(x: &CooTensor<f32>, specs: &[(OpSpec, u64)]) {
    // Duplicate every spec so same-class batching (one shared product
    // resolution) is actually exercised within the window.
    let window: Vec<(OpSpec, u64)> = specs.iter().chain(specs.iter()).copied().collect();
    for cache_bytes in [0, 1 << 20] {
        let mut server = server_over(x, cfg(2, 2, cache_bytes));
        let reqs: Vec<Request> = window.iter().map(|&(op, _)| Request { tensor: 0, op }).collect();
        let responses = server.submit(reqs).unwrap();
        assert_eq!(responses.len(), window.len());
        for (resp, &(op, budget)) in responses.iter().zip(&window) {
            let want = direct_eval(x, &op).unwrap();
            let w = worst_ulp(&resp.values, &want).unwrap_or(u64::MAX);
            assert!(w <= budget, "batched {}: worst {w} ULP (budget {budget})", op.label());
        }
    }
}

/// Cache semantics via the per-response `cache_hit` flag: a second
/// identical window answers conversion-backed requests from the cache
/// with bit-identical values; with the cache disabled the flag never
/// fires.
fn check_warm_pass(x: &CooTensor<f32>, specs: &[(OpSpec, u64)]) {
    let reqs: Vec<Request> = specs.iter().map(|&(op, _)| Request { tensor: 0, op }).collect();

    let mut cached = server_over(x, cfg(2, 2, 1 << 20));
    let cold = cached.submit(reqs.clone()).unwrap();
    assert!(cold.iter().all(|r| !r.cache_hit), "first pass cannot hit the cache");
    let warm = cached.submit(reqs.clone()).unwrap();
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.values, w.values, "warm response must be bit-identical to cold");
    }
    let conversion_backed = specs
        .iter()
        .filter(|(op, _)| {
            matches!(op, OpSpec::Ttv { .. } | OpSpec::Ttm { .. } | OpSpec::Mttkrp { .. })
        })
        .count();
    let hits = warm.iter().filter(|r| r.cache_hit).count();
    assert_eq!(hits, conversion_backed, "every conversion-backed warm request must hit");

    let mut uncached = server_over(x, cfg(2, 2, 0));
    for _ in 0..2 {
        let pass = uncached.submit(reqs.clone()).unwrap();
        assert!(pass.iter().all(|r| !r.cache_hit), "cacheless server must never report hits");
    }
}

/// Decomposition jobs (CPD, Tucker): bit-identical to direct across
/// widths, with degenerate configurations rejected identically.
fn check_decompositions(x: &CooTensor<f32>, seed: u64) {
    let jobs =
        [OpSpec::Cpd { rank: 2, sweeps: 2, seed }, OpSpec::Tucker { rank: 2, sweeps: 1, seed }];
    for op in jobs {
        let direct = direct_eval(x, &op);
        for width in WIDTHS {
            for cache_bytes in [0, 1 << 20] {
                let mut server = server_over(x, cfg(width, width, cache_bytes));
                let served = server.submit([Request { tensor: 0, op }]);
                match (&served, &direct) {
                    (Ok(resp), Ok(want)) => {
                        assert_eq!(
                            &resp[0].values,
                            want,
                            "{} w{width}: decomposition job must be bit-identical",
                            op.label(),
                        );
                    }
                    (Err(_), Err(_)) => {}
                    _ => panic!("{} w{width}: outcome mismatch vs direct", op.label()),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Service == direct for every kernel spec, order 3, all widths,
    /// cache on/off.
    #[test]
    fn prop_service_matches_direct_order3(entries in entries3(), seed in 0u64..1000) {
        let x = tensor_from(&[10, 7, 6], entries);
        check_service_matches_direct(&x, &kernel_specs(&x, seed));
    }

    /// Service == direct for every kernel spec, order 4.
    #[test]
    fn prop_service_matches_direct_order4(entries in entries4(), seed in 0u64..1000) {
        let x = tensor_from(&[6, 5, 4, 3], entries);
        check_service_matches_direct(&x, &kernel_specs(&x, seed));
    }

    /// A full mixed window (batch size 2× the spec list, duplicates
    /// included) replies in admission order, each response within budget.
    #[test]
    fn prop_batched_window_matches_direct(entries in entries3(), seed in 0u64..1000) {
        let x = tensor_from(&[10, 7, 6], entries);
        check_batched_window(&x, &kernel_specs(&x, seed));
    }

    /// Warm-pass responses are bit-identical to cold ones; `cache_hit`
    /// fires exactly on conversion-backed requests, never cacheless.
    #[test]
    fn prop_cache_warm_pass_is_bit_identical(entries in entries3(), seed in 0u64..1000) {
        let x = tensor_from(&[10, 7, 6], entries);
        check_warm_pass(&x, &kernel_specs(&x, seed));
    }

    /// CPD and Tucker jobs are bit-identical to direct (both sides run
    /// the same sequential solver), degenerate cases rejected in step.
    #[test]
    fn prop_decomposition_jobs_match_direct(entries in entries3(), seed in 0u64..1000) {
        let x = tensor_from(&[10, 7, 6], entries);
        check_decompositions(&x, seed);
    }
}

/// Unknown tensor ids and invalid specs are rejected at admission and
/// leave the queue untouched (the next window still drains cleanly).
#[test]
fn admission_rejects_bad_requests() {
    let x = tensor_from(&[4, 4, 4], vec![(vec![0, 1, 2], 1.0), (vec![3, 3, 3], 2.0)]);
    let mut server = server_over(&x, cfg(2, 2, 1 << 20));
    let seed = 7;
    assert!(server
        .submit([Request { tensor: 9, op: OpSpec::Tew { op: EwOp::Add, seed } }])
        .is_err());
    assert!(server.submit([Request { tensor: 0, op: OpSpec::Ttv { mode: 3, seed } }]).is_err());
    let ok = server.submit([Request { tensor: 0, op: OpSpec::Ttv { mode: 1, seed } }]).unwrap();
    assert_eq!(ok.len(), 1);
    let want = direct_eval(&x, &OpSpec::Ttv { mode: 1, seed }).unwrap();
    assert_eq!(ok[0].values, want);
}
