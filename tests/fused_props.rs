//! Property-based tests for the fused-expression layer: fused TTV∘TTV and
//! TTM chains and the fused ALS sweep against composed kernel-at-a-time
//! references, across tensor orders 3–4, pool sizes 1/2/4, and both
//! workspace kinds — plus the no-materialization counter invariant.
//!
//! The composed references here call the raw kernels directly (never
//! `pasta::algos::ttm_chain`), so this binary's counter assertions cannot
//! race against legitimate `fused.materialized_intermediates` bumps.

use pasta::core::linalg::{gram, hadamard, normalize_columns, Cholesky};
use pasta::core::{
    seeded_matrix, seeded_vector, CooTensor, DenseMatrix, DenseVector, SemiCooTensor, Shape,
};
use pasta::kernels::{
    counters, mttkrp_coo, ttm_coo, ttm_scoo, ttv_coo, CounterId, Ctx, FormatKind, FusedAlsSweep,
    FusedTtmChainPlan, FusedTtvPlan, WorkspaceKind,
};
use pasta::par::Schedule;
use pasta_conformance::oracle::worst_ulp;
use proptest::prelude::*;

fn ctx_with(threads: usize) -> Ctx {
    Ctx::new(threads, Schedule::Static)
}

/// Explicit ULP budgets. The fused chains accumulate the whole expression
/// in one pass while the composed references round once per kernel step,
/// so the chain budgets sit above the single-kernel conformance budgets;
/// the ALS budget absorbs the Cholesky solve's conditioning.
const TTV_CHAIN_ULP: u64 = 512;
const TTM_CHAIN_ULP: u64 = 1024;
const ALS_SWEEP_ULP: u64 = 4096;

const POOLS: [usize; 3] = [1, 2, 4];

fn tensor_from(dims: &[u32], entries: Vec<(Vec<u32>, f64)>) -> CooTensor<f64> {
    let mut t = CooTensor::new(Shape::new(dims.to_vec()));
    for (coords, v) in entries {
        t.push(&coords, v).unwrap();
    }
    t.dedup_sum();
    t
}

fn entries3() -> impl Strategy<Value = Vec<(Vec<u32>, f64)>> {
    proptest::collection::vec(
        ((0u32..10, 0u32..7, 0u32..6), -50i32..50)
            .prop_map(|((i, j, k), v)| (vec![i, j, k], f64::from(v) / 8.0)),
        1..50,
    )
}

fn entries4() -> impl Strategy<Value = Vec<(Vec<u32>, f64)>> {
    proptest::collection::vec(
        ((0u32..6, 0u32..5, 0u32..4, 0u32..3), -50i32..50)
            .prop_map(|((i, j, k, l), v)| (vec![i, j, k, l], f64::from(v) / 8.0)),
        1..40,
    )
}

/// Kernel-at-a-time TTV chain: contracts the given modes one `ttv_coo` at
/// a time, materializing each intermediate. Contracts the highest mode
/// first so the remaining mode indices stay valid.
fn composed_ttv_chain(
    x: &CooTensor<f64>,
    contract: &[usize],
    vecs: &[DenseVector<f64>],
    ctx: &Ctx,
) -> CooTensor<f64> {
    let mut cur = x.clone();
    for (j, &m) in contract.iter().enumerate().rev() {
        cur = ttv_coo(&cur, &vecs[j], m, ctx).unwrap();
    }
    cur
}

/// Kernel-at-a-time TTM chain (the `pasta::algos::ttm_chain` algorithm,
/// restated over the raw kernels so no fused counters are touched).
fn composed_ttm_chain(
    x: &CooTensor<f64>,
    factors: &[DenseMatrix<f64>],
    skip: usize,
    ctx: &Ctx,
) -> CooTensor<f64> {
    let mut semi: Option<SemiCooTensor<f64>> = None;
    for (n, u) in factors.iter().enumerate() {
        if n == skip {
            continue;
        }
        semi = Some(match semi {
            None => ttm_coo(x, u, n, ctx).unwrap(),
            Some(prev) if prev.dense_modes().len() + 1 >= prev.shape().order() => {
                ttm_coo(&prev.to_coo(), u, n, ctx).unwrap()
            }
            Some(prev) => ttm_scoo(&prev, u, n, ctx).unwrap(),
        });
    }
    match semi {
        Some(s) => s.to_coo(),
        None => x.clone(),
    }
}

/// One kernel-at-a-time ALS sweep (MTTKRP, recomputed Grams, Cholesky
/// solve, normalize), mutating `factors`/`lambda` in place. Returns false
/// when the Gram Hadamard is singular (degenerate case).
fn composed_als_sweep(
    x: &CooTensor<f64>,
    factors: &mut [DenseMatrix<f64>],
    lambda: &mut [f64],
    ctx: &Ctx,
) -> bool {
    for n in 0..x.order() {
        let m_out = mttkrp_coo(x, factors, n, ctx).unwrap();
        let mut v: Option<DenseMatrix<f64>> = None;
        for (m, f) in factors.iter().enumerate() {
            if m == n {
                continue;
            }
            let g = gram(f);
            v = Some(match v {
                Some(acc) => hadamard(&acc, &g),
                None => g,
            });
        }
        let Some(ch) = Cholesky::factor(&v.expect("order >= 2"), 1e-10) else {
            return false;
        };
        let mut a = m_out;
        ch.solve_rows(&mut a);
        let norms = normalize_columns(&mut a);
        for (l, nn) in lambda.iter_mut().zip(&norms) {
            *l = if *nn == 0.0 { 0.0 } else { *nn };
        }
        factors[n] = a;
    }
    true
}

fn unit_factors(x: &CooTensor<f64>, rank: usize, seed: u64) -> Vec<DenseMatrix<f64>> {
    (0..x.order())
        .map(|m| {
            let mut f = seeded_matrix(x.shape().dim(m) as usize, rank, seed + m as u64);
            normalize_columns(&mut f);
            f
        })
        .collect()
}

fn check_ttv_chain(x: &CooTensor<f64>, contract: &[usize]) {
    let vecs: Vec<DenseVector<f64>> =
        contract.iter().map(|&m| seeded_vector(x.shape().dim(m) as usize, 17 + m as u64)).collect();
    let refs: Vec<&DenseVector<f64>> = vecs.iter().collect();
    let want = composed_ttv_chain(x, contract, &vecs, &Ctx::sequential()).to_dense(1 << 22);
    for threads in POOLS {
        let ctx = ctx_with(threads);
        let plan = FusedTtvPlan::new(x, contract, &ctx).unwrap();
        // The auto-dispatched route…
        let got = plan.execute(&refs, &ctx).unwrap().to_dense(1 << 22);
        let w = worst_ulp(&got, &want).unwrap_or(u64::MAX);
        assert!(w <= TTV_CHAIN_ULP, "t{threads} auto: worst {w} ULP");
        // …and both workspace kinds explicitly: each must agree with the
        // auto route's fiber values to the same budget.
        let auto_vals = plan.execute(&refs, &ctx).unwrap();
        for kind in [WorkspaceKind::Dense, WorkspaceKind::Sparse] {
            let mut vals = vec![0.0f64; plan.num_fibers()];
            plan.execute_values_with(&refs, &mut vals, &ctx, kind).unwrap();
            let w = worst_ulp(&vals, auto_vals.vals()).unwrap_or(u64::MAX);
            assert!(w <= TTV_CHAIN_ULP, "t{threads} {kind}: worst {w} ULP vs auto route");
        }
    }
}

fn check_ttm_chain(x: &CooTensor<f64>, rank: usize) {
    let factors: Vec<DenseMatrix<f64>> = (0..x.order())
        .map(|m| seeded_matrix(x.shape().dim(m) as usize, rank, 29 + m as u64))
        .collect();
    for skip in 0..x.order() {
        let want = composed_ttm_chain(x, &factors, skip, &Ctx::sequential()).to_dense(1 << 22);
        for threads in POOLS {
            let ctx = ctx_with(threads);
            let plan = FusedTtmChainPlan::new(x, skip, &ctx).unwrap();
            let got = plan.execute(&factors, &ctx).unwrap().to_coo().to_dense(1 << 22);
            let w = worst_ulp(&got, &want).unwrap_or(u64::MAX);
            assert!(w <= TTM_CHAIN_ULP, "skip {skip} t{threads}: worst {w} ULP");
        }
    }
    // Full contraction (the Tucker core) against the composed chain.
    let want = composed_ttm_chain(x, &factors, x.order(), &Ctx::sequential()).to_dense(1 << 22);
    for threads in POOLS {
        let ctx = ctx_with(threads);
        let plan = FusedTtmChainPlan::new(x, x.order(), &ctx).unwrap();
        let got = plan.execute_full(&factors, &ctx).unwrap();
        let w = worst_ulp(&got, &want).unwrap_or(u64::MAX);
        assert!(w <= TTM_CHAIN_ULP, "full t{threads}: worst {w} ULP");
    }
}

fn check_als_sweep(x: &CooTensor<f64>, rank: usize, sweeps: usize) {
    for threads in POOLS {
        let ctx = ctx_with(threads);
        let mut ff = unit_factors(x, rank, 5);
        let mut lf = vec![1.0f64; rank];
        let mut plan = FusedAlsSweep::new(x, FormatKind::Coo, 0, &ff, &ctx).unwrap();
        let mut fm = unit_factors(x, rank, 5);
        let mut lm = vec![1.0f64; rank];
        for _ in 0..sweeps {
            if !composed_als_sweep(x, &mut fm, &mut lm, &ctx) {
                // Degenerate Gram: the fused route must reject it too.
                assert!(plan.sweep(&mut ff, &mut lf).is_err());
                return;
            }
            plan.sweep(&mut ff, &mut lf).unwrap();
        }
        for (a, b) in ff.iter().zip(&fm) {
            let w = worst_ulp(a.as_slice(), b.as_slice()).unwrap_or(u64::MAX);
            assert!(w <= ALS_SWEEP_ULP, "t{threads} factors: worst {w} ULP");
        }
        let w = worst_ulp(&lf, &lm).unwrap_or(u64::MAX);
        assert!(w <= ALS_SWEEP_ULP, "t{threads} lambda: worst {w} ULP");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused TTV∘TTV equals the composed two-TTV chain, order 3.
    #[test]
    fn prop_ttv_chain_order3(entries in entries3()) {
        let x = tensor_from(&[10, 7, 6], entries);
        check_ttv_chain(&x, &[1, 2]);
    }

    /// Fused TTV∘TTV equals the composed chain on order 4, including a
    /// non-adjacent contracted-mode pair.
    #[test]
    fn prop_ttv_chain_order4(entries in entries4()) {
        let x = tensor_from(&[6, 5, 4, 3], entries);
        check_ttv_chain(&x, &[2, 3]);
        check_ttv_chain(&x, &[1, 3]);
    }

    /// Fused TTM chains (every skip mode + full contraction) equal the
    /// kernel-at-a-time chain, order 3.
    #[test]
    fn prop_ttm_chain_order3(entries in entries3()) {
        let x = tensor_from(&[10, 7, 6], entries);
        check_ttm_chain(&x, 3);
    }

    /// Fused TTM chains equal the kernel-at-a-time chain, order 4.
    #[test]
    fn prop_ttm_chain_order4(entries in entries4()) {
        let x = tensor_from(&[6, 5, 4, 3], entries);
        check_ttm_chain(&x, 2);
    }

    /// The fused ALS sweep tracks the kernel-at-a-time sweep over multiple
    /// iterations, order 3.
    #[test]
    fn prop_als_sweep_order3(entries in entries3()) {
        let x = tensor_from(&[10, 7, 6], entries);
        check_als_sweep(&x, 2, 3);
    }

    /// The fused ALS sweep tracks the kernel-at-a-time sweep, order 4.
    #[test]
    fn prop_als_sweep_order4(entries in entries4()) {
        let x = tensor_from(&[6, 5, 4, 3], entries);
        check_als_sweep(&x, 2, 2);
    }
}

/// The acceptance invariant: fused execution materializes no intermediate
/// sparse tensors — the counter only moves on the kernel-at-a-time paths,
/// none of which run in this test binary.
#[test]
fn fused_paths_materialize_no_intermediates() {
    let x = tensor_from(
        &[10, 7, 6],
        (0..60u32).map(|i| (vec![i % 10, (i * 3) % 7, (i * 5) % 6], f64::from(i) - 30.0)).collect(),
    );
    let ctx = ctx_with(2);
    pasta::obs::set_counting(true);
    let before = counters().snapshot();

    let v1 = seeded_vector::<f64>(7, 1);
    let v2 = seeded_vector::<f64>(6, 2);
    let ttv = FusedTtvPlan::new(&x, &[1, 2], &ctx).unwrap();
    ttv.execute(&[&v1, &v2], &ctx).unwrap();

    let factors: Vec<DenseMatrix<f64>> =
        (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, 3, m as u64)).collect();
    let ttm = FusedTtmChainPlan::new(&x, 0, &ctx).unwrap();
    ttm.execute(&factors, &ctx).unwrap();
    let core = FusedTtmChainPlan::new(&x, 3, &ctx).unwrap();
    core.execute_full(&factors, &ctx).unwrap();

    let mut ff = unit_factors(&x, 2, 9);
    let mut lf = vec![1.0f64; 2];
    let mut als = FusedAlsSweep::new(&x, FormatKind::Coo, 0, &ff, &ctx).unwrap();
    als.sweep(&mut ff, &mut lf).unwrap();

    let after = counters().snapshot();
    assert_eq!(
        after[CounterId::FusedMaterialized],
        before[CounterId::FusedMaterialized],
        "fused paths must not materialize intermediate sparse tensors"
    );
    assert!(after[CounterId::FusedChains] >= before[CounterId::FusedChains] + 4);
    assert!(after[CounterId::FusedWorkspaceBytes] > before[CounterId::FusedWorkspaceBytes]);
}
