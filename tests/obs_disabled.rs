//! With counting disabled, every counter in the registry must stay
//! exactly zero-delta across a workload that would otherwise bump every
//! subsystem (sort, HiCOO conversion, MTTKRP scheduling, fused chains,
//! expression-graph lowering, pool workers).
//!
//! This lives in its own test binary: `set_counting(false)` is
//! process-global, and cargo runs each test binary as a separate process,
//! so disabling here cannot break the delta assertions in the other
//! suites (which run with the default counting-on state).

use pasta::core::{seeded_matrix, seeded_vector, CooTensor, DenseMatrix, DenseVector, Shape};
use pasta::kernels::{
    lower, mttkrp_coo, ttv_coo, Bindings, Ctx, EwOp, ExprGraph, FusedTtvPlan, MatOperand,
    VecOperand,
};
use pasta::par::Schedule;

fn tensor() -> CooTensor<f64> {
    let mut t = CooTensor::new(Shape::new(vec![12, 9, 8]));
    for e in 0..200u32 {
        let coords = vec![e % 12, (e * 7 + 1) % 9, (e * 3 + 2) % 8];
        t.push(&coords, f64::from(e % 17) - 8.0).unwrap();
    }
    t.dedup_sum();
    t
}

#[test]
fn all_counters_zero_delta_when_disabled() {
    pasta::obs::set_counting(false);
    let before = pasta::obs::counters().snapshot();

    let x = tensor();
    for threads in [1usize, 2, 4] {
        let ctx = Ctx::new(threads, Schedule::Static);
        // Sort + HiCOO conversion path.
        let hicoo = pasta::core::HiCooTensor::from_coo(&x, 4).unwrap();
        assert_eq!(hicoo.nnz(), x.nnz());
        // TTV and the MTTKRP strategy dispatch (merge, resort, nnz counters).
        let v: DenseVector<f64> = seeded_vector(8, 7);
        ttv_coo(&x, &v, 2, &ctx).unwrap();
        let factors: Vec<DenseMatrix<f64>> =
            (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, 4, 3 + m as u64)).collect();
        mttkrp_coo(&x, &factors, 0, &ctx).unwrap();
        // Fused TTV chain (plan-cache, chain, workspace counters).
        let v1: DenseVector<f64> = seeded_vector(9, 5);
        let v2: DenseVector<f64> = seeded_vector(8, 6);
        let plan = FusedTtvPlan::new(&x, &[1, 2], &ctx).unwrap();
        plan.execute(&[&v1, &v2], &ctx).unwrap();
        // Expression-graph lowering and execution (expr plan/edge counters,
        // plan-cache hits on the re-execution).
        let mut g = ExprGraph::new();
        let leaf = g.leaf(&x);
        let e = g.tew(leaf, EwOp::Mul, x.like_pattern(1.5)).unwrap();
        let e = g.ttv(e, 2, VecOperand::Owned(seeded_vector(8, 11))).unwrap();
        let root = g.ttm(e, 0, MatOperand::Owned(seeded_matrix(12, 3, 12))).unwrap();
        let eplan = lower(&g, root, &ctx).unwrap();
        eplan.execute(&Bindings::none()).unwrap();
        eplan.execute(&Bindings::none()).unwrap();
    }

    let after = pasta::obs::counters().snapshot();
    for ((name, b), (_, a)) in before.iter().zip(after.iter()) {
        assert_eq!(b, a, "counter {name} moved while counting was disabled");
    }
    // Tracing defaults off in this process: no events either.
    let events = pasta::obs::snapshot_events();
    assert!(
        events.iter().all(|(_, evs, _)| evs.is_empty()),
        "span events recorded while tracing was disabled"
    );
}
