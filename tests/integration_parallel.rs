//! Parallel-runtime integration tests: the key-based radix sorts must
//! reproduce the comparator sorts' permutations bit-for-bit on random
//! tensors (including duplicate coordinates), kernels with disjoint-write
//! outputs must be bit-identical between the sequential path and the
//! pooled parallel path, and running kernels must never spawn OS threads
//! per call.
//!
//! MTTKRP's privatized-reduction schedule is the one exception to
//! bit-identity: its per-worker accumulators associate floating-point adds
//! differently from the sequential loop (deterministically, but not
//! identically), so it is checked against a tight tolerance instead. The
//! owner-computes schedule IS bit-identical and is asserted as such in
//! `integration_mttkrp.rs`.

use pasta::core::morton::morton_cmp;
use pasta::core::sort::{gather, sort_permutation};
use pasta::core::{
    seeded_matrix, seeded_vector, CooTensor, Coord, CsfTensor, DenseMatrix, FCooTensor,
    GHiCooTensor, HiCooTensor, Shape,
};
use pasta::kernels::{
    mttkrp_coo, mttkrp_csf_root, mttkrp_hicoo, tew_coo_same_pattern, tew_hicoo, ts_coo, ts_hicoo,
    ttm_coo, ttm_hicoo, ttv_coo, ttv_csf_leaf, ttv_fcoo, ttv_hicoo, Ctx, EwOp, TsOp,
};
use pasta::par::Schedule;
use proptest::prelude::*;

/// Builds a tensor whose values record the original entry positions, so an
/// equality check on values verifies the whole sort permutation.
fn position_tagged(shape: Vec<Coord>, coords: Vec<(Coord, Coord, Coord)>) -> CooTensor<f32> {
    let mut t = CooTensor::<f32>::new(Shape::new(shape));
    for (pos, (i, j, k)) in coords.into_iter().enumerate() {
        t.push(&[i, j, k], pos as f32).unwrap();
    }
    t
}

fn entry_rows(t: &CooTensor<f32>) -> Vec<(Vec<Coord>, f32)> {
    t.iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO mode-order sort through the radix path matches a stable
    /// comparator sort of the entries, for every thread count.
    #[test]
    fn prop_radix_coo_sort_matches_stable_comparator(
        coords in proptest::collection::vec((0u32..24, 0u32..24, 0u32..24), 1..300),
        mode_order in prop::sample::select(vec![
            vec![0usize, 1, 2],
            vec![2, 1, 0],
            vec![1, 0, 2],
            vec![2, 0],
            vec![1],
        ]),
    ) {
        let base = position_tagged(vec![24, 24, 24], coords);
        // Oracle: std's stable sort over owned entry rows.
        let mut expected = entry_rows(&base);
        expected.sort_by(|(ca, _), (cb, _)| {
            mode_order
                .iter()
                .map(|&m| ca[m].cmp(&cb[m]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for threads in [1usize, 4, 16] {
            let mut sorted = base.clone();
            sorted.sort_by_mode_order_threads(&mode_order, threads);
            prop_assert_eq!(&entry_rows(&sorted), &expected, "threads={}", threads);
        }
    }

    /// HiCOO conversion through the packed Morton keys reproduces the
    /// comparator ordering (Morton on block coords, full-coordinate
    /// tie-break) exactly, for every thread count and block size.
    #[test]
    fn prop_radix_hicoo_matches_comparator_order(
        coords in proptest::collection::vec((0u32..64, 0u32..64, 0u32..64), 1..300),
        block_size in prop::sample::select(vec![2u32, 4, 8, 16]),
    ) {
        let base = position_tagged(vec![64, 64, 64], coords);
        let bits = block_size.trailing_zeros();
        // Oracle: the comparator sort the seed implementation used.
        let block = |x: usize| -> Vec<Coord> {
            (0..3).map(|m| base.mode_inds(m)[x] >> bits).collect()
        };
        let perm = sort_permutation(base.nnz(), |a, b| {
            morton_cmp(&block(a), &block(b)).then_with(|| {
                (0..3)
                    .map(|m| base.mode_inds(m)[a].cmp(&base.mode_inds(m)[b]))
                    .find(|o| *o != std::cmp::Ordering::Equal)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        });
        let expected_vals = gather(base.vals(), &perm);
        for threads in [1usize, 4] {
            let h = HiCooTensor::from_coo_threads(&base, block_size, threads).unwrap();
            prop_assert_eq!(h.vals(), &expected_vals[..], "threads={}", threads);
            // And the expansion must be a faithful permutation of the input.
            let mut back = h.to_coo();
            back.sort();
            let mut orig = base.clone();
            orig.sort();
            prop_assert_eq!(&back, &orig);
        }
    }

    /// gHiCOO conversion: packed keys match the three-level comparator
    /// (Morton on blocked modes, blocked-coordinate then full-coordinate
    /// tie-breaks) for every blocked-mode mask.
    #[test]
    fn prop_radix_ghicoo_matches_comparator_order(
        coords in proptest::collection::vec((0u32..64, 0u32..64, 0u32..64), 1..250),
        mask in 1u32..8,
        block_size in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let blocked: Vec<bool> = (0..3).map(|m| mask & (1 << m) != 0).collect();
        let blocked_modes: Vec<usize> = (0..3).filter(|&m| blocked[m]).collect();
        let full_modes: Vec<usize> = (0..3).filter(|&m| !blocked[m]).collect();
        let base = position_tagged(vec![64, 64, 64], coords);
        let bits = block_size.trailing_zeros();
        let block = |x: usize| -> Vec<Coord> {
            blocked_modes.iter().map(|&m| base.mode_inds(m)[x] >> bits).collect()
        };
        let lex = |modes: &[usize], a: usize, b: usize| {
            modes
                .iter()
                .map(|&m| base.mode_inds(m)[a].cmp(&base.mode_inds(m)[b]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        };
        let perm = sort_permutation(base.nnz(), |a, b| {
            morton_cmp(&block(a), &block(b))
                .then_with(|| lex(&blocked_modes, a, b))
                .then_with(|| lex(&full_modes, a, b))
        });
        let expected_vals = gather(base.vals(), &perm);
        for threads in [1usize, 4] {
            let g = GHiCooTensor::from_coo_threads(&base, block_size, &blocked, threads).unwrap();
            prop_assert_eq!(g.vals(), &expected_vals[..], "threads={} mask={}", threads, mask);
        }
    }
}

fn test_tensor() -> CooTensor<f32> {
    pasta::gen::PowerLawGen::new(1.4).generate3(200, 10, 3_000, 77).unwrap()
}

fn par_ctx(schedule: Schedule) -> Ctx {
    Ctx::new(4, schedule)
}

const SCHEDULES: [Schedule; 3] = [Schedule::Static, Schedule::Dynamic(64), Schedule::Guided];

#[test]
fn disjoint_write_kernels_bit_identical_across_thread_counts() {
    let x = test_tensor();
    let seq = Ctx::sequential();
    let hx = HiCooTensor::from_coo(&x, 8).unwrap();
    for sched in SCHEDULES {
        let par = par_ctx(sched);
        // TS and TEW: element-wise, one writer per element.
        let ts_s = ts_coo(TsOp::Mul, &x, 1.5, &seq).unwrap();
        let ts_p = ts_coo(TsOp::Mul, &x, 1.5, &par).unwrap();
        assert_eq!(ts_s, ts_p, "ts_coo {sched}");
        assert_eq!(
            ts_hicoo(TsOp::Add, &hx, 2.5, &seq).unwrap(),
            ts_hicoo(TsOp::Add, &hx, 2.5, &par).unwrap(),
            "ts_hicoo {sched}"
        );
        let y = ts_s;
        let hy = HiCooTensor::from_coo(&y, 8).unwrap();
        assert_eq!(
            tew_coo_same_pattern(EwOp::Add, &x, &y, &seq).unwrap(),
            tew_coo_same_pattern(EwOp::Add, &x, &y, &par).unwrap(),
            "tew_coo {sched}"
        );
        assert_eq!(
            tew_hicoo(EwOp::Mul, &hx, &hy, &seq).unwrap(),
            tew_hicoo(EwOp::Mul, &hx, &hy, &par).unwrap(),
            "tew_hicoo {sched}"
        );
        // TTV/TTM: one writer per fiber; per-fiber accumulation order is
        // independent of the loop decomposition.
        for n in 0..3 {
            let v = seeded_vector::<f32>(x.shape().dim(n) as usize, 9);
            assert_eq!(
                ttv_coo(&x, &v, n, &seq).unwrap(),
                ttv_coo(&x, &v, n, &par).unwrap(),
                "ttv_coo mode {n} {sched}"
            );
            assert_eq!(
                ttv_hicoo(&x, &v, n, 8, &seq).unwrap().to_coo(),
                ttv_hicoo(&x, &v, n, 8, &par).unwrap().to_coo(),
                "ttv_hicoo mode {n} {sched}"
            );
            let u = seeded_matrix::<f32>(x.shape().dim(n) as usize, 8, 13);
            assert_eq!(
                ttm_coo(&x, &u, n, &seq).unwrap().to_coo(),
                ttm_coo(&x, &u, n, &par).unwrap().to_coo(),
                "ttm_coo mode {n} {sched}"
            );
            assert_eq!(
                ttm_hicoo(&x, &u, n, 8, &seq).unwrap().to_scoo().unwrap().to_coo(),
                ttm_hicoo(&x, &u, n, 8, &par).unwrap().to_scoo().unwrap().to_coo(),
                "ttm_hicoo mode {n} {sched}"
            );
        }
        // CSF TTV (leaf mode) and F-COO TTV.
        let csf = CsfTensor::from_coo(&x, &[0, 1, 2]).unwrap();
        let v = seeded_vector::<f32>(x.shape().dim(2) as usize, 21);
        assert_eq!(
            ttv_csf_leaf(&csf, &v, &seq).unwrap(),
            ttv_csf_leaf(&csf, &v, &par).unwrap(),
            "ttv_csf_leaf {sched}"
        );
        let fcoo = FCooTensor::from_coo(&x, 2).unwrap();
        assert_eq!(
            ttv_fcoo(&fcoo, &v, &seq).unwrap(),
            ttv_fcoo(&fcoo, &v, &par).unwrap(),
            "ttv_fcoo {sched}"
        );
    }
}

#[test]
fn mttkrp_parallel_matches_sequential_within_tolerance() {
    let x = test_tensor();
    let seq = Ctx::sequential();
    let factors: Vec<DenseMatrix<f32>> =
        (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, 8, 31 + m as u64)).collect();
    let hx = HiCooTensor::from_coo(&x, 8).unwrap();
    let csf = CsfTensor::from_coo(&x, &[0, 1, 2]).unwrap();
    for sched in SCHEDULES {
        let par = par_ctx(sched);
        for n in 0..3 {
            let s = mttkrp_coo(&x, &factors, n, &seq).unwrap();
            let p = mttkrp_coo(&x, &factors, n, &par).unwrap();
            for (a, b) in s.as_slice().iter().zip(p.as_slice()) {
                assert!(
                    (a - b).abs() <= 1e-3 * a.abs().max(1.0),
                    "mttkrp_coo {n} {sched}: {a} vs {b}"
                );
            }
            let hs = mttkrp_hicoo(&hx, &factors, n, &seq).unwrap();
            let hp = mttkrp_hicoo(&hx, &factors, n, &par).unwrap();
            for (a, b) in hs.as_slice().iter().zip(hp.as_slice()) {
                assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0), "mttkrp_hicoo {n} {sched}");
            }
        }
        let cs = mttkrp_csf_root(&csf, &factors, &seq).unwrap();
        let cp = mttkrp_csf_root(&csf, &factors, &par).unwrap();
        for (a, b) in cs.as_slice().iter().zip(cp.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0), "mttkrp_csf {sched}");
        }
    }
}

#[test]
fn kernels_reuse_pooled_threads() {
    let x = test_tensor();
    let par = Ctx::parallel();
    // Warm up: first parallel call may lazily spawn the global pool.
    let v = seeded_vector::<f32>(x.shape().dim(0) as usize, 3);
    ttv_coo(&x, &v, 0, &par).unwrap();
    let warm = pasta::par::threads_spawned();
    for _ in 0..25 {
        ttv_coo(&x, &v, 0, &par).unwrap();
        ts_coo(TsOp::Mul, &x, 2.0, &par).unwrap();
        HiCooTensor::from_coo(&x, 8).unwrap();
        let mut t = x.clone();
        t.sort_by_mode_order_threads(&[2, 1, 0], 4);
    }
    assert_eq!(
        pasta::par::threads_spawned(),
        warm,
        "kernel and conversion calls must not spawn OS threads per invocation"
    );
}
