//! Integration tests for the conformance harness: the quick tier is green
//! end to end, the element-wise kernels are covered on every format and
//! both backends, and an injected fault survives the full
//! catch → shrink → serialize → replay loop.

use pasta_conformance::matrix::{eval_cell, shrink_case, CellOutcome};
use pasta_conformance::{
    cells, generate, parse_case, render_case, run_matrix, CaseFile, FaultSpec, Tier,
};

#[test]
fn quick_tier_is_green() {
    let corpus = generate(Tier::Quick, 0xC0FFEE);
    let cs = cells();
    let reports = run_matrix(&corpus, &cs, None);
    assert_eq!(reports.len(), cs.len());
    for r in &reports {
        assert!(
            r.failure.is_none(),
            "{} failed on `{}`: {}",
            r.id,
            r.failure.as_ref().unwrap().case_label,
            r.failure.as_ref().unwrap().message
        );
        assert!(r.worst <= r.budget, "{}: worst {} > budget {}", r.id, r.worst, r.budget);
        assert_eq!(r.cases, corpus.len());
    }
}

#[test]
fn elementwise_cells_cover_every_format_on_both_backends() {
    let cs = cells();
    for kernel in ["tew", "ts"] {
        for fmt in ["coo", "scoo", "hicoo", "ghicoo", "shicoo"] {
            for backend in ["cpu/t1", "cpu/t4", "gpu"] {
                let id = format!("{kernel}/{fmt}/{backend}");
                let cell =
                    cs.iter().find(|c| c.id == id).unwrap_or_else(|| panic!("missing cell {id}"));
                // Element-wise kernels are bit-identical everywhere.
                assert_eq!(cell.budget, 0, "{id}");
            }
        }
    }
}

#[test]
fn injected_fault_is_caught_shrunk_and_replayable() {
    let corpus = generate(Tier::Quick, 77);
    let cs = cells();
    let cell = cs.iter().find(|c| c.id == "tew/ghicoo/cpu/t1").unwrap();
    let fault = FaultSpec { cell: cell.id.clone() };
    let case = corpus.iter().find(|c| !c.entries.is_empty()).unwrap();

    assert!(matches!(eval_cell(cell, case, Some(&fault)), CellOutcome::Fail { .. }));
    let shrunk = shrink_case(cell, case, Some(&fault));
    assert!(shrunk.entries.len() < case.entries.len() || shrunk.dims.iter().all(|&d| d == 1));

    // Serialize, parse back bit-exactly, and replay both ways.
    let cf = CaseFile { cell: cell.id.clone(), case: shrunk };
    let roundtrip = parse_case(&render_case(&cf)).expect("case file parses");
    assert_eq!(roundtrip, cf);
    assert!(
        matches!(eval_cell(cell, &roundtrip.case, Some(&fault)), CellOutcome::Fail { .. }),
        "replay with the fault must reproduce the failure"
    );
    assert!(
        matches!(eval_cell(cell, &roundtrip.case, None), CellOutcome::Pass(_)),
        "replay without the fault must pass: the bug was in the kernel, not the case"
    );
}
