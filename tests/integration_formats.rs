//! Cross-crate integration tests: format conversions on generated tensors,
//! I/O roundtrips, and property-based invariants of the storage formats.

use pasta::core::{
    io, BlockStats, CooTensor, GHiCooTensor, HiCooTensor, SHiCooTensor, SemiCooTensor, Shape,
    TensorStats,
};
use pasta::gen::{KroneckerGen, PowerLawGen};
use proptest::prelude::*;

fn sorted(mut t: CooTensor<f32>) -> CooTensor<f32> {
    t.sort();
    t
}

#[test]
fn generated_tensor_roundtrips_through_every_format() {
    let x = PowerLawGen::new(1.5).generate3(2_000, 16, 5_000, 42).unwrap();
    let reference = sorted(x.clone());

    for bs in [2u32, 8, 128, 256] {
        let hicoo = HiCooTensor::from_coo(&x, bs).unwrap();
        assert_eq!(sorted(hicoo.to_coo()), reference, "HiCOO B={bs}");
    }
    for blocked in [[true, true, false], [true, false, true], [true, true, true]] {
        let g = GHiCooTensor::from_coo(&x, 16, &blocked).unwrap();
        assert_eq!(sorted(g.to_coo()), reference, "gHiCOO {blocked:?}");
    }
}

#[test]
fn io_roundtrips_generated_tensor() {
    let x = KroneckerGen::new(4).generate(&[64, 64, 64, 16], 3_000, 7).unwrap();

    let mut text = Vec::new();
    io::write_tns(&x, &mut text).unwrap();
    let back: CooTensor<f32> = io::read_tns(&text[..]).unwrap();
    // Shape may shrink to the max observed index; values and coords agree.
    assert_eq!(back.nnz(), x.nnz());
    for (coords, val) in x.iter().take(64) {
        assert_eq!(back.get(&coords), Some(val));
    }

    let mut bin = Vec::new();
    io::write_binary(&x, &mut bin).unwrap();
    let back2: CooTensor<f32> = io::read_binary(&bin[..]).unwrap();
    assert_eq!(back2, x);
}

#[test]
fn hicoo_compression_tracks_clustering() {
    // A clustered (Kronecker) tensor compresses well under HiCOO; a
    // scattered power-law tensor with huge dims compresses worse.
    let clustered = KroneckerGen::new(3).generate(&[4096, 4096, 4096], 20_000, 1).unwrap();
    let scattered = PowerLawGen::new(1.1).generate3(4_000_000, 4_000_000, 20_000, 2).unwrap();
    let hc = HiCooTensor::from_coo(&clustered, 128).unwrap();
    let hs = HiCooTensor::from_coo(&scattered, 128).unwrap();
    let ratio_c = hc.storage_bytes() as f64 / clustered.storage_bytes() as f64;
    let ratio_s = hs.storage_bytes() as f64 / scattered.storage_bytes() as f64;
    assert!(ratio_c < ratio_s, "clustered {ratio_c:.2} vs scattered {ratio_s:.2}");

    let bc = BlockStats::compute(&hc);
    let bs = BlockStats::compute(&hs);
    assert!(bc.avg_nnz > bs.avg_nnz);
}

#[test]
fn stats_consistent_across_formats() {
    let x = PowerLawGen::new(1.6).generate3(1_000, 8, 3_000, 9).unwrap();
    let stats = TensorStats::compute(&x);
    let hicoo = HiCooTensor::from_coo(&x, 64).unwrap();
    assert_eq!(stats.nnz, hicoo.nnz());
    let again = TensorStats::compute(&hicoo.to_coo());
    assert_eq!(stats.nnz, again.nnz);
    assert_eq!(stats.fiber_counts, again.fiber_counts, "fiber structure survives conversion");
}

#[test]
fn semi_sparse_chain_scoo_shicoo() {
    // sCOO -> sHiCOO -> sCOO -> COO keeps every value.
    let scoo = SemiCooTensor::from_fibers(
        Shape::new(vec![64, 64, 4]),
        vec![2],
        vec![(0..40u32).collect(), (0..40u32).map(|i| (i * 7) % 64).collect()],
        (0..160).map(|i| i as f32 * 0.25 + 1.0).collect(),
    )
    .unwrap();
    let sh = SHiCooTensor::from_scoo(&scoo, 8).unwrap();
    let back = sh.to_scoo().unwrap();
    assert_eq!(sorted(back.to_coo()), sorted(scoo.to_coo()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// HiCOO roundtrip is lossless for arbitrary third-order tensors.
    #[test]
    fn prop_hicoo_roundtrip(
        entries in proptest::collection::vec(
            ((0u32..200, 0u32..100, 0u32..300), -100i32..100),
            1..60
        ),
        bs_log in 1u32..8,
    ) {
        let mut t = CooTensor::<f32>::new(Shape::new(vec![200, 100, 300]));
        for ((i, j, k), v) in entries {
            t.push(&[i, j, k], v as f32).unwrap();
        }
        t.dedup_sum();
        let hicoo = HiCooTensor::from_coo(&t, 1 << bs_log).unwrap();
        prop_assert_eq!(sorted(hicoo.to_coo()), sorted(t));
    }

    /// gHiCOO with any non-empty blocked-mode subset is lossless.
    #[test]
    fn prop_ghicoo_roundtrip(
        entries in proptest::collection::vec(
            ((0u32..64, 0u32..64, 0u32..64), 1i32..50),
            1..40
        ),
        mask in 1u8..8,
    ) {
        let blocked = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
        let mut t = CooTensor::<f32>::new(Shape::new(vec![64, 64, 64]));
        for ((i, j, k), v) in entries {
            t.push(&[i, j, k], v as f32).unwrap();
        }
        t.dedup_sum();
        let g = GHiCooTensor::from_coo(&t, 4, &blocked).unwrap();
        prop_assert_eq!(sorted(g.to_coo()), sorted(t));
    }

    /// Binary I/O is an exact roundtrip.
    #[test]
    fn prop_binary_io_roundtrip(
        entries in proptest::collection::vec(
            ((0u32..30, 0u32..30), -1000f32..1000f32),
            0..40
        ),
    ) {
        let mut t = CooTensor::<f32>::new(Shape::new(vec![30, 30]));
        for ((i, j), v) in entries {
            t.push(&[i, j], v).unwrap();
        }
        let mut buf = Vec::new();
        io::write_binary(&t, &mut buf).unwrap();
        let back: CooTensor<f32> = io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(back, t);
    }

    /// CSF roundtrip is lossless for arbitrary tensors and mode orders.
    #[test]
    fn prop_csf_roundtrip(
        entries in proptest::collection::vec(
            ((0u32..40, 0u32..40, 0u32..40), 1i32..100),
            1..50
        ),
        perm_seed in 0usize..6,
    ) {
        let orders = [[0usize, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let mut t = CooTensor::<f32>::new(Shape::new(vec![40, 40, 40]));
        for ((i, j, k), v) in entries {
            t.push(&[i, j, k], v as f32).unwrap();
        }
        t.dedup_sum();
        let csf = pasta::core::CsfTensor::from_coo(&t, &orders[perm_seed]).unwrap();
        pasta::core::validate_csf(&csf).unwrap();
        prop_assert_eq!(sorted(csf.to_coo()), sorted(t));
    }

    /// F-COO roundtrip is lossless and its flag count equals the fiber count.
    #[test]
    fn prop_fcoo_roundtrip(
        entries in proptest::collection::vec(
            ((0u32..30, 0u32..30, 0u32..30), 1i32..50),
            1..40
        ),
        mode in 0usize..3,
    ) {
        let mut t = CooTensor::<f32>::new(Shape::new(vec![30, 30, 30]));
        for ((i, j, k), v) in entries {
            t.push(&[i, j, k], v as f32).unwrap();
        }
        t.dedup_sum();
        let fc = pasta::core::FCooTensor::from_coo(&t, mode).unwrap();
        prop_assert_eq!(
            fc.start_flags().iter().filter(|&&b| b).count(),
            fc.num_fibers()
        );
        prop_assert_eq!(sorted(fc.to_coo()), sorted(t));
    }

    /// Degree relabeling is always a bijection: applying then inverting is
    /// the identity on entries.
    #[test]
    fn prop_relabel_invertible(
        entries in proptest::collection::vec(
            ((0u32..25, 0u32..25), 1i32..50),
            1..30
        ),
    ) {
        let mut t = CooTensor::<f32>::new(Shape::new(vec![25, 25]));
        for ((i, j), v) in entries {
            t.push(&[i, j], v as f32).unwrap();
        }
        t.dedup_sum();
        let r = pasta::core::Relabel::by_degree(&t);
        let back = r.inverse().apply(&r.apply(&t).unwrap()).unwrap();
        prop_assert_eq!(sorted(back), sorted(t));
    }

    /// Sorting preserves the multiset of entries and orders them.
    #[test]
    fn prop_sort_permutes(
        entries in proptest::collection::vec(
            ((0u32..50, 0u32..50, 0u32..50), -50i32..50),
            1..50
        ),
        mode in 0usize..3,
    ) {
        let mut t = CooTensor::<f32>::new(Shape::new(vec![50, 50, 50]));
        for ((i, j, k), v) in &entries {
            t.push(&[*i, *j, *k], *v as f32).unwrap();
        }
        let mut all_before: Vec<(Vec<u32>, f32)> = t.iter().collect();
        t.sort_mode_last(mode);
        let mut all_after: Vec<(Vec<u32>, f32)> = t.iter().collect();
        all_before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        all_after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(all_before, all_after);
    }
}
