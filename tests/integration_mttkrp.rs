//! MTTKRP scheduling-strategy integration tests.
//!
//! The atomic-free MTTKRP has three execution paths — the sequential
//! oracle, owner-computes, and privatized reduction — and this suite pins
//! down their agreement contract on random tensors of orders 3 and 4,
//! every product mode, and pool sizes {1, 2, 4}:
//!
//! - **owner-computes is bit-identical** to the sequential oracle run on
//!   the same (mode-outermost-sorted) entry order: each output row is
//!   accumulated by one thread in the same entry order the sequential loop
//!   would use, so not a single rounding step differs;
//! - **privatized reduction is ULP-bounded**: per-worker accumulators
//!   split the sum for an output row at worker-chunk boundaries and the
//!   tree merge re-associates the partials, so results can differ from
//!   sequential by floating-point association only. With `f64` values,
//!   worker counts ≤ 4 and the value magnitudes generated here, a relative
//!   tolerance of 1e-12 is far above the worst case while still
//!   catching any lost or doubled non-zero contribution.

use pasta::core::{CooTensor, Coord, DenseMatrix, Shape, SortState};
use pasta::kernels::{
    mttkrp_coo, mttkrp_coo_traced, Ctx, MttkrpCooPlan, MttkrpStrategy, StrategyChoice,
};
use pasta::par::Schedule;
use proptest::prelude::*;

fn tensor_from(shape: Vec<Coord>, coords: Vec<Vec<Coord>>) -> CooTensor<f64> {
    let mut t = CooTensor::<f64>::new(Shape::new(shape));
    for (pos, c) in coords.into_iter().enumerate() {
        t.push(&c, 1.0 + (pos % 17) as f64 * 0.25).unwrap();
    }
    t
}

fn factors_for(x: &CooTensor<f64>, r: usize) -> Vec<DenseMatrix<f64>> {
    (0..x.order())
        .map(|m| {
            DenseMatrix::from_fn(x.shape().dim(m) as usize, r, |i, j| {
                ((i + 1) as f64 * 0.13 + (j + m) as f64 * 0.71).sin()
            })
        })
        .collect()
}

/// Relative tolerance for privatized-reduction agreement (see module docs).
const PRIV_TOL: f64 = 1e-12;

fn assert_close(a: &DenseMatrix<f64>, b: &DenseMatrix<f64>, what: &str) {
    pasta_conformance::oracle::assert_close_mat(a, b, PRIV_TOL, what);
}

fn coords3() -> impl Strategy<Value = Vec<Vec<Coord>>> {
    proptest::collection::vec(
        (0u32..13, 0u32..21, 0u32..9).prop_map(|(i, j, k)| vec![i, j, k]),
        1..250,
    )
}

fn coords4() -> impl Strategy<Value = Vec<Vec<Coord>>> {
    proptest::collection::vec(
        (0u32..7, 0u32..11, 0u32..5, 0u32..9).prop_map(|(i, j, k, l)| vec![i, j, k, l]),
        1..250,
    )
}

const POOL_SIZES: [usize; 3] = [1, 2, 4];

/// Runs the three-strategy agreement check for every mode and pool size.
fn check_all_strategies(x: &CooTensor<f64>, shape_name: &str) {
    let fs = factors_for(x, 5);
    for n in 0..x.order() {
        let oracle = mttkrp_coo(x, &fs, n, &Ctx::sequential()).unwrap();

        // Owner-computes: sort a copy mode-n outermost; its sequential
        // oracle on the sorted order must be matched bit-for-bit.
        let mut xs = x.clone();
        xs.sort_by_mode_order(&pasta::core::sort::mode_first_order(x.order(), n));
        assert_eq!(xs.sort_state().outermost(), Some(n));
        let sorted_oracle = mttkrp_coo(&xs, &fs, n, &Ctx::sequential()).unwrap();
        assert_close(&sorted_oracle, &oracle, &format!("{shape_name} mode {n} sort invariance"));

        for threads in POOL_SIZES {
            let ctx = Ctx::new(threads, Schedule::Static);

            let (own, run) = mttkrp_coo_traced(&xs, &fs, n, &ctx).unwrap();
            if threads > 1 && xs.nnz() > 1 {
                assert_eq!(run.strategy, MttkrpStrategy::Owner, "{shape_name} mode {n}");
            }
            assert_eq!(
                own.as_slice(),
                sorted_oracle.as_slice(),
                "{shape_name} mode {n} t={threads}: owner-computes must be bit-identical"
            );

            let (priv_out, run) =
                mttkrp_coo_traced(x, &fs, n, &ctx.with_mttkrp(StrategyChoice::Privatized)).unwrap();
            if threads > 1 && x.nnz() > 1 {
                assert!(run.strategy.is_privatized(), "{shape_name} mode {n}: {:?}", run.strategy);
            }
            assert_close(&priv_out, &oracle, &format!("{shape_name} mode {n} t={threads} priv"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Order-3 tensors: owner bit-identical, privatized ULP-bounded, for
    /// every mode and pool size.
    #[test]
    fn prop_order3_strategies_agree(coords in coords3()) {
        check_all_strategies(&tensor_from(vec![13, 21, 9], coords), "order3");
    }

    /// Order-4 tensors: same contract.
    #[test]
    fn prop_order4_strategies_agree(coords in coords4()) {
        check_all_strategies(&tensor_from(vec![7, 11, 5, 9], coords), "order4");
    }

    /// The auto cost model never picks a strategy that changes results
    /// beyond tolerance, whatever the sort state.
    #[test]
    fn prop_auto_dispatch_is_safe(coords in coords3(), threads in prop::sample::select(vec![1usize, 2, 4])) {
        let x = tensor_from(vec![13, 21, 9], coords);
        let fs = factors_for(&x, 4);
        for n in 0..3 {
            let oracle = mttkrp_coo(&x, &fs, n, &Ctx::sequential()).unwrap();
            let auto = mttkrp_coo(&x, &fs, n, &Ctx::new(threads, Schedule::Static)).unwrap();
            assert_close(&auto, &oracle, "auto dispatch");
        }
    }
}

#[test]
fn plan_reports_consistent_trace() {
    let coords: Vec<Vec<Coord>> =
        (0..300u32).map(|i| vec![i % 13, (i * 7) % 21, (i * 3) % 9]).collect();
    let x = tensor_from(vec![13, 21, 9], coords);
    let fs = factors_for(&x, 5);
    for n in 0..3 {
        let plan = MttkrpCooPlan::new(&x, n, &Ctx::new(4, Schedule::Static)).unwrap();
        let (out, run) = plan.execute(&fs).unwrap();
        assert_eq!(run.resorted, plan.resorted());
        if plan.tensor().sort_state().outermost() == Some(n) {
            assert_eq!(run.strategy, MttkrpStrategy::Owner);
        }
        let oracle = mttkrp_coo(&x, &fs, n, &Ctx::sequential()).unwrap();
        assert_close(&out, &oracle, "plan");
    }
}

#[test]
fn sort_state_tracks_mutation() {
    let mut x = tensor_from(vec![4, 4, 4], vec![vec![3, 0, 1], vec![0, 2, 2], vec![1, 1, 0]]);
    assert_eq!(x.sort_state(), &SortState::Unsorted);
    x.sort_by_mode_order(&[2, 1, 0]);
    assert_eq!(x.sort_state().outermost(), Some(2));
    assert_eq!(x.sort_state().innermost(), Some(0));
    x.push(&[0, 0, 0], 1.0).unwrap();
    assert_eq!(x.sort_state(), &SortState::Unsorted, "mutation must invalidate the sort state");
}
