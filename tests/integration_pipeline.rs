//! End-to-end pipeline tests: dataset profiles → generation → statistics →
//! Roofline/performance model → the paper's qualitative observations.

use pasta::core::{BlockStats, HiCooTensor, TensorStats};
use pasta::gen::{find_profile, real_profiles, synthetic_profiles};
use pasta::kernels::Kernel;
use pasta::platform::{
    all_platforms, bluesky, dgx1v, model_run, wingtip, Format, Roofline, TensorFeatures,
};

fn features_for(key: &str, scale: f64, mode: usize) -> TensorFeatures {
    let p = find_profile(key).unwrap();
    let t = p.generate_scaled(scale).unwrap();
    let stats = TensorStats::compute(&t);
    let h = HiCooTensor::from_coo(&t, 128).unwrap();
    let blocks = BlockStats::compute(&h);
    TensorFeatures::from_stats(&stats, &blocks, mode, 16, t.storage_bytes() as f64)
}

#[test]
fn every_profile_generates_with_correct_shape() {
    for p in synthetic_profiles().iter().chain(real_profiles().iter()) {
        let t = p.generate_scaled(0.01).unwrap();
        assert_eq!(t.shape().dims(), &p.dims[..], "{}", p.id);
        assert!(t.nnz() > 0, "{}", p.id);
        // Indices in range is enforced by construction; spot-check stats.
        let stats = TensorStats::compute(&t);
        assert_eq!(stats.order, p.order());
        assert!(stats.density > 0.0);
    }
}

#[test]
fn rooflines_bound_the_model() {
    // The modeled GFLOPS never exceeds the LLC roof (the hardest bound the
    // model can grant), and the DRAM roofline matches OI x bandwidth.
    let f = features_for("irrS", 0.05, 0);
    for spec in all_platforms() {
        let roof = Roofline::for_platform(&spec);
        for k in Kernel::ALL {
            for fmt in [Format::Coo, Format::Hicoo] {
                let run = model_run(&spec, k, fmt, &f, 16);
                let llc_bound =
                    roof.attainable_llc(run.roofline_gflops * 1e9 / roof.ert_dram_bw) / 1e9;
                // Sub-unity calibrated slowdowns (e.g. V100's independent
                // int/fp datapaths on MTTKRP, per the paper's Observation 2)
                // may push slightly past the cache roof.
                assert!(
                    run.gflops <= llc_bound * 1.15,
                    "{k} {fmt} on {}: {} > {}",
                    spec.name,
                    run.gflops,
                    llc_bound
                );
            }
        }
    }
}

#[test]
fn observation2_small_exceeds_large_does_not() {
    // The small synthetic tensor (cache-resident at 5% scale) must achieve
    // higher TS efficiency than the large one on Bluesky.
    let small = features_for("regS", 0.02, 0);
    let large = features_for("regL", 1.0, 0);
    let spec = bluesky();
    let rs = model_run(&spec, Kernel::Ts, Format::Coo, &small, 16);
    let rl = model_run(&spec, Kernel::Ts, Format::Coo, &large, 16);
    assert!(rs.efficiency > rl.efficiency, "{} vs {}", rs.efficiency, rl.efficiency);
    assert!(rs.efficiency > 1.0, "small tensors break the DRAM roofline: {}", rs.efficiency);
}

#[test]
fn observation3_numa_ordering() {
    let f = features_for("irrM", 0.2, 0);
    for k in [Kernel::Ttv, Kernel::Mttkrp] {
        let b = model_run(&bluesky(), k, Format::Coo, &f, 16);
        let w = model_run(&wingtip(), k, Format::Coo, &f, 16);
        // Wingtip's extra sockets never meaningfully help the non-streaming
        // kernels' efficiency (TTV strictly worse; MTTKRP roughly flat — the
        // paper reports 6% vs 9%, a <2x difference).
        assert!(w.efficiency <= b.efficiency * 2.0, "{k}: {} vs {}", w.efficiency, b.efficiency);
    }
    let ttv_b = model_run(&bluesky(), Kernel::Ttv, Format::Coo, &f, 16);
    let ttv_w = model_run(&wingtip(), Kernel::Ttv, Format::Coo, &f, 16);
    assert!(ttv_w.efficiency < ttv_b.efficiency);
}

#[test]
fn observation4_format_ordering() {
    let f = features_for("irrM", 0.2, 0);
    // CPU: HiCOO wins TTV.
    let coo = model_run(&bluesky(), Kernel::Ttv, Format::Coo, &f, 16);
    let hic = model_run(&bluesky(), Kernel::Ttv, Format::Hicoo, &f, 16);
    assert!(hic.gflops > coo.gflops);
    // GPU: HiCOO-MTTKRP loses.
    let coo = model_run(&dgx1v(), Kernel::Mttkrp, Format::Coo, &f, 16);
    let hic = model_run(&dgx1v(), Kernel::Mttkrp, Format::Hicoo, &f, 16);
    assert!(hic.gflops < coo.gflops);
}

#[test]
fn table1_ois_match_paper_in_the_limit() {
    // With M_F << M and R = 16 the computed OIs approach the paper's
    // nominal column.
    let p = pasta::kernels::CostParams { m: 1e8, mf: 1e5, r: 16.0, nb: 1e6, block_size: 128.0 };
    for k in Kernel::ALL {
        let c = pasta::kernels::kernel_cost(k, &p);
        let nominal = k.nominal_oi();
        assert!(
            (c.coo_oi() - nominal).abs() / nominal < 0.35,
            "{k}: computed {} vs nominal {nominal}",
            c.coo_oi()
        );
    }
}

#[test]
fn synthetic_dataset_covers_both_generators_and_orders() {
    let profiles = synthetic_profiles();
    let kron =
        profiles.iter().filter(|p| matches!(p.method, pasta::gen::Method::Kronecker)).count();
    let pl = profiles.len() - kron;
    assert_eq!(kron, 6); // regS/M/L and regS4d/M4d/L4d
    assert_eq!(pl, 9);
    assert_eq!(profiles.iter().filter(|p| p.order() == 3).count(), 6);
    assert_eq!(profiles.iter().filter(|p| p.order() == 4).count(), 9);
}
