//! Cross-crate integration tests: the simulated GPU kernels produce exactly
//! the CPU kernels' results on generated tensors, and the timing model
//! reproduces the paper's GPU-side behavior.

use pasta::core::{seeded_matrix, seeded_vector, DenseMatrix, HiCooTensor};
use pasta::gen::{KroneckerGen, PowerLawGen};
use pasta::kernels::{mttkrp_coo, ts_coo, ttm_coo, ttv_coo, Ctx, EwOp, TsOp};
use pasta::simt::{launch, p100, v100, Bound};
use pasta_conformance::oracle::assert_close;

#[test]
fn gpu_results_match_cpu_on_generated_tensor() {
    let x = PowerLawGen::new(1.5).generate3(500, 16, 3_000, 42).unwrap();
    let ctx = Ctx::sequential();
    let dev = p100();

    // TEW
    let y = ts_coo(TsOp::Mul, &x, 2.0, &ctx).unwrap();
    let cpu = pasta::kernels::tew_coo_same_pattern(EwOp::Add, &x, &y, &ctx).unwrap();
    let mut k = pasta::simt::GpuTewCoo::new(&x, &y, EwOp::Add).unwrap();
    launch(&dev, &mut k);
    assert_eq!(k.output(), cpu.vals());

    // TS
    let cpu = ts_coo(TsOp::Mul, &x, 1.5, &ctx).unwrap();
    let mut k = pasta::simt::GpuTsCoo::new(&x, TsOp::Mul, 1.5).unwrap();
    launch(&dev, &mut k);
    assert_eq!(k.output(), cpu.vals());

    // TTV in every mode
    for n in 0..3 {
        let v = seeded_vector::<f32>(x.shape().dim(n) as usize, 3);
        let cpu = ttv_coo(&x, &v, n, &ctx).unwrap();
        let mut k = pasta::simt::GpuTtvCoo::new(&x, &v, n).unwrap();
        launch(&dev, &mut k);
        assert_close(k.output(), cpu.vals(), 1e-4);
    }

    // TTM
    let u = seeded_matrix::<f32>(x.shape().dim(1) as usize, 16, 5);
    let cpu = ttm_coo(&x, &u, 1, &ctx).unwrap();
    let mut k = pasta::simt::GpuTtmCoo::new(&x, &u, 1).unwrap();
    launch(&dev, &mut k);
    assert_close(k.output(), cpu.vals(), 1e-4);

    // MTTKRP, COO and HiCOO
    let factors: Vec<DenseMatrix<f32>> =
        (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, 16, 11 + m as u64)).collect();
    let cpu = mttkrp_coo(&x, &factors, 0, &ctx).unwrap();
    let mut kc = pasta::simt::GpuMttkrpCoo::new(&x, &factors, 0).unwrap();
    launch(&dev, &mut kc);
    assert_close(kc.output().as_slice(), cpu.as_slice(), 1e-3);
    let h = HiCooTensor::from_coo(&x, 64).unwrap();
    let mut kh = pasta::simt::GpuMttkrpHicoo::new(&h, &factors, 0).unwrap();
    launch(&dev, &mut kh);
    assert_close(kh.output().as_slice(), cpu.as_slice(), 1e-3);
}

#[test]
fn v100_outperforms_p100_across_kernels() {
    // Observation from Table III: V100 wins on bandwidth, compute, and
    // atomics, so every kernel should be at least as fast.
    let x = KroneckerGen::new(3).generate(&[2048, 2048, 2048], 20_000, 9).unwrap();
    let factors: Vec<DenseMatrix<f32>> =
        (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, 16, m as u64)).collect();

    let mut kp = pasta::simt::GpuMttkrpCoo::new(&x, &factors, 0).unwrap();
    let tp = launch(&p100(), &mut kp).time;
    let mut kv = pasta::simt::GpuMttkrpCoo::new(&x, &factors, 0).unwrap();
    let tv = launch(&v100(), &mut kv).time;
    assert!(tv <= tp, "V100 {tv} vs P100 {tp}");

    let mut sp = pasta::simt::GpuTsCoo::new(&x, TsOp::Mul, 2.0).unwrap();
    let tsp = launch(&p100(), &mut sp).time;
    let mut sv = pasta::simt::GpuTsCoo::new(&x, TsOp::Mul, 2.0).unwrap();
    let tsv = launch(&v100(), &mut sv).time;
    assert!(tsv <= tsp * 1.02, "V100 {tsv} vs P100 {tsp}");
}

#[test]
fn atomic_contention_grows_with_short_output_mode() {
    // MTTKRP into a 4-row output hammers few addresses; into a uniform
    // 4096-row output it spreads. The contention tracking must reflect that.
    let wide = PowerLawGen::new(1.2)
        .generate(
            &[4_096, 4_096, 64],
            &[
                pasta::gen::ModeDist::Uniform,
                pasta::gen::ModeDist::PowerLaw,
                pasta::gen::ModeDist::Uniform,
            ],
            8_000,
            3,
        )
        .unwrap();
    let factors_w: Vec<DenseMatrix<f32>> =
        (0..3).map(|m| seeded_matrix(wide.shape().dim(m) as usize, 16, m as u64)).collect();
    let mut kw = pasta::simt::GpuMttkrpCoo::new(&wide, &factors_w, 0).unwrap();
    let sw = launch(&p100(), &mut kw);

    let narrow = pasta::gen::PowerLawGen::new(1.2)
        .generate(
            &[4, 4096, 64],
            &[
                pasta::gen::ModeDist::Uniform,
                pasta::gen::ModeDist::PowerLaw,
                pasta::gen::ModeDist::Uniform,
            ],
            8_000,
            3,
        )
        .unwrap();
    let factors_n: Vec<DenseMatrix<f32>> =
        (0..3).map(|m| seeded_matrix(narrow.shape().dim(m) as usize, 16, m as u64)).collect();
    let mut kn = pasta::simt::GpuMttkrpCoo::new(&narrow, &factors_n, 0).unwrap();
    let sn = launch(&p100(), &mut kn);

    assert!(
        sn.max_line_conflicts > 10 * sw.max_line_conflicts,
        "narrow {} vs wide {}",
        sn.max_line_conflicts,
        sw.max_line_conflicts
    );
}

#[test]
fn streaming_kernels_are_bandwidth_bound() {
    let x = KroneckerGen::new(3).generate(&[4096, 4096, 4096], 100_000, 11).unwrap();
    let mut k = pasta::simt::GpuTsCoo::new(&x, TsOp::Mul, 2.0).unwrap();
    let stats = launch(&v100(), &mut k);
    assert!(matches!(stats.bound, Bound::Dram | Bound::Makespan));
    assert!(stats.bw_efficiency(&v100()) > 0.4, "{}", stats.bw_efficiency(&v100()));
    // TS moves ~8 bytes per flop: GFLOPS should be far below peak.
    assert!(stats.gflops() < 200.0);
}
