//! Simulated GPU device descriptions.
//!
//! Models the two evaluation GPUs of the paper (Table III): the Tesla P100
//! (DGX-1P, Pascal) and Tesla V100 (DGX-1V, Volta). Parameters beyond
//! Table III (sector size, atomic throughput, block concurrency) use the
//! publicly documented microarchitectural values; Volta's improved atomic
//! datapath — one of the paper's explanations for V100's above-Roofline
//! MTTKRP (Observation 2) — is captured by a lower atomic latency.

/// A simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Device name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak single-precision FLOPS.
    pub peak_flops: f64,
    /// Global (HBM) memory bandwidth, bytes/s (theoretical).
    pub hbm_bw: f64,
    /// Fraction of the HBM bandwidth obtainable by irregular kernels.
    pub obtainable_fraction: f64,
    /// L2 (last-level) cache size in bytes.
    pub l2_bytes: usize,
    /// DRAM sector (transaction) size in bytes.
    pub sector_bytes: u32,
    /// Warp width.
    pub warp_size: u32,
    /// Thread blocks an SM can run concurrently.
    pub blocks_per_sm: u32,
    /// Serialized latency of one conflicting atomic update, seconds.
    pub atomic_latency: f64,
}

impl DeviceSpec {
    /// Obtainable HBM bandwidth, bytes/s.
    pub fn obtainable_bw(&self) -> f64 {
        self.hbm_bw * self.obtainable_fraction
    }

    /// Per-SM share of the obtainable bandwidth when all SMs are busy.
    pub fn bw_per_sm(&self) -> f64 {
        self.obtainable_bw() / self.sms as f64
    }

    /// Per-SM share of peak flops.
    pub fn flops_per_sm(&self) -> f64 {
        self.peak_flops / self.sms as f64
    }
}

/// NVIDIA Tesla P100 (the paper's DGX-1P platform).
pub fn p100() -> DeviceSpec {
    DeviceSpec {
        name: "P100",
        sms: 56,
        clock_ghz: 1.48,
        peak_flops: 10.6e12,
        hbm_bw: 732e9,
        obtainable_fraction: 0.72,
        l2_bytes: 3 << 20,
        sector_bytes: 32,
        warp_size: 32,
        blocks_per_sm: 8,
        atomic_latency: 12e-9,
    }
}

/// NVIDIA Tesla V100 (the paper's DGX-1V platform): larger L2 and an
/// improved atomic datapath relative to Pascal.
pub fn v100() -> DeviceSpec {
    DeviceSpec {
        name: "V100",
        sms: 80,
        clock_ghz: 1.53,
        peak_flops: 14.9e12,
        hbm_bw: 900e9,
        obtainable_fraction: 0.78,
        l2_bytes: 6 << 20,
        sector_bytes: 32,
        warp_size: 32,
        blocks_per_sm: 8,
        atomic_latency: 3e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_improves_on_p100() {
        let (p, v) = (p100(), v100());
        assert!(v.peak_flops > p.peak_flops);
        assert!(v.hbm_bw > p.hbm_bw);
        assert!(v.l2_bytes == 2 * p.l2_bytes);
        assert!(v.atomic_latency < p.atomic_latency, "Volta's improved atomics");
        assert!(v.sms > p.sms);
    }

    #[test]
    fn derived_shares() {
        let p = p100();
        assert!(p.obtainable_bw() < p.hbm_bw);
        assert!((p.bw_per_sm() * p.sms as f64 - p.obtainable_bw()).abs() < 1.0);
        assert!((p.flops_per_sm() * p.sms as f64 - p.peak_flops).abs() < 1.0);
    }
}
