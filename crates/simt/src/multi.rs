//! Multi-GPU execution modeling — the paper's "multiple GPUs" future-work
//! platform (the DGX-1 boxes the paper uses carry 8 GPUs on an NVLink
//! mesh; the paper exercises one).
//!
//! The model is bulk-synchronous: the caller partitions a kernel's work
//! into one [`GpuKernel`] per device (e.g. [`pasta_core::CooTensor::split_nnz`]
//! for non-zero-parallel kernels), each device simulates its shard, and a
//! ring all-reduce of the shared output (MTTKRP's factor rows) closes the
//! step.

use crate::device::DeviceSpec;
use crate::sim::{launch, GpuKernel, LaunchStats};

/// An inter-GPU link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Per-direction link bandwidth in bytes/s.
    pub bw: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl Interconnect {
    /// DGX-1-style NVLink (~25 GB/s per direction).
    pub fn nvlink() -> Self {
        Self { bw: 25e9, latency: 10e-6 }
    }

    /// PCIe 3.0 x16 (~12 GB/s).
    pub fn pcie3() -> Self {
        Self { bw: 12e9, latency: 20e-6 }
    }

    /// Ring all-reduce time for `bytes` over `devices` participants:
    /// `2 (G−1)/G · bytes / bw` plus per-step latencies.
    pub fn allreduce_time(&self, bytes: f64, devices: usize) -> f64 {
        if devices <= 1 {
            return 0.0;
        }
        let g = devices as f64;
        2.0 * (g - 1.0) / g * bytes / self.bw + 2.0 * (g - 1.0) * self.latency
    }
}

/// Results of a multi-device launch.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLaunchStats {
    /// Per-device simulation results.
    pub per_device: Vec<LaunchStats>,
    /// Slowest device's kernel time (the compute phase).
    pub compute_time: f64,
    /// All-reduce time.
    pub comm_time: f64,
    /// Total step time.
    pub time: f64,
}

impl MultiLaunchStats {
    /// Total flops across devices.
    pub fn flops(&self) -> u64 {
        self.per_device.iter().map(|s| s.flops).sum()
    }

    /// Aggregate GFLOPS of the whole step.
    pub fn gflops(&self) -> f64 {
        self.flops() as f64 / self.time / 1e9
    }

    /// Speedup over a single-device time.
    pub fn speedup_over(&self, single_time: f64) -> f64 {
        single_time / self.time
    }
}

/// Simulates one bulk-synchronous step: each kernel on its device, then a
/// ring all-reduce of `reduce_bytes` (pass 0 for kernels with disjoint
/// outputs like TEW/TS/TTV shards).
///
/// # Panics
///
/// Panics if `kernels.len() != devices.len()` or both are empty.
pub fn launch_multi<K: GpuKernel>(
    devices: &[DeviceSpec],
    kernels: &mut [K],
    link: &Interconnect,
    reduce_bytes: u64,
) -> MultiLaunchStats {
    assert_eq!(devices.len(), kernels.len(), "one kernel per device");
    assert!(!devices.is_empty(), "at least one device");
    let per_device: Vec<LaunchStats> =
        devices.iter().zip(kernels.iter_mut()).map(|(d, k)| launch(d, k)).collect();
    let compute_time = per_device.iter().map(|s| s.time).fold(0.0, f64::max);
    let comm_time = link.allreduce_time(reduce_bytes as f64, devices.len());
    MultiLaunchStats { compute_time, comm_time, time: compute_time + comm_time, per_device }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::v100;
    use crate::kernels::GpuMttkrpCoo;
    use pasta_core::{seeded_matrix, CooTensor, DenseMatrix, Shape, Value};

    fn big_tensor() -> CooTensor<f32> {
        let entries: Vec<(Vec<u32>, f32)> = (0..60_000u32)
            .map(|i| (vec![i % 1024, (i / 7) % 1024, (i * 13) % 1024], 1.0 + (i % 5) as f32))
            .collect();
        let mut t = CooTensor::from_entries(Shape::new(vec![1024, 1024, 1024]), entries).unwrap();
        t.dedup_sum();
        t
    }

    #[test]
    fn allreduce_math() {
        let link = Interconnect::nvlink();
        assert_eq!(link.allreduce_time(1e9, 1), 0.0);
        // 4 GPUs, 1 GB: 2*(3/4)*1e9/25e9 = 60 ms plus latencies.
        let t = link.allreduce_time(1e9, 4);
        assert!((t - 0.06).abs() < 1e-3, "{t}");
        assert!(Interconnect::pcie3().allreduce_time(1e9, 4) > t);
    }

    #[test]
    fn sharded_mttkrp_matches_single_device() {
        let x = big_tensor();
        let factors: Vec<DenseMatrix<f32>> =
            (0..3).map(|m| seeded_matrix(1024, 8, m as u64)).collect();

        // Single device.
        let mut single = GpuMttkrpCoo::new(&x, &factors, 0).unwrap();
        let s1 = launch(&v100(), &mut single);

        // Four shards on four V100s.
        let shards = x.split_nnz(4);
        let mut kernels: Vec<GpuMttkrpCoo> =
            shards.iter().map(|s| GpuMttkrpCoo::new(s, &factors, 0).unwrap()).collect();
        let devices = vec![v100(); 4];
        let reduce_bytes = 1024 * 8 * 4; // output matrix
        let multi = launch_multi(&devices, &mut kernels, &Interconnect::nvlink(), reduce_bytes);

        // Functional: the sum of shard outputs equals the single output.
        let mut acc = vec![0.0f32; 1024 * 8];
        for k in &kernels {
            for (a, &v) in acc.iter_mut().zip(k.output().as_slice()) {
                *a += v;
            }
        }
        for (a, &b) in acc.iter().zip(single.output().as_slice()) {
            assert!(a.approx_eq(b, 1e-3), "{a} vs {b}");
        }

        // Performance: the compute phase scales (each device holds 1/4 of
        // the non-zeros); whether the *step* wins depends on the all-reduce
        // latency floor, which dominates at this small problem size — a
        // faithful multi-GPU tradeoff.
        assert!(multi.compute_time < 0.6 * s1.time, "{} vs {}", multi.compute_time, s1.time);
        assert!((multi.time - multi.compute_time - multi.comm_time).abs() < 1e-12);
        assert_eq!(multi.flops(), s1.flops);
        assert!(multi.gflops() > 0.0);
    }

    #[test]
    fn communication_eventually_dominates() {
        // With a huge reduction payload, more devices stop helping.
        let x = big_tensor();
        let factors: Vec<DenseMatrix<f32>> =
            (0..3).map(|m| seeded_matrix(1024, 8, m as u64)).collect();
        let link = Interconnect::pcie3();
        let huge_reduce = 4u64 << 30; // 4 GiB

        let shards2 = x.split_nnz(2);
        let mut k2: Vec<GpuMttkrpCoo> =
            shards2.iter().map(|s| GpuMttkrpCoo::new(s, &factors, 0).unwrap()).collect();
        let m2 = launch_multi(&vec![v100(); 2], &mut k2, &link, huge_reduce);

        let shards8 = x.split_nnz(8);
        let mut k8: Vec<GpuMttkrpCoo> =
            shards8.iter().map(|s| GpuMttkrpCoo::new(s, &factors, 0).unwrap()).collect();
        let m8 = launch_multi(&vec![v100(); 8], &mut k8, &link, huge_reduce);

        assert!(m8.comm_time > m2.comm_time);
        assert!(m8.time > m2.compute_time, "comm-bound: more GPUs cannot go below comm floor");
    }

    #[test]
    #[should_panic(expected = "one kernel per device")]
    fn mismatched_lengths_panic() {
        let x = big_tensor();
        let factors: Vec<DenseMatrix<f32>> =
            (0..3).map(|m| seeded_matrix(1024, 4, m as u64)).collect();
        let mut ks = vec![GpuMttkrpCoo::new(&x, &factors, 0).unwrap()];
        let _ = launch_multi(&vec![v100(); 2], &mut ks, &Interconnect::nvlink(), 0);
    }
}
