//! Memory-access tracing for simulated GPU threads.
//!
//! Simulated kernels perform their *functional* work directly on host
//! buffers; for the *performance* model they additionally record every
//! global-memory access through an [`Accessor`]. Accesses are tagged with a
//! static *site* (the source location: "value array load", "vector gather",
//! …) and an automatic per-site sequence number (the loop iteration), so the
//! executor can replay SIMT semantics: the 32 threads of a warp issue their
//! `(site, seq)` accesses together, and the warp's addresses coalesce into
//! memory sectors.

/// A byte-address allocator that lays out simulated device buffers far
/// apart, so distinct arrays never share cache lines.
#[derive(Debug, Clone, Default)]
pub struct AddrSpace {
    next: u64,
}

impl AddrSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self { next: 1 << 20 }
    }

    /// Allocates `bytes`, returning the base address (4 KiB aligned, with a
    /// guard gap).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let sz = (bytes + 4095) & !4095;
        self.next = base + sz + (1 << 16);
        base
    }
}

/// The kind of a recorded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Global load.
    Read,
    /// Global store.
    Write,
    /// Read-modify-write atomic (e.g. `atomicAdd`).
    Atomic,
}

/// One recorded access of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Source site id (kernel-author chosen, small).
    pub site: u16,
    /// Per-site issue sequence number (loop iteration).
    pub seq: u32,
    /// Byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u32,
    /// Load / store / atomic.
    pub kind: AccessKind,
}

/// The trace of one simulated thread: its accesses and flop count.
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    pub(crate) accesses: Vec<Access>,
    pub(crate) flops: u64,
    site_seq: Vec<u32>,
}

impl ThreadTrace {
    /// Clears the trace for reuse by the next thread.
    pub fn reset(&mut self) {
        self.accesses.clear();
        self.flops = 0;
        self.site_seq.clear();
    }

    /// The recorded flop count.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// The recorded accesses.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }
}

/// The recording handle passed to each simulated thread.
#[derive(Debug)]
pub struct Accessor<'a> {
    trace: &'a mut ThreadTrace,
}

impl<'a> Accessor<'a> {
    /// Wraps a trace.
    pub fn new(trace: &'a mut ThreadTrace) -> Self {
        Self { trace }
    }

    #[inline]
    fn next_seq(&mut self, site: u16) -> u32 {
        let s = site as usize;
        if self.trace.site_seq.len() <= s {
            self.trace.site_seq.resize(s + 1, 0);
        }
        let seq = self.trace.site_seq[s];
        self.trace.site_seq[s] = seq + 1;
        seq
    }

    /// Records a global load of `bytes` at `addr` from source site `site`.
    #[inline]
    pub fn read(&mut self, site: u16, addr: u64, bytes: u32) {
        let seq = self.next_seq(site);
        self.trace.accesses.push(Access { site, seq, addr, bytes, kind: AccessKind::Read });
    }

    /// Records a global store.
    #[inline]
    pub fn write(&mut self, site: u16, addr: u64, bytes: u32) {
        let seq = self.next_seq(site);
        self.trace.accesses.push(Access { site, seq, addr, bytes, kind: AccessKind::Write });
    }

    /// Records a 4-byte atomic read-modify-write.
    #[inline]
    pub fn atomic(&mut self, site: u16, addr: u64) {
        let seq = self.next_seq(site);
        self.trace.accesses.push(Access { site, seq, addr, bytes: 4, kind: AccessKind::Atomic });
    }

    /// Records `n` floating-point operations.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.trace.flops += n;
    }
}

/// Per-warp coalescing summary produced by [`coalesce_warp`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpSummary {
    /// Distinct memory sectors touched by loads/stores, as sector-aligned
    /// byte addresses (feed these to the L2 model).
    pub sectors: Vec<u64>,
    /// Number of load/store transactions (== `sectors.len()`).
    pub transactions: u64,
    /// Atomic operations issued.
    pub atomics: u64,
    /// Exact atomic addresses (one entry per operation, for contention
    /// tracking across the whole launch).
    pub atomic_addrs: Vec<u64>,
    /// Worst intra-warp atomic serialization: the maximum number of lanes
    /// hitting one address in one issue group.
    pub max_atomic_conflict: u64,
}

/// Coalesces the traces of one warp (up to 32 threads).
///
/// Accesses are grouped by `(site, seq, kind)` — the SIMT issue group — and
/// each group's addresses collapse into distinct `sector_bytes`-sized
/// sectors, mirroring how real GPU load/store units count transactions.
/// Atomic conflicts are tracked at exact-address granularity (hardware
/// serializes same-address atomics, not same-sector ones).
/// `scratch` is reused across calls to avoid reallocation.
pub fn coalesce_warp(
    warp: &[ThreadTrace],
    sector_bytes: u32,
    scratch: &mut Vec<(u16, u32, AccessKind, u64, u64)>,
) -> WarpSummary {
    scratch.clear();
    for t in warp {
        for a in &t.accesses {
            // Wide accesses may straddle sectors; expand to sector touches.
            let first = a.addr / sector_bytes as u64;
            let last = (a.addr + a.bytes.max(1) as u64 - 1) / sector_bytes as u64;
            for s in first..=last {
                scratch.push((a.site, a.seq, a.kind, s, a.addr));
            }
        }
    }
    scratch.sort_unstable();

    let mut out = WarpSummary::default();
    let mut i = 0;
    while i < scratch.len() {
        let (site, seq, kind, _, _) = scratch[i];
        let mut j = i;
        while j < scratch.len()
            && scratch[j].0 == site
            && scratch[j].1 == seq
            && scratch[j].2 == kind
        {
            j += 1;
        }
        let group = &scratch[i..j];
        // Distinct sectors in the group = transactions (all kinds traverse
        // the memory hierarchy once per sector).
        let mut prev = u64::MAX;
        for &(_, _, _, sector, _) in group {
            if sector != prev {
                out.sectors.push(sector * sector_bytes as u64);
                out.transactions += 1;
                prev = sector;
            }
        }
        if kind == AccessKind::Atomic {
            out.atomics += group.len() as u64;
            // Same-address runs serialize (group is sorted, and equal
            // sectors sort adjacent with equal addresses adjacent within).
            let mut run = 1u64;
            let mut max_run = 1u64;
            let mut prev_addr = group[0].4;
            out.atomic_addrs.push(prev_addr);
            for &(_, _, _, _, addr) in &group[1..] {
                out.atomic_addrs.push(addr);
                if addr == prev_addr {
                    run += 1;
                    max_run = max_run.max(run);
                } else {
                    run = 1;
                    prev_addr = addr;
                }
            }
            out.max_atomic_conflict = out.max_atomic_conflict.max(max_run);
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(accesses: Vec<Access>) -> ThreadTrace {
        ThreadTrace { accesses, flops: 0, site_seq: Vec::new() }
    }

    #[test]
    fn addr_space_separates_allocations() {
        let mut a = AddrSpace::new();
        let x = a.alloc(100);
        let y = a.alloc(100);
        assert!(y >= x + 4096, "guard gap");
    }

    #[test]
    fn accessor_sequences_per_site() {
        let mut t = ThreadTrace::default();
        let mut acc = Accessor::new(&mut t);
        acc.read(0, 0, 4);
        acc.read(0, 4, 4);
        acc.read(1, 100, 4);
        acc.flops(2);
        assert_eq!(t.accesses[0].seq, 0);
        assert_eq!(t.accesses[1].seq, 1);
        assert_eq!(t.accesses[2].seq, 0, "independent per-site counter");
        assert_eq!(t.flops(), 2);
        t.reset();
        assert!(t.accesses().is_empty());
    }

    #[test]
    fn contiguous_warp_coalesces_to_few_transactions() {
        // 32 threads each read 4 bytes, consecutive: 128 bytes = 4 sectors of 32B.
        let warp: Vec<ThreadTrace> = (0..32)
            .map(|lane| {
                trace_with(vec![Access {
                    site: 0,
                    seq: 0,
                    addr: lane * 4,
                    bytes: 4,
                    kind: AccessKind::Read,
                }])
            })
            .collect();
        let mut scratch = Vec::new();
        let s = coalesce_warp(&warp, 32, &mut scratch);
        assert_eq!(s.transactions, 4);
        assert_eq!(s.sectors.len(), 4);
        assert_eq!(s.atomics, 0);
    }

    #[test]
    fn scattered_warp_needs_one_transaction_per_lane() {
        let warp: Vec<ThreadTrace> = (0..32)
            .map(|lane| {
                trace_with(vec![Access {
                    site: 0,
                    seq: 0,
                    addr: lane * 4096,
                    bytes: 4,
                    kind: AccessKind::Read,
                }])
            })
            .collect();
        let mut scratch = Vec::new();
        let s = coalesce_warp(&warp, 32, &mut scratch);
        assert_eq!(s.transactions, 32);
    }

    #[test]
    fn different_iterations_do_not_coalesce() {
        // One thread reading 2 consecutive words in a loop: 2 groups, but
        // both land in the same sector -> 2 transactions (one per issue).
        let warp = vec![trace_with(vec![
            Access { site: 0, seq: 0, addr: 0, bytes: 4, kind: AccessKind::Read },
            Access { site: 0, seq: 1, addr: 4, bytes: 4, kind: AccessKind::Read },
        ])];
        let mut scratch = Vec::new();
        let s = coalesce_warp(&warp, 32, &mut scratch);
        assert_eq!(s.transactions, 2);
    }

    #[test]
    fn atomic_conflicts_detected() {
        // 32 lanes atomically updating the same address: worst case 32-way
        // serialization, one memory sector.
        let warp: Vec<ThreadTrace> = (0..32)
            .map(|_| {
                trace_with(vec![Access {
                    site: 3,
                    seq: 0,
                    addr: 64,
                    bytes: 4,
                    kind: AccessKind::Atomic,
                }])
            })
            .collect();
        let mut scratch = Vec::new();
        let s = coalesce_warp(&warp, 32, &mut scratch);
        assert_eq!(s.atomics, 32);
        assert_eq!(s.max_atomic_conflict, 32);
        assert_eq!(s.transactions, 1);
        assert_eq!(s.atomic_addrs.len(), 32);
    }

    #[test]
    fn conflict_free_atomics() {
        let warp: Vec<ThreadTrace> = (0..8)
            .map(|lane| {
                trace_with(vec![Access {
                    site: 3,
                    seq: 0,
                    addr: lane * 128,
                    bytes: 4,
                    kind: AccessKind::Atomic,
                }])
            })
            .collect();
        let mut scratch = Vec::new();
        let s = coalesce_warp(&warp, 32, &mut scratch);
        assert_eq!(s.max_atomic_conflict, 1);
        assert_eq!(s.atomics, 8);
    }

    #[test]
    fn wide_access_touches_multiple_sectors() {
        let warp = vec![trace_with(vec![Access {
            site: 0,
            seq: 0,
            addr: 16,
            bytes: 64,
            kind: AccessKind::Read,
        }])];
        let mut scratch = Vec::new();
        let s = coalesce_warp(&warp, 32, &mut scratch);
        assert_eq!(s.transactions, 3); // bytes 16..80 span sectors 0,1,2
    }
}
