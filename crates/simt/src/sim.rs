//! The SIMT execution engine: functional execution plus timing model.
//!
//! [`launch`] runs a [`GpuKernel`] block by block: every thread executes
//! functionally (real data, real results) while recording its global-memory
//! accesses; warps coalesce those accesses into sectors; sectors filter
//! through a shared L2 model; and per-block costs are scheduled round-robin
//! onto SMs. The reported kernel time is the maximum of
//!
//! 1. the SM **makespan** (captures block-level load imbalance — the reason
//!    HiCOO-MTTKRP-GPU loses to COO-MTTKRP-GPU in the paper),
//! 2. the **DRAM bound** (post-L2 bytes over obtainable bandwidth — the
//!    Roofline term),
//! 3. the **compute bound** (flops over peak), and
//! 4. the **atomic bound** (the hottest output line's serialized updates —
//!    MTTKRP's data race cost).

use crate::device::DeviceSpec;
use crate::trace::{coalesce_warp, Accessor, ThreadTrace};
use pasta_memsim::{Cache, CacheConfig};
use pasta_obs::{counters, span_detail, CounterId};
use std::collections::HashMap;

/// A kernel runnable on the simulator.
///
/// Threads are addressed by `(block, thread)` with linearized indices;
/// kernels with 2-D blocks (TTM, MTTKRP) de-linearize internally, exactly as
/// CUDA code maps `threadIdx`.
pub trait GpuKernel {
    /// Number of thread blocks.
    fn grid_dim(&self) -> usize;
    /// Threads per block.
    fn block_dim(&self) -> usize;
    /// Executes one thread: perform the real computation on host buffers
    /// and record every global access on `acc`.
    fn thread(&mut self, block: usize, thread: usize, acc: &mut Accessor<'_>);
}

/// Aggregate results of a simulated launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchStats {
    /// Modeled kernel time in seconds.
    pub time: f64,
    /// Total floating-point operations executed.
    pub flops: u64,
    /// Post-L2 DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Total L2 sector requests (load/store/atomic transactions).
    pub transactions: u64,
    /// L2 hit ratio over sector requests.
    pub l2_hit_ratio: f64,
    /// Total atomic operations.
    pub atomics: u64,
    /// Serialized updates on the hottest atomic address.
    pub max_line_conflicts: u64,
    /// Per-SM busy times (length = device SMs).
    pub sm_times: Vec<f64>,
    /// Blocks launched.
    pub blocks: usize,
    /// Which bound determined the time.
    pub bound: Bound,
}

/// The binding constraint of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// SM makespan (load imbalance).
    Makespan,
    /// DRAM bandwidth.
    Dram,
    /// Peak compute.
    Compute,
    /// Atomic serialization.
    Atomic,
}

impl LaunchStats {
    /// Achieved GFLOPS.
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / self.time / 1e9
    }

    /// Achieved fraction of the device's obtainable bandwidth.
    pub fn bw_efficiency(&self, device: &DeviceSpec) -> f64 {
        (self.dram_bytes as f64 / self.time) / device.obtainable_bw()
    }
}

/// Runs `kernel` on `device` and returns functional side effects (in the
/// kernel's own buffers) plus timing statistics.
///
/// # Panics
///
/// Panics if the kernel declares a zero block size with a non-zero grid.
pub fn launch<K: GpuKernel>(device: &DeviceSpec, kernel: &mut K) -> LaunchStats {
    let grid = kernel.grid_dim();
    let block_dim = kernel.block_dim();
    assert!(grid == 0 || block_dim > 0, "empty blocks");
    counters().add(CounterId::SimLaunches, 1);
    let _span = span_detail("sim", "sim.launch", "", grid as u64, block_dim as u64, 0);
    let warp = device.warp_size as usize;

    // Sectored L2: lines equal the DRAM sector so adjacent sectors do not
    // alias into spurious hits.
    let mut l2 = Cache::new(CacheConfig {
        size_bytes: device.l2_bytes,
        line_bytes: device.sector_bytes as usize,
        ways: 16,
    });
    let mut traces: Vec<ThreadTrace> = (0..block_dim).map(|_| ThreadTrace::default()).collect();
    let mut scratch = Vec::new();
    let mut line_conflicts: HashMap<u64, u64> = HashMap::new();

    let mut total_flops = 0u64;
    let mut total_transactions = 0u64;
    let mut total_atomics = 0u64;
    let mut dram_bytes = 0u64;
    let mut sm_times = vec![0.0f64; device.sms as usize];
    let mut l2_hits = 0u64;

    for b in 0..grid {
        // Functional execution of the whole block.
        for (t, trace) in traces.iter_mut().enumerate() {
            trace.reset();
            let mut acc = Accessor::new(trace);
            kernel.thread(b, t, &mut acc);
        }

        // Performance accounting per warp.
        let mut block_flops = 0u64;
        let mut block_dram = 0u64;
        let mut block_l2_bytes = 0u64;
        let mut block_atomic_serial = 0u64;
        for w in traces.chunks(warp) {
            let summary = coalesce_warp(w, device.sector_bytes, &mut scratch);
            total_transactions += summary.transactions;
            total_atomics += summary.atomics;
            block_atomic_serial += summary.max_atomic_conflict;
            for &sector in &summary.sectors {
                if l2.access(sector) {
                    l2_hits += 1;
                    block_l2_bytes += device.sector_bytes as u64;
                } else {
                    block_dram += device.sector_bytes as u64;
                }
            }
            for &addr in &summary.atomic_addrs {
                *line_conflicts.entry(addr).or_insert(0) += 1;
            }
            block_flops += w.iter().map(|t| t.flops()).sum::<u64>();
        }
        total_flops += block_flops;
        dram_bytes += block_dram;

        // Block cost on its SM: DRAM at the per-SM bandwidth share — scaled
        // up when the grid does not fill the device, but capped at 2x the
        // proportional share (one block cannot saturate the whole device) —
        // L2 hits at a 4x faster on-chip rate, compute at the per-SM flops
        // share, plus intra-block atomic serialization.
        let active = (grid.min(device.sms as usize)).max(1) as f64;
        let sms = device.sms as f64;
        let bw_share = (device.obtainable_bw() / active).min(2.0 * device.obtainable_bw() / sms);
        let flops_share = (device.peak_flops / active).min(2.0 * device.peak_flops / sms);
        let mem_t = block_dram as f64 / bw_share + block_l2_bytes as f64 / (4.0 * bw_share);
        let cmp_t = block_flops as f64 / flops_share;
        let atomic_t = block_atomic_serial as f64 * device.atomic_latency;
        let cost = mem_t.max(cmp_t) + atomic_t;
        // Round-robin block scheduling over SMs (CUDA-like), with
        // blocks_per_sm-way concurrency folded into the per-SM rate shares.
        let sm = b % sm_times.len();
        sm_times[sm] += cost;
    }

    let makespan = sm_times.iter().copied().fold(0.0, f64::max);
    let dram_bound = dram_bytes as f64 / device.obtainable_bw();
    let compute_bound = total_flops as f64 / device.peak_flops;
    let max_line = line_conflicts.values().copied().max().unwrap_or(0);
    let atomic_bound = max_line as f64 * device.atomic_latency;

    let (time, bound) = [
        (makespan, Bound::Makespan),
        (dram_bound, Bound::Dram),
        (compute_bound, Bound::Compute),
        (atomic_bound, Bound::Atomic),
    ]
    .into_iter()
    .fold((0.0, Bound::Makespan), |best, cand| if cand.0 > best.0 { cand } else { best });

    LaunchStats {
        time: time.max(1e-9),
        flops: total_flops,
        dram_bytes,
        transactions: total_transactions,
        l2_hit_ratio: if total_transactions == 0 {
            0.0
        } else {
            l2_hits as f64 / total_transactions as f64
        },
        atomics: total_atomics,
        max_line_conflicts: max_line,
        sm_times,
        blocks: grid,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{p100, v100};
    use crate::trace::AddrSpace;

    /// A toy kernel: each thread reads one f32 and writes one f32,
    /// contiguously — a perfectly coalesced stream.
    struct StreamKernel {
        n: usize,
        src: Vec<f32>,
        dst: Vec<f32>,
        src_base: u64,
        dst_base: u64,
    }

    impl StreamKernel {
        fn new(n: usize) -> Self {
            let mut aspace = AddrSpace::new();
            Self {
                n,
                src: (0..n).map(|i| i as f32).collect(),
                dst: vec![0.0; n],
                src_base: aspace.alloc(4 * n as u64),
                dst_base: aspace.alloc(4 * n as u64),
            }
        }
    }

    impl GpuKernel for StreamKernel {
        fn grid_dim(&self) -> usize {
            self.n.div_ceil(256)
        }
        fn block_dim(&self) -> usize {
            256
        }
        fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
            let i = b * 256 + t;
            if i >= self.n {
                return;
            }
            acc.read(0, self.src_base + 4 * i as u64, 4);
            let v = self.src[i] * 2.0;
            acc.flops(1);
            self.dst[i] = v;
            acc.write(1, self.dst_base + 4 * i as u64, 4);
        }
    }

    /// A kernel where block 0 does all the work: worst-case imbalance.
    struct ImbalancedKernel {
        work: usize,
        base: u64,
    }

    impl GpuKernel for ImbalancedKernel {
        fn grid_dim(&self) -> usize {
            512
        }
        fn block_dim(&self) -> usize {
            32
        }
        fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
            if b == 0 && t == 0 {
                for i in 0..self.work {
                    acc.read(0, self.base + 4096 * i as u64, 4);
                    acc.flops(1);
                }
            }
        }
    }

    /// All threads hammer one atomic cell.
    struct AtomicHammer {
        n: usize,
        base: u64,
        sum: f32,
    }

    impl GpuKernel for AtomicHammer {
        fn grid_dim(&self) -> usize {
            self.n.div_ceil(256)
        }
        fn block_dim(&self) -> usize {
            256
        }
        fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
            if b * 256 + t >= self.n {
                return;
            }
            self.sum += 1.0;
            acc.flops(1);
            acc.atomic(0, self.base);
        }
    }

    #[test]
    fn functional_results_are_exact() {
        let mut k = StreamKernel::new(10_000);
        let stats = launch(&p100(), &mut k);
        assert!(k.dst.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f32));
        assert_eq!(stats.flops, 10_000);
        assert_eq!(stats.blocks, 40);
    }

    #[test]
    fn stream_kernel_is_dram_or_makespan_bound_with_high_bw_efficiency() {
        let mut k = StreamKernel::new(1 << 20);
        let stats = launch(&p100(), &mut k);
        // 8 MB moved; perfectly coalesced; little reuse.
        assert!(stats.dram_bytes >= 8 * (1 << 20));
        assert!(stats.l2_hit_ratio < 0.2, "no reuse stream: {}", stats.l2_hit_ratio);
        assert!(matches!(stats.bound, Bound::Dram | Bound::Makespan));
        assert!(stats.bw_efficiency(&p100()) > 0.5);
    }

    #[test]
    fn v100_beats_p100_on_streams() {
        let mut k1 = StreamKernel::new(1 << 20);
        let t1 = launch(&p100(), &mut k1).time;
        let mut k2 = StreamKernel::new(1 << 20);
        let t2 = launch(&v100(), &mut k2).time;
        assert!(t2 < t1, "V100 {t2} vs P100 {t1}");
    }

    #[test]
    fn imbalance_inflates_makespan() {
        let mut aspace = AddrSpace::new();
        let base = aspace.alloc(1 << 26);
        let mut k = ImbalancedKernel { work: 20_000, base };
        let stats = launch(&p100(), &mut k);
        assert_eq!(stats.bound, Bound::Makespan);
        // One SM does everything; the rest idle.
        let busy = stats.sm_times.iter().filter(|&&t| t > 0.0).count();
        assert_eq!(busy, 1);
        // Time far exceeds the DRAM bound for the same traffic.
        let dram_bound = stats.dram_bytes as f64 / p100().obtainable_bw();
        assert!(stats.time > 5.0 * dram_bound);
    }

    #[test]
    fn atomic_contention_dominates_hammer() {
        let mut aspace = AddrSpace::new();
        let base = aspace.alloc(4096);
        let mut k = AtomicHammer { n: 100_000, base, sum: 0.0 };
        let stats = launch(&p100(), &mut k);
        assert_eq!(k.sum, 100_000.0);
        assert_eq!(stats.atomics, 100_000);
        assert_eq!(stats.max_line_conflicts, 100_000);
        assert_eq!(stats.bound, Bound::Atomic);
        // Volta's faster atomics shrink the same launch's time.
        let mut k2 = AtomicHammer { n: 100_000, base, sum: 0.0 };
        let t_v = launch(&v100(), &mut k2).time;
        assert!(t_v < stats.time);
    }

    #[test]
    fn empty_launch_is_fine() {
        struct Nop;
        impl GpuKernel for Nop {
            fn grid_dim(&self) -> usize {
                0
            }
            fn block_dim(&self) -> usize {
                1
            }
            fn thread(&mut self, _: usize, _: usize, _: &mut Accessor<'_>) {}
        }
        let stats = launch(&p100(), &mut Nop);
        assert_eq!(stats.flops, 0);
        assert!(stats.time > 0.0);
        assert_eq!(stats.gflops(), 0.0);
    }
}
