//! # pasta-simt — a functional + timing SIMT (GPU) simulator
//!
//! The paper evaluates its kernels on NVIDIA P100 and V100 GPUs. This
//! environment has no CUDA hardware, so the suite substitutes a simulator
//! that executes the paper's GPU kernels *functionally* (real data, bitwise
//! real results) while modeling the performance effects the paper's GPU
//! observations rest on:
//!
//! - **warp coalescing** — per-warp accesses collapse into 32-byte sectors;
//! - **L2 filtering** — sectors pass through a set-associative L2 of the
//!   device's size (3 MB P100, 6 MB V100);
//! - **SM scheduling** — blocks are assigned round-robin to SMs and the
//!   makespan captures block-level load imbalance (HiCOO-MTTKRP-GPU);
//! - **atomic serialization** — conflicting `atomicAdd`s serialize, with
//!   Volta's improved atomic datapath modeled as lower latency.
//!
//! [`kernels`] implements the paper's GPU kernels against this engine:
//! COO-TEW/TS/TTV/TTM/MTTKRP plus the block-per-CUDA-block
//! HiCOO-MTTKRP-GPU (HiCOO's other GPU kernels share the COO value loops,
//! as the paper notes).
//!
//! # Examples
//!
//! ```
//! use pasta_core::{CooTensor, DenseVector, Shape};
//! use pasta_simt::{device::v100, kernels::GpuTtvCoo, sim::launch};
//!
//! # fn main() -> Result<(), pasta_core::Error> {
//! let x = CooTensor::from_entries(
//!     Shape::new(vec![4, 4, 4]),
//!     vec![(vec![0, 1, 2], 2.0_f32), (vec![3, 3, 3], 1.0)],
//! )?;
//! let v = DenseVector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
//! let mut kernel = GpuTtvCoo::new(&x, &v, 2)?;
//! let stats = launch(&v100(), &mut kernel);
//! assert_eq!(kernel.output(), &[6.0, 4.0]);
//! assert!(stats.time > 0.0);
//! # Ok(())
//! # }
//! ```

// Dense/kernel code indexes several arrays in lockstep; iterator
// rewrites of those loops obscure the math.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod kernels;
pub mod multi;
pub mod sim;
pub mod trace;

pub use device::{p100, v100, DeviceSpec};
pub use kernels::{
    gpu_supported, GpuMttkrpCoo, GpuMttkrpHicoo, GpuMttkrpHicooBalanced, GpuTewCoo, GpuTsCoo,
    GpuTtmCoo, GpuTtvCoo, GpuTtvFcoo,
};
pub use multi::{launch_multi, Interconnect, MultiLaunchStats};
pub use sim::{launch, Bound, GpuKernel, LaunchStats};
pub use trace::{AccessKind, Accessor, AddrSpace, ThreadTrace};
