//! The PASTA GPU kernels, written against the SIMT simulator.
//!
//! Faithful to Section III of the paper:
//!
//! - COO-TEW-GPU / COO-TS-GPU — 1-D grids of 1-D 256-thread blocks over
//!   non-zeros;
//! - COO-TTV-GPU — Algorithm 2: one thread per mode-`n` fiber;
//! - COO-TTM-GPU — 1-D grids of 2-D blocks, x-dimension over matrix columns
//!   for coalescing, y-dimension over fibers;
//! - COO-MTTKRP-GPU — 2-D blocks (x = columns, y = non-zeros) with
//!   `atomicAdd` on the output;
//! - HiCOO-MTTKRP-GPU — one *tensor block* per CUDA block (the unoptimized
//!   mapping the paper describes), atomics retained; block-population
//!   imbalance shows up directly in the SM makespan.
//!
//! The paper notes HiCOO's other GPU kernels share the COO value loops, so
//! TEW/TS/TTV/TTM have a single GPU implementation here.

use crate::sim::GpuKernel;
use crate::trace::{Accessor, AddrSpace};
use pasta_core::{
    CooTensor, Coord, DenseMatrix, DenseVector, Error, FiberIndex, HiCooTensor, Result,
};
use pasta_kernels::{BackendKind, Combo, EwOp, FormatKind, Kernel, TsOp};

const THREADS_1D: usize = 256;

// Access-site labels (arbitrary but distinct per array).
const S_XVAL: u16 = 0;
const S_YVAL: u16 = 1;
const S_ZVAL: u16 = 2;
const S_FPTR: u16 = 3;
const S_KIND: u16 = 4;
const S_VEC: u16 = 5;
const S_OUTIND: u16 = 6;
const S_MAT: u16 = 7;
const S_ATOMIC: u16 = 8;
const S_IND_BASE: u16 = 16; // + mode
const S_FACTOR_BASE: u16 = 32; // + mode

/// COO-TEW-GPU: one thread per non-zero, same-pattern inputs.
#[derive(Debug)]
pub struct GpuTewCoo {
    op: EwOp,
    x: Vec<f32>,
    y: Vec<f32>,
    z: Vec<f32>,
    bx: u64,
    by: u64,
    bz: u64,
}

impl GpuTewCoo {
    /// Builds the kernel from two same-pattern tensors.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PatternMismatch`] if the patterns differ.
    pub fn new(x: &CooTensor<f32>, y: &CooTensor<f32>, op: EwOp) -> Result<Self> {
        if !x.same_pattern(y) {
            return Err(Error::PatternMismatch);
        }
        Self::from_values(x.vals().to_vec(), y.vals().to_vec(), op)
    }

    /// Builds the kernel from bare value arrays — the shared COO value
    /// loop that blocked and semi-sparse formats reuse on the GPU.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OperandMismatch`] if the arrays differ in length.
    pub fn from_values(x: Vec<f32>, y: Vec<f32>, op: EwOp) -> Result<Self> {
        if x.len() != y.len() {
            return Err(Error::OperandMismatch {
                what: format!("value arrays of lengths {} and {}", x.len(), y.len()),
            });
        }
        let m = x.len() as u64;
        let mut a = AddrSpace::new();
        Ok(Self {
            op,
            z: vec![0.0; x.len()],
            x,
            y,
            bx: a.alloc(4 * m),
            by: a.alloc(4 * m),
            bz: a.alloc(4 * m),
        })
    }

    /// The computed output values (valid after `launch`).
    pub fn output(&self) -> &[f32] {
        &self.z
    }
}

impl GpuKernel for GpuTewCoo {
    fn grid_dim(&self) -> usize {
        self.x.len().div_ceil(THREADS_1D)
    }
    fn block_dim(&self) -> usize {
        THREADS_1D
    }
    fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
        let i = b * THREADS_1D + t;
        if i >= self.x.len() {
            return;
        }
        acc.read(S_XVAL, self.bx + 4 * i as u64, 4);
        acc.read(S_YVAL, self.by + 4 * i as u64, 4);
        self.z[i] = self.op.apply(self.x[i], self.y[i]);
        acc.flops(1);
        acc.write(S_ZVAL, self.bz + 4 * i as u64, 4);
    }
}

/// COO-TS-GPU: one thread per non-zero.
#[derive(Debug)]
pub struct GpuTsCoo {
    op: TsOp,
    s: f32,
    x: Vec<f32>,
    y: Vec<f32>,
    bx: u64,
    by: u64,
}

impl GpuTsCoo {
    /// Builds the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
    pub fn new(x: &CooTensor<f32>, op: TsOp, s: f32) -> Result<Self> {
        Self::from_values(x.vals().to_vec(), op, s)
    }

    /// Builds the kernel from a bare value array (shared value loop for
    /// the non-COO formats).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
    pub fn from_values(x: Vec<f32>, op: TsOp, s: f32) -> Result<Self> {
        if op == TsOp::Div && s == 0.0 {
            return Err(Error::DivisionByZero);
        }
        let m = x.len() as u64;
        let mut a = AddrSpace::new();
        Ok(Self { op, s, y: vec![0.0; x.len()], x, bx: a.alloc(4 * m), by: a.alloc(4 * m) })
    }

    /// The computed output values.
    pub fn output(&self) -> &[f32] {
        &self.y
    }
}

impl GpuKernel for GpuTsCoo {
    fn grid_dim(&self) -> usize {
        self.x.len().div_ceil(THREADS_1D)
    }
    fn block_dim(&self) -> usize {
        THREADS_1D
    }
    fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
        let i = b * THREADS_1D + t;
        if i >= self.x.len() {
            return;
        }
        acc.read(S_XVAL, self.bx + 4 * i as u64, 4);
        self.y[i] = self.op.apply(self.x[i], self.s);
        acc.flops(1);
        acc.write(S_YVAL, self.by + 4 * i as u64, 4);
    }
}

/// COO-TTV-GPU (Algorithm 2): one thread per mode-`n` fiber.
#[derive(Debug)]
pub struct GpuTtvCoo {
    vals: Vec<f32>,
    kind: Vec<Coord>,
    fptr: Vec<usize>,
    other_inds: Vec<Vec<Coord>>,
    v: Vec<f32>,
    out: Vec<f32>,
    b_vals: u64,
    b_kind: u64,
    b_fptr: u64,
    b_inds: Vec<u64>,
    b_outind: u64,
    b_vec: u64,
    b_out: u64,
}

impl GpuTtvCoo {
    /// Builds the kernel: sorts a copy mode-last, finds fibers, allocates
    /// the output (the untimed pre-processing of Algorithm 2).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid mode or mismatched vector length.
    pub fn new(x: &CooTensor<f32>, v: &DenseVector<f32>, n: usize) -> Result<Self> {
        x.shape().check_mode(n)?;
        if x.order() < 2 {
            return Err(Error::InvalidMode { mode: n, order: x.order() });
        }
        if v.len() != x.shape().dim(n) as usize {
            return Err(Error::OperandMismatch {
                what: format!("vector length {} vs mode dim {}", v.len(), x.shape().dim(n)),
            });
        }
        let mut xs = x.clone();
        xs.sort_mode_last(n);
        let fibers = FiberIndex::build(&xs, n);
        let m = xs.nnz() as u64;
        let mf = fibers.num_fibers() as u64;
        let mut a = AddrSpace::new();
        let other: Vec<usize> = (0..x.order()).filter(|&mm| mm != n).collect();
        Ok(Self {
            vals: xs.vals().to_vec(),
            kind: xs.mode_inds(n).to_vec(),
            fptr: fibers.fptr().to_vec(),
            other_inds: other.iter().map(|&mm| xs.mode_inds(mm).to_vec()).collect(),
            v: v.as_slice().to_vec(),
            out: vec![0.0; fibers.num_fibers()],
            b_vals: a.alloc(4 * m),
            b_kind: a.alloc(4 * m),
            b_fptr: a.alloc(8 * (mf + 1)),
            b_inds: other.iter().map(|_| a.alloc(4 * m)).collect(),
            b_outind: a.alloc(4 * mf * other.len() as u64),
            b_vec: a.alloc(4 * v.len() as u64),
            b_out: a.alloc(4 * mf),
        })
    }

    /// The per-fiber output values.
    pub fn output(&self) -> &[f32] {
        &self.out
    }

    /// The number of output non-zeros (`M_F`).
    pub fn num_fibers(&self) -> usize {
        self.out.len()
    }
}

impl GpuKernel for GpuTtvCoo {
    fn grid_dim(&self) -> usize {
        self.out.len().div_ceil(THREADS_1D)
    }
    fn block_dim(&self) -> usize {
        THREADS_1D
    }
    fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
        let f = b * THREADS_1D + t;
        if f >= self.out.len() {
            return;
        }
        acc.read(S_FPTR, self.b_fptr + 8 * f as u64, 8);
        acc.read(S_FPTR, self.b_fptr + 8 * (f as u64 + 1), 8);
        let (lo, hi) = (self.fptr[f], self.fptr[f + 1]);
        // Algorithm 2 lines 3-4: copy the fiber's output indices.
        for (k, inds) in self.other_inds.iter().enumerate() {
            acc.read(S_IND_BASE + k as u16, self.b_inds[k] + 4 * lo as u64, 4);
            let _ = inds[lo];
            acc.write(S_OUTIND, self.b_outind + 4 * (f * self.other_inds.len() + k) as u64, 4);
        }
        let mut v = 0.0f32;
        for m in lo..hi {
            acc.read(S_KIND, self.b_kind + 4 * m as u64, 4);
            acc.read(S_XVAL, self.b_vals + 4 * m as u64, 4);
            let k = self.kind[m] as usize;
            acc.read(S_VEC, self.b_vec + 4 * k as u64, 4);
            v += self.vals[m] * self.v[k];
            acc.flops(2);
        }
        self.out[f] = v;
        acc.write(S_YVAL, self.b_out + 4 * f as u64, 4);
    }
}

/// COO-TTM-GPU: 2-D blocks, x = matrix columns (coalesced), y = fibers.
#[derive(Debug)]
pub struct GpuTtmCoo {
    r: usize,
    vals: Vec<f32>,
    kind: Vec<Coord>,
    fptr: Vec<usize>,
    u: DenseMatrix<f32>,
    out: Vec<f32>,
    b_vals: u64,
    b_kind: u64,
    b_fptr: u64,
    b_mat: u64,
    b_out: u64,
    block_y: usize,
}

impl GpuTtmCoo {
    /// Builds the kernel (pre-processing as for TTV).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid mode or mismatched matrix rows.
    pub fn new(x: &CooTensor<f32>, u: &DenseMatrix<f32>, n: usize) -> Result<Self> {
        x.shape().check_mode(n)?;
        if u.rows() != x.shape().dim(n) as usize {
            return Err(Error::OperandMismatch {
                what: format!("matrix rows {} vs mode dim {}", u.rows(), x.shape().dim(n)),
            });
        }
        let r = u.cols();
        if r == 0 || r > 64 {
            return Err(Error::OperandMismatch { what: "column count must be in 1..=64".into() });
        }
        let mut xs = x.clone();
        xs.sort_mode_last(n);
        let fibers = FiberIndex::build(&xs, n);
        let m = xs.nnz() as u64;
        let mf = fibers.num_fibers() as u64;
        let mut a = AddrSpace::new();
        Ok(Self {
            r,
            vals: xs.vals().to_vec(),
            kind: xs.mode_inds(n).to_vec(),
            fptr: fibers.fptr().to_vec(),
            u: u.clone(),
            out: vec![0.0; (mf as usize) * r],
            b_vals: a.alloc(4 * m),
            b_kind: a.alloc(4 * m),
            b_fptr: a.alloc(8 * (mf + 1)),
            b_mat: a.alloc(4 * (u.rows() * r) as u64),
            b_out: a.alloc(4 * mf * r as u64),
            block_y: (THREADS_1D / r).max(1),
        })
    }

    /// The output values, fiber-major (`M_F × R`).
    pub fn output(&self) -> &[f32] {
        &self.out
    }

    /// The number of output fibers.
    pub fn num_fibers(&self) -> usize {
        self.fptr.len() - 1
    }
}

impl GpuKernel for GpuTtmCoo {
    fn grid_dim(&self) -> usize {
        self.num_fibers().div_ceil(self.block_y)
    }
    fn block_dim(&self) -> usize {
        self.block_y * self.r
    }
    fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
        // CUDA linearization: x fastest. x = column, y = fiber-in-block.
        let rr = t % self.r;
        let fy = t / self.r;
        let f = b * self.block_y + fy;
        if f >= self.num_fibers() {
            return;
        }
        acc.read(S_FPTR, self.b_fptr + 8 * f as u64, 8);
        acc.read(S_FPTR, self.b_fptr + 8 * (f as u64 + 1), 8);
        let (lo, hi) = (self.fptr[f], self.fptr[f + 1]);
        let mut acc_v = 0.0f32;
        for m in lo..hi {
            acc.read(S_KIND, self.b_kind + 4 * m as u64, 4);
            acc.read(S_XVAL, self.b_vals + 4 * m as u64, 4);
            let k = self.kind[m] as usize;
            acc.read(S_MAT, self.b_mat + 4 * (k * self.r + rr) as u64, 4);
            acc_v += self.vals[m] * self.u.get(k, rr);
            acc.flops(2);
        }
        self.out[f * self.r + rr] = acc_v;
        acc.write(S_YVAL, self.b_out + 4 * (f * self.r + rr) as u64, 4);
    }
}

/// COO-MTTKRP-GPU: 2-D blocks (x = columns, y = non-zeros), `atomicAdd` on
/// the output rows.
#[derive(Debug)]
pub struct GpuMttkrpCoo {
    r: usize,
    order: usize,
    n: usize,
    inds: Vec<Vec<Coord>>,
    vals: Vec<f32>,
    factors: Vec<DenseMatrix<f32>>,
    out: DenseMatrix<f32>,
    b_vals: u64,
    b_inds: Vec<u64>,
    b_factors: Vec<u64>,
    b_out: u64,
    block_y: usize,
}

impl GpuMttkrpCoo {
    /// Builds the kernel.
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent factor matrices.
    pub fn new(x: &CooTensor<f32>, factors: &[DenseMatrix<f32>], n: usize) -> Result<Self> {
        x.shape().check_mode(n)?;
        if factors.len() != x.order() {
            return Err(Error::OperandMismatch {
                what: format!("expected {} factors, got {}", x.order(), factors.len()),
            });
        }
        let r = factors[0].cols();
        if r == 0 || r > 64 {
            return Err(Error::OperandMismatch { what: "rank must be in 1..=64".into() });
        }
        for (m, f) in factors.iter().enumerate() {
            if f.cols() != r || f.rows() != x.shape().dim(m) as usize {
                return Err(Error::OperandMismatch { what: format!("factor {m} shape mismatch") });
            }
        }
        let m = x.nnz() as u64;
        let mut a = AddrSpace::new();
        Ok(Self {
            r,
            order: x.order(),
            n,
            inds: (0..x.order()).map(|mm| x.mode_inds(mm).to_vec()).collect(),
            vals: x.vals().to_vec(),
            factors: factors.to_vec(),
            out: DenseMatrix::zeros(x.shape().dim(n) as usize, r),
            b_vals: a.alloc(4 * m),
            b_inds: (0..x.order()).map(|_| a.alloc(4 * m)).collect(),
            b_factors: factors.iter().map(|f| a.alloc(4 * (f.rows() * r) as u64)).collect(),
            b_out: a.alloc(4 * (x.shape().dim(n) as usize * r) as u64),
            block_y: (THREADS_1D / r).max(1),
        })
    }

    /// The accumulated output matrix.
    pub fn output(&self) -> &DenseMatrix<f32> {
        &self.out
    }
}

impl GpuKernel for GpuMttkrpCoo {
    fn grid_dim(&self) -> usize {
        self.vals.len().div_ceil(self.block_y)
    }
    fn block_dim(&self) -> usize {
        self.block_y * self.r
    }
    fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
        let rr = t % self.r;
        let zy = t / self.r;
        let z = b * self.block_y + zy;
        if z >= self.vals.len() {
            return;
        }
        acc.read(S_XVAL, self.b_vals + 4 * z as u64, 4);
        let mut tmp = self.vals[z];
        for m in 0..self.order {
            acc.read(S_IND_BASE + m as u16, self.b_inds[m] + 4 * z as u64, 4);
            if m == self.n {
                continue;
            }
            let row = self.inds[m][z] as usize;
            acc.read(
                S_FACTOR_BASE + m as u16,
                self.b_factors[m] + 4 * (row * self.r + rr) as u64,
                4,
            );
            tmp *= self.factors[m].get(row, rr);
            acc.flops(1);
        }
        let i = self.inds[self.n][z] as usize;
        let cur = self.out.get(i, rr);
        self.out.set(i, rr, cur + tmp);
        acc.flops(1);
        acc.atomic(S_ATOMIC, self.b_out + 4 * (i * self.r + rr) as u64);
    }
}

/// HiCOO-MTTKRP-GPU: one tensor block per CUDA block (the paper's
/// unoptimized mapping). Threads iterate the block's non-zeros in strides of
/// `blockDim.y`; atomics protect the shared output.
#[derive(Debug)]
pub struct GpuMttkrpHicoo {
    r: usize,
    order: usize,
    n: usize,
    x: HiCooTensor<f32>,
    factors: Vec<DenseMatrix<f32>>,
    out: DenseMatrix<f32>,
    b_vals: u64,
    b_binds: Vec<u64>,
    b_einds: Vec<u64>,
    b_bptr: u64,
    b_factors: Vec<u64>,
    b_out: u64,
    block_y: usize,
}

impl GpuMttkrpHicoo {
    /// Builds the kernel from a HiCOO tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent factor matrices.
    pub fn new(x: &HiCooTensor<f32>, factors: &[DenseMatrix<f32>], n: usize) -> Result<Self> {
        x.shape().check_mode(n)?;
        if factors.len() != x.order() {
            return Err(Error::OperandMismatch {
                what: format!("expected {} factors, got {}", x.order(), factors.len()),
            });
        }
        let r = factors[0].cols();
        if r == 0 || r > 64 {
            return Err(Error::OperandMismatch { what: "rank must be in 1..=64".into() });
        }
        for (m, f) in factors.iter().enumerate() {
            if f.cols() != r || f.rows() != x.shape().dim(m) as usize {
                return Err(Error::OperandMismatch { what: format!("factor {m} shape mismatch") });
            }
        }
        let m = x.nnz() as u64;
        let nb = x.num_blocks() as u64;
        let mut a = AddrSpace::new();
        Ok(Self {
            r,
            order: x.order(),
            n,
            factors: factors.to_vec(),
            out: DenseMatrix::zeros(x.shape().dim(n) as usize, r),
            b_vals: a.alloc(4 * m),
            b_binds: (0..x.order()).map(|_| a.alloc(4 * nb)).collect(),
            b_einds: (0..x.order()).map(|_| a.alloc(m)).collect(),
            b_bptr: a.alloc(8 * (nb + 1)),
            b_factors: factors.iter().map(|f| a.alloc(4 * (f.rows() * r) as u64)).collect(),
            b_out: a.alloc(4 * (x.shape().dim(n) as usize * r) as u64),
            block_y: (THREADS_1D / r).max(1),
            x: x.clone(),
        })
    }

    /// The accumulated output matrix.
    pub fn output(&self) -> &DenseMatrix<f32> {
        &self.out
    }

    /// The thread body shared with [`GpuMttkrpHicooBalanced`]: thread `t`
    /// walks entries `start..end` of tensor block `b` in strides of
    /// `blockDim.y`, multiplying factor rows and accumulating into the
    /// output with atomics.
    fn unit_thread(
        &mut self,
        b: usize,
        start: usize,
        end: usize,
        t: usize,
        acc: &mut Accessor<'_>,
    ) {
        let rr = t % self.r;
        let ty = t / self.r;
        let bits = self.x.block_bits();
        // Thread (0, 0) reads the block metadata (broadcast to the block).
        if t == 0 {
            acc.read(S_FPTR, self.b_bptr + 8 * b as u64, 8);
            acc.read(S_FPTR, self.b_bptr + 8 * (b as u64 + 1), 8);
            for m in 0..self.order {
                acc.read(S_IND_BASE + m as u16, self.b_binds[m] + 4 * b as u64, 4);
            }
        }
        let bases: Vec<usize> =
            (0..self.order).map(|m| (self.x.mode_binds(m)[b] as usize) << bits).collect();
        // Strided loop over the unit's non-zeros.
        let mut z = start + ty;
        while z < end {
            acc.read(S_XVAL, self.b_vals + 4 * z as u64, 4);
            let mut tmp = self.x.vals()[z];
            for m in 0..self.order {
                acc.read(S_KIND, self.b_einds[m] + z as u64, 1);
                if m == self.n {
                    continue;
                }
                let row = bases[m] + self.x.mode_einds(m)[z] as usize;
                acc.read(
                    S_FACTOR_BASE + m as u16,
                    self.b_factors[m] + 4 * (row * self.r + rr) as u64,
                    4,
                );
                tmp *= self.factors[m].get(row, rr);
                acc.flops(1);
            }
            let i = bases[self.n] + self.x.mode_einds(self.n)[z] as usize;
            let cur = self.out.get(i, rr);
            self.out.set(i, rr, cur + tmp);
            acc.flops(1);
            acc.atomic(S_ATOMIC, self.b_out + 4 * (i * self.r + rr) as u64);
            z += self.block_y;
        }
    }
}

impl GpuKernel for GpuMttkrpHicoo {
    fn grid_dim(&self) -> usize {
        self.x.num_blocks()
    }
    fn block_dim(&self) -> usize {
        self.block_y * self.r
    }
    fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
        let range = self.x.block_range(b);
        if range.is_empty() {
            return;
        }
        self.unit_thread(b, range.start, range.end, t, acc);
    }
}

/// F-COO TTV on the GPU: one thread per *non-zero* (perfect balance), with
/// the per-fiber sums assembled through `atomicAdd` — the segmented-
/// reduction formulation of the F-COO format (Liu et al., cited in Section
/// III of the paper) in its simplest atomics-based variant. Where
/// COO-TTV-GPU serializes a long fiber on one thread, this kernel spreads
/// it across the machine.
#[derive(Debug)]
pub struct GpuTtvFcoo {
    vals: Vec<f32>,
    pinds: Vec<Coord>,
    fiber_of: Vec<u32>,
    v: Vec<f32>,
    out: Vec<f32>,
    b_vals: u64,
    b_pinds: u64,
    b_flags: u64,
    b_vec: u64,
    b_out: u64,
}

impl GpuTtvFcoo {
    /// Builds the kernel from an F-COO tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for a mismatched vector length.
    pub fn new(x: &pasta_core::FCooTensor<f32>, v: &DenseVector<f32>) -> Result<Self> {
        if v.len() != x.shape().dim(x.mode()) as usize {
            return Err(Error::OperandMismatch {
                what: format!("vector length {} vs mode dim {}", v.len(), x.shape().dim(x.mode())),
            });
        }
        // Pre-processing: expand the bit flags into fiber ids (on a real GPU
        // this is the segmented-scan metadata construction).
        let mut fiber_of = Vec::with_capacity(x.nnz());
        let mut f: u32 = 0;
        for (i, &flag) in x.start_flags().iter().enumerate() {
            if flag && i > 0 {
                f += 1;
            }
            fiber_of.push(f);
        }
        let m = x.nnz() as u64;
        let mut a = AddrSpace::new();
        Ok(Self {
            vals: x.vals().to_vec(),
            pinds: x.product_inds().to_vec(),
            fiber_of,
            v: v.as_slice().to_vec(),
            out: vec![0.0; x.num_fibers()],
            b_vals: a.alloc(4 * m),
            b_pinds: a.alloc(4 * m),
            b_flags: a.alloc(m.div_ceil(8)),
            b_vec: a.alloc(4 * v.len() as u64),
            b_out: a.alloc(4 * x.num_fibers() as u64),
        })
    }

    /// The per-fiber output values.
    pub fn output(&self) -> &[f32] {
        &self.out
    }
}

impl GpuKernel for GpuTtvFcoo {
    fn grid_dim(&self) -> usize {
        self.vals.len().div_ceil(THREADS_1D)
    }
    fn block_dim(&self) -> usize {
        THREADS_1D
    }
    fn thread(&mut self, b: usize, t: usize, acc: &mut Accessor<'_>) {
        let i = b * THREADS_1D + t;
        if i >= self.vals.len() {
            return;
        }
        acc.read(S_XVAL, self.b_vals + 4 * i as u64, 4);
        acc.read(S_KIND, self.b_pinds + 4 * i as u64, 4);
        acc.read(S_FPTR, self.b_flags + i as u64 / 8, 1); // the bit flag
        let k = self.pinds[i] as usize;
        acc.read(S_VEC, self.b_vec + 4 * k as u64, 4);
        let contrib = self.vals[i] * self.v[k];
        acc.flops(2);
        let f = self.fiber_of[i] as usize;
        self.out[f] += contrib;
        // Warp-level segmented reduction: lanes of one warp combine their
        // same-fiber contributions in registers, and only the last lane of
        // each segment issues the memory atomic.
        let n = self.vals.len();
        let last_of_segment =
            i + 1 >= n || self.fiber_of[i + 1] as usize != f || (i + 1).is_multiple_of(32);
        if last_of_segment {
            acc.atomic(S_ATOMIC, self.b_out + 4 * f as u64);
        }
    }
}

/// Balanced HiCOO-MTTKRP-GPU: tensor blocks are split into bounded work
/// units before mapping onto CUDA blocks.
///
/// The paper attributes HiCOO-MTTKRP-GPU's losses to "work imbalance due to
/// different numbers of non-zeros in tensor blocks" and cites the
/// load-balanced B-CSF approach as the remedy; this kernel applies that
/// remedy to HiCOO: every CUDA block processes at most `max_unit` non-zeros
/// of one tensor block, so a dense block fans out across many SMs instead
/// of serializing on one.
#[derive(Debug)]
pub struct GpuMttkrpHicooBalanced {
    inner: GpuMttkrpHicoo,
    /// Work units: `(tensor block, start, end)` entry ranges.
    units: Vec<(usize, usize, usize)>,
}

impl GpuMttkrpHicooBalanced {
    /// Builds the kernel; `max_unit` bounds the non-zeros per CUDA block
    /// (the paper-scale default would be a few hundred).
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent factors or `max_unit == 0`.
    pub fn new(
        x: &HiCooTensor<f32>,
        factors: &[DenseMatrix<f32>],
        n: usize,
        max_unit: usize,
    ) -> Result<Self> {
        if max_unit == 0 {
            return Err(Error::OperandMismatch { what: "max_unit must be positive".into() });
        }
        let inner = GpuMttkrpHicoo::new(x, factors, n)?;
        let mut units = Vec::new();
        for b in 0..x.num_blocks() {
            let range = x.block_range(b);
            let mut s = range.start;
            while s < range.end {
                let e = (s + max_unit).min(range.end);
                units.push((b, s, e));
                s = e;
            }
        }
        Ok(Self { inner, units })
    }

    /// The accumulated output matrix.
    pub fn output(&self) -> &DenseMatrix<f32> {
        self.inner.output()
    }

    /// The number of work units (CUDA blocks launched).
    pub fn num_units(&self) -> usize {
        self.units.len()
    }
}

impl GpuKernel for GpuMttkrpHicooBalanced {
    fn grid_dim(&self) -> usize {
        self.units.len()
    }
    fn block_dim(&self) -> usize {
        self.inner.block_dim()
    }
    fn thread(&mut self, cuda_block: usize, t: usize, acc: &mut Accessor<'_>) {
        let (b, start, end) = self.units[cuda_block];
        self.inner.unit_thread(b, start, end, t, acc);
    }
}

/// The `(kernel, format)` pairs this crate implements, as GPU registry
/// combos. A test keeps this list identical to the GPU rows of
/// [`pasta_kernels::registry`], so format×kernel coverage claims and the
/// simulator's actual kernels cannot drift apart.
pub fn gpu_supported() -> Vec<Combo> {
    let g = |kernel, format| Combo { kernel, format, backend: BackendKind::Gpu };
    vec![
        g(Kernel::Tew, FormatKind::Coo),      // GpuTewCoo
        g(Kernel::Ts, FormatKind::Coo),       // GpuTsCoo
        g(Kernel::Ttv, FormatKind::Coo),      // GpuTtvCoo
        g(Kernel::Ttv, FormatKind::Fcoo),     // GpuTtvFcoo
        g(Kernel::Ttm, FormatKind::Coo),      // GpuTtmCoo
        g(Kernel::Mttkrp, FormatKind::Coo),   // GpuMttkrpCoo
        g(Kernel::Mttkrp, FormatKind::Hicoo), // GpuMttkrpHicoo(+Balanced)
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{p100, v100};
    use crate::sim::launch;
    use pasta_core::{Shape, Value};
    use pasta_kernels::dense_ref;
    use pasta_kernels::Ctx;

    fn sample() -> CooTensor<f32> {
        let entries: Vec<(Vec<Coord>, f32)> = (0..4000u32)
            .map(|i| (vec![i % 37, (i / 37) % 41, (i * 13) % 53], 1.0 + (i % 5) as f32))
            .collect();
        let mut t = CooTensor::from_entries(Shape::new(vec![37, 41, 53]), entries).unwrap();
        t.dedup_sum();
        t
    }

    fn factors(x: &CooTensor<f32>, r: usize) -> Vec<DenseMatrix<f32>> {
        (0..x.order())
            .map(|m| pasta_core::seeded_matrix(x.shape().dim(m) as usize, r, 77 + m as u64))
            .collect()
    }

    #[test]
    fn gpu_tew_matches_cpu() {
        let x = sample();
        let y = pasta_kernels::ts_coo(TsOp::Mul, &x, 2.0, &Ctx::sequential()).unwrap();
        let cpu =
            pasta_kernels::tew_coo_same_pattern(EwOp::Add, &x, &y, &Ctx::sequential()).unwrap();
        let mut k = GpuTewCoo::new(&x, &y, EwOp::Add).unwrap();
        let stats = launch(&p100(), &mut k);
        assert_eq!(k.output(), cpu.vals());
        assert_eq!(stats.flops as usize, x.nnz());
        assert_eq!(stats.atomics, 0);
    }

    #[test]
    fn gpu_ts_matches_cpu() {
        let x = sample();
        let cpu = pasta_kernels::ts_coo(TsOp::Mul, &x, 1.5, &Ctx::sequential()).unwrap();
        let mut k = GpuTsCoo::new(&x, TsOp::Mul, 1.5).unwrap();
        launch(&v100(), &mut k);
        assert_eq!(k.output(), cpu.vals());
        assert!(GpuTsCoo::new(&x, TsOp::Div, 0.0).is_err());
    }

    #[test]
    fn gpu_ttv_matches_cpu_every_mode() {
        let x = sample();
        for n in 0..3 {
            let v: DenseVector<f32> = pasta_core::seeded_vector(x.shape().dim(n) as usize, 5);
            let cpu = pasta_kernels::ttv_coo(&x, &v, n, &Ctx::sequential()).unwrap();
            let mut k = GpuTtvCoo::new(&x, &v, n).unwrap();
            let stats = launch(&p100(), &mut k);
            assert_eq!(k.num_fibers(), cpu.nnz(), "mode {n}");
            for (a, b) in k.output().iter().zip(cpu.vals()) {
                assert!(a.approx_eq(*b, 1e-4), "mode {n}: {a} vs {b}");
            }
            assert_eq!(stats.flops as u64, 2 * x.nnz() as u64);
        }
    }

    #[test]
    fn gpu_ttm_matches_cpu() {
        let x = sample();
        let n = 2;
        let u: DenseMatrix<f32> = pasta_core::seeded_matrix(x.shape().dim(n) as usize, 16, 9);
        let cpu = pasta_kernels::ttm_coo(&x, &u, n, &Ctx::sequential()).unwrap();
        let mut k = GpuTtmCoo::new(&x, &u, n).unwrap();
        let stats = launch(&v100(), &mut k);
        assert_eq!(k.output().len(), cpu.vals().len());
        for (a, b) in k.output().iter().zip(cpu.vals()) {
            assert!(a.approx_eq(*b, 1e-4), "{a} vs {b}");
        }
        assert_eq!(stats.flops as u64, 2 * 16 * x.nnz() as u64);
    }

    #[test]
    fn gpu_mttkrp_coo_matches_dense() {
        let x = sample();
        let fs = factors(&x, 8);
        for n in 0..3 {
            let want = dense_ref::mttkrp_dense(&x, &fs, n).unwrap();
            let mut k = GpuMttkrpCoo::new(&x, &fs, n).unwrap();
            let stats = launch(&p100(), &mut k);
            for (a, b) in k.output().as_slice().iter().zip(want.as_slice()) {
                assert!(a.approx_eq(*b, 1e-3), "mode {n}: {a} vs {b}");
            }
            assert!(stats.atomics > 0, "MTTKRP must use atomics");
        }
    }

    #[test]
    fn gpu_mttkrp_hicoo_matches_dense() {
        let x = sample();
        let h = HiCooTensor::from_coo(&x, 8).unwrap();
        let fs = factors(&x, 8);
        let want = dense_ref::mttkrp_dense(&x, &fs, 1).unwrap();
        let mut k = GpuMttkrpHicoo::new(&h, &fs, 1).unwrap();
        let stats = launch(&v100(), &mut k);
        for (a, b) in k.output().as_slice().iter().zip(want.as_slice()) {
            assert!(a.approx_eq(*b, 1e-3), "{a} vs {b}");
        }
        assert_eq!(stats.blocks, h.num_blocks());
    }

    #[test]
    fn hicoo_mttkrp_slower_when_blocks_imbalanced() {
        // One hot dense block plus many singleton blocks: HiCOO's block-per-
        // CUDA-block mapping serializes the hot block on one SM, while
        // COO's non-zero distribution stays balanced (Observation 4, GPU).
        let mut entries: Vec<(Vec<Coord>, f32)> = Vec::new();
        for i in 0..8u32 {
            for j in 0..8u32 {
                for kk in 0..8u32 {
                    entries.push((vec![i, j, kk], 1.0));
                }
            }
        }
        for s in 0..2000u32 {
            entries.push((vec![8 + s * 8 % 60_000, 8 + s * 16 % 60_000, 8 + s * 24 % 60_000], 1.0));
        }
        let mut x =
            CooTensor::from_entries(Shape::new(vec![65_536, 65_536, 65_536]), entries).unwrap();
        x.dedup_sum();
        let h = HiCooTensor::from_coo(&x, 8).unwrap();
        assert!(h.num_blocks() > 500);
        let fs = factors(&x, 16);
        let dev = p100();
        let mut kc = GpuMttkrpCoo::new(&x, &fs, 0).unwrap();
        let tc = launch(&dev, &mut kc).time;
        let mut kh = GpuMttkrpHicoo::new(&h, &fs, 0).unwrap();
        let th = launch(&dev, &mut kh).time;
        assert!(th > tc, "HiCOO {th} should lose to COO {tc} under block imbalance");
    }

    #[test]
    fn gpu_fcoo_ttv_matches_cpu() {
        let x = sample();
        for n in 0..3 {
            let fc = pasta_core::FCooTensor::from_coo(&x, n).unwrap();
            let v: DenseVector<f32> = pasta_core::seeded_vector(x.shape().dim(n) as usize, 3);
            let cpu = pasta_kernels::ttv_coo(&x, &v, n, &Ctx::sequential()).unwrap();
            let mut k = GpuTtvFcoo::new(&fc, &v).unwrap();
            let stats = launch(&p100(), &mut k);
            assert_eq!(k.output().len(), cpu.nnz(), "mode {n}");
            for (a, b) in k.output().iter().zip(cpu.vals()) {
                assert!(a.approx_eq(*b, 1e-4), "mode {n}: {a} vs {b}");
            }
            assert!(stats.atomics > 0);
        }
    }

    #[test]
    fn fcoo_beats_coo_ttv_under_fiber_imbalance() {
        // One fiber holds almost all non-zeros: COO-TTV-GPU gives it to a
        // single thread; F-COO spreads it across the grid.
        let mut entries: Vec<(Vec<Coord>, f32)> = Vec::new();
        for k in 0..30_000u32 {
            entries.push((vec![0, 0, k], 1.0));
        }
        for f in 1..200u32 {
            entries.push((vec![f % 50, f % 60, f], 2.0));
        }
        let mut x = CooTensor::from_entries(Shape::new(vec![50, 60, 30_000]), entries).unwrap();
        x.dedup_sum();
        let v: DenseVector<f32> = pasta_core::seeded_vector(30_000, 5);
        let dev = p100();

        let mut coo = GpuTtvCoo::new(&x, &v, 2).unwrap();
        let t_coo = launch(&dev, &mut coo).time;
        let fc = pasta_core::FCooTensor::from_coo(&x, 2).unwrap();
        let mut fcoo = GpuTtvFcoo::new(&fc, &v).unwrap();
        let t_fcoo = launch(&dev, &mut fcoo).time;
        assert!(t_fcoo < t_coo, "F-COO {t_fcoo} vs COO {t_coo}");
        // Same results (up to reduction order).
        let mut a = coo.output().to_vec();
        let mut b = fcoo.output().to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (p, q) in a.iter().zip(&b) {
            assert!(p.approx_eq(*q, 1e-3), "{p} vs {q}");
        }
    }

    #[test]
    fn balanced_hicoo_mttkrp_matches_dense() {
        let x = sample();
        let h = HiCooTensor::from_coo(&x, 8).unwrap();
        let fs = factors(&x, 8);
        let want = dense_ref::mttkrp_dense(&x, &fs, 1).unwrap();
        let mut k = GpuMttkrpHicooBalanced::new(&h, &fs, 1, 64).unwrap();
        let stats = launch(&v100(), &mut k);
        for (a, b) in k.output().as_slice().iter().zip(want.as_slice()) {
            assert!(a.approx_eq(*b, 1e-3), "{a} vs {b}");
        }
        assert!(stats.blocks >= h.num_blocks());
        assert_eq!(stats.blocks, k.num_units());
    }

    #[test]
    fn balancing_recovers_the_imbalanced_case() {
        // Same adversarial tensor as the imbalance test: one dense block
        // plus singletons. Balanced units must beat the one-block-per-
        // tensor-block mapping.
        let mut entries: Vec<(Vec<Coord>, f32)> = Vec::new();
        for i in 0..8u32 {
            for j in 0..8u32 {
                for kk in 0..8u32 {
                    entries.push((vec![i, j, kk], 1.0));
                }
            }
        }
        for s in 0..2000u32 {
            entries.push((vec![8 + s * 8 % 60_000, 8 + s * 16 % 60_000, 8 + s * 24 % 60_000], 1.0));
        }
        let mut x =
            CooTensor::from_entries(Shape::new(vec![65_536, 65_536, 65_536]), entries).unwrap();
        x.dedup_sum();
        let h = HiCooTensor::from_coo(&x, 8).unwrap();
        let fs = factors(&x, 16);
        let dev = p100();
        let mut plain = GpuMttkrpHicoo::new(&h, &fs, 0).unwrap();
        let t_plain = launch(&dev, &mut plain).time;
        let mut bal = GpuMttkrpHicooBalanced::new(&h, &fs, 0, 32).unwrap();
        let t_bal = launch(&dev, &mut bal).time;
        assert!(t_bal < t_plain, "balanced {t_bal} vs plain {t_plain}");
        // And the results agree.
        for (a, b) in bal.output().as_slice().iter().zip(plain.output().as_slice()) {
            assert!(a.approx_eq(*b, 1e-3));
        }
    }

    #[test]
    fn balanced_rejects_zero_unit() {
        let x = sample();
        let h = HiCooTensor::from_coo(&x, 8).unwrap();
        let fs = factors(&x, 8);
        assert!(GpuMttkrpHicooBalanced::new(&h, &fs, 0, 0).is_err());
    }

    #[test]
    fn gpu_supported_matches_registry() {
        // The simulator's kernel set and the registry's GPU rows must be
        // the same set — a combo on either side only is a drifted claim.
        let mut have = gpu_supported();
        let mut want: Vec<Combo> = pasta_kernels::registry()
            .into_iter()
            .filter(|c| c.backend == BackendKind::Gpu)
            .collect();
        let key = |c: &Combo| c.to_string();
        have.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(have, want);
    }

    #[test]
    fn operand_validation() {
        let x = sample();
        let y = pasta_kernels::ts_coo(TsOp::Add, &x, 1.0, &Ctx::sequential()).unwrap();
        let mut y2 = y.clone();
        y2.push(&[0, 0, 0], 1.0).unwrap();
        assert!(GpuTewCoo::new(&x, &y2, EwOp::Add).is_err());
        let bad_vec = DenseVector::<f32>::zeros(3);
        assert!(GpuTtvCoo::new(&x, &bad_vec, 0).is_err());
        let bad_mat = DenseMatrix::<f32>::zeros(5, 16);
        assert!(GpuTtmCoo::new(&x, &bad_mat, 0).is_err());
        let fs = factors(&x, 8);
        assert!(GpuMttkrpCoo::new(&x, &fs[..2], 0).is_err());
    }
}
