//! # pasta-gen — synthetic sparse tensor generation
//!
//! The paper's Section IV: real-world tensors are scarce, privacy-bound and
//! hard to obtain, so the suite generates synthetic tensors preserving
//! real-graph properties. Two generators are provided:
//!
//! - [`KroneckerGen`] — the stochastic Kronecker model (Graph500 lineage),
//!   extended to order-`N` tensors; power-law, small-diameter, clustered.
//! - [`PowerLawGen`] — the FireHose-style biased power-law streaming
//!   generator, stacking edge streams into higher-order tensors with short
//!   nearly-dense modes.
//!
//! [`profiles`] packages Table II's 30 datasets (15 synthetic, 15 real-world
//! analogs) as reproducible, scaled recipes.
//!
//! # Examples
//!
//! ```
//! use pasta_gen::find_profile;
//!
//! let t = find_profile("regS").unwrap().generate_scaled(0.01).unwrap();
//! assert_eq!(t.order(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kron;
pub mod mimic;
pub mod powerlaw;
pub mod profiles;
pub mod requests;

pub use kron::KroneckerGen;
pub use mimic::{extract_features, feature_distance, MimicSpec, ModeProfile};
pub use powerlaw::{ModeDist, PowerLawGen};
pub use profiles::{find_profile, real_profiles, synthetic_profiles, Method, TensorProfile};
pub use requests::{GenRequest, OpMix, ReqKind, StreamSpec};
