//! Seeded, replayable request streams for the serving layer (`.reqs`).
//!
//! A load test is only a benchmark if it can be re-run bit-for-bit. A
//! `.reqs` file is nothing but a [`StreamSpec`] header — seed, catalog
//! profile, op mix, popularity skew — and the stream itself is a pure
//! function of that header: [`StreamSpec::generate`] expands it through
//! SplitMix64 draws into concrete [`GenRequest`]s. Replaying a run means
//! parsing the header and generating again; no request bodies are ever
//! stored.
//!
//! Tensor popularity follows the same truncated power-law inverse CDF as
//! the FireHose-style [`PowerLawGen`](crate::PowerLawGen): a handful of
//! hot tensors take most of the traffic, matching the skewed reuse that
//! makes the server's conversion cache worth measuring.

use pasta_core::{Error, Result};

/// The request kinds a stream can mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// Element-wise two-tensor op.
    Tew,
    /// Tensor-scalar op.
    Ts,
    /// Tensor-times-vector.
    Ttv,
    /// Tensor-times-matrix.
    Ttm,
    /// Matricized tensor times Khatri-Rao product.
    Mttkrp,
    /// CP-ALS decomposition job.
    Cpd,
    /// Tucker-HOOI decomposition job.
    Tucker,
    /// Composite expression-graph job (a lowered multi-step chain).
    Expr,
}

impl ReqKind {
    /// All kinds, in mix-line order.
    pub const ALL: [ReqKind; 8] = [
        ReqKind::Tew,
        ReqKind::Ts,
        ReqKind::Ttv,
        ReqKind::Ttm,
        ReqKind::Mttkrp,
        ReqKind::Cpd,
        ReqKind::Tucker,
        ReqKind::Expr,
    ];

    /// The lowercase label used in `.reqs` mix lines.
    pub fn label(self) -> &'static str {
        match self {
            ReqKind::Tew => "tew",
            ReqKind::Ts => "ts",
            ReqKind::Ttv => "ttv",
            ReqKind::Ttm => "ttm",
            ReqKind::Mttkrp => "mttkrp",
            ReqKind::Cpd => "cpd",
            ReqKind::Tucker => "tucker",
            ReqKind::Expr => "expr",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Relative draw weights per request kind. A zero weight excludes the
/// kind from the stream entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Weights indexed like [`ReqKind::ALL`].
    pub weights: [u32; 8],
}

impl Default for OpMix {
    /// The servebench default: streaming kernels dominate, decomposition
    /// jobs are rare, and Tucker and composite expression jobs are off
    /// (Tucker's dense per-mode eigensolve is cubic in the mode
    /// dimension; expr chains are opted into per stream so legacy `.reqs`
    /// headers replay bit-identically).
    fn default() -> Self {
        Self { weights: [3, 3, 2, 1, 2, 1, 0, 0] }
    }
}

impl OpMix {
    /// The weight of one kind.
    pub fn weight(&self, kind: ReqKind) -> u32 {
        self.weights[ReqKind::ALL.iter().position(|k| *k == kind).unwrap()]
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.weights.iter().map(|&w| u64::from(w)).sum()
    }
}

/// The replayable header of a `.reqs` stream: everything
/// [`generate`](StreamSpec::generate) needs to reproduce the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Master seed; every draw in the stream descends from it.
    pub seed: u64,
    /// Base catalog profile id (e.g. `"s1"`); the load harness resolves
    /// catalog slots from it.
    pub profile: String,
    /// Catalog scale factor passed to profile materialization.
    pub scale: f64,
    /// Number of catalog tensors the stream addresses.
    pub tensors: usize,
    /// Number of requests.
    pub count: usize,
    /// Tensor-popularity power-law exponent (1.0 = Zipf-like; larger is
    /// more skewed).
    pub skew: f64,
    /// Relative op weights.
    pub mix: OpMix,
}

impl Default for StreamSpec {
    fn default() -> Self {
        Self {
            seed: 42,
            profile: "s1".to_string(),
            scale: 0.02,
            tensors: 3,
            count: 120,
            skew: 1.3,
            mix: OpMix::default(),
        }
    }
}

/// One generated request, in catalog-agnostic form: the consumer maps
/// `tensor` to a catalog id and clamps `mode` by the tensor's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenRequest {
    /// Catalog slot index in `0..tensors`.
    pub tensor: usize,
    /// Which op.
    pub kind: ReqKind,
    /// Raw mode draw (consumer reduces modulo the tensor order).
    pub mode: usize,
    /// Rank draw in `1..=8` (TTM/MTTKRP/CPD/Tucker).
    pub rank: usize,
    /// Per-request operand seed.
    pub seed: u64,
}

/// SplitMix64, the stream's only entropy source.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Truncated power-law index in `0..n` from one uniform draw — the same
/// inverse CDF as [`PowerLawGen`](crate::PowerLawGen), driven by
/// SplitMix64 bits instead of an `StdRng`.
fn powerlaw_index(n: usize, skew: f64, draw: u64) -> usize {
    if n <= 1 {
        return 0;
    }
    let nf = n as f64;
    let u = (((draw >> 11) as f64) / (1u64 << 53) as f64).max(1e-300);
    let k = if (skew - 1.0).abs() < 1e-9 {
        nf.powf(u)
    } else {
        let a = 1.0 - skew;
        ((u * (nf.powf(a) - 1.0)) + 1.0).powf(1.0 / a)
    };
    // k lands in [1, n] with 1 the hottest value; shift to 0-based.
    ((k.floor() as usize).max(1) - 1).min(n - 1)
}

impl StreamSpec {
    /// Renders the `.reqs` header text. [`parse`](StreamSpec::parse) of
    /// the result reproduces `self` exactly (floats round-trip through
    /// Rust's shortest representation).
    pub fn render(&self) -> String {
        let mix = ReqKind::ALL
            .iter()
            .map(|&k| format!("{}:{}", k.label(), self.mix.weight(k)))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "pasta-reqs v1\nseed {}\nprofile {}\nscale {:?}\ntensors {}\ncount {}\nskew {:?}\nmix {}\n",
            self.seed, self.profile, self.scale, self.tensors, self.count, self.skew, mix
        )
    }

    /// Parses a `.reqs` header.
    ///
    /// # Errors
    ///
    /// Returns an error for a missing/unknown magic line, unknown or
    /// duplicate keys, malformed values, or a spec that cannot generate
    /// (zero tensors, zero total mix weight).
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |what: String| Error::OperandMismatch { what };
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next().map(str::trim) != Some("pasta-reqs v1") {
            return Err(bad("missing `pasta-reqs v1` magic line".into()));
        }
        let mut spec = StreamSpec::default();
        let mut seen: Vec<&str> = Vec::new();
        for line in lines {
            let mut parts = line.trim().splitn(2, ' ');
            let key = parts.next().unwrap_or("");
            let val = parts.next().unwrap_or("").trim();
            if seen.contains(&key) {
                return Err(bad(format!("duplicate key `{key}`")));
            }
            match key {
                "seed" => spec.seed = val.parse().map_err(|_| bad(format!("bad seed `{val}`")))?,
                "profile" => spec.profile = val.to_string(),
                "scale" => {
                    spec.scale = val.parse().map_err(|_| bad(format!("bad scale `{val}`")))?;
                }
                "tensors" => {
                    spec.tensors = val.parse().map_err(|_| bad(format!("bad tensors `{val}`")))?;
                }
                "count" => {
                    spec.count = val.parse().map_err(|_| bad(format!("bad count `{val}`")))?;
                }
                "skew" => spec.skew = val.parse().map_err(|_| bad(format!("bad skew `{val}`")))?,
                "mix" => {
                    // Unlisted kinds get weight 0, so legacy seven-item
                    // mix lines (pre-expr) parse unchanged.
                    let mut weights = [0u32; 8];
                    for item in val.split_whitespace() {
                        let (label, w) = item
                            .split_once(':')
                            .ok_or_else(|| bad(format!("bad mix item `{item}`")))?;
                        let kind = ReqKind::from_label(label)
                            .ok_or_else(|| bad(format!("unknown op `{label}` in mix")))?;
                        let pos = ReqKind::ALL.iter().position(|k| *k == kind).unwrap();
                        weights[pos] =
                            w.parse().map_err(|_| bad(format!("bad weight `{item}`")))?;
                    }
                    spec.mix = OpMix { weights };
                }
                _ => return Err(bad(format!("unknown key `{key}`"))),
            }
            seen.push(key);
        }
        if spec.tensors == 0 {
            return Err(bad("tensors must be >= 1".into()));
        }
        if spec.mix.total() == 0 {
            return Err(bad("mix has zero total weight".into()));
        }
        Ok(spec)
    }

    /// Expands the header into the concrete request stream. Pure in the
    /// header: equal specs generate equal streams, on any host.
    pub fn generate(&self) -> Vec<GenRequest> {
        let total = self.mix.total().max(1);
        let mut state = self.seed ^ 0x005E_ED0F_5EED;
        (0..self.count)
            .map(|_| {
                let tensor = powerlaw_index(self.tensors, self.skew, splitmix(&mut state));
                let mut pick = splitmix(&mut state) % total;
                let kind = ReqKind::ALL
                    .into_iter()
                    .find(|&k| {
                        let w = u64::from(self.mix.weight(k));
                        if pick < w {
                            true
                        } else {
                            pick -= w;
                            false
                        }
                    })
                    .expect("total weight covers every draw");
                let mode = (splitmix(&mut state) % 4) as usize;
                let rank = 1 + (splitmix(&mut state) % 8) as usize;
                let seed = splitmix(&mut state);
                GenRequest { tensor, kind, mode, rank, seed }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let spec = StreamSpec {
            seed: 987,
            profile: "r3".into(),
            scale: 0.037,
            tensors: 5,
            count: 64,
            skew: 1.0,
            mix: OpMix { weights: [1, 0, 4, 2, 3, 0, 1, 2] },
        };
        let text = spec.render();
        let back = StreamSpec::parse(&text).unwrap();
        assert_eq!(back, spec);
        // And the streams agree bit for bit.
        assert_eq!(back.generate(), spec.generate());
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = StreamSpec::default();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.count);
        let other = StreamSpec { seed: 43, ..spec };
        assert_ne!(a, other.generate());
    }

    #[test]
    fn mix_weights_gate_kinds() {
        // Only TTV has weight: every request is a TTV.
        let mut weights = [0u32; 8];
        weights[2] = 5;
        let spec = StreamSpec { mix: OpMix { weights }, count: 50, ..StreamSpec::default() };
        assert!(spec.generate().iter().all(|r| r.kind == ReqKind::Ttv));
        // Default mix has Tucker off.
        let dflt = StreamSpec { count: 200, ..StreamSpec::default() };
        assert!(dflt.generate().iter().all(|r| r.kind != ReqKind::Tucker));
    }

    #[test]
    fn popularity_is_skewed_toward_low_indices() {
        let spec = StreamSpec { tensors: 8, count: 400, skew: 1.5, ..StreamSpec::default() };
        let stream = spec.generate();
        assert!(stream.iter().all(|r| r.tensor < 8));
        let hot = stream.iter().filter(|r| r.tensor == 0).count();
        let cold = stream.iter().filter(|r| r.tensor == 7).count();
        assert!(hot > cold, "power-law popularity must favor tensor 0 ({hot} vs {cold})");
        assert!(stream.iter().all(|r| r.rank >= 1 && r.rank <= 8 && r.mode < 4));
    }

    #[test]
    fn legacy_seven_item_mix_lines_still_parse() {
        let text = "pasta-reqs v1\nmix tew:1 ts:1 ttv:1 ttm:1 mttkrp:1 cpd:1 tucker:1\n";
        let spec = StreamSpec::parse(text).unwrap();
        assert_eq!(spec.mix.weight(ReqKind::Expr), 0, "expr defaults off");
        assert!(spec.generate().iter().all(|r| r.kind != ReqKind::Expr));
    }

    #[test]
    fn expr_weight_produces_expr_requests() {
        let mut weights = [0u32; 8];
        weights[7] = 3;
        let spec = StreamSpec { mix: OpMix { weights }, count: 20, ..StreamSpec::default() };
        assert!(spec.generate().iter().all(|r| r.kind == ReqKind::Expr));
        // And the header round-trips with the new label.
        let back = StreamSpec::parse(&spec.render()).unwrap();
        assert_eq!(back.mix.weight(ReqKind::Expr), 3);
    }

    #[test]
    fn parse_rejects_malformed_headers() {
        assert!(StreamSpec::parse("").is_err(), "no magic");
        assert!(StreamSpec::parse("pasta-reqs v2\n").is_err(), "wrong version");
        let base = StreamSpec::default().render();
        assert!(StreamSpec::parse(&format!("{base}seed 1\n")).is_err(), "duplicate key");
        assert!(StreamSpec::parse(&format!("{base}bogus 1\n")).is_err(), "unknown key");
        assert!(StreamSpec::parse("pasta-reqs v1\nseed x\n").is_err(), "bad value");
        assert!(StreamSpec::parse("pasta-reqs v1\ntensors 0\n").is_err(), "zero tensors");
        assert!(StreamSpec::parse("pasta-reqs v1\nmix tew:0 ts:0\n").is_err(), "zero-weight mix");
    }
}
