//! The biased power-law streaming generator (Section IV-B-2).
//!
//! Models the FireHose benchmark's biased power-law edge generator: a stream
//! of edges whose endpoint popularity follows a (truncated) power law.
//! Rooted in a graph (sparse matrix), the stream is stacked into slices to
//! form a third-order tensor, and the process repeated to add further modes
//! — the paper's irregular tensors have two large equidimensional power-law
//! modes and one or two small, nearly dense modes.

use pasta_core::{CooTensor, Coord, Error, Result, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How one tensor mode's indices are drawn by [`PowerLawGen`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModeDist {
    /// Truncated power-law (Pareto-like) over `0..dim`: index popularity
    /// decays as `rank^(-exponent)`.
    PowerLaw,
    /// Uniform over `0..dim` (the small, nearly dense modes).
    Uniform,
}

/// A biased power-law tensor generator.
///
/// # Examples
///
/// ```
/// use pasta_gen::{ModeDist, PowerLawGen};
///
/// let gen = PowerLawGen::new(1.5);
/// let t = gen
///     .generate(
///         &[10_000, 10_000, 64],
///         &[ModeDist::PowerLaw, ModeDist::PowerLaw, ModeDist::Uniform],
///         5_000,
///         42,
///     )
///     .unwrap();
/// assert_eq!(t.order(), 3);
/// assert!(t.nnz() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawGen {
    exponent: f64,
}

impl PowerLawGen {
    /// Creates a generator whose power-law modes decay with the given
    /// exponent (> 0; FireHose-like skew around 1.5).
    ///
    /// # Panics
    ///
    /// Panics unless `exponent` is finite and positive.
    pub fn new(exponent: f64) -> Self {
        assert!(exponent.is_finite() && exponent > 0.0, "exponent must be positive");
        Self { exponent }
    }

    /// The decay exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one index in `0..dim` from the truncated power law using the
    /// inverse-CDF of a continuous Pareto truncated at `dim`.
    fn sample_powerlaw(&self, dim: Coord, rng: &mut StdRng) -> Coord {
        let n = dim as f64;
        let u: f64 = rng.gen::<f64>().max(1e-300);
        let s = self.exponent;
        let k = if (s - 1.0).abs() < 1e-9 {
            // s = 1: CDF ∝ ln(k), inverse is exponential in u.
            n.powf(u)
        } else {
            let a = 1.0 - s;
            ((u * (n.powf(a) - 1.0)) + 1.0).powf(1.0 / a)
        };
        ((k.floor() as u64).min(dim as u64 - 1)) as Coord
    }

    /// Generates a sparse tensor: each mode's indices drawn per `dists`,
    /// approximately `target_nnz` edges (duplicates collapse into weighted
    /// non-zeros).
    ///
    /// # Errors
    ///
    /// Returns an error on dims/dists length mismatch, zero dims or zero
    /// `target_nnz`.
    pub fn generate(
        &self,
        dims: &[Coord],
        dists: &[ModeDist],
        target_nnz: usize,
        seed: u64,
    ) -> Result<CooTensor<f32>> {
        if dims.len() != dists.len() {
            return Err(Error::OrderMismatch { left: dims.len(), right: dists.len() });
        }
        if target_nnz == 0 {
            return Err(Error::OperandMismatch { what: "target_nnz must be positive".into() });
        }
        let shape = Shape::try_new(dims.to_vec())?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = CooTensor::with_capacity(shape, target_nnz);
        let mut coords = vec![0 as Coord; dims.len()];
        for _ in 0..target_nnz {
            for (m, c) in coords.iter_mut().enumerate() {
                *c = match dists[m] {
                    ModeDist::PowerLaw => self.sample_powerlaw(dims[m], &mut rng),
                    ModeDist::Uniform => rng.gen_range(0..dims[m]),
                };
            }
            t.push(&coords, 1.0)?;
        }
        t.dedup_sum();
        Ok(t)
    }

    /// Convenience: the paper's irregular third-order shape — two
    /// equidimensional power-law modes of extent `dim` and one small uniform
    /// mode of extent `k`.
    ///
    /// # Errors
    ///
    /// As for [`Self::generate`].
    pub fn generate3(
        &self,
        dim: Coord,
        k: Coord,
        target_nnz: usize,
        seed: u64,
    ) -> Result<CooTensor<f32>> {
        self.generate(
            &[dim, dim, k],
            &[ModeDist::PowerLaw, ModeDist::PowerLaw, ModeDist::Uniform],
            target_nnz,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let g = PowerLawGen::new(1.5);
        let a = g.generate3(1000, 16, 2000, 1).unwrap();
        let b = g.generate3(1000, 16, 2000, 1).unwrap();
        let c = g.generate3(1000, 16, 2000, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn powerlaw_mode_is_skewed_uniform_mode_is_not() {
        let g = PowerLawGen::new(1.8);
        let t = g.generate3(100_000, 32, 50_000, 3).unwrap();
        // Mode 0 (power law): a heavy head — index 0 should be very popular.
        let head = t.mode_inds(0).iter().filter(|&&c| c < 10).count();
        assert!(head as f64 > 0.2 * t.nnz() as f64, "head={head} of {}", t.nnz());
        // Mode 2 (uniform over 32): every slice populated, roughly balanced.
        let mut counts = vec![0usize; 32];
        for &c in t.mode_inds(2) {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*mx < mn * 3, "uniform mode too skewed: {mn}..{mx}");
    }

    #[test]
    fn small_mode_is_nearly_dense() {
        // The paper's irregular tensors have their short mode(s) completely
        // dense: with enough samples every index of the short mode appears.
        let g = PowerLawGen::new(1.5);
        let t = g.generate3(50_000, 64, 20_000, 9).unwrap();
        let distinct: std::collections::HashSet<_> = t.mode_inds(2).iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn respects_bounds_and_order() {
        let g = PowerLawGen::new(2.2);
        let t = g
            .generate(
                &[5000, 5000, 30, 100],
                &[ModeDist::PowerLaw, ModeDist::PowerLaw, ModeDist::Uniform, ModeDist::Uniform],
                4000,
                4,
            )
            .unwrap();
        assert_eq!(t.order(), 4);
        for m in 0..4 {
            let d = t.shape().dim(m);
            assert!(t.mode_inds(m).iter().all(|&c| c < d));
        }
    }

    #[test]
    fn exponent_one_special_case() {
        let g = PowerLawGen::new(1.0);
        let t = g.generate3(10_000, 8, 5000, 6).unwrap();
        assert!(t.nnz() > 0);
        assert_eq!(g.exponent(), 1.0);
    }

    #[test]
    fn arg_validation() {
        let g = PowerLawGen::new(1.5);
        assert!(g.generate(&[10, 10], &[ModeDist::PowerLaw], 100, 0).is_err());
        assert!(g.generate3(10, 10, 0, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_exponent() {
        let _ = PowerLawGen::new(-1.0);
    }

    #[test]
    fn duplicate_mass_preserved() {
        let g = PowerLawGen::new(1.5);
        let t = g.generate3(16, 2, 1000, 8).unwrap();
        let total: f32 = t.vals().iter().sum();
        assert_eq!(total, 1000.0);
    }
}
