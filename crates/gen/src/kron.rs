//! The stochastic Kronecker tensor generator (Section IV-B-1).
//!
//! Extends the Kronecker graph model (Leskovec et al.; Graph500's generator)
//! to order-`N` tensors: a small *initiator* tensor of cell probabilities is
//! Kronecker-multiplied with itself `L` times, and non-zeros are drawn by
//! Bernoulli-sampling the product — implemented, as in Graph500, by sampling
//! each non-zero with `L` independent descents through the initiator. The
//! resulting tensors follow a power-law degree distribution, have small
//! diameter and high clustering, like real-world networks.
//!
//! Non-power-of-initiator dimensions are handled the way the paper
//! describes: one extra Kronecker iteration is performed and coordinates
//! falling outside the requested dimensions are stripped (resampled).

use pasta_core::{CooTensor, Coord, Error, Result, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stochastic Kronecker tensor generator.
///
/// # Examples
///
/// ```
/// use pasta_gen::KroneckerGen;
///
/// let gen = KroneckerGen::new(3); // default 2×2×2 initiator
/// let t = gen.generate(&[1024, 1024, 1024], 5_000, 42).unwrap();
/// assert!(t.nnz() > 0 && t.nnz() <= 5_000);
/// assert_eq!(t.order(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct KroneckerGen {
    /// Initiator mode dimensions (e.g. `[2, 2, 2]`).
    init_dims: Vec<Coord>,
    /// Initiator cell probabilities, row-major, normalized to sum 1.
    probs: Vec<f64>,
    /// Cumulative distribution over cells for inverse-transform sampling.
    cdf: Vec<f64>,
}

impl KroneckerGen {
    /// Creates a generator with the default skewed 2-per-mode initiator, the
    /// order-`N` generalization of Graph500's `(A, B, B, C)` matrix: cell
    /// probability decays geometrically with the number of high bits.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn new(order: usize) -> Self {
        assert!(order > 0, "order must be positive");
        // Graph500 uses A=0.57 for the all-low corner; generalize so a cell
        // with k high coordinates has weight 0.57 * 0.45^k (normalized).
        let cells = 1usize << order;
        let probs: Vec<f64> =
            (0..cells).map(|c| 0.57 * 0.45_f64.powi(c.count_ones() as i32)).collect();
        Self::with_initiator(vec![2; order], probs).expect("default initiator is valid")
    }

    /// Creates a generator from an explicit initiator: `dims` per mode and a
    /// row-major probability (weight) per cell. Weights are normalized.
    ///
    /// # Errors
    ///
    /// Returns an error if dims are empty/zero, the weight count mismatches,
    /// or any weight is negative / all are zero.
    pub fn with_initiator(dims: Vec<Coord>, weights: Vec<f64>) -> Result<Self> {
        if dims.is_empty() || dims.iter().any(|&d| d < 2) {
            return Err(Error::OperandMismatch {
                what: "initiator needs at least 2 cells per mode".into(),
            });
        }
        let cells: usize = dims.iter().map(|&d| d as usize).product();
        if weights.len() != cells {
            return Err(Error::OperandMismatch {
                what: format!("expected {cells} initiator weights, got {}", weights.len()),
            });
        }
        if weights.iter().any(|&w| w < 0.0) {
            return Err(Error::OperandMismatch { what: "negative initiator weight".into() });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(Error::OperandMismatch { what: "initiator weights sum to zero".into() });
        }
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(cells);
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cdf.push(acc);
        }
        *cdf.last_mut().expect("nonempty") = 1.0;
        Ok(Self { init_dims: dims, probs, cdf })
    }

    /// The tensor order.
    pub fn order(&self) -> usize {
        self.init_dims.len()
    }

    /// The initiator cell probabilities (normalized).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Samples one cell index of the initiator.
    fn sample_cell(&self, rng: &mut StdRng) -> Vec<Coord> {
        let u: f64 = rng.gen();
        let cell = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        // De-linearize row-major.
        let mut rem = cell;
        let mut coords = vec![0; self.order()];
        for (m, &d) in self.init_dims.iter().enumerate().rev() {
            coords[m] = (rem % d as usize) as Coord;
            rem /= d as usize;
        }
        coords
    }

    /// Generates a sparse tensor with the given dimensions and approximately
    /// `target_nnz` non-zeros (duplicates collapse, so the result may hold
    /// slightly fewer). Values count edge multiplicity.
    ///
    /// # Errors
    ///
    /// Returns an error for empty dims or zero `target_nnz`.
    pub fn generate(&self, dims: &[Coord], target_nnz: usize, seed: u64) -> Result<CooTensor<f32>> {
        if dims.len() != self.order() {
            return Err(Error::OrderMismatch { left: self.order(), right: dims.len() });
        }
        if target_nnz == 0 {
            return Err(Error::OperandMismatch { what: "target_nnz must be positive".into() });
        }
        let shape = Shape::try_new(dims.to_vec())?;
        // Levels: enough iterations that the Kronecker power covers every
        // dimension; coordinates outside are stripped (resampled).
        let levels: Vec<u32> = dims
            .iter()
            .zip(&self.init_dims)
            .map(|(&d, &b)| {
                let mut l = 0u32;
                let mut size = 1u64;
                while size < d as u64 {
                    size *= b as u64;
                    l += 1;
                }
                l.max(1)
            })
            .collect();
        let max_level = *levels.iter().max().expect("nonempty");

        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = CooTensor::with_capacity(shape, target_nnz);
        let mut coords = vec![0 as Coord; self.order()];
        let mut produced = 0usize;
        let mut attempts = 0usize;
        let max_attempts = target_nnz.saturating_mul(64).max(1024);
        while produced < target_nnz && attempts < max_attempts {
            attempts += 1;
            coords.iter_mut().for_each(|c| *c = 0);
            for _ in 0..max_level {
                let cell = self.sample_cell(&mut rng);
                for (m, c) in coords.iter_mut().enumerate() {
                    *c = *c * self.init_dims[m] + cell[m];
                }
            }
            // Strip coordinates outside the requested dims (the extra-
            // iteration trick for non-power dimensions).
            if coords.iter().zip(dims).all(|(&c, &d)| c < d) {
                t.push(&coords, 1.0)?;
                produced += 1;
            }
        }
        t.dedup_sum();
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let g = KroneckerGen::new(3);
        let a = g.generate(&[256, 256, 256], 2000, 7).unwrap();
        let b = g.generate(&[256, 256, 256], 2000, 7).unwrap();
        let c = g.generate(&[256, 256, 256], 2000, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_dims() {
        let g = KroneckerGen::new(4);
        let t = g.generate(&[100, 64, 64, 30], 3000, 1).unwrap();
        assert_eq!(t.shape().dims(), &[100, 64, 64, 30]);
        for m in 0..4 {
            let dim = t.shape().dim(m);
            assert!(t.mode_inds(m).iter().all(|&c| c < dim));
        }
    }

    #[test]
    fn skewed_initiator_clusters_low_corner() {
        // The default initiator weights the all-low corner: expect far more
        // non-zeros in the low half of mode 0 than the high half.
        let g = KroneckerGen::new(3);
        let t = g.generate(&[1024, 1024, 1024], 20_000, 3).unwrap();
        let low = t.mode_inds(0).iter().filter(|&&c| c < 512).count();
        let high = t.nnz() - low;
        assert!(low > high * 2, "low={low} high={high}");
    }

    #[test]
    fn power_law_ish_mode_degrees() {
        // Top-degree index should hold a disproportionate share of non-zeros.
        let g = KroneckerGen::new(3);
        let t = g.generate(&[512, 512, 512], 30_000, 11).unwrap();
        let mut counts = std::collections::HashMap::new();
        for &c in t.mode_inds(0) {
            *counts.entry(c).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = t.nnz() as f64 / counts.len() as f64;
        assert!(max as f64 > 10.0 * mean, "max={max} mean={mean}");
    }

    #[test]
    fn custom_initiator_validation() {
        assert!(KroneckerGen::with_initiator(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(KroneckerGen::with_initiator(vec![2, 2], vec![-1.0, 1.0, 1.0, 1.0]).is_err());
        assert!(KroneckerGen::with_initiator(vec![2, 2], vec![0.0; 4]).is_err());
        assert!(KroneckerGen::with_initiator(vec![1, 2], vec![1.0, 1.0]).is_err());
        let ok = KroneckerGen::with_initiator(vec![3, 3], vec![1.0; 9]).unwrap();
        assert_eq!(ok.order(), 2);
        assert!((ok.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_generate_args() {
        let g = KroneckerGen::new(3);
        assert!(g.generate(&[16, 16], 100, 0).is_err());
        assert!(g.generate(&[16, 16, 16], 0, 0).is_err());
    }

    #[test]
    fn values_count_multiplicity() {
        let g = KroneckerGen::new(2);
        // Tiny space forces collisions; values should sum to sampled count.
        let t = g.generate(&[4, 4], 500, 5).unwrap();
        let total: f32 = t.vals().iter().sum();
        assert_eq!(total, 500.0);
        assert!(t.nnz() <= 16);
    }
}
