//! Feature-mimicking synthetic generation.
//!
//! Observation 5 of the paper closes with: "Extracting features from real
//! tensors as a basis to create more complete synthetic tensors would be
//! very helpful for sparse tensor research." This module does exactly that:
//! [`extract_features`] measures a tensor's per-mode index-popularity skew
//! (a truncated-power-law exponent fit) and shape, and
//! [`MimicSpec::generate`] synthesizes a new tensor with the same order,
//! dimensions, non-zero budget and per-mode skew profile.

use crate::powerlaw::{ModeDist, PowerLawGen};
use pasta_core::{CooTensor, Coord, Result, TensorStats, Value};

/// Measured per-mode skew: how concentrated the mode's index usage is.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeProfile {
    /// Mode dimension.
    pub dim: Coord,
    /// Distinct indices actually used.
    pub distinct: usize,
    /// Fraction of non-zeros landing on the top 1% most popular indices.
    pub head_mass: f64,
    /// Fitted truncated-power-law exponent (`0` ⇒ effectively uniform).
    pub exponent: f64,
}

/// A generator recipe extracted from an example tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct MimicSpec {
    /// Tensor order.
    pub order: usize,
    /// Mode dimensions.
    pub dims: Vec<Coord>,
    /// Target non-zeros (the example's count).
    pub nnz: usize,
    /// Per-mode skew profiles.
    pub modes: Vec<ModeProfile>,
}

/// Measures one mode's popularity skew.
fn profile_mode<V: Value>(t: &CooTensor<V>, m: usize) -> ModeProfile {
    let dim = t.shape().dim(m);
    let mut counts: std::collections::HashMap<Coord, u64> = std::collections::HashMap::new();
    for &c in t.mode_inds(m) {
        *counts.entry(c).or_insert(0) += 1;
    }
    let distinct = counts.len();
    let mut sorted: Vec<u64> = counts.values().copied().collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let head = (distinct.max(100) / 100).max(1);
    let head_mass = sorted.iter().take(head).sum::<u64>() as f64 / t.nnz().max(1) as f64;

    // Exponent fit: on a rank-frequency plot, a power law has
    // freq(rank) ∝ rank^(-s). Regress log-freq on log-rank over the head.
    let take = sorted.len().min(256);
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut n = 0.0;
    for (rank, &f) in sorted.iter().take(take).enumerate() {
        let x = ((rank + 1) as f64).ln();
        let y = (f as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        n += 1.0;
    }
    let exponent = if n >= 2.0 && (n * sxx - sx * sx).abs() > 1e-12 {
        (-(n * sxy - sx * sy) / (n * sxx - sx * sx)).max(0.0)
    } else {
        0.0
    };
    ModeProfile { dim, distinct, head_mass, exponent }
}

/// Extracts a [`MimicSpec`] from an example tensor.
pub fn extract_features<V: Value>(t: &CooTensor<V>) -> MimicSpec {
    MimicSpec {
        order: t.order(),
        dims: t.shape().dims().to_vec(),
        nnz: t.nnz(),
        modes: (0..t.order()).map(|m| profile_mode(t, m)).collect(),
    }
}

impl MimicSpec {
    /// The per-mode distribution choice the spec implies: modes with
    /// meaningful skew become power-law, near-flat modes uniform.
    pub fn mode_dists(&self) -> Vec<ModeDist> {
        self.modes
            .iter()
            .map(|p| {
                if p.exponent > 0.3 && p.head_mass > 0.02 {
                    ModeDist::PowerLaw
                } else {
                    ModeDist::Uniform
                }
            })
            .collect()
    }

    /// The blended skew exponent used for the power-law modes.
    pub fn blended_exponent(&self) -> f64 {
        let skewed: Vec<f64> =
            self.modes.iter().filter(|p| p.exponent > 0.3).map(|p| p.exponent).collect();
        if skewed.is_empty() {
            1.0
        } else {
            (skewed.iter().sum::<f64>() / skewed.len() as f64).clamp(0.5, 3.0)
        }
    }

    /// Generates a synthetic tensor matching the extracted features.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (none for well-formed specs).
    pub fn generate(&self, seed: u64) -> Result<CooTensor<f32>> {
        PowerLawGen::new(self.blended_exponent()).generate(
            &self.dims,
            &self.mode_dists(),
            self.nnz,
            seed,
        )
    }
}

/// Compares two tensors' feature vectors; returns the worst relative error
/// over (per-mode head mass, density) — the fidelity metric for mimicry.
pub fn feature_distance<V: Value>(a: &CooTensor<V>, b: &CooTensor<V>) -> f64 {
    let (fa, fb) = (extract_features(a), extract_features(b));
    let mut worst = 0.0f64;
    for (pa, pb) in fa.modes.iter().zip(&fb.modes) {
        let denom = pa.head_mass.max(0.01);
        worst = worst.max((pa.head_mass - pb.head_mass).abs() / denom);
    }
    let (sa, sb) = (TensorStats::compute(a), TensorStats::compute(b));
    let ddist = (sa.density - sb.density).abs() / sa.density.max(1e-300);
    worst.max(ddist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::PowerLawGen;

    #[test]
    fn uniform_mode_detected_as_flat() {
        let g = PowerLawGen::new(1.5);
        let t = g.generate3(5_000, 64, 20_000, 1).unwrap();
        let spec = extract_features(&t);
        assert_eq!(spec.order, 3);
        let dists = spec.mode_dists();
        // Modes 0/1 are power-law, mode 2 uniform.
        assert_eq!(dists[0], ModeDist::PowerLaw);
        assert_eq!(dists[1], ModeDist::PowerLaw);
        assert_eq!(dists[2], ModeDist::Uniform);
        assert!(spec.modes[0].head_mass > spec.modes[2].head_mass);
    }

    #[test]
    fn exponent_fit_orders_correctly() {
        // Steeper generators must yield larger fitted exponents.
        let flat = PowerLawGen::new(0.8).generate3(20_000, 8, 30_000, 2).unwrap();
        let steep = PowerLawGen::new(2.2).generate3(20_000, 8, 30_000, 2).unwrap();
        let ef = extract_features(&flat).modes[0].exponent;
        let es = extract_features(&steep).modes[0].exponent;
        assert!(es > ef, "steep {es} vs flat {ef}");
    }

    #[test]
    fn mimic_reproduces_skew_profile() {
        let original = PowerLawGen::new(1.6).generate3(10_000, 32, 40_000, 3).unwrap();
        let spec = extract_features(&original);
        let clone = spec.generate(99).unwrap();
        assert_eq!(clone.shape(), original.shape());
        // Head mass of the skewed modes should be in the same ballpark.
        let fo = extract_features(&original);
        let fc = extract_features(&clone);
        for m in 0..2 {
            let (a, b) = (fo.modes[m].head_mass, fc.modes[m].head_mass);
            assert!((a - b).abs() < 0.5 * a.max(b), "mode {m}: {a} vs {b}");
        }
        assert!(feature_distance(&original, &clone) < 1.0);
    }

    #[test]
    fn mimicking_uniform_data_stays_uniform() {
        let g = PowerLawGen::new(1.0);
        let t =
            g.generate(&[500, 500], &[ModeDist::Uniform, ModeDist::Uniform], 10_000, 4).unwrap();
        let spec = extract_features(&t);
        assert!(spec.mode_dists().iter().all(|d| *d == ModeDist::Uniform));
        assert_eq!(spec.blended_exponent(), 1.0, "fallback when no skewed modes");
        let clone = spec.generate(5).unwrap();
        assert_eq!(clone.shape(), t.shape());
    }

    #[test]
    fn feature_distance_zero_ish_for_self() {
        let t = PowerLawGen::new(1.4).generate3(2_000, 16, 8_000, 6).unwrap();
        assert!(feature_distance(&t, &t) < 1e-12);
    }
}
