//! Dataset profiles: the paper's Table II, scaled for laptop-class runs.
//!
//! The paper evaluates on 15 real tensors (FROSTT, HaTen2, CHOA — Table
//! II(a)) and 15 synthetic tensors (Table II(b)). The real collections range
//! up to 144M non-zeros and are partly unobtainable (CHOA is private medical
//! data), so this suite generates *analogs*: tensors with the same order,
//! the same mode-size ratios and the same density ordering, produced by the
//! suite's own Kronecker and power-law generators at roughly 1/100 the
//! non-zero count. Each profile records the paper's original dimensions and
//! nnz alongside its scaled ones so harnesses can report both.

use crate::kron::KroneckerGen;
use crate::powerlaw::{ModeDist, PowerLawGen};
use pasta_core::{CooTensor, Coord, Result};

/// The generator recipe behind a profile.
#[derive(Debug, Clone, PartialEq)]
pub enum Method {
    /// Stochastic Kronecker with the default skewed initiator.
    Kronecker,
    /// Biased power law with the given exponent and per-mode distributions.
    PowerLaw {
        /// Decay exponent for the power-law modes.
        exponent: f64,
        /// Distribution per mode.
        dists: Vec<ModeDist>,
    },
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Kronecker => write!(f, "Kron."),
            Method::PowerLaw { .. } => write!(f, "PL"),
        }
    }
}

/// One dataset entry: a named tensor recipe plus the paper's original
/// characteristics for side-by-side reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorProfile {
    /// Row id in Table II (`r1`…`r15`, `s1`…`s15`).
    pub id: &'static str,
    /// Tensor name (`vast`, `regS`, …).
    pub name: &'static str,
    /// Scaled mode dimensions this suite generates.
    pub dims: Vec<Coord>,
    /// Scaled non-zero target.
    pub target_nnz: usize,
    /// Generator recipe.
    pub method: Method,
    /// RNG seed (fixed: the suite is reproducible).
    pub seed: u64,
    /// The paper's original dimensions.
    pub paper_dims: Vec<u64>,
    /// The paper's original non-zero count.
    pub paper_nnz: u64,
}

impl TensorProfile {
    /// The tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// The density after scaling (using the target nnz).
    pub fn density(&self) -> f64 {
        self.target_nnz as f64 / self.dims.iter().map(|&d| d as f64).product::<f64>()
    }

    /// Generates the tensor.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (none occur for the built-in profiles).
    pub fn generate(&self) -> Result<CooTensor<f32>> {
        self.generate_scaled(1.0)
    }

    /// Generates with the non-zero target scaled by `frac` (e.g. `0.1` for
    /// quick tests). Dimensions are unchanged.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn generate_scaled(&self, frac: f64) -> Result<CooTensor<f32>> {
        let nnz = ((self.target_nnz as f64 * frac) as usize).max(16);
        match &self.method {
            Method::Kronecker => {
                KroneckerGen::new(self.order()).generate(&self.dims, nnz, self.seed)
            }
            Method::PowerLaw { exponent, dists } => {
                PowerLawGen::new(*exponent).generate(&self.dims, dists, nnz, self.seed)
            }
        }
    }
}

fn pl(exponent: f64, dists: Vec<ModeDist>) -> Method {
    Method::PowerLaw { exponent, dists }
}

use ModeDist::{PowerLaw as P, Uniform as U};

/// The 15 synthetic tensors of Table II(b), scaled (`regS` … `irr2L4d`).
///
/// Regular (`reg*`) tensors are equidimensional Kronecker tensors; irregular
/// (`irr*`) tensors come from the power-law generator with one or two short,
/// nearly dense modes.
pub fn synthetic_profiles() -> Vec<TensorProfile> {
    vec![
        TensorProfile {
            id: "s1",
            name: "regS",
            dims: vec![1 << 14; 3],
            target_nnz: 64_000,
            method: Method::Kronecker,
            seed: 101,
            paper_dims: vec![65_000; 3],
            paper_nnz: 1_100_000,
        },
        TensorProfile {
            id: "s2",
            name: "regM",
            dims: vec![1 << 17; 3],
            target_nnz: 256_000,
            method: Method::Kronecker,
            seed: 102,
            paper_dims: vec![1_100_000; 3],
            paper_nnz: 11_500_000,
        },
        TensorProfile {
            id: "s3",
            name: "regL",
            dims: vec![1 << 20; 3],
            target_nnz: 1_000_000,
            method: Method::Kronecker,
            seed: 103,
            paper_dims: vec![8_300_000; 3],
            paper_nnz: 94_000_000,
        },
        TensorProfile {
            id: "s4",
            name: "irrS",
            dims: vec![8_192, 8_192, 76],
            target_nnz: 64_000,
            method: pl(1.5, vec![P, P, U]),
            seed: 104,
            paper_dims: vec![32_000, 32_000, 76],
            paper_nnz: 1_000_000,
        },
        TensorProfile {
            id: "s5",
            name: "irrM",
            dims: vec![65_536, 65_536, 126],
            target_nnz: 256_000,
            method: pl(1.5, vec![P, P, U]),
            seed: 105,
            paper_dims: vec![524_000, 524_000, 126],
            paper_nnz: 10_000_000,
        },
        TensorProfile {
            id: "s6",
            name: "irrL",
            dims: vec![524_288, 524_288, 168],
            target_nnz: 1_000_000,
            method: pl(1.5, vec![P, P, U]),
            seed: 106,
            paper_dims: vec![4_200_000, 4_200_000, 168],
            paper_nnz: 84_000_000,
        },
        TensorProfile {
            id: "s7",
            name: "regS4d",
            dims: vec![1 << 8; 4],
            target_nnz: 64_000,
            method: Method::Kronecker,
            seed: 107,
            paper_dims: vec![8_200; 4],
            paper_nnz: 1_000_000,
        },
        TensorProfile {
            id: "s8",
            name: "regM4d",
            dims: vec![1 << 11; 4],
            target_nnz: 256_000,
            method: Method::Kronecker,
            seed: 108,
            paper_dims: vec![2_100_000; 4],
            paper_nnz: 11_200_000,
        },
        TensorProfile {
            id: "s9",
            name: "regL4d",
            dims: vec![1 << 13; 4],
            target_nnz: 1_000_000,
            method: Method::Kronecker,
            seed: 109,
            paper_dims: vec![8_300_000; 4],
            paper_nnz: 110_000_000,
        },
        TensorProfile {
            id: "s10",
            name: "irrS4d",
            dims: vec![16_384, 16_384, 16_384, 82],
            target_nnz: 64_000,
            method: pl(1.5, vec![P, P, P, U]),
            seed: 110,
            paper_dims: vec![1_600_000, 1_600_000, 1_600_000, 82],
            paper_nnz: 1_000_000,
        },
        TensorProfile {
            id: "s11",
            name: "irrM4d",
            dims: vec![65_536, 65_536, 65_536, 144],
            target_nnz: 256_000,
            method: pl(1.5, vec![P, P, P, U]),
            seed: 111,
            paper_dims: vec![2_600_000, 2_600_000, 2_600_000, 144],
            paper_nnz: 10_800_000,
        },
        TensorProfile {
            id: "s12",
            name: "irrL4d",
            dims: vec![131_072, 131_072, 131_072, 226],
            target_nnz: 1_000_000,
            method: pl(1.5, vec![P, P, P, U]),
            seed: 112,
            paper_dims: vec![4_200_000, 4_200_000, 4_200_000, 226],
            paper_nnz: 100_000_000,
        },
        TensorProfile {
            id: "s13",
            name: "irr2S4d",
            dims: vec![8_192, 8_192, 122, 436],
            target_nnz: 100_000,
            method: pl(1.5, vec![P, P, U, U]),
            seed: 113,
            paper_dims: vec![1_000_000, 1_000_000, 122, 436],
            paper_nnz: 1_600_000,
        },
        TensorProfile {
            id: "s14",
            name: "irr2M4d",
            dims: vec![32_768, 32_768, 232, 746],
            target_nnz: 320_000,
            method: pl(1.5, vec![P, P, U, U]),
            seed: 114,
            paper_dims: vec![4_200_000, 4_200_000, 232, 746],
            paper_nnz: 19_900_000,
        },
        TensorProfile {
            id: "s15",
            name: "irr2L4d",
            dims: vec![65_536, 65_536, 952, 324],
            target_nnz: 1_000_000,
            method: pl(1.5, vec![P, P, U, U]),
            seed: 115,
            paper_dims: vec![8_300_000, 8_300_000, 952, 324],
            paper_nnz: 109_000_000,
        },
    ]
}

/// Analogs of the 15 real tensors of Table II(a) (`vast` … `deli4d`),
/// ordered like the paper: by tensor order, then decreasing density.
///
/// Dimensions are the paper's divided by ~10 (small modes kept), non-zero
/// counts divided by ~100; the generator mixes power-law modes (scale-free
/// data like social networks) and uniform modes (categorical data).
pub fn real_profiles() -> Vec<TensorProfile> {
    vec![
        TensorProfile {
            id: "r1",
            name: "vast",
            dims: vec![16_500, 1_100, 2],
            target_nnz: 260_000,
            method: pl(1.1, vec![U, U, U]),
            seed: 201,
            paper_dims: vec![165_000, 11_000, 2],
            paper_nnz: 26_000_000,
        },
        TensorProfile {
            id: "r2",
            name: "nell2",
            dims: vec![1_200, 900, 2_900],
            target_nnz: 770_000,
            method: pl(1.4, vec![P, P, P]),
            seed: 202,
            paper_dims: vec![12_000, 9_000, 29_000],
            paper_nnz: 77_000_000,
        },
        TensorProfile {
            id: "r3",
            name: "choa",
            dims: vec![71_200, 1_000, 77],
            target_nnz: 270_000,
            method: pl(1.4, vec![P, P, U]),
            seed: 203,
            paper_dims: vec![712_000, 10_000, 767],
            paper_nnz: 27_000_000,
        },
        TensorProfile {
            id: "r4",
            name: "darpa",
            dims: vec![2_200, 2_200, 2_400_000],
            target_nnz: 280_000,
            method: pl(1.6, vec![P, P, P]),
            seed: 204,
            paper_dims: vec![22_000, 22_000, 24_000_000],
            paper_nnz: 28_000_000,
        },
        TensorProfile {
            id: "r5",
            name: "fb-m",
            dims: vec![2_300_000, 2_300_000, 17],
            target_nnz: 1_000_000,
            method: pl(1.7, vec![P, P, U]),
            seed: 205,
            paper_dims: vec![23_000_000, 23_000_000, 166],
            paper_nnz: 100_000_000,
        },
        TensorProfile {
            id: "r6",
            name: "fb-s",
            dims: vec![3_900_000, 3_900_000, 53],
            target_nnz: 1_400_000,
            method: pl(1.7, vec![P, P, U]),
            seed: 206,
            paper_dims: vec![39_000_000, 39_000_000, 532],
            paper_nnz: 140_000_000,
        },
        TensorProfile {
            id: "r7",
            name: "flickr",
            dims: vec![32_000, 2_800_000, 160_000],
            target_nnz: 1_100_000,
            method: pl(1.6, vec![P, P, P]),
            seed: 207,
            paper_dims: vec![320_000, 28_000_000, 1_600_000],
            paper_nnz: 113_000_000,
        },
        TensorProfile {
            id: "r8",
            name: "deli",
            dims: vec![53_300, 1_700_000, 250_000],
            target_nnz: 1_400_000,
            method: pl(1.6, vec![P, P, P]),
            seed: 208,
            paper_dims: vec![533_000, 17_000_000, 2_500_000],
            paper_nnz: 140_000_000,
        },
        TensorProfile {
            id: "r9",
            name: "nell1",
            dims: vec![290_000, 210_000, 2_500_000],
            target_nnz: 1_400_000,
            method: pl(1.6, vec![P, P, P]),
            seed: 209,
            paper_dims: vec![2_900_000, 2_100_000, 25_000_000],
            paper_nnz: 144_000_000,
        },
        TensorProfile {
            id: "r10",
            name: "crime4d",
            dims: vec![600, 24, 77, 32],
            target_nnz: 50_000,
            method: pl(1.2, vec![P, U, U, U]),
            seed: 210,
            paper_dims: vec![6_000, 24, 77, 32],
            paper_nnz: 5_000_000,
        },
        TensorProfile {
            id: "r11",
            name: "uber4d",
            dims: vec![183, 24, 1_140, 1_717],
            target_nnz: 30_000,
            method: pl(1.3, vec![U, U, P, P]),
            seed: 211,
            paper_dims: vec![183, 24, 1_140, 1_717],
            paper_nnz: 3_000_000,
        },
        TensorProfile {
            id: "r12",
            name: "nips4d",
            dims: vec![2_000, 3_000, 14_000, 17],
            target_nnz: 30_000,
            method: pl(1.4, vec![P, P, P, U]),
            seed: 212,
            paper_dims: vec![2_000, 3_000, 14_000, 17],
            paper_nnz: 3_000_000,
        },
        TensorProfile {
            id: "r13",
            name: "enron4d",
            dims: vec![600, 600, 24_400, 100],
            target_nnz: 540_000,
            method: pl(1.5, vec![P, P, P, U]),
            seed: 213,
            paper_dims: vec![6_000, 6_000, 244_000, 1_000],
            paper_nnz: 54_000_000,
        },
        TensorProfile {
            id: "r14",
            name: "flickr4d",
            dims: vec![32_000, 2_800_000, 160_000, 73],
            target_nnz: 1_100_000,
            method: pl(1.6, vec![P, P, P, U]),
            seed: 214,
            paper_dims: vec![320_000, 28_000_000, 1_600_000, 731],
            paper_nnz: 113_000_000,
        },
        TensorProfile {
            id: "r15",
            name: "deli4d",
            dims: vec![53_300, 1_700_000, 250_000, 100],
            target_nnz: 1_400_000,
            method: pl(1.6, vec![P, P, P, U]),
            seed: 215,
            paper_dims: vec![533_000, 17_000_000, 2_500_000, 1_000],
            paper_nnz: 140_000_000,
        },
    ]
}

/// Looks up a profile from either dataset by id (`r4`) or name (`darpa`).
pub fn find_profile(key: &str) -> Option<TensorProfile> {
    synthetic_profiles()
        .into_iter()
        .chain(real_profiles())
        .find(|p| p.id.eq_ignore_ascii_case(key) || p.name.eq_ignore_ascii_case(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_each() {
        assert_eq!(synthetic_profiles().len(), 15);
        assert_eq!(real_profiles().len(), 15);
    }

    #[test]
    fn ids_and_names_unique() {
        let all: Vec<TensorProfile> =
            synthetic_profiles().into_iter().chain(real_profiles()).collect();
        let mut ids: Vec<&str> = all.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 30);
        let mut names: Vec<&str> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn orders_match_paper() {
        for p in synthetic_profiles().iter().chain(&real_profiles()) {
            assert_eq!(p.dims.len(), p.paper_dims.len(), "{}", p.id);
            assert!(p.order() == 3 || p.order() == 4, "{}", p.id);
        }
    }

    #[test]
    fn real_density_ordering_roughly_preserved() {
        // Table II(a) sorts by order then decreasing density; check the
        // third-order analogs keep a decreasing trend (within 10x slack).
        let third: Vec<TensorProfile> =
            real_profiles().into_iter().filter(|p| p.order() == 3).collect();
        for w in third.windows(2) {
            assert!(
                w[0].density() > w[1].density() / 10.0,
                "{} ({:.2e}) vs {} ({:.2e})",
                w[0].id,
                w[0].density(),
                w[1].id,
                w[1].density()
            );
        }
    }

    #[test]
    fn small_profiles_generate() {
        for key in ["s1", "s4", "s7", "s13", "r1", "r10", "r12"] {
            let p = find_profile(key).unwrap();
            let t = p.generate_scaled(0.05).unwrap();
            assert_eq!(t.order(), p.order(), "{key}");
            assert!(t.nnz() > 0, "{key}");
            assert_eq!(t.shape().dims(), &p.dims[..], "{key}");
        }
    }

    #[test]
    fn find_profile_by_id_and_name() {
        assert_eq!(find_profile("r4").unwrap().name, "darpa");
        assert_eq!(find_profile("DARPA").unwrap().id, "r4");
        assert_eq!(find_profile("regS").unwrap().id, "s1");
        assert!(find_profile("nope").is_none());
    }

    #[test]
    fn generation_is_reproducible() {
        let p = find_profile("s4").unwrap();
        let a = p.generate_scaled(0.02).unwrap();
        let b = p.generate_scaled(0.02).unwrap();
        assert_eq!(a, b);
    }
}
