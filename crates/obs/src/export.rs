//! chrome://tracing "trace event" JSON exporter and validator.
//!
//! The exporter serializes every ring's events into the [trace-event
//! format] chrome://tracing and Perfetto load directly: one object with a
//! `traceEvents` array of `{ph, pid, tid, ts, name, cat, args}` records,
//! where `ph` is `"B"`/`"E"` for span begin/end, `"i"` for instants, and
//! `"C"` for counter samples. Timestamps are microseconds (`t_ns / 1000`).
//!
//! Rings drop events when full, so a thread's tail may contain unmatched
//! begin/end events. The exporter repairs the stream per thread before
//! writing: unmatched `End`s are skipped and unclosed `Begin`s are closed
//! at the thread's last timestamp, so the emitted pairs always nest.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::counters::counters;
use crate::json::{self, Json};
use crate::ring::{snapshot_events, Event, Phase};

/// Serializes all recorded events (plus current counter values) as
/// chrome://tracing trace-event JSON.
pub fn chrome_trace_json() -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    let threads = snapshot_events();
    let mut max_t = 0u64;
    for (tid, events, dropped) in &threads {
        for ev in repair(events) {
            max_t = max_t.max(ev.t_ns);
            sep(&mut out);
            push_event(&mut out, *tid, &ev);
        }
        if *dropped > 0 {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3},\"s\":\"t\",\
                 \"name\":\"ring.dropped\",\"cat\":\"obs\",\"args\":{{\"a\":{dropped}}}}}",
                max_t as f64 / 1000.0,
            );
        }
    }
    // Counter values as one "C" sample per nonzero counter, on tid 0.
    for (name, value) in counters().iter() {
        if value > 0 {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{:.3},\
                 \"name\":\"{name}\",\"args\":{{\"value\":{value}}}}}",
                max_t as f64 / 1000.0,
            );
        }
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] to `path`, creating parent directories.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, chrome_trace_json())
}

fn push_event(out: &mut String, tid: u32, ev: &Event) {
    let ph = match ev.phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
    };
    let ts = ev.t_ns as f64 / 1000.0;
    let _ = write!(
        out,
        "{{\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\
         \"name\":\"{}\",\"cat\":\"{}\"",
        ev.name, ev.cat
    );
    if ev.phase == Phase::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if ev.phase != Phase::End {
        let _ = write!(out, ",\"args\":{{");
        let mut first = true;
        if !ev.detail.is_empty() {
            let _ = write!(out, "\"detail\":\"{}\"", ev.detail);
            first = false;
        }
        for (k, v) in [("a", ev.a), ("b", ev.b), ("c", ev.c)] {
            if v != 0 {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
                first = false;
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Repairs one thread's event stream so begin/end pairs balance: unmatched
/// `End`s are dropped, unclosed `Begin`s are closed at the last timestamp.
fn repair(events: &[Event]) -> Vec<Event> {
    let mut out = Vec::with_capacity(events.len());
    let mut stack: Vec<&'static str> = Vec::new();
    let last_t = events.last().map_or(0, |e| e.t_ns);
    for ev in events {
        match ev.phase {
            Phase::Begin => {
                stack.push(ev.name);
                out.push(*ev);
            }
            Phase::End => {
                if stack.last() == Some(&ev.name) {
                    stack.pop();
                    out.push(*ev);
                }
                // Unmatched end (its begin fell off the ring): skip.
            }
            Phase::Instant => out.push(*ev),
        }
    }
    // Close anything still open, innermost first, at the final timestamp.
    while let Some(name) = stack.pop() {
        out.push(Event {
            name,
            cat: "obs",
            detail: "",
            phase: Phase::End,
            t_ns: last_t,
            a: 0,
            b: 0,
            c: 0,
        });
    }
    out
}

/// Validates trace-event JSON: parses it, checks the `traceEvents` schema
/// (required `ph`/`pid`/`tid`/`ts`/`name` fields), and verifies begin/end
/// events nest properly per `tid` (LIFO match by name, nothing left open).
///
/// Returns the number of span pairs checked.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let root = json::parse(text)?;
    let events = match root.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        _ => return Err("missing \"traceEvents\" array".to_string()),
    };
    let mut stacks: Vec<(f64, Vec<(String, f64)>)> = Vec::new(); // (tid, open spans)
    let mut pairs = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.str_field("ph").map_err(|e| format!("event {i}: {e}"))?;
        ev.num_field("pid").map_err(|e| format!("event {i}: {e}"))?;
        let tid = ev.num_field("tid").map_err(|e| format!("event {i}: {e}"))?;
        let ts = ev.num_field("ts").map_err(|e| format!("event {i}: {e}"))?;
        let name = ev.str_field("name").map_err(|e| format!("event {i}: {e}"))?;
        match ph {
            "B" => {
                let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
                    Some((_, s)) => s,
                    None => {
                        stacks.push((tid, Vec::new()));
                        &mut stacks.last_mut().unwrap().1
                    }
                };
                stack.push((name.to_string(), ts));
            }
            "E" => {
                let stack = stacks
                    .iter_mut()
                    .find(|(t, _)| *t == tid)
                    .map(|(_, s)| s)
                    .ok_or_else(|| format!("event {i}: E with no open span on tid {tid}"))?;
                let (open, t0) = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: E \"{name}\" with empty stack"))?;
                if open != name {
                    return Err(format!("event {i}: E \"{name}\" closes open span \"{open}\""));
                }
                if ts < t0 {
                    return Err(format!("event {i}: span \"{name}\" ends before it begins"));
                }
                pairs += 1;
            }
            "i" | "C" | "I" => {}
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("span \"{name}\" on tid {tid} never closes"));
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, phase: Phase, t_ns: u64) -> Event {
        Event { name, cat: "test", detail: "", phase, t_ns, a: 0, b: 0, c: 0 }
    }

    #[test]
    fn repair_balances_truncated_streams() {
        // A ring that filled up mid-span: outer never ends, plus a stray
        // end whose begin predates the recorded window.
        let events = [
            ev("stray", Phase::End, 5),
            ev("outer", Phase::Begin, 10),
            ev("inner", Phase::Begin, 20),
            ev("inner", Phase::End, 30),
        ];
        let fixed = repair(&events);
        let begins = fixed.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = fixed.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins, ends);
        assert!(!fixed.iter().any(|e| e.name == "stray"));
        assert_eq!(fixed.last().unwrap().name, "outer");
        assert_eq!(fixed.last().unwrap().t_ns, 30);
    }

    #[test]
    fn exporter_output_validates() {
        crate::set_tracing(true);
        {
            let _outer = crate::span("test", "export.outer");
            let _inner = crate::span_detail("test", "export.inner", "tag", 1, 2, 3);
            crate::instant("test", "export.tick", "", 9, 0, 0);
        }
        crate::set_tracing(false);
        let json = chrome_trace_json();
        let pairs = validate_chrome_trace(&json).expect("exporter output must validate");
        assert!(pairs >= 2, "expected at least the two test spans, got {pairs}");
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("export.inner"));
    }

    #[test]
    fn validator_rejects_bad_nesting() {
        let crossed = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":1.0,"name":"a","cat":"t"},
            {"ph":"B","pid":1,"tid":0,"ts":2.0,"name":"b","cat":"t"},
            {"ph":"E","pid":1,"tid":0,"ts":3.0,"name":"a","cat":"t"},
            {"ph":"E","pid":1,"tid":0,"ts":4.0,"name":"b","cat":"t"}]}"#;
        assert!(validate_chrome_trace(crossed).is_err());
        let unclosed = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":1.0,"name":"a","cat":"t"}]}"#;
        assert!(validate_chrome_trace(unclosed).is_err());
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
    }
}
