//! Lock-free per-thread span/event ring buffers.
//!
//! Each thread that records while tracing is [`enabled`](crate::enabled)
//! lazily allocates one fixed-capacity ring and registers it in a
//! global list (the only lock in the module, taken once per thread and at
//! export). The record path is a single-producer append: the owning thread
//! writes the slot, then publishes it with a release store of the length;
//! readers acquire-load the length and see fully-written events. A full
//! ring drops new events (and counts them) rather than overwriting old
//! ones, so the recorded prefix keeps its begin/end structure.
//!
//! Span taxonomy: events carry a `cat` (subsystem: `sort`, `convert`,
//! `kernel`, `plan`, `pool`, `bench`, `sim`) and a `name`
//! (`subsystem.point`, e.g. `mttkrp.merge`), mirroring the counter naming
//! scheme, plus a static `detail` tag and three numeric args.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events one thread can hold before new ones are dropped (counted).
pub const RING_CAPACITY: usize = 1 << 15;

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened ([`span`]).
    Begin,
    /// A span closed ([`SpanGuard`] drop).
    End,
    /// A point event ([`instant`]).
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Event name, `subsystem.point` (e.g. `"mttkrp.merge"`).
    pub name: &'static str,
    /// Subsystem category (e.g. `"kernel"`).
    pub cat: &'static str,
    /// Optional static tag (strategy label, format label, …; `""` if none).
    pub detail: &'static str,
    /// Begin / end / instant.
    pub phase: Phase,
    /// Nanoseconds since the process's first recorded event.
    pub t_ns: u64,
    /// First numeric argument (site-specific; 0 if unused).
    pub a: u64,
    /// Second numeric argument.
    pub b: u64,
    /// Third numeric argument.
    pub c: u64,
}

const EMPTY: Event =
    Event { name: "", cat: "", detail: "", phase: Phase::Instant, t_ns: 0, a: 0, b: 0, c: 0 };

/// One thread's event buffer. Written only by the owning thread; read by
/// the exporter (quiescent or tolerating a truncated tail).
struct Ring {
    tid: u32,
    len: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[UnsafeCell<Event>]>,
}

// SAFETY: slots below `len` are written once (before the release store of
// `len`) and only read afterwards; the single writer is the owning thread.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(tid: u32) -> Self {
        Self {
            tid,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| UnsafeCell::new(EMPTY)).collect(),
        }
    }

    /// Appends an event (owning thread only).
    fn push(&self, ev: Event) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: only the owning thread writes, and slot `i` is not yet
        // published (readers stop at the acquire-loaded `len`).
        unsafe { *self.slots[i].get() = ev };
        self.len.store(i + 1, Ordering::Release);
    }

    fn snapshot(&self) -> Vec<Event> {
        let n = self.len.load(Ordering::Acquire).min(self.slots.len());
        // SAFETY: slots below `n` were published by the release store.
        (0..n).map(|i| unsafe { *self.slots[i].get() }).collect()
    }
}

/// All rings ever registered (one per recording thread).
fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The common time origin for every thread's timestamps.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

fn with_local_ring(f: impl FnOnce(&Ring)) {
    LOCAL.with(|cell| {
        let ring = cell.get_or_init(|| {
            let mut all = rings().lock().unwrap();
            let ring = Arc::new(Ring::new(all.len() as u32));
            all.push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

fn record(
    phase: Phase,
    cat: &'static str,
    name: &'static str,
    detail: &'static str,
    args: [u64; 3],
) {
    let t_ns = anchor().elapsed().as_nanos() as u64;
    with_local_ring(|ring| {
        ring.push(Event { name, cat, detail, phase, t_ns, a: args[0], b: args[1], c: args[2] });
    });
}

/// An RAII span: records a begin event now and the matching end event on
/// drop. When tracing is disabled the guard is inert and records nothing.
#[derive(Debug)]
#[must_use = "a span closes when the guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard {
    armed: bool,
    cat: &'static str,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record(Phase::End, self.cat, self.name, "", [0; 3]);
        }
    }
}

/// Opens a span. The hot-path cost when tracing is off is the
/// [`enabled`](crate::enabled) relaxed load.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    span_detail(cat, name, "", 0, 0, 0)
}

/// Opens a span whose begin event carries a static tag and numeric args.
#[inline]
pub fn span_detail(
    cat: &'static str,
    name: &'static str,
    detail: &'static str,
    a: u64,
    b: u64,
    c: u64,
) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { armed: false, cat, name };
    }
    record(Phase::Begin, cat, name, detail, [a, b, c]);
    SpanGuard { armed: true, cat, name }
}

/// Records a point event (no duration).
#[inline]
pub fn instant(
    cat: &'static str,
    name: &'static str,
    detail: &'static str,
    a: u64,
    b: u64,
    c: u64,
) {
    if crate::enabled() {
        record(Phase::Instant, cat, name, detail, [a, b, c]);
    }
}

/// Snapshots every thread's recorded events as `(tid, events, dropped)`.
pub fn snapshot_events() -> Vec<(u32, Vec<Event>, u64)> {
    rings()
        .lock()
        .unwrap()
        .iter()
        .map(|r| (r.tid, r.snapshot(), r.dropped.load(Ordering::Relaxed)))
        .collect()
}

/// Empties every ring. Only meaningful while no thread is recording
/// (between runs); a concurrent writer may interleave with the reset.
pub fn reset_events() {
    for ring in rings().lock().unwrap().iter() {
        ring.len.store(0, Ordering::Release);
        ring.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        crate::set_tracing(false);
        let before: usize = snapshot_events().iter().map(|(_, e, _)| e.len()).sum();
        {
            let _s = span("test", "test.noop");
            instant("test", "test.point", "", 1, 2, 3);
        }
        let after: usize = snapshot_events().iter().map(|(_, e, _)| e.len()).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn spans_nest_and_instants_interleave() {
        crate::set_tracing(true);
        {
            let _outer = span_detail("test", "test.outer", "tag", 7, 8, 9);
            instant("test", "test.mid", "", 1, 0, 0);
            let _inner = span("test", "test.inner");
        }
        crate::set_tracing(false);
        let mine: Vec<Event> = snapshot_events()
            .into_iter()
            .flat_map(|(_, evs, _)| evs)
            .filter(|e| e.cat == "test" && e.name.starts_with("test."))
            .collect();
        let outer_b = mine
            .iter()
            .position(|e| e.name == "test.outer" && e.phase == Phase::Begin)
            .expect("outer begin");
        let rest = &mine[outer_b..];
        assert!(rest.iter().any(|e| e.name == "test.mid" && e.phase == Phase::Instant));
        let inner_e =
            rest.iter().position(|e| e.name == "test.inner" && e.phase == Phase::End).unwrap();
        let outer_e =
            rest.iter().position(|e| e.name == "test.outer" && e.phase == Phase::End).unwrap();
        assert!(inner_e < outer_e, "inner span must close before outer");
        assert_eq!(rest[0].detail, "tag");
        assert_eq!(rest[0].a, 7);
    }
}
