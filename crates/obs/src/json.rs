//! A deliberately small JSON reader shared by the trace validator, the
//! perf-regression gate, and the kernel tuner's table loader: objects,
//! arrays, strings without escapes, numbers, bools, null.
//!
//! Errors are plain `String`s so the crate stays dependency-free; callers
//! wrap them in their own error types.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number (all JSON numbers read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required string member.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s),
            _ => Err(format!("missing string field {key:?}")),
        }
    }

    /// Required numeric member.
    pub fn num_field(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Json::Num(n)) => Ok(*n),
            _ => Err(format!("missing numeric field {key:?}")),
        }
    }
}

/// Parses a single JSON value (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Json::Null),
        Some(_) => number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("expected {word} at byte {pos}", pos = *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let start = *pos;
    while *pos < b.len() && b[*pos] != b'"' {
        if b[*pos] == b'\\' {
            return Err("string escapes are not supported".to_string());
        }
        *pos += 1;
    }
    if *pos >= b.len() {
        return Err("unterminated string".to_string());
    }
    let s = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| "non-UTF-8 string".to_string())?
        .to_string();
    *pos += 1; // closing quote
    Ok(s)
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at byte {pos}", pos = *pos));
        }
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let j = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(
            j.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Str("x".into())]))
        );
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(j.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(j.get("b").unwrap().str_field("c"), Err("missing string field \"c\"".into()));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
