//! The unified [`CounterRegistry`]: every named monotonic counter in the
//! suite, in one process-wide table.
//!
//! This replaces the bespoke per-subsystem counter globals the kernel
//! crate grew: call sites name a [`CounterId`] and the registry
//! does one relaxed `fetch_add` behind the [`counting`](crate::counting)
//! gate. Names follow a `subsystem.metric` scheme (`mttkrp.owner_nnz`,
//! `fused.plan_cache_hits`, `pool.steals`, …) so exporters can enumerate
//! the table without knowing who owns which counter.

use std::ops::Index;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counter_ids {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)*) => {
        /// Every counter the suite records, named `subsystem.metric`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum CounterId {
            $($(#[$doc])* $variant,)*
        }

        impl CounterId {
            /// All counters, in declaration order.
            pub const ALL: &'static [CounterId] = &[$(CounterId::$variant,)*];

            /// The counter's `subsystem.metric` name.
            pub fn name(self) -> &'static str {
                match self {
                    $(CounterId::$variant => $name,)*
                }
            }
        }
    };
}

counter_ids! {
    /// Non-zeros processed by sequential MTTKRP schedules.
    MttkrpSequentialNnz => "mttkrp.sequential_nnz",
    /// Non-zeros processed by owner-computes MTTKRP schedules.
    MttkrpOwnerNnz => "mttkrp.owner_nnz",
    /// Non-zeros processed by privatized-reduction MTTKRP schedules.
    MttkrpPrivatizedNnz => "mttkrp.privatized_nnz",
    /// Bytes moved merging worker-private MTTKRP accumulators.
    MttkrpMergeBytes => "mttkrp.merge_bytes",
    /// Times an MTTKRP plan re-sorted a tensor to enable owner-computes.
    MttkrpResorts => "mttkrp.resorts",
    /// Input non-zeros processed by fused chain executions.
    FusedEntries => "fused.entries",
    /// Fused chain executions (one per sweep·mode, or per TTV product).
    FusedChains => "fused.chains",
    /// Bytes allocated as per-thread fused workspaces.
    FusedWorkspaceBytes => "fused.workspace_bytes",
    /// Intermediate sparse tensors materialized by kernel-at-a-time
    /// chains (the ablation baseline; zero on the fused path).
    FusedMaterialized => "fused.materialized_intermediates",
    /// Cached per-run fused plans reused instead of rebuilt.
    FusedPlanCacheHits => "fused.plan_cache_hits",
    /// Per-run fused plans built for the first time.
    FusedPlanCacheMisses => "fused.plan_cache_misses",
    /// Kernel plans validated against the route registry.
    PlansBuilt => "pipeline.plans_built",
    /// Radix passes executed (single-bucket skipped passes excluded).
    SortRadixPasses => "sort.radix_passes",
    /// Entries fed through the radix sorter.
    SortEntries => "sort.entries",
    /// COO → HiCOO conversions performed.
    HicooConversions => "convert.hicoo_conversions",
    /// Tasks executed by pool workers (broadcast shares and one-offs).
    PoolTasks => "pool.tasks",
    /// Tasks a pool worker stole from another worker's queue.
    PoolSteals => "pool.steals",
    /// Nanoseconds pool workers spent parked with no work.
    PoolIdleNs => "pool.idle_ns",
    /// Simulated GPU kernel launches.
    SimLaunches => "sim.launches",
    /// Requests admitted by the serving layer.
    ServeRequests => "serve.requests",
    /// Batches of compatible requests dispatched by the serving layer.
    ServeBatches => "serve.batches",
    /// Owner-computes shard tasks issued by the serving layer.
    ServeShardTasks => "serve.shard_tasks",
    /// Conversion products served from the cache.
    CacheHits => "cache.hits",
    /// Conversion products built because the cache had no entry.
    CacheMisses => "cache.misses",
    /// Conversion products evicted to stay under the cache byte budget.
    CacheEvictions => "cache.evictions",
    /// Expression graphs lowered to executable plans.
    ExprPlans => "expr.plans",
    /// Expression-graph edges the planner chose to evaluate fused.
    ExprFusedEdges => "expr.fused_edges",
    /// Expression-graph edges the planner chose to materialize.
    ExprMaterializedEdges => "expr.materialized_edges",
    /// Lowered expression plans re-executed instead of re-lowered.
    ExprPlanCacheHits => "expr.plan_cache_hits",
}

/// Number of registered counters.
const N: usize = CounterId::ALL.len();

/// The process-wide table of monotonic counters.
///
/// All increments are relaxed; the set read by [`snapshot`] is therefore
/// not atomic as a whole — callers compare snapshots taken around a region
/// of interest, as the suite's tests do.
///
/// [`snapshot`]: CounterRegistry::snapshot
#[derive(Debug)]
pub struct CounterRegistry {
    vals: [AtomicU64; N],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static REGISTRY: CounterRegistry = CounterRegistry { vals: [ZERO; N] };

/// The process-wide counter registry.
pub fn counters() -> &'static CounterRegistry {
    &REGISTRY
}

impl CounterRegistry {
    /// Adds `n` to counter `id` (a relaxed `fetch_add`), unless counting
    /// is disabled — in which case every counter stays untouched.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if crate::counting() {
            self.vals[id as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value of counter `id`.
    pub fn get(&self, id: CounterId) -> u64 {
        self.vals[id as usize].load(Ordering::Relaxed)
    }

    /// Reads every counter at once.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut vals = [0u64; N];
        for (v, a) in vals.iter_mut().zip(&self.vals) {
            *v = a.load(Ordering::Relaxed);
        }
        CounterSnapshot { vals }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for a in &self.vals {
            a.store(0, Ordering::Relaxed);
        }
    }

    /// Iterates `(name, value)` over every counter, in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        CounterId::ALL.iter().map(move |&id| (id.name(), self.get(id)))
    }
}

/// A point-in-time copy of every counter in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    vals: [u64; N],
}

impl CounterSnapshot {
    /// The snapshotted value of counter `id` (also available via indexing:
    /// `snap[CounterId::MttkrpResorts]`).
    pub fn get(&self, id: CounterId) -> u64 {
        self.vals[id as usize]
    }

    /// Iterates `(name, value)` over the snapshot, in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        CounterId::ALL.iter().map(move |&id| (id.name(), self.get(id)))
    }
}

impl Index<CounterId> for CounterSnapshot {
    type Output = u64;

    fn index(&self, id: CounterId) -> &u64 {
        &self.vals[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_scoped() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate counter names");
        for n in names {
            assert!(n.contains('.'), "{n} must follow subsystem.metric");
        }
    }

    #[test]
    fn add_get_snapshot_roundtrip() {
        // The registry is shared across tests; assert deltas only.
        crate::set_counting(true);
        let before = counters().snapshot();
        counters().add(CounterId::SimLaunches, 3);
        let after = counters().snapshot();
        assert!(after[CounterId::SimLaunches] >= before[CounterId::SimLaunches] + 3);
        assert!(counters().get(CounterId::SimLaunches) >= 3);
        assert!(counters().iter().any(|(n, _)| n == "sim.launches"));
        assert!(after.iter().count() == CounterId::ALL.len());
    }
}
