//! # pasta-obs — the suite's unified tracing/metrics layer
//!
//! Every crate in the workspace used to grow its own telemetry island
//! (per-kernel counter globals, the simulator's access traces).
//! This crate replaces them with one std-only layer at the bottom of the
//! dependency graph, usable from the thread pool up to the bench harness:
//!
//! - **[`counters()`]** — a process-wide [`CounterRegistry`] of named
//!   monotonic counters ([`CounterId`]), incremented with one relaxed
//!   `fetch_add` behind a relaxed-load gate ([`counting`], on by default,
//!   `PASTA_COUNTERS=0` disables);
//! - **[`ring`]** — lock-free per-thread span/event ring buffers behind
//!   the [`enabled`] fast path (off by default, `PASTA_TRACE=1` or
//!   [`set_tracing`] enables). When tracing is off, [`span`] is a single
//!   relaxed atomic load and records nothing — zero numeric impact on the
//!   kernels it instruments;
//! - **[`export`]** — a chrome://tracing "trace event" JSON exporter
//!   ([`write_chrome_trace`]) that repairs unbalanced begin/end pairs so
//!   the output always nests;
//! - **[`json`]** — the minimal JSON value parser shared by the tuner
//!   table, the trace validator, and the perf-regression gate.
//!
//! # Examples
//!
//! ```
//! use pasta_obs::{counters, set_tracing, span, CounterId};
//!
//! counters().add(CounterId::MttkrpResorts, 1);
//! set_tracing(true);
//! {
//!     let _outer = span("kernel", "mttkrp.coo");
//!     let _inner = span("kernel", "mttkrp.merge");
//! } // spans close in drop order, so the trace nests
//! let json = pasta_obs::chrome_trace_json();
//! assert!(json.contains("traceEvents"));
//! # pasta_obs::set_tracing(false);
//! # pasta_obs::reset_events();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counters;
pub mod export;
pub mod json;
pub mod ring;

pub use counters::{counters, CounterId, CounterRegistry, CounterSnapshot};
pub use export::{chrome_trace_json, validate_chrome_trace, write_chrome_trace};
pub use ring::{
    instant, reset_events, snapshot_events, span, span_detail, Event, Phase, SpanGuard,
};

use std::sync::atomic::{AtomicU32, Ordering};

/// Flag bit: span/event recording is on.
const TRACE_BIT: u32 = 1;
/// Flag bit: counter increments are on.
const COUNT_BIT: u32 = 2;
/// Sentinel: flags not yet initialised from the environment.
const UNINIT: u32 = u32::MAX;

/// Process-wide observability flags. Initialised lazily from `PASTA_TRACE`
/// and `PASTA_COUNTERS` on first query; after that every query is a single
/// relaxed load.
static FLAGS: AtomicU32 = AtomicU32::new(UNINIT);

#[inline]
fn flags() -> u32 {
    let f = FLAGS.load(Ordering::Relaxed);
    if f == UNINIT {
        init_flags_from_env()
    } else {
        f
    }
}

#[cold]
fn init_flags_from_env() -> u32 {
    let on = |v: &str| matches!(v, "1" | "on" | "true" | "yes");
    let mut f = 0;
    if std::env::var("PASTA_TRACE").map(|v| on(&v)).unwrap_or(false) {
        f |= TRACE_BIT;
    }
    // Counters default ON (they are one relaxed fetch_add and the suite's
    // tests assert on them); PASTA_COUNTERS=0 turns them off.
    let counters_off =
        std::env::var("PASTA_COUNTERS").map(|v| matches!(v.as_str(), "0" | "off" | "false" | "no"));
    if !counters_off.unwrap_or(false) {
        f |= COUNT_BIT;
    }
    // Racing initialisers compute the same value; last store wins harmlessly.
    FLAGS.store(f, Ordering::Relaxed);
    f
}

/// Whether span/event tracing is enabled.
///
/// This is the fast path the instrumentation sites hit: after the first
/// call it compiles to one relaxed atomic load plus a bit test.
#[inline]
pub fn enabled() -> bool {
    flags() & TRACE_BIT != 0
}

/// Whether counter increments are enabled (on by default).
#[inline]
pub fn counting() -> bool {
    flags() & COUNT_BIT != 0
}

/// Turns span/event tracing on or off programmatically (`hostrun --trace`
/// and the test suites use this instead of the `PASTA_TRACE` variable).
pub fn set_tracing(on: bool) {
    set_bit(TRACE_BIT, on);
}

/// Turns counter increments on or off programmatically.
pub fn set_counting(on: bool) {
    set_bit(COUNT_BIT, on);
}

fn set_bit(bit: u32, on: bool) {
    let cur = flags();
    let next = if on { cur | bit } else { cur & !bit };
    FLAGS.store(next, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_toggle_independently() {
        let trace0 = enabled();
        let count0 = counting();
        set_tracing(true);
        assert!(enabled());
        set_tracing(false);
        assert!(!enabled());
        set_counting(false);
        assert!(!counting());
        set_counting(true);
        assert!(counting());
        set_tracing(trace0);
        set_counting(count0);
    }
}
