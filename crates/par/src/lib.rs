//! # pasta-par — parallel-for primitives for the PASTA suite
//!
//! The paper parallelizes its CPU kernels with OpenMP (`parallel for` with
//! static/dynamic/guided scheduling, `omp atomic` for MTTKRP's output
//! updates). This crate is the Rust stand-in: scoped threads from
//! `crossbeam` drive a [`parallel_for`] with the same three scheduling
//! strategies, and [`AtomicF32`]/[`AtomicF64`] provide the atomic
//! floating-point adds.
//!
//! # Examples
//!
//! ```
//! use pasta_par::{parallel_for, Schedule};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let hits = AtomicUsize::new(0);
//! parallel_for(1000, 4, Schedule::Dynamic(64), |range| {
//!     hits.fetch_add(range.len(), Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomic;
pub mod schedule;
pub mod shared;

pub use atomic::{AtomicF32, AtomicF64, Atomically};
pub use schedule::Schedule;
pub use shared::SharedSlice;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the default worker count: the `PASTA_NUM_THREADS` environment
/// variable if set and positive, otherwise the machine's available
/// parallelism (the paper pins one thread per physical core).
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("PASTA_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `body` over chunks of `0..n` on `threads` workers with the given
/// scheduling strategy.
///
/// Each invocation of `body` receives a contiguous index range; ranges
/// partition `0..n` exactly (every index visited once). With `threads <= 1`
/// or small `n` the body runs inline on the caller's thread.
///
/// Mirrors OpenMP's `#pragma omp parallel for schedule(...)`.
pub fn parallel_for<F>(n: usize, threads: usize, schedule: Schedule, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        body(0..n);
        return;
    }
    match schedule {
        Schedule::Static => {
            // Near-equal contiguous ranges, one per worker.
            let per = n / threads;
            let rem = n % threads;
            crossbeam::thread::scope(|s| {
                let mut start = 0usize;
                for t in 0..threads {
                    let len = per + usize::from(t < rem);
                    let range = start..start + len;
                    start += len;
                    let body = &body;
                    s.spawn(move |_| body(range));
                }
            })
            .expect("worker thread panicked");
        }
        Schedule::Dynamic(chunk) => {
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            crossbeam::thread::scope(|s| {
                for _ in 0..threads {
                    let next = &next;
                    let body = &body;
                    s.spawn(move |_| loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        body(start..(start + chunk).min(n));
                    });
                }
            })
            .expect("worker thread panicked");
        }
        Schedule::Guided => {
            // Decreasing chunk sizes: remaining / (2 * threads), floor 1.
            // A mutex-free implementation would race between reading the
            // cursor and claiming the chunk, so claim under a small lock.
            let next = parking_lot::Mutex::new(0usize);
            crossbeam::thread::scope(|s| {
                for _ in 0..threads {
                    let next = &next;
                    let body = &body;
                    s.spawn(move |_| loop {
                        let range = {
                            let mut cur = next.lock();
                            if *cur >= n {
                                break;
                            }
                            let chunk = ((n - *cur) / (2 * threads)).max(1);
                            let start = *cur;
                            *cur = (start + chunk).min(n);
                            start..*cur
                        };
                        body(range);
                    });
                }
            })
            .expect("worker thread panicked");
        }
    }
}

/// Runs `map` over a static partition of `0..n` and folds the per-thread
/// results with `reduce` (an OpenMP `reduction` clause stand-in).
///
/// # Examples
///
/// ```
/// use pasta_par::parallel_reduce;
///
/// let data: Vec<u64> = (0..1000).collect();
/// let sum = parallel_reduce(
///     data.len(),
///     4,
///     || 0u64,
///     |acc, range| acc + data[range].iter().sum::<u64>(),
///     |a, b| a + b,
/// );
/// assert_eq!(sum, 499_500);
/// ```
pub fn parallel_reduce<T, Id, Map, Red>(
    n: usize,
    threads: usize,
    identity: Id,
    map: Map,
    reduce: Red,
) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    Map: Fn(T, Range<usize>) -> T + Sync,
    Red: Fn(T, T) -> T,
{
    if n == 0 {
        return identity();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return map(identity(), 0..n);
    }
    let per = n / threads;
    let rem = n % threads;
    let partials = crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0usize;
        for t in 0..threads {
            let len = per + usize::from(t < rem);
            let range = start..start + len;
            start += len;
            let map = &map;
            let identity = &identity;
            handles.push(s.spawn(move |_| map(identity(), range)));
        }
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect::<Vec<T>>()
    })
    .expect("worker thread panicked");
    let mut it = partials.into_iter();
    let first = it.next().expect("at least one partial");
    it.fold(first, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn coverage(n: usize, threads: usize, sched: Schedule) {
        let marks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, threads, sched, |range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(
            marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
            "every index must be visited exactly once ({sched:?}, n={n}, t={threads})"
        );
    }

    #[test]
    fn all_schedules_cover_all_indices() {
        for &n in &[0usize, 1, 7, 100, 1023] {
            for &t in &[1usize, 2, 3, 8, 200] {
                coverage(n, t, Schedule::Static);
                coverage(n, t, Schedule::Dynamic(16));
                coverage(n, t, Schedule::Dynamic(1));
                coverage(n, t, Schedule::Guided);
            }
        }
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        parallel_for(0, 8, Schedule::Static, |_| panic!("must not run"));
    }

    #[test]
    fn reduce_matches_serial() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let serial: f64 = data.iter().sum();
        for &t in &[1usize, 2, 5, 16] {
            let par = parallel_reduce(
                data.len(),
                t,
                || 0.0f64,
                |acc, r| acc + data[r].iter().sum::<f64>(),
                |a, b| a + b,
            );
            assert!((par - serial).abs() < 1e-9);
        }
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let r = parallel_reduce(0, 4, || 42i32, |a, _| a + 1, |a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn guided_chunks_shrink() {
        // Guided must produce more, smaller chunks than static's one-per-thread.
        let n = 4096;
        let sizes = parking_lot::Mutex::new(Vec::new());
        parallel_for(n, 4, Schedule::Guided, |range| {
            sizes.lock().push(range.len());
        });
        let sizes = sizes.into_inner();
        assert!(sizes.len() > 4, "guided should produce many chunks, got {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), n);
    }
}
