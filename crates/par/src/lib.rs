//! # pasta-par — parallel-for primitives for the PASTA suite
//!
//! The paper parallelizes its CPU kernels with OpenMP (`parallel for` with
//! static/dynamic/guided scheduling, `omp atomic` for MTTKRP's output
//! updates). This crate is the Rust stand-in: a persistent work-stealing
//! [`Pool`] of parked workers drives a [`parallel_for`] with
//! the same three scheduling strategies, and [`AtomicF32`]/[`AtomicF64`]
//! provide the atomic floating-point adds.
//!
//! Workers are spawned once — lazily, on the first parallel call — and
//! reused by every subsequent call, mirroring how an OpenMP runtime keeps
//! its thread team alive between parallel regions. No OS threads are
//! created per `parallel_for` invocation.
//!
//! # Examples
//!
//! ```
//! use pasta_par::{parallel_for, Schedule};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let hits = AtomicUsize::new(0);
//! parallel_for(1000, 4, Schedule::Dynamic(64), |range| {
//!     hits.fetch_add(range.len(), Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomic;
pub mod pool;
pub mod reduce;
pub mod schedule;
pub mod shared;

pub use atomic::{AtomicF32, AtomicF64, Atomically};
pub use pool::{threads_spawned, Pool, WorkerStats};
pub use reduce::tree_reduce;
pub use schedule::Schedule;
pub use shared::SharedSlice;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the default worker count: the `PASTA_NUM_THREADS` environment
/// variable if set and positive, otherwise the machine's available
/// parallelism (the paper pins one thread per physical core).
///
/// The global pool sizes itself from this on first use, so set
/// `PASTA_NUM_THREADS` before the first parallel call.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("PASTA_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `body` over chunks of `0..n` on `threads` participants of the
/// global [`Pool`] with the given scheduling strategy.
///
/// Each invocation of `body` receives a contiguous index range; ranges
/// partition `0..n` exactly (every index visited once). With `threads <= 1`
/// or small `n` the body runs inline on the caller's thread. The chunk
/// decomposition depends only on `(n, threads, schedule)` — never on the
/// pool's actual worker count — so results are reproducible even when the
/// pool has fewer workers than `threads`.
///
/// Mirrors OpenMP's `#pragma omp parallel for schedule(...)`.
pub fn parallel_for<F>(n: usize, threads: usize, schedule: Schedule, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        body(0..n);
        return;
    }
    match schedule {
        Schedule::Static => {
            // Near-equal contiguous ranges, one per participant.
            let per = n / threads;
            let rem = n % threads;
            pool::global().broadcast(threads, |t| {
                let start = t * per + t.min(rem);
                let len = per + usize::from(t < rem);
                body(start..start + len);
            });
        }
        Schedule::Dynamic(chunk) => {
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            pool::global().broadcast(threads, |_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                body(start..(start + chunk).min(n));
            });
        }
        Schedule::Guided => {
            // Decreasing chunk sizes: remaining / (2 * threads), floor 1.
            // Claim with a CAS loop: the chunk size is a pure function of
            // the cursor, so recomputing it after a lost race reproduces
            // exactly the chunk sequence the old mutex version handed out.
            let next = AtomicUsize::new(0);
            pool::global().broadcast(threads, |_| loop {
                let mut cur = next.load(Ordering::Relaxed);
                let claimed = loop {
                    if cur >= n {
                        break None;
                    }
                    let chunk = ((n - cur) / (2 * threads)).max(1);
                    let end = (cur + chunk).min(n);
                    match next.compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
                    {
                        Ok(_) => break Some(cur..end),
                        Err(seen) => cur = seen,
                    }
                };
                match claimed {
                    Some(range) => body(range),
                    None => break,
                }
            });
        }
    }
}

/// Runs `map` over a static partition of `0..n` and folds the per-thread
/// results with `reduce` (an OpenMP `reduction` clause stand-in).
///
/// The fold over partials runs in partition order on the caller's thread,
/// so for a fixed `(n, threads)` the result is deterministic.
///
/// # Examples
///
/// ```
/// use pasta_par::parallel_reduce;
///
/// let data: Vec<u64> = (0..1000).collect();
/// let sum = parallel_reduce(
///     data.len(),
///     4,
///     || 0u64,
///     |acc, range| acc + data[range].iter().sum::<u64>(),
///     |a, b| a + b,
/// );
/// assert_eq!(sum, 499_500);
/// ```
pub fn parallel_reduce<T, Id, Map, Red>(
    n: usize,
    threads: usize,
    identity: Id,
    map: Map,
    reduce: Red,
) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    Map: Fn(T, Range<usize>) -> T + Sync,
    Red: Fn(T, T) -> T,
{
    if n == 0 {
        return identity();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return map(identity(), 0..n);
    }
    let per = n / threads;
    let rem = n % threads;
    let mut partials: Vec<Option<T>> = (0..threads).map(|_| None).collect();
    {
        let slots = SharedSlice::new(&mut partials);
        pool::global().broadcast(threads, |t| {
            let start = t * per + t.min(rem);
            let len = per + usize::from(t < rem);
            let acc = map(identity(), start..start + len);
            // SAFETY: each participant id `t` is handed out exactly once,
            // so writes to slot `t` are exclusive.
            unsafe { slots.write(t, Some(acc)) };
        });
    }
    let mut it = partials.into_iter().map(|p| p.expect("participant wrote its partial"));
    let first = it.next().expect("at least one partial");
    it.fold(first, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    fn coverage(n: usize, threads: usize, sched: Schedule) {
        let marks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, threads, sched, |range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(
            marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
            "every index must be visited exactly once ({sched:?}, n={n}, t={threads})"
        );
    }

    #[test]
    fn all_schedules_cover_all_indices() {
        for &n in &[0usize, 1, 7, 100, 1023] {
            for &t in &[1usize, 2, 3, 8, 200] {
                coverage(n, t, Schedule::Static);
                coverage(n, t, Schedule::Dynamic(16));
                coverage(n, t, Schedule::Dynamic(1));
                coverage(n, t, Schedule::Guided);
            }
        }
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        parallel_for(0, 8, Schedule::Static, |_| panic!("must not run"));
    }

    #[test]
    fn reduce_matches_serial() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let serial: f64 = data.iter().sum();
        for &t in &[1usize, 2, 5, 16] {
            let par = parallel_reduce(
                data.len(),
                t,
                || 0.0f64,
                |acc, r| acc + data[r].iter().sum::<f64>(),
                |a, b| a + b,
            );
            assert!((par - serial).abs() < 1e-9);
        }
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let r = parallel_reduce(0, 4, || 42i32, |a, _| a + 1, |a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn guided_chunks_shrink() {
        // Guided must produce more, smaller chunks than static's one-per-thread.
        let n = 4096;
        let sizes = Mutex::new(Vec::new());
        parallel_for(n, 4, Schedule::Guided, |range| {
            sizes.lock().unwrap().push(range.len());
        });
        let sizes = sizes.into_inner().unwrap();
        assert!(sizes.len() > 4, "guided should produce many chunks, got {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), n);
    }

    #[test]
    fn guided_chunk_sequence_is_deterministic() {
        // The CAS claim must reproduce the exact serial chunk sequence:
        // chunk(cur) = max(1, (n - cur) / (2 * threads)), regardless of
        // which participant wins each claim.
        let n = 1000;
        let threads = 4;
        let mut expected = Vec::new();
        let mut cur = 0usize;
        while cur < n {
            let chunk = ((n - cur) / (2 * threads)).max(1);
            expected.push((cur, (cur + chunk).min(n)));
            cur += chunk;
        }
        let seen = Mutex::new(Vec::new());
        parallel_for(n, threads, Schedule::Guided, |range| {
            seen.lock().unwrap().push((range.start, range.end));
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn no_threads_spawned_per_call() {
        // Warm the global pool, then hammer parallel_for: the process-wide
        // spawn counter must not move. This is the acceptance criterion
        // that parallel_for creates no OS threads per invocation.
        parallel_for(64, 4, Schedule::Static, |_| {});
        let warm = threads_spawned();
        for i in 0..200 {
            let sched = match i % 3 {
                0 => Schedule::Static,
                1 => Schedule::Dynamic(8),
                _ => Schedule::Guided,
            };
            parallel_for(512, 4, sched, |_| {});
            parallel_reduce(512, 4, || 0usize, |a, r| a + r.len(), |a, b| a + b);
        }
        assert_eq!(
            threads_spawned(),
            warm,
            "parallel_for must reuse pooled workers, not spawn threads per call"
        );
    }
}
