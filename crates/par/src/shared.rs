//! Disjoint-write access to a shared slice.
//!
//! Kernels that pre-allocate their output (the sparse-dense property makes
//! TEW/TS/TTV/TTM outputs race-free) let multiple workers write *disjoint*
//! regions of one buffer concurrently. Safe Rust cannot express "these
//! ranges never overlap" across closures, so [`SharedSlice`] provides a
//! minimal unsafe escape hatch with that contract made explicit.

use std::marker::PhantomData;

/// A writable view of a slice that may be shared across threads, provided
/// every concurrent write targets a distinct index range.
#[derive(Debug)]
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is only possible through the `unsafe` methods below, whose
// contracts require disjointness; the wrapper itself holds the unique borrow.
unsafe impl<'a, T: Send> Sync for SharedSlice<'a, T> {}
unsafe impl<'a, T: Send> Send for SharedSlice<'a, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps an exclusive slice borrow.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    /// The slice length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// No other thread may read or write `index` concurrently, and
    /// `index < self.len()`.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        *self.ptr.add(index) = value;
    }

    /// Returns a mutable subslice for `range`.
    ///
    /// # Safety
    ///
    /// No other thread may access any index in `range` for the lifetime of
    /// the returned slice, and `range` must be in bounds.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parallel_for, Schedule};

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0usize; 10_000];
        {
            let shared = SharedSlice::new(&mut data);
            parallel_for(10_000, 8, Schedule::Dynamic(97), |range| {
                for i in range {
                    // SAFETY: `parallel_for` ranges partition the index space.
                    unsafe { shared.write(i, i * 2) };
                }
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn slice_mut_ranges() {
        let mut data = vec![0.0f32; 64];
        {
            let shared = SharedSlice::new(&mut data);
            assert_eq!(shared.len(), 64);
            assert!(!shared.is_empty());
            parallel_for(8, 4, Schedule::Static, |blocks| {
                for b in blocks {
                    // SAFETY: block `b` owns elements 8b..8b+8 exclusively.
                    let s = unsafe { shared.slice_mut(b * 8..(b + 1) * 8) };
                    s.fill(b as f32);
                }
            });
        }
        for b in 0..8 {
            assert!(data[b * 8..(b + 1) * 8].iter().all(|&v| v == b as f32));
        }
    }

    #[test]
    fn empty_slice() {
        let mut data: Vec<u8> = Vec::new();
        let shared = SharedSlice::new(&mut data);
        assert!(shared.is_empty());
        assert_eq!(shared.len(), 0);
    }
}
