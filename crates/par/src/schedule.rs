//! Loop scheduling strategies, mirroring OpenMP's `schedule` clause.

/// How loop iterations are distributed across worker threads.
///
/// The paper evaluates its CPU kernels "under different scheduling
/// strategies"; these are the three OpenMP offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// One near-equal contiguous range per worker, decided up front.
    /// Lowest overhead; vulnerable to load imbalance when work per
    /// iteration varies (e.g. TTV over fibers of varying length).
    Static,
    /// Workers repeatedly claim fixed-size chunks from a shared counter.
    /// The payload is the chunk size (clamped to at least 1).
    Dynamic(usize),
    /// Workers claim chunks that shrink as the loop drains
    /// (`remaining / (2 × threads)`, floor 1): a compromise between
    /// static's low overhead and dynamic's balance.
    Guided,
}

impl Schedule {
    /// A reasonable default dynamic chunk for non-zero-parallel loops.
    pub const DEFAULT_CHUNK: usize = 256;

    /// The suite-wide default: dynamic scheduling with
    /// [`Self::DEFAULT_CHUNK`], matching the reference implementation's
    /// choice for irregular sparse loops.
    pub fn default_dynamic() -> Self {
        Schedule::Dynamic(Self::DEFAULT_CHUNK)
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Self::default_dynamic()
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::Static => write!(f, "static"),
            Schedule::Dynamic(c) => write!(f, "dynamic({c})"),
            Schedule::Guided => write!(f, "guided"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_dynamic() {
        assert_eq!(Schedule::default(), Schedule::Dynamic(256));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Schedule::Static.to_string(), "static");
        assert_eq!(Schedule::Dynamic(8).to_string(), "dynamic(8)");
        assert_eq!(Schedule::Guided.to_string(), "guided");
    }
}
