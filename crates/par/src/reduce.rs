//! Parallel pairwise tree reduction over owned items.
//!
//! [`parallel_reduce`](crate::parallel_reduce) folds per-thread partials
//! *serially* on the caller's thread — fine for scalars, but merging
//! worker-private MTTKRP accumulators moves `threads × rows × rank` values,
//! and a serial fold makes the merge O(threads) deep. [`tree_reduce`] merges
//! pairs concurrently on the pool instead, so the merge is O(log₂ threads)
//! deep and every round's pair-merges run in parallel.
//!
//! The combining tree is fixed by the item count alone — round `k` merges
//! slot `i + 2^k` into slot `i` for every `i` that is a multiple of
//! `2^(k+1)` — so for a given input length the result is bit-identical no
//! matter how many workers the pool actually has.

use crate::{pool, SharedSlice};

/// Merges `items` pairwise into a single value using up to `threads`
/// participants of the global pool; returns `None` for an empty input.
///
/// `merge(dst, src)` must fold `src` into `dst`. Merges follow a fixed
/// stride-doubling tree (slot `i+s` into slot `i`), so the association
/// order — and therefore any floating-point rounding — depends only on
/// `items.len()`, never on `threads` or scheduling.
///
/// # Examples
///
/// ```
/// use pasta_par::tree_reduce;
///
/// let bufs: Vec<Vec<u64>> = (0..5).map(|t| vec![t; 4]).collect();
/// let total = tree_reduce(bufs, 4, |dst, src| {
///     for (d, s) in dst.iter_mut().zip(src) {
///         *d += s;
///     }
/// });
/// assert_eq!(total, Some(vec![10; 4]));
/// ```
pub fn tree_reduce<T, F>(items: Vec<T>, threads: usize, merge: F) -> Option<T>
where
    T: Send,
    F: Fn(&mut T, T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return None;
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let threads = threads.max(1);
    let mut stride = 1usize;
    while stride < n {
        // Round k: fold slot i+stride into slot i for i ≡ 0 (mod 2*stride).
        let pairs: Vec<usize> = (0..n).step_by(2 * stride).filter(|i| i + stride < n).collect();
        let participants = threads.min(pairs.len());
        if participants <= 1 {
            for &i in &pairs {
                let src = slots[i + stride].take().expect("slot merged twice");
                merge(slots[i].as_mut().expect("slot merged twice"), src);
            }
        } else {
            let shared = SharedSlice::new(&mut slots);
            let per = pairs.len() / participants;
            let rem = pairs.len() % participants;
            pool::global().broadcast(participants, |t| {
                let start = t * per + t.min(rem);
                let len = per + usize::from(t < rem);
                for &i in &pairs[start..start + len] {
                    // SAFETY: within a round the pair index sets {i, i+stride}
                    // are disjoint across pairs (i is a multiple of 2*stride
                    // and stride < 2*stride), and each pair belongs to
                    // exactly one participant's contiguous chunk.
                    let (dst, src) = unsafe {
                        let s = shared.slice_mut(i..i + stride + 1);
                        let (lo, hi) = s.split_at_mut(stride);
                        (&mut lo[0], &mut hi[0])
                    };
                    let src = src.take().expect("slot merged twice");
                    merge(dst.as_mut().expect("slot merged twice"), src);
                }
            });
        }
        stride *= 2;
    }
    slots[0].take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        let none = tree_reduce(Vec::<u32>::new(), 4, |a, b| *a += b);
        assert_eq!(none, None);
    }

    #[test]
    fn single_item_passes_through() {
        assert_eq!(tree_reduce(vec![7u32], 4, |a, b| *a += b), Some(7));
    }

    #[test]
    fn sums_match_serial_for_all_shapes() {
        for n in 1..=17usize {
            for &t in &[1usize, 2, 3, 4, 8] {
                let items: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
                let expect: u64 = items.iter().sum();
                assert_eq!(tree_reduce(items, t, |a, b| *a += b), Some(expect), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn association_independent_of_threads() {
        // Floating point: the tree shape is a function of n alone, so any
        // thread count must produce the exact same bits.
        let mk = || (0..13).map(|i| vec![(i as f32).sin(); 8]).collect::<Vec<_>>();
        let merge = |a: &mut Vec<f32>, b: Vec<f32>| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        };
        let one = tree_reduce(mk(), 1, merge).unwrap();
        for &t in &[2usize, 4, 8] {
            assert_eq!(tree_reduce(mk(), t, merge).unwrap(), one);
        }
    }

    #[test]
    fn vector_buffers_merge_elementwise() {
        let bufs: Vec<Vec<u32>> = (0..6).map(|t| vec![t; 3]).collect();
        let got = tree_reduce(bufs, 3, |dst, src| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        });
        assert_eq!(got, Some(vec![15; 3]));
    }
}
