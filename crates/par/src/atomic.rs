//! Atomic floating-point cells.
//!
//! Rust has no `AtomicF32`/`AtomicF64`; the COO-MTTKRP kernel needs exactly
//! the semantics of OpenMP's `omp atomic` update (or CUDA's `atomicAdd`):
//! concurrent read-modify-write adds into a shared output matrix. These
//! wrappers implement `fetch_add` with a compare-exchange loop over the
//! integer atomics, plus a zero-copy reinterpretation of `&mut [f32]` as
//! `&[AtomicF32]` so kernels can share a plain value buffer across threads.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// An `f32` cell supporting atomic add.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// Creates a cell holding `v`.
    pub fn new(v: f32) -> Self {
        Self(AtomicU32::new(v.to_bits()))
    }

    /// Reads the current value.
    pub fn load(&self) -> f32 {
        f32::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Stores `v`.
    pub fn store(&self, v: f32) {
        self.0.store(v.to_bits(), Ordering::Relaxed)
    }

    /// Atomically adds `v`, returning the previous value.
    pub fn fetch_add(&self, v: f32) -> f32 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f32::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// An `f64` cell supporting atomic add.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a cell holding `v`.
    pub fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    /// Reads the current value.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Stores `v`.
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed)
    }

    /// Atomically adds `v`, returning the previous value.
    pub fn fetch_add(&self, v: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A float type with an atomic counterpart — the bound the parallel MTTKRP
/// kernels put on their value type.
///
/// # Examples
///
/// ```
/// use pasta_par::Atomically;
///
/// let mut buf = vec![0.0_f32; 4];
/// let cells = f32::as_atomics(&mut buf);
/// f32::atomic_add(&cells[1], 2.5);
/// f32::atomic_add(&cells[1], 0.5);
/// drop(cells);
/// assert_eq!(buf[1], 3.0);
/// ```
pub trait Atomically: Copy + Send + Sync + 'static {
    /// The atomic cell type for this float.
    type Atomic: Sync + Send;

    /// Reinterprets a mutable float slice as a slice of atomic cells.
    ///
    /// The exclusive borrow guarantees no other non-atomic access can occur
    /// for the lifetime of the returned slice.
    fn as_atomics(slice: &mut [Self]) -> &[Self::Atomic];

    /// Atomically adds `v` to the cell.
    fn atomic_add(cell: &Self::Atomic, v: Self);

    /// Reads the cell.
    fn atomic_load(cell: &Self::Atomic) -> Self;
}

impl Atomically for f32 {
    type Atomic = AtomicF32;

    fn as_atomics(slice: &mut [Self]) -> &[AtomicF32] {
        // SAFETY: AtomicF32 is repr(transparent) over AtomicU32, which has
        // the same size and alignment as u32/f32, and the exclusive borrow
        // of `slice` makes the aliasing exclusive-to-atomic transition sound
        // (same argument as std's `AtomicU32::from_mut_slice`).
        unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const AtomicF32, slice.len()) }
    }

    fn atomic_add(cell: &AtomicF32, v: f32) {
        cell.fetch_add(v);
    }

    fn atomic_load(cell: &AtomicF32) -> f32 {
        cell.load()
    }
}

impl Atomically for f64 {
    type Atomic = AtomicF64;

    fn as_atomics(slice: &mut [Self]) -> &[AtomicF64] {
        // SAFETY: as for f32; AtomicU64 matches u64/f64 layout on all
        // supported 64-bit platforms.
        unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const AtomicF64, slice.len()) }
    }

    fn atomic_add(cell: &AtomicF64, v: f64) {
        cell.fetch_add(v);
    }

    fn atomic_load(cell: &AtomicF64) -> f64 {
        cell.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parallel_for, Schedule};

    #[test]
    fn fetch_add_returns_previous() {
        let a = AtomicF32::new(1.0);
        assert_eq!(a.fetch_add(2.0), 1.0);
        assert_eq!(a.load(), 3.0);
        a.store(-1.5);
        assert_eq!(a.load(), -1.5);

        let b = AtomicF64::new(10.0);
        assert_eq!(b.fetch_add(-4.0), 10.0);
        assert_eq!(b.load(), 6.0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AtomicF32::default().load(), 0.0);
        assert_eq!(AtomicF64::default().load(), 0.0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates_f32() {
        let mut buf = vec![0.0f32; 8];
        {
            let cells = f32::as_atomics(&mut buf);
            parallel_for(8_000, 8, Schedule::Dynamic(64), |range| {
                for i in range {
                    f32::atomic_add(&cells[i % 8], 1.0);
                }
            });
        }
        // 1000 adds of exactly-representable 1.0 per cell: no rounding issues.
        assert!(buf.iter().all(|&v| v == 1000.0), "{buf:?}");
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates_f64() {
        let mut buf = vec![0.0f64; 4];
        {
            let cells = f64::as_atomics(&mut buf);
            parallel_for(4_000, 4, Schedule::Static, |range| {
                for i in range {
                    f64::atomic_add(&cells[i % 4], 0.5);
                }
            });
        }
        assert!(buf.iter().all(|&v| v == 500.0), "{buf:?}");
    }

    #[test]
    fn atomic_load_via_trait() {
        let mut buf = vec![7.0f32];
        let cells = f32::as_atomics(&mut buf);
        assert_eq!(f32::atomic_load(&cells[0]), 7.0);
    }
}
