//! A persistent work-stealing thread pool.
//!
//! The seed implementation spawned a fresh set of scoped OS threads for
//! *every* `parallel_for` call, so a kernel that loops over thousands of
//! fibers paid thread-creation latency on each invocation. This module
//! replaces that with one lazily-initialised global [`Pool`]: workers are
//! spawned once, park on a condition variable when idle, and wake to run
//! *broadcast jobs* (the engine under [`crate::parallel_for`] /
//! [`crate::parallel_reduce`]) or one-off closures via [`Pool::install`].
//!
//! Design notes (std-only — the build environment has no external crates):
//!
//! * Each worker owns a `Mutex<VecDeque<Task>>`. Submissions round-robin
//!   across worker queues; an idle worker pops its own queue front and
//!   steals from other queues' backs, so a burst landing on one queue is
//!   redistributed instead of serialised.
//! * Sleeping workers park on a single `Condvar` guarded by a generation
//!   counter: every push bumps the generation *before* notifying, and a
//!   worker re-checks the generation before sleeping, so a push can never
//!   slip between "scan found nothing" and "wait" unnoticed.
//! * A broadcast job is a lifetime-erased `Fn(usize)` plus two atomics:
//!   `next` hands out participant ids, `finished` counts completions. The
//!   *caller participates* — it claims ids in the same loop the workers
//!   run — so a pool with zero workers (single-core machine) still
//!   completes every job inline, and nested broadcasts cannot deadlock:
//!   a blocked caller only waits on ids that some thread has already
//!   claimed and is actively running.
//! * Erasing the closure's lifetime is sound because the caller does not
//!   return from [`Pool::broadcast`] until `finished == participants`,
//!   and stale queue entries for a drained job return before touching the
//!   closure pointer.

use pasta_obs::{counters, span_detail, CounterId};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Total OS threads ever spawned by pools in this process. Used by tests to
/// assert that `parallel_for` does not create threads per call.
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Returns the total number of OS threads spawned by all [`Pool`]s since
/// process start. After the global pool is warm this number is stable no
/// matter how many `parallel_for` calls run.
pub fn threads_spawned() -> usize {
    THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// A unit of work queued on the pool.
enum Task {
    /// One participant's share of a broadcast job (may be stale — the job
    /// can drain before a queued task is popped, which makes it a no-op).
    Job(Arc<JobCore>),
    /// A one-off closure from [`Pool::install`].
    Run(Box<dyn FnOnce() + Send + 'static>),
}

impl Task {
    fn execute(self) {
        match self {
            Task::Job(core) => core.run(),
            Task::Run(f) => f(),
        }
    }
}

/// The lifetime-erased heart of one broadcast call.
///
/// `f` points at a closure living in the caller's frame; see the module
/// docs for why dereferencing it here is sound.
struct JobCore {
    f: *const (dyn Fn(usize) + Sync),
    participants: usize,
    /// Next participant id to hand out; ids `>= participants` mean "drained".
    next: AtomicUsize,
    /// Completed participants. The job is done when this hits `participants`.
    finished: AtomicUsize,
    /// First panic payload from any participant, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `f` is only dereferenced while the originating `broadcast` call
// is blocked waiting for the job, and the closure it points to is `Sync`.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Claims and runs participant ids until the job drains. Called by both
    /// workers and the broadcasting caller.
    fn run(&self) {
        loop {
            let id = self.next.fetch_add(1, Ordering::Relaxed);
            if id >= self.participants {
                return;
            }
            // SAFETY: ids below `participants` are only handed out while the
            // caller is still inside `broadcast`, keeping `f` alive.
            let f = unsafe { &*self.f };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(id))) {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            // AcqRel: the last finisher observes every other participant's
            // writes, and the caller's lock of `done` observes the last
            // finisher's — so all body effects are visible after `wait`.
            if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
                let mut done = self.done.lock().unwrap();
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.done_cv.wait(done).unwrap();
        }
    }
}

/// Lifetime telemetry for one worker, recorded only while `pasta-obs`
/// counting is enabled (the increments sit off the task hot path: one per
/// pop and one per park, never per loop iteration).
#[derive(Debug, Default)]
struct WorkerCounters {
    tasks: AtomicU64,
    steals: AtomicU64,
    idle_ns: AtomicU64,
}

/// A snapshot of one worker's lifetime telemetry (see [`Pool::worker_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks the worker executed (broadcast shares and one-off closures).
    pub tasks: u64,
    /// Of those, tasks popped from another worker's queue.
    pub steals: u64,
    /// Nanoseconds the worker spent parked with no work available.
    pub idle_ns: u64,
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker; owner pops the front, thieves pop the back.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Per-worker telemetry, same indexing as `queues`.
    stats: Vec<WorkerCounters>,
    /// Round-robin cursor for task placement.
    next_queue: AtomicUsize,
    /// Bumped on every push; prevents lost wake-ups (see module docs).
    generation: AtomicU64,
    shutdown: AtomicBool,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    fn push(&self, task: Task) {
        let q = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[q].lock().unwrap().push_back(task);
        self.generation.fetch_add(1, Ordering::SeqCst);
        let _guard = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }

    /// Pops the worker's own queue, then steals from the others. Taking the
    /// plain lock (not `try_lock`) keeps the scan exact: if it finds
    /// nothing, every task pushed before the scan has been claimed.
    fn find_task(&self, me: usize) -> Option<Task> {
        if let Some(task) = self.queues[me].lock().unwrap().pop_front() {
            return Some(task);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(task) = self.queues[victim].lock().unwrap().pop_back() {
                if pasta_obs::counting() {
                    self.stats[me].steals.fetch_add(1, Ordering::Relaxed);
                    counters().add(CounterId::PoolSteals, 1);
                }
                return Some(task);
            }
        }
        None
    }

    fn worker_loop(&self, me: usize) {
        loop {
            let generation = self.generation.load(Ordering::SeqCst);
            if let Some(task) = self.find_task(me) {
                if pasta_obs::counting() {
                    self.stats[me].tasks.fetch_add(1, Ordering::Relaxed);
                    counters().add(CounterId::PoolTasks, 1);
                }
                task.execute();
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let guard = self.sleep.lock().unwrap();
            if self.generation.load(Ordering::SeqCst) != generation
                || self.shutdown.load(Ordering::SeqCst)
            {
                continue;
            }
            // The generation check above makes a plain `wait` sound; the
            // timeout is a belt-and-suspenders liveness fallback only.
            let parked = pasta_obs::counting().then(std::time::Instant::now);
            let (_guard, _) =
                self.wake.wait_timeout(guard, std::time::Duration::from_millis(50)).unwrap();
            if let Some(parked) = parked {
                let ns = parked.elapsed().as_nanos() as u64;
                self.stats[me].idle_ns.fetch_add(ns, Ordering::Relaxed);
                counters().add(CounterId::PoolIdleNs, ns);
            }
        }
    }
}

/// A persistent work-stealing thread pool.
///
/// Most code should use the lazily-initialised process-wide pool via
/// [`global`]; constructing private pools is intended for tests and
/// benchmarks that need a specific worker count.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("workers", &self.workers()).finish()
    }
}

impl Pool {
    /// Spawns a pool with `workers` OS threads (zero is valid: every job
    /// then runs inline on the calling thread).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            stats: (0..workers).map(|_| WorkerCounters::default()).collect(),
            next_queue: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("pasta-worker-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads (the caller participates on top of these).
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Snapshots every worker's lifetime telemetry (tasks run, tasks
    /// stolen, nanoseconds parked). Recorded only while `pasta-obs`
    /// counting is enabled; all-zero otherwise.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared
            .stats
            .iter()
            .map(|s| WorkerStats {
                tasks: s.tasks.load(Ordering::Relaxed),
                steals: s.steals.load(Ordering::Relaxed),
                idle_ns: s.idle_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Runs `f(id)` for every `id in 0..participants`, fanning out across
    /// the workers with the caller participating. Returns once every
    /// participant has finished; panics in `f` are re-thrown here.
    pub fn broadcast<F>(&self, participants: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let participants = participants.max(1);
        if participants == 1 || self.workers() == 0 {
            for id in 0..participants {
                f(id);
            }
            return;
        }
        let _span = span_detail(
            "pool",
            "pool.broadcast",
            "",
            participants as u64,
            self.workers() as u64,
            0,
        );
        let wide: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erasing the lifetime is sound because this function waits
        // for `finished == participants` before returning (see module docs).
        let wide: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(wide) };
        let core = Arc::new(JobCore {
            f: wide as *const _,
            participants,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        // One task per helper we could use; the caller covers the rest.
        let helpers = (participants - 1).min(self.workers());
        for _ in 0..helpers {
            self.shared.push(Task::Job(Arc::clone(&core)));
        }
        core.run();
        core.wait();
        let payload = core.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs `f` on a pool worker and returns its result, blocking the
    /// caller until it completes. With zero workers, runs inline.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if self.workers() == 0 {
            return f();
        }
        let slot: Mutex<Option<std::thread::Result<R>>> = Mutex::new(None);
        let ready = Condvar::new();
        {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
                let result = catch_unwind(AssertUnwindSafe(f));
                *slot.lock().unwrap() = Some(result);
                ready.notify_all();
            });
            // SAFETY: this function blocks until the task has run and
            // published its result, so the borrows of `slot`/`ready` (and
            // `f`'s captures) outlive every use inside the task.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            self.shared.push(Task::Run(task));
            let mut guard = slot.lock().unwrap();
            while guard.is_none() {
                guard = ready.wait(guard).unwrap();
            }
        }
        match slot.into_inner().unwrap().expect("task ran") {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.generation.fetch_add(1, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Returns the process-wide pool, spawning `default_threads() - 1` workers
/// on first use (the caller thread is the final participant, so total
/// parallelism matches [`crate::default_threads`]). `PASTA_NUM_THREADS` is
/// therefore read once, at first parallel call.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(crate::default_threads().saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_visits_every_id_once() {
        let pool = Pool::new(3);
        for participants in [1usize, 2, 4, 9, 33] {
            let marks: Vec<AtomicUsize> = (0..participants).map(|_| AtomicUsize::new(0)).collect();
            pool.broadcast(participants, |id| {
                marks[id].fetch_add(1, Ordering::Relaxed);
            });
            assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = Pool::new(0);
        let count = AtomicUsize::new(0);
        pool.broadcast(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
        assert_eq!(pool.install(|| 7 * 6), 42);
    }

    #[test]
    fn install_returns_value_from_worker() {
        let pool = Pool::new(2);
        let value = pool.install(|| (0..100u64).sum::<u64>());
        assert_eq!(value, 4950);
    }

    #[test]
    fn nested_broadcast_completes() {
        let pool = Pool::new(3);
        let count = AtomicUsize::new(0);
        pool.broadcast(4, |_| {
            pool.broadcast(4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn broadcast_propagates_panics() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(4, |id| {
                if id == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must stay usable after a panicking job.
        let count = AtomicUsize::new(0);
        pool.broadcast(4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn drop_joins_workers() {
        let before = threads_spawned();
        {
            let pool = Pool::new(2);
            pool.broadcast(2, |_| {});
        }
        assert_eq!(threads_spawned(), before + 2);
    }
}
