//! The scalar value abstraction used throughout the suite.
//!
//! The paper stores tensor values as single-precision (32-bit) floats; every
//! kernel and format in this workspace is generic over [`Value`] so that both
//! `f32` (the paper's configuration) and `f64` are supported.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar usable as a tensor value.
///
/// Implemented for `f32` and `f64`. The trait is deliberately small: just the
/// arithmetic the five PASTA kernels need, conversions for test oracles, and
/// the byte width used by the storage/operational-intensity analysis
/// (Table I of the paper).
///
/// # Examples
///
/// ```
/// use pasta_core::Value;
///
/// fn axpy<V: Value>(a: V, x: V, y: V) -> V {
///     a * x + y
/// }
/// assert_eq!(axpy(2.0_f32, 3.0, 1.0), 7.0);
/// ```
pub trait Value:
    Copy
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Size of one value in bytes (4 for `f32`, 8 for `f64`).
    const BYTES: usize;

    /// Converts from `f64`, rounding as needed.
    fn from_f64(x: f64) -> Self;
    /// Converts to `f64` exactly (`f32` widens losslessly).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Whether the value is finite (neither NaN nor infinite).
    fn is_finite(self) -> bool;

    /// Converts from `usize` (used by test oracles and generators).
    fn from_usize(x: usize) -> Self {
        Self::from_f64(x as f64)
    }

    /// Approximate equality with a relative/absolute tolerance, used by the
    /// test suites to compare kernel outputs against dense oracles.
    fn approx_eq(self, other: Self, tol: f64) -> bool {
        let (a, b) = (self.to_f64(), other.to_f64());
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= tol * scale
    }

    /// The distance between two values in units in the last place.
    ///
    /// Returns 0 for bit-identical values (including `-0.0` vs `0.0`, which
    /// compare equal), and `u64::MAX` when either value is NaN or the values
    /// have opposite signs with different magnitudes — conformance budgets
    /// treat both as unconditionally out of budget. The measure is the number
    /// of representable values strictly between the operands plus one,
    /// computed on the sign-magnitude integer encoding, so it is exact and
    /// monotone in the rounding error it accounts for.
    fn ulp_distance(self, other: Self) -> u64;
}

/// Maps an IEEE-754 bit pattern to a monotone sign-magnitude integer so
/// that ULP distances are plain integer differences: non-negative floats
/// keep their bit pattern, negative floats map to the negated magnitude.
#[inline]
fn monotone_bits64(bits: u64) -> i64 {
    if bits >> 63 == 1 {
        -((bits & 0x7fff_ffff_ffff_ffff) as i64)
    } else {
        bits as i64
    }
}

#[inline]
fn ulp64(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    if a == b {
        return 0; // covers -0.0 vs 0.0
    }
    monotone_bits64(a.to_bits()).abs_diff(monotone_bits64(b.to_bits()))
}

#[inline]
fn monotone_bits32(bits: u32) -> i32 {
    if bits >> 31 == 1 {
        -((bits & 0x7fff_ffff) as i32)
    } else {
        bits as i32
    }
}

#[inline]
fn ulp32(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    if a == b {
        return 0;
    }
    monotone_bits32(a.to_bits()).abs_diff(monotone_bits32(b.to_bits())) as u64
}

impl Value for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn ulp_distance(self, other: Self) -> u64 {
        ulp32(self, other)
    }
}

impl Value for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn ulp_distance(self, other: Self) -> u64 {
        ulp64(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_std() {
        assert_eq!(f32::ZERO, 0.0_f32);
        assert_eq!(f32::ONE, 1.0_f32);
        assert_eq!(f64::ZERO, 0.0_f64);
        assert_eq!(<f32 as Value>::BYTES, 4);
        assert_eq!(<f64 as Value>::BYTES, 8);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::from_f64(-2.25).to_f64(), -2.25);
        assert_eq!(f32::from_usize(7), 7.0);
    }

    #[test]
    fn approx_eq_tolerates_small_error() {
        assert!(1.0_f32.approx_eq(1.0 + 1e-7, 1e-5));
        assert!(!1.0_f32.approx_eq(1.1, 1e-5));
        // Relative scaling: large magnitudes allow proportionally more slack.
        assert!(1.0e6_f64.approx_eq(1.0e6 + 1.0, 1e-5));
    }

    #[test]
    fn ulp_distance_counts_representable_steps() {
        assert_eq!(1.0_f32.ulp_distance(1.0), 0);
        assert_eq!((-0.0_f32).ulp_distance(0.0), 0);
        assert_eq!(1.0_f32.ulp_distance(f32::from_bits(1.0_f32.to_bits() + 1)), 1);
        assert_eq!(1.0_f64.ulp_distance(f64::from_bits(1.0_f64.to_bits() + 3)), 3);
        // Adjacent values across zero: -min_subnormal .. +min_subnormal is 2 steps.
        assert_eq!(f32::from_bits(1).ulp_distance(-f32::from_bits(1)), 2);
        // Sign changes and NaNs are unconditionally far.
        assert_eq!(f32::NAN.ulp_distance(1.0), u64::MAX);
        assert_eq!(1.0_f64.ulp_distance(f64::NAN), u64::MAX);
        assert!((-1.0_f32).ulp_distance(1.0) > 1u64 << 30);
        // Symmetry.
        assert_eq!(2.5_f64.ulp_distance(2.5000001), 2.5000001_f64.ulp_distance(2.5));
    }

    #[test]
    fn finite_detection() {
        assert!(1.0_f32.is_finite());
        assert!(!(f32::NAN).is_finite());
        assert!(!Value::is_finite(f64::INFINITY));
    }
}
