//! The Compressed Sparse Fiber (CSF) format.
//!
//! The paper's conclusion lists CSF (Smith et al., SPLATT) as the next
//! format to add to the suite; this module provides it. CSF stores the
//! non-zeros of an `N`th-order tensor as a forest: level 0 holds the
//! distinct indices of the first mode (in a chosen *mode order*), each node
//! pointing at its children in the next level, with leaves carrying values.
//! Unlike COO/HiCOO it is *mode specific*: one representation favors
//! computations rooted at its first mode.

use crate::coo::CooTensor;
use crate::error::{Error, Result};
use crate::shape::{Coord, Shape};
use crate::value::Value;

/// A sparse tensor in CSF form.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, CsfTensor, Shape};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let coo = CooTensor::from_entries(
///     Shape::new(vec![2, 3, 4]),
///     vec![(vec![0, 0, 1], 1.0_f32), (vec![0, 0, 3], 2.0), (vec![1, 2, 0], 3.0)],
/// )?;
/// let csf = CsfTensor::from_coo(&coo, &[0, 1, 2])?;
/// assert_eq!(csf.nnz(), 3);
/// assert_eq!(csf.level_size(0), 2); // two distinct i indices
/// assert_eq!(csf.level_size(1), 2); // fibers (0,0) and (1,2)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsfTensor<V> {
    shape: Shape,
    mode_order: Vec<usize>,
    /// Node index values per level (`fids[l].len()` = nodes at level `l`;
    /// the last level has one node per non-zero).
    fids: Vec<Vec<Coord>>,
    /// Child pointers per non-leaf level: node `i` of level `l` owns
    /// children `fptr[l][i]..fptr[l][i+1]` of level `l + 1`.
    fptr: Vec<Vec<usize>>,
    /// Leaf values (parallel to the last level's `fids`).
    vals: Vec<V>,
}

impl<V: Value> CsfTensor<V> {
    /// Builds CSF from COO under the given mode order (a permutation of
    /// `0..order`; the first listed mode becomes the tree root).
    ///
    /// # Errors
    ///
    /// Returns an error if `mode_order` is not a permutation of the modes.
    pub fn from_coo(coo: &CooTensor<V>, mode_order: &[usize]) -> Result<Self> {
        let order = coo.order();
        let mut check: Vec<usize> = mode_order.to_vec();
        check.sort_unstable();
        if check != (0..order).collect::<Vec<_>>() {
            return Err(Error::OperandMismatch {
                what: format!("mode order {mode_order:?} is not a permutation of 0..{order}"),
            });
        }
        let mut sorted = coo.clone();
        sorted.sort_by_mode_order(mode_order);

        let m = sorted.nnz();
        let mut fids: Vec<Vec<Coord>> = vec![Vec::new(); order];
        let mut fptr: Vec<Vec<usize>> = vec![Vec::new(); order.saturating_sub(1)];

        // Walk entries; at each level a new node starts when any coordinate
        // at that level or above changes.
        for x in 0..m {
            let mut new_from: Option<usize> = None;
            if x == 0 {
                new_from = Some(0);
            } else {
                for (l, &mode) in mode_order.iter().enumerate() {
                    if sorted.mode_inds(mode)[x] != sorted.mode_inds(mode)[x - 1] {
                        new_from = Some(l);
                        break;
                    }
                }
            }
            if let Some(from) = new_from {
                for l in from..order {
                    let mode = mode_order[l];
                    if l > 0 {
                        // A new node at level l may require opening its
                        // parent's child range; parents push a pointer when
                        // they are created (handled below).
                    }
                    fids[l].push(sorted.mode_inds(mode)[x]);
                    if l < order - 1 {
                        fptr[l].push(fids[l + 1].len()); // start of children
                    }
                }
            } else {
                // Same leaf coordinates as previous entry cannot happen for
                // deduplicated tensors; treat as a new leaf node anyway.
                let mode = mode_order[order - 1];
                fids[order - 1].push(sorted.mode_inds(mode)[x]);
            }
        }
        // Close the pointer arrays with sentinels.
        for l in 0..order.saturating_sub(1) {
            fptr[l].push(fids[l + 1].len());
        }

        Ok(Self {
            shape: sorted.shape().clone(),
            mode_order: mode_order.to_vec(),
            fids,
            fptr,
            vals: sorted.vals().to_vec(),
        })
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor order.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// The number of non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The mode order of the tree (root first).
    #[inline]
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// The number of nodes at tree level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.order()`.
    pub fn level_size(&self, l: usize) -> usize {
        self.fids[l].len()
    }

    /// The index values at level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.order()`.
    pub fn fids(&self, l: usize) -> &[Coord] {
        &self.fids[l]
    }

    /// The child range of node `i` at non-leaf level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.order() - 1` or `i` is out of range.
    pub fn children(&self, l: usize, i: usize) -> std::ops::Range<usize> {
        self.fptr[l][i]..self.fptr[l][i + 1]
    }

    /// The leaf values.
    #[inline]
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Mutable access to the leaf values (tree structure untouched).
    ///
    /// Element-wise kernels (TEW/TS) reuse the input's tree and rewrite
    /// only the values.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    /// Storage bytes: 4 B per node id plus 8 B per pointer plus values.
    pub fn storage_bytes(&self) -> usize {
        let ids: usize = self.fids.iter().map(|l| 4 * l.len()).sum();
        let ptrs: usize = self.fptr.iter().map(|l| 8 * l.len()).sum();
        ids + ptrs + self.vals.len() * V::BYTES
    }

    /// Expands back to COO (entries in tree order).
    pub fn to_coo(&self) -> CooTensor<V> {
        let order = self.order();
        let mut out = CooTensor::with_capacity(self.shape.clone(), self.nnz());
        let mut coords = vec![0 as Coord; order];
        self.walk(0, 0..self.level_size(0), &mut coords, &mut out);
        out
    }

    fn walk(
        &self,
        l: usize,
        range: std::ops::Range<usize>,
        coords: &mut Vec<Coord>,
        out: &mut CooTensor<V>,
    ) {
        let order = self.order();
        for i in range {
            coords[self.mode_order[l]] = self.fids[l][i];
            if l == order - 1 {
                out.push(coords, self.vals[i]).expect("CSF coords are valid by construction");
            } else {
                self.walk(l + 1, self.children(l, i), coords, out);
            }
        }
    }

    fn visit_level<F: FnMut(&[Coord], V)>(
        &self,
        l: usize,
        range: std::ops::Range<usize>,
        coords: &mut Vec<Coord>,
        f: &mut F,
    ) {
        let order = self.order();
        for i in range {
            coords[self.mode_order[l]] = self.fids[l][i];
            if l == order - 1 {
                f(coords, self.vals[i]);
            } else {
                self.visit_level(l + 1, self.children(l, i), coords, f);
            }
        }
    }
}

impl<V: Value> crate::access::FormatAccess<V> for CsfTensor<V> {
    fn format_name(&self) -> &'static str {
        "CSF"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Every mode resolves through a deduplicated tree level.
    fn level_kind(&self, mode: usize) -> crate::access::LevelKind {
        debug_assert!(mode < self.order());
        crate::access::LevelKind::Tree
    }

    fn stored_vals(&self) -> &[V] {
        &self.vals
    }

    fn stored_vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    fn same_structure(&self, other: &Self) -> bool {
        self.shape == other.shape
            && self.mode_order == other.mode_order
            && self.fids == other.fids
            && self.fptr == other.fptr
    }

    fn for_each_stored<F: FnMut(&[Coord], V)>(&self, mut f: F) {
        if self.nnz() == 0 {
            return;
        }
        let mut coords = vec![0 as Coord; self.order()];
        self.visit_level(0, 0..self.level_size(0), &mut coords, &mut f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 4], 2.0),
                (vec![0, 2, 1], 3.0),
                (vec![2, 0, 0], 4.0),
                (vec![2, 3, 3], 5.0),
                (vec![2, 3, 4], 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn tree_structure_counts() {
        let csf = CsfTensor::from_coo(&sample(), &[0, 1, 2]).unwrap();
        assert_eq!(csf.level_size(0), 2); // roots i = 0, 2
        assert_eq!(csf.level_size(1), 4); // fibers (0,0), (0,2), (2,0), (2,3)
        assert_eq!(csf.level_size(2), 6); // leaves
        assert_eq!(csf.nnz(), 6);
        assert_eq!(csf.fids(0), &[0, 2]);
        assert_eq!(csf.children(0, 0), 0..2); // i=0 has fibers j=0 and j=2
        assert_eq!(csf.children(1, 0), 0..2); // fiber (0,0) has two leaves
    }

    #[test]
    fn roundtrip_every_mode_order() {
        let x = sample();
        let mut want = x.clone();
        want.sort();
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2], [1, 2, 0], [0, 2, 1], [2, 0, 1]] {
            let csf = CsfTensor::from_coo(&x, &order).unwrap();
            let mut got = csf.to_coo();
            got.sort();
            assert_eq!(got, want, "{order:?}");
            assert_eq!(csf.mode_order(), &order);
        }
    }

    #[test]
    fn fourth_order_roundtrip() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![3, 3, 3, 3]),
            vec![(vec![0, 1, 2, 0], 1.0), (vec![0, 1, 2, 2], 2.0), (vec![2, 0, 1, 1], 3.0)],
        )
        .unwrap();
        let csf = CsfTensor::from_coo(&x, &[3, 2, 1, 0]).unwrap();
        let mut got = csf.to_coo();
        got.sort();
        let mut want = x;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn rejects_bad_mode_order() {
        let x = sample();
        assert!(CsfTensor::from_coo(&x, &[0, 1]).is_err());
        assert!(CsfTensor::from_coo(&x, &[0, 1, 1]).is_err());
        assert!(CsfTensor::from_coo(&x, &[0, 1, 3]).is_err());
    }

    #[test]
    fn csf_compresses_shared_prefixes() {
        // Many non-zeros share the same (i, j) prefix: CSF stores them once.
        let entries: Vec<(Vec<Coord>, f64)> =
            (0..50u32).map(|k| (vec![1, 2, k], k as f64 + 1.0)).collect();
        let x = CooTensor::from_entries(Shape::new(vec![4, 4, 64]), entries).unwrap();
        let csf = CsfTensor::from_coo(&x, &[0, 1, 2]).unwrap();
        assert_eq!(csf.level_size(0), 1);
        assert_eq!(csf.level_size(1), 1);
        assert!(csf.storage_bytes() < x.storage_bytes());
    }

    #[test]
    fn empty_tensor() {
        let x = CooTensor::<f64>::new(Shape::new(vec![2, 2]));
        let csf = CsfTensor::from_coo(&x, &[0, 1]).unwrap();
        assert_eq!(csf.nnz(), 0);
        assert_eq!(csf.level_size(0), 0);
        assert_eq!(csf.to_coo().nnz(), 0);
    }
}
