//! Format-access traits: the per-mode *level kind* taxonomy and the
//! stored-value / fiber cursors that every sparse format implements.
//!
//! Following the level abstraction of Chou et al. (*Format Abstraction for
//! Sparse Tensor Algebra Compilers*), each mode of a format resolves its
//! coordinates through one of a small set of [`LevelKind`]s. Kernels written
//! against [`FormatAccess`] (element-wise traversal, structural equality,
//! value-array access) and [`FiberCursor`] (fiber-grouped traversal for the
//! contraction kernels) are generic over the format, but stay fully
//! monomorphized — the traits use generics, never `dyn`, so the compiled
//! inner loops are identical to the former hand-specialized copies.

use crate::shape::{Coord, Shape};
use crate::value::Value;

/// How one mode of a format stores and resolves its coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelKind {
    /// A full 32-bit coordinate per stored entry (COO-style).
    Coordinate,
    /// Split into a per-block 32-bit block index and a per-entry 8-bit
    /// element index, blocks in Morton order (HiCOO-style).
    Blocked,
    /// No stored index: every coordinate of the mode is materialized
    /// densely per fiber (sCOO/sHiCOO dense modes).
    Dense,
    /// Deduplicated tree level: a node per distinct prefix, children
    /// addressed through a pointer array (CSF).
    Tree,
    /// A coordinate per entry plus a fiber-start bit flag enabling
    /// segmented reduction (F-COO's product mode).
    Segmented,
}

impl std::fmt::Display for LevelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LevelKind::Coordinate => "coordinate",
            LevelKind::Blocked => "blocked",
            LevelKind::Dense => "dense",
            LevelKind::Tree => "tree",
            LevelKind::Segmented => "segmented",
        };
        f.write_str(s)
    }
}

/// Uniform access to a sparse format's structure and stored values.
///
/// *Stored* entries are the slots the format materializes — for the
/// semi-sparse formats this includes explicit zeros inside dense fibers,
/// matching what the element-wise kernels (TEW/TS) operate on.
///
/// Two tensors with [`FormatAccess::same_structure`] have value arrays of
/// equal length whose slots correspond position-for-position, so an
/// element-wise kernel may combine them as flat arrays and reuse either
/// operand's index structure wholesale.
pub trait FormatAccess<V: Value> {
    /// The format's display name (e.g. `"HiCOO"`).
    fn format_name(&self) -> &'static str;

    /// The tensor shape.
    fn shape(&self) -> &Shape;

    /// The [`LevelKind`] through which `mode` resolves its coordinates.
    ///
    /// # Panics
    ///
    /// May panic if `mode >= self.shape().order()`.
    fn level_kind(&self, mode: usize) -> LevelKind;

    /// The number of stored value slots.
    fn stored_len(&self) -> usize {
        self.stored_vals().len()
    }

    /// The stored values as one flat array, in the format's native order.
    fn stored_vals(&self) -> &[V];

    /// Mutable access to the stored values; the index structure is
    /// untouched.
    fn stored_vals_mut(&mut self) -> &mut [V];

    /// Whether `self` and `other` share the identical index structure
    /// (shape, blocking, pointers and index arrays — everything except the
    /// values).
    fn same_structure(&self, other: &Self) -> bool;

    /// Visits every stored slot as `(coordinates, value)`, in the format's
    /// native storage order. Monomorphized per closure — this is the
    /// nonzero cursor generic kernels and tests traverse formats with.
    fn for_each_stored<F: FnMut(&[Coord], V)>(&self, f: F);
}

/// Fiber-grouped traversal for the contraction kernels (TTV/TTM).
///
/// A *fiber* is a run of stored entries equal in every mode but the
/// contracted one; a *chunk* is the format's parallel distribution unit —
/// single fibers for coordinate formats, Morton blocks of fibers for the
/// blocked formats, sub-tree parents for CSF. Generic executors
/// parallelize over chunks and reduce each fiber with a sequential
/// [`gather`](crate::FiberIndex) dot or axpy, which keeps scheduling (and
/// therefore bit-level results) identical to the former per-format
/// kernels.
pub trait FiberCursor<V: Value> {
    /// The number of parallel distribution units.
    fn num_chunks(&self) -> usize;

    /// The total number of fibers (= output non-zeros for TTV).
    fn num_fibers(&self) -> usize;

    /// The fiber range of chunk `c`; chunk ranges partition
    /// `0..num_fibers()` in order.
    fn chunk_fibers(&self, c: usize) -> std::ops::Range<usize>;

    /// The stored-entry range of fiber `f`; fiber ranges partition
    /// `0..entry_vals().len()` in order.
    fn fiber_entries(&self, f: usize) -> std::ops::Range<usize>;

    /// The contracted-mode coordinate per stored entry (the gather index
    /// into the dense operand).
    fn contract_inds(&self) -> &[Coord];

    /// The stored values, parallel to [`Self::contract_inds`].
    fn entry_vals(&self) -> &[V];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_kind_displays() {
        let all = [
            LevelKind::Coordinate,
            LevelKind::Blocked,
            LevelKind::Dense,
            LevelKind::Tree,
            LevelKind::Segmented,
        ];
        let names: Vec<String> = all.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, ["coordinate", "blocked", "dense", "tree", "segmented"]);
    }
}
