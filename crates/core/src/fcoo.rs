//! The flagged COO (F-COO) format.
//!
//! F-COO (Liu et al., CLUSTER'17 — cited in Section III of the paper) is a
//! GPU-oriented, *computation-specific* format: for a chosen product mode it
//! stores the non-zeros sorted fiber-contiguously with a **bit flag** per
//! non-zero marking fiber starts, plus the product-mode index. Work is then
//! partitioned by *non-zeros* (perfectly balanced) and fiber sums are
//! assembled by segmented reduction over the flags — trading COO-TTV's
//! fiber-level load imbalance for a little combine traffic.

use crate::coo::CooTensor;
use crate::error::{Error, Result};
use crate::fiber::FiberIndex;
use crate::shape::{Coord, Shape};
use crate::value::Value;

/// A sparse tensor in F-COO form for one product mode.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, FCooTensor, Shape};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let coo = CooTensor::from_entries(
///     Shape::new(vec![2, 2, 4]),
///     vec![(vec![0, 1, 0], 1.0_f32), (vec![0, 1, 3], 2.0), (vec![1, 0, 2], 3.0)],
/// )?;
/// let fcoo = FCooTensor::from_coo(&coo, 2)?;
/// assert_eq!(fcoo.num_fibers(), 2);
/// assert_eq!(fcoo.start_flags(), &[true, false, true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FCooTensor<V> {
    shape: Shape,
    mode: usize,
    /// Values, fiber-contiguous.
    vals: Vec<V>,
    /// Product-mode index per non-zero.
    product_inds: Vec<Coord>,
    /// `true` where a new fiber starts (the bit-flag array).
    start_flags: Vec<bool>,
    /// Per fiber: the non-product coordinates, increasing mode order.
    fiber_coords: Vec<Vec<Coord>>,
}

impl<V: Value> FCooTensor<V> {
    /// Builds F-COO for product mode `mode` from a COO tensor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMode`] for an out-of-range mode or
    /// first-order tensor.
    pub fn from_coo(coo: &CooTensor<V>, mode: usize) -> Result<Self> {
        coo.shape().check_mode(mode)?;
        if coo.order() < 2 {
            return Err(Error::InvalidMode { mode, order: coo.order() });
        }
        let mut sorted = coo.clone();
        sorted.sort_mode_last(mode);
        let fibers = FiberIndex::build(&sorted, mode);
        let m = sorted.nnz();
        let mut start_flags = vec![false; m];
        let mut fiber_coords = Vec::with_capacity(fibers.num_fibers());
        for f in 0..fibers.num_fibers() {
            start_flags[fibers.fiber_range(f).start] = true;
            fiber_coords.push(fibers.fiber_coords(&sorted, f));
        }
        Ok(Self {
            shape: sorted.shape().clone(),
            mode,
            product_inds: sorted.mode_inds(mode).to_vec(),
            vals: sorted.vals().to_vec(),
            start_flags,
            fiber_coords,
        })
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The product mode this representation serves.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of fibers (output non-zeros for TTV).
    #[inline]
    pub fn num_fibers(&self) -> usize {
        self.fiber_coords.len()
    }

    /// The values.
    #[inline]
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Mutable access to the values (flags and indices untouched).
    ///
    /// Element-wise kernels (TEW/TS) reuse the input's fiber layout and
    /// rewrite only the values.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    /// The product-mode indices.
    #[inline]
    pub fn product_inds(&self) -> &[Coord] {
        &self.product_inds
    }

    /// The fiber-start flags.
    #[inline]
    pub fn start_flags(&self) -> &[bool] {
        &self.start_flags
    }

    /// The fiber id of entry `x` (count of starts up to `x`) — `O(x)`;
    /// intended for tests. Kernels carry fiber ids incrementally.
    pub fn fiber_of(&self, x: usize) -> usize {
        self.start_flags[..=x].iter().filter(|&&f| f).count() - 1
    }

    /// The non-product coordinates of fiber `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn fiber_coords(&self, f: usize) -> &[Coord] {
        &self.fiber_coords[f]
    }

    /// Storage bytes: values + product indices + one *bit* per flag plus
    /// per-fiber output coordinates.
    pub fn storage_bytes(&self) -> usize {
        self.vals.len() * V::BYTES
            + self.product_inds.len() * 4
            + self.start_flags.len().div_ceil(8)
            + self.num_fibers() * (self.shape.order() - 1) * 4
    }

    /// Expands back to COO.
    pub fn to_coo(&self) -> CooTensor<V> {
        let order = self.shape.order();
        let mut out = CooTensor::with_capacity(self.shape.clone(), self.nnz());
        let mut coords = vec![0 as Coord; order];
        let mut f = usize::MAX;
        for x in 0..self.nnz() {
            if self.start_flags[x] {
                f = f.wrapping_add(1);
                let fc = &self.fiber_coords[f];
                let mut k = 0;
                for m in 0..order {
                    if m != self.mode {
                        coords[m] = fc[k];
                        k += 1;
                    }
                }
            }
            coords[self.mode] = self.product_inds[x];
            out.push(&coords, self.vals[x]).expect("F-COO coords valid by construction");
        }
        out
    }
}

impl<V: Value> crate::access::FormatAccess<V> for FCooTensor<V> {
    fn format_name(&self) -> &'static str {
        "F-COO"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The product mode carries fiber-start flags for segmented reduction;
    /// the others resolve through per-fiber coordinates.
    fn level_kind(&self, mode: usize) -> crate::access::LevelKind {
        debug_assert!(mode < self.shape.order());
        if mode == self.mode {
            crate::access::LevelKind::Segmented
        } else {
            crate::access::LevelKind::Coordinate
        }
    }

    fn stored_vals(&self) -> &[V] {
        &self.vals
    }

    fn stored_vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    fn same_structure(&self, other: &Self) -> bool {
        self.shape == other.shape
            && self.mode == other.mode
            && self.product_inds == other.product_inds
            && self.start_flags == other.start_flags
            && self.fiber_coords == other.fiber_coords
    }

    fn for_each_stored<F: FnMut(&[Coord], V)>(&self, mut f: F) {
        let order = self.shape.order();
        let mut coords = vec![0 as Coord; order];
        let mut fib = usize::MAX;
        for x in 0..self.nnz() {
            if self.start_flags[x] {
                fib = fib.wrapping_add(1);
                let fc = &self.fiber_coords[fib];
                let mut k = 0;
                for m in 0..order {
                    if m != self.mode {
                        coords[m] = fc[k];
                        k += 1;
                    }
                }
            }
            coords[self.mode] = self.product_inds[x];
            f(&coords, self.vals[x]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![3, 3, 8]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 7], 2.0),
                (vec![0, 0, 3], 2.5),
                (vec![1, 2, 4], 3.0),
                (vec![2, 2, 1], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn structure() {
        let f = FCooTensor::from_coo(&sample(), 2).unwrap();
        assert_eq!(f.nnz(), 5);
        assert_eq!(f.num_fibers(), 3);
        assert_eq!(f.start_flags().iter().filter(|&&b| b).count(), 3);
        assert!(f.start_flags()[0]);
        assert_eq!(f.mode(), 2);
        assert_eq!(f.fiber_coords(0), &[0, 0]);
        assert_eq!(f.fiber_of(0), 0);
        assert_eq!(f.fiber_of(4), 2);
    }

    #[test]
    fn roundtrip_every_mode() {
        let x = sample();
        let mut want = x.clone();
        want.sort();
        for mode in 0..3 {
            let f = FCooTensor::from_coo(&x, mode).unwrap();
            let mut got = f.to_coo();
            got.sort();
            assert_eq!(got, want, "mode {mode}");
        }
    }

    #[test]
    fn flags_cost_one_bit() {
        let f = FCooTensor::from_coo(&sample(), 2).unwrap();
        // 5 vals*8 + 5 inds*4 + 1 flag byte + 3 fibers * 2 coords * 4.
        assert_eq!(f.storage_bytes(), 40 + 20 + 1 + 24);
    }

    #[test]
    fn rejects_bad_mode() {
        let x = sample();
        assert!(FCooTensor::from_coo(&x, 5).is_err());
        let first =
            CooTensor::<f64>::from_entries(Shape::new(vec![3]), vec![(vec![0], 1.0)]).unwrap();
        assert!(FCooTensor::from_coo(&first, 0).is_err());
    }

    #[test]
    fn fourth_order_roundtrip() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![2, 3, 2, 3]),
            vec![(vec![0, 2, 1, 0], 1.0), (vec![1, 0, 0, 2], 2.0), (vec![1, 0, 0, 1], 3.0)],
        )
        .unwrap();
        let f = FCooTensor::from_coo(&x, 1).unwrap();
        // Fibers are distinct (i, k, l) triples: (0,1,0), (1,0,1), (1,0,2).
        assert_eq!(f.num_fibers(), 3);
        let mut got = f.to_coo();
        got.sort();
        let mut want = x;
        want.sort();
        assert_eq!(got, want);
    }
}
