//! Tensor shapes: the ordered list of mode dimensions.

use crate::error::{Error, Result};

/// The integer type used for tensor coordinates.
///
/// The paper stores indices in 32 bits; all formats here do the same.
pub type Coord = u32;

/// The shape of an `N`th-order tensor: its `N` mode dimensions.
///
/// # Examples
///
/// ```
/// use pasta_core::Shape;
///
/// let shape = Shape::new(vec![4, 3, 5]);
/// assert_eq!(shape.order(), 3);
/// assert_eq!(shape.dim(2), 5);
/// assert_eq!(shape.num_entries(), 60.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<Coord>,
}

impl Shape {
    /// Creates a shape from mode dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero; use
    /// [`Shape::try_new`] for a fallible constructor.
    pub fn new(dims: Vec<Coord>) -> Self {
        Self::try_new(dims).expect("invalid shape")
    }

    /// Creates a shape, returning an error for an empty shape or a
    /// zero-sized mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyShape`] if `dims` is empty or contains a zero.
    pub fn try_new(dims: Vec<Coord>) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(Error::EmptyShape);
        }
        Ok(Self { dims })
    }

    /// The tensor order (number of modes), `N`.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// The dimension of mode `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.order()`.
    #[inline]
    pub fn dim(&self, n: usize) -> Coord {
        self.dims[n]
    }

    /// All mode dimensions.
    #[inline]
    pub fn dims(&self) -> &[Coord] {
        &self.dims
    }

    /// The total number of entries `I_1 × ⋯ × I_N` as `f64`.
    ///
    /// Returned as a float because real tensors overflow `u64` (e.g. the
    /// paper's `deli4d` has ~2.3e19 entries).
    pub fn num_entries(&self) -> f64 {
        self.dims.iter().map(|&d| d as f64).product()
    }

    /// The density of a tensor of this shape holding `nnz` non-zeros.
    pub fn density(&self, nnz: usize) -> f64 {
        nnz as f64 / self.num_entries()
    }

    /// Checks that `mode` is valid for this shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMode`] if `mode >= self.order()`.
    pub fn check_mode(&self, mode: usize) -> Result<()> {
        if mode >= self.order() {
            Err(Error::InvalidMode { mode, order: self.order() })
        } else {
            Ok(())
        }
    }

    /// Checks one coordinate tuple against this shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OrderMismatch`] if the tuple length differs from the
    /// order, or [`Error::IndexOutOfBounds`] for an out-of-range index.
    pub fn check_coords(&self, coords: &[Coord]) -> Result<()> {
        if coords.len() != self.order() {
            return Err(Error::OrderMismatch { left: self.order(), right: coords.len() });
        }
        for (mode, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            if c >= d {
                return Err(Error::IndexOutOfBounds { mode, index: c, dim: d });
            }
        }
        Ok(())
    }

    /// The shape obtained by removing mode `n` (the TTV output shape).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or the tensor is first-order (the result
    /// would be empty).
    pub fn remove_mode(&self, n: usize) -> Shape {
        assert!(n < self.order(), "mode out of range");
        assert!(self.order() > 1, "cannot remove the only mode");
        let mut dims = self.dims.clone();
        dims.remove(n);
        Shape { dims }
    }

    /// The shape obtained by replacing the dimension of mode `n` with `r`
    /// (the TTM output shape).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or `r == 0`.
    pub fn replace_mode(&self, n: usize, r: Coord) -> Shape {
        assert!(n < self.order(), "mode out of range");
        assert!(r > 0, "dimension must be positive");
        let mut dims = self.dims.clone();
        dims[n] = r;
        Shape { dims }
    }

    /// The row-major linear offset of `coords`, for dense oracles.
    ///
    /// # Panics
    ///
    /// Panics if the linearized size overflows `usize`; callers use this only
    /// for small test tensors.
    pub fn linearize(&self, coords: &[Coord]) -> usize {
        debug_assert_eq!(coords.len(), self.order());
        let mut off = 0usize;
        for (&c, &d) in coords.iter().zip(&self.dims) {
            off = off
                .checked_mul(d as usize)
                .and_then(|o| o.checked_add(c as usize))
                .expect("dense offset overflow");
        }
        off
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for d in &self.dims {
            if !first {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        Ok(())
    }
}

impl From<&[Coord]> for Shape {
    fn from(dims: &[Coord]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl AsRef<[Coord]> for Shape {
    fn as_ref(&self) -> &[Coord] {
        &self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Shape::new(vec![4, 3, 5]);
        assert_eq!(s.order(), 3);
        assert_eq!(s.dims(), &[4, 3, 5]);
        assert_eq!(s.dim(0), 4);
        assert_eq!(s.num_entries(), 60.0);
        assert_eq!(s.density(6), 0.1);
        assert_eq!(s.to_string(), "4x3x5");
    }

    #[test]
    fn rejects_empty_and_zero() {
        assert!(Shape::try_new(vec![]).is_err());
        assert!(Shape::try_new(vec![3, 0, 2]).is_err());
    }

    #[test]
    fn check_coords_validates() {
        let s = Shape::new(vec![2, 3]);
        assert!(s.check_coords(&[1, 2]).is_ok());
        assert!(matches!(s.check_coords(&[2, 0]), Err(Error::IndexOutOfBounds { mode: 0, .. })));
        assert!(matches!(s.check_coords(&[0, 0, 0]), Err(Error::OrderMismatch { .. })));
    }

    #[test]
    fn mode_surgery() {
        let s = Shape::new(vec![4, 3, 5]);
        assert_eq!(s.remove_mode(1).dims(), &[4, 5]);
        assert_eq!(s.replace_mode(2, 16).dims(), &[4, 3, 16]);
        assert!(s.check_mode(2).is_ok());
        assert!(s.check_mode(3).is_err());
    }

    #[test]
    fn linearize_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.linearize(&[0, 0, 0]), 0);
        assert_eq!(s.linearize(&[0, 0, 3]), 3);
        assert_eq!(s.linearize(&[0, 1, 0]), 4);
        assert_eq!(s.linearize(&[1, 2, 3]), 23);
    }

    #[test]
    fn huge_shapes_do_not_overflow_num_entries() {
        let s = Shape::new(vec![u32::MAX, u32::MAX, u32::MAX, u32::MAX]);
        assert!(s.num_entries() > 1e38);
        assert!(s.density(1_000_000) < 1e-30);
    }
}
