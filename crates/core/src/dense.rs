//! Dense matrices and vectors used as kernel operands.
//!
//! TTV multiplies a sparse tensor by a dense vector; TTM and MTTKRP multiply
//! by dense factor matrices stored row-major (the paper transposes the
//! Kolda-Bader convention so `U ∈ R^{I_n × R}` is traversed row-wise,
//! matching C row-major storage).

use crate::shape::Coord;
use crate::value::Value;

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use pasta_core::DenseMatrix;
///
/// let mut m = DenseMatrix::<f32>::zeros(2, 3);
/// m.set(1, 2, 5.0);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<V> {
    rows: usize,
    cols: usize,
    data: Vec<V>,
}

impl<V: Value> DenseMatrix<V> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![V::ZERO; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<V>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Creates a matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> V) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> V {
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: V) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[V] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [V] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The backing row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[V] {
        &self.data
    }

    /// Mutable access to the backing row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [V] {
        &mut self.data
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(V::ZERO);
    }

    /// The storage footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * V::BYTES
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> V {
        self.data.iter().map(|&v| v * v).sum::<V>().sqrt()
    }
}

/// A dense vector.
///
/// # Examples
///
/// ```
/// use pasta_core::DenseVector;
///
/// let v = DenseVector::from_vec(vec![1.0_f32, 2.0, 3.0]);
/// assert_eq!(v.len(), 3);
/// assert_eq!(v[1], 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector<V> {
    data: Vec<V>,
}

impl<V: Value> DenseVector<V> {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![V::ZERO; n] }
    }

    /// Creates a vector from raw data.
    pub fn from_vec(data: Vec<V>) -> Self {
        Self { data }
    }

    /// Creates a vector whose entry `i` is `f(i)`.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> V) -> Self {
        Self { data: (0..n).map(f).collect() }
    }

    /// Vector length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing data.
    #[inline]
    pub fn as_slice(&self) -> &[V] {
        &self.data
    }

    /// Mutable access to the backing data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [V] {
        &mut self.data
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> V {
        self.data.iter().map(|&v| v * v).sum::<V>().sqrt()
    }

    /// Scales the vector to unit norm; returns the previous norm.
    ///
    /// A zero vector is left unchanged and `0` is returned.
    pub fn normalize(&mut self) -> V {
        let n = self.norm2();
        if n != V::ZERO {
            for v in &mut self.data {
                *v /= n;
            }
        }
        n
    }
}

impl<V> std::ops::Index<usize> for DenseVector<V> {
    type Output = V;
    fn index(&self, i: usize) -> &V {
        &self.data[i]
    }
}

impl<V> std::ops::IndexMut<usize> for DenseVector<V> {
    fn index_mut(&mut self, i: usize) -> &mut V {
        &mut self.data[i]
    }
}

impl<V: Value> FromIterator<V> for DenseVector<V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Self { data: iter.into_iter().collect() }
    }
}

/// Fills a matrix with a deterministic quasi-random pattern in `[0, 1)`,
/// keyed by `seed` — used by examples and benches to build factor matrices
/// without depending on `rand` in the core crate.
pub fn seeded_matrix<V: Value>(rows: usize, cols: usize, seed: u64) -> DenseMatrix<V> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    DenseMatrix::from_fn(rows, cols, |_, _| {
        // SplitMix64 step.
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        V::from_f64((z >> 11) as f64 / (1u64 << 53) as f64)
    })
}

/// Fills a vector with a deterministic quasi-random pattern in `[0, 1)`.
pub fn seeded_vector<V: Value>(n: usize, seed: u64) -> DenseVector<V> {
    let m = seeded_matrix::<V>(n, 1, seed);
    DenseVector::from_vec(m.as_slice().to_vec())
}

/// Converts a `u32` tensor coordinate to a `usize` row index.
#[inline]
pub fn ix(c: Coord) -> usize {
    c as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip() {
        let m = DenseMatrix::from_fn(3, 2, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
        assert_eq!(m.as_slice().len(), 6);
        assert_eq!(m.storage_bytes(), 24);
    }

    #[test]
    fn matrix_mutation() {
        let mut m = DenseMatrix::<f64>::zeros(2, 2);
        m.set(0, 1, 3.0);
        m.row_mut(1)[0] = 4.0;
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        m.fill_zero();
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_length_checked() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0_f32; 3]);
    }

    #[test]
    fn vector_norms() {
        let mut v = DenseVector::from_vec(vec![3.0_f32, 4.0]);
        assert_eq!(v.norm2(), 5.0);
        let n = v.normalize();
        assert_eq!(n, 5.0);
        assert!((v.norm2() - 1.0).abs() < 1e-6);

        let mut z = DenseVector::<f32>::zeros(4);
        assert_eq!(z.normalize(), 0.0);
        assert_eq!(z.len(), 4);
        assert!(!z.is_empty());
    }

    #[test]
    fn frobenius_norm() {
        let m = DenseMatrix::from_vec(1, 2, vec![3.0_f32, 4.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn seeded_data_is_deterministic_and_bounded() {
        let a = seeded_matrix::<f32>(4, 4, 42);
        let b = seeded_matrix::<f32>(4, 4, 42);
        let c = seeded_matrix::<f32>(4, 4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
        let v = seeded_vector::<f64>(8, 7);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn vector_from_iterator() {
        let v: DenseVector<f32> = (0..3).map(|i| i as f32).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
