//! Sorting utilities shared by the sparse formats.
//!
//! Sparse tensor kernels rely on specific non-zero orderings: lexicographic in
//! a given mode permutation (COO fibers) or Morton order of block coordinates
//! (HiCOO). Sorting is performed indirectly: a permutation of entry positions
//! is sorted with the requested comparator and then applied to every index
//! array and the value array with a single gather each.

use crate::shape::Coord;
use std::cmp::Ordering;

/// Computes a permutation `perm` of `0..n` such that visiting entries in
/// `perm` order satisfies `cmp`.
///
/// The sort is stable so that equal entries keep their input order (useful
/// for deterministic deduplication).
pub fn sort_permutation<F>(n: usize, mut cmp: F) -> Vec<u32>
where
    F: FnMut(usize, usize) -> Ordering,
{
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by(|&a, &b| cmp(a as usize, b as usize));
    perm
}

/// Gathers `src` through `perm`: `out[i] = src[perm[i]]`.
pub fn gather<T: Copy>(src: &[T], perm: &[u32]) -> Vec<T> {
    perm.iter().map(|&p| src[p as usize]).collect()
}

/// Applies `perm` in place to every column of `inds` and to `vals`.
///
/// # Panics
///
/// Panics if lengths are inconsistent.
pub fn apply_permutation<T: Copy>(inds: &mut [Vec<Coord>], vals: &mut Vec<T>, perm: &[u32]) {
    assert_eq!(vals.len(), perm.len());
    for col in inds.iter_mut() {
        assert_eq!(col.len(), perm.len());
        *col = gather(col, perm);
    }
    *vals = gather(vals, perm);
}

/// Compares entry `a` and entry `b` lexicographically in the mode order given
/// by `mode_order` over the columnar index arrays `inds`.
#[inline]
pub fn lex_cmp(inds: &[Vec<Coord>], mode_order: &[usize], a: usize, b: usize) -> Ordering {
    for &m in mode_order {
        let ord = inds[m][a].cmp(&inds[m][b]);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// The mode permutation that keeps all modes in increasing order except that
/// `product_mode` is moved last.
///
/// This is the sort order required before computing the mode-`n` fiber
/// structure for TTV/TTM (Algorithm 1, line 1 of the paper): non-zeros of the
/// same fiber (identical indices in every mode but `n`) become contiguous.
///
/// # Examples
///
/// ```
/// use pasta_core::sort::mode_last_order;
///
/// assert_eq!(mode_last_order(4, 1), vec![0, 2, 3, 1]);
/// assert_eq!(mode_last_order(3, 2), vec![0, 1, 2]);
/// ```
pub fn mode_last_order(order: usize, product_mode: usize) -> Vec<usize> {
    assert!(product_mode < order);
    let mut v: Vec<usize> = (0..order).filter(|&m| m != product_mode).collect();
    v.push(product_mode);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_sorts_values() {
        let vals = [3, 1, 2];
        let perm = sort_permutation(3, |a, b| vals[a].cmp(&vals[b]));
        assert_eq!(gather(&vals, &perm), vec![1, 2, 3]);
    }

    #[test]
    fn stable_for_equal_keys() {
        let keys = [1, 0, 1, 0];
        let perm = sort_permutation(4, |a, b| keys[a].cmp(&keys[b]));
        assert_eq!(perm, vec![1, 3, 0, 2]);
    }

    #[test]
    fn apply_permutation_gathers_all_columns() {
        let mut inds = vec![vec![2, 0, 1], vec![20, 0, 10]];
        let mut vals = vec![2.0_f32, 0.0, 1.0];
        let perm = sort_permutation(3, |a, b| inds[0][a].cmp(&inds[0][b]));
        apply_permutation(&mut inds, &mut vals, &perm);
        assert_eq!(inds[0], vec![0, 1, 2]);
        assert_eq!(inds[1], vec![0, 10, 20]);
        assert_eq!(vals, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn lex_cmp_respects_mode_order() {
        let inds = vec![vec![0, 1], vec![1, 0]];
        // In natural order entry 0 < entry 1; ordering by mode 1 first flips it.
        assert_eq!(lex_cmp(&inds, &[0, 1], 0, 1), Ordering::Less);
        assert_eq!(lex_cmp(&inds, &[1, 0], 0, 1), Ordering::Greater);
        assert_eq!(lex_cmp(&inds, &[0], 0, 0), Ordering::Equal);
    }

    #[test]
    fn mode_last_order_is_permutation() {
        for order in 1..6 {
            for n in 0..order {
                let p = mode_last_order(order, n);
                assert_eq!(p.len(), order);
                assert_eq!(*p.last().unwrap(), n);
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..order).collect::<Vec<_>>());
            }
        }
    }
}
