//! Sorting utilities shared by the sparse formats.
//!
//! Sparse tensor kernels rely on specific non-zero orderings: lexicographic in
//! a given mode permutation (COO fibers) or Morton order of block coordinates
//! (HiCOO). Sorting is performed indirectly: a permutation of entry positions
//! is sorted with the requested comparator and then applied to every index
//! array and the value array with a single gather each.

use crate::shape::Coord;
use pasta_obs::{counters, span_detail, CounterId};
use pasta_par::SharedSlice;
use std::cmp::Ordering;

/// Computes a permutation `perm` of `0..n` such that visiting entries in
/// `perm` order satisfies `cmp`.
///
/// The sort is stable so that equal entries keep their input order (useful
/// for deterministic deduplication).
pub fn sort_permutation<F>(n: usize, mut cmp: F) -> Vec<u32>
where
    F: FnMut(usize, usize) -> Ordering,
{
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by(|&a, &b| cmp(a as usize, b as usize));
    perm
}

/// Gathers `src` through `perm`: `out[i] = src[perm[i]]`.
pub fn gather<T: Copy>(src: &[T], perm: &[u32]) -> Vec<T> {
    perm.iter().map(|&p| src[p as usize]).collect()
}

/// Applies `perm` in place to every column of `inds` and to `vals`.
///
/// # Panics
///
/// Panics if lengths are inconsistent.
pub fn apply_permutation<T: Copy>(inds: &mut [Vec<Coord>], vals: &mut Vec<T>, perm: &[u32]) {
    assert_eq!(vals.len(), perm.len());
    for col in inds.iter_mut() {
        assert_eq!(col.len(), perm.len());
        *col = gather(col, perm);
    }
    *vals = gather(vals, perm);
}

/// Compares entry `a` and entry `b` lexicographically in the mode order given
/// by `mode_order` over the columnar index arrays `inds`.
#[inline]
pub fn lex_cmp(inds: &[Vec<Coord>], mode_order: &[usize], a: usize, b: usize) -> Ordering {
    for &m in mode_order {
        let ord = inds[m][a].cmp(&inds[m][b]);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// A packed sort key usable by [`par_sort_keys`]'s radix passes.
pub trait RadixKey: Copy + Ord + Send + Sync {
    /// Number of 8-bit digits in the key type.
    const DIGITS: usize;
    /// The `i`-th least-significant 8-bit digit.
    fn digit(self, i: usize) -> u8;
}

impl RadixKey for u64 {
    const DIGITS: usize = 8;
    #[inline]
    fn digit(self, i: usize) -> u8 {
        (self >> (8 * i)) as u8
    }
}

impl RadixKey for u128 {
    const DIGITS: usize = 16;
    #[inline]
    fn digit(self, i: usize) -> u8 {
        (self >> (8 * i)) as u8
    }
}

/// Number of buckets per radix pass (8-bit digits).
const RADIX: usize = 256;

/// Below this entry count the parallel radix machinery costs more than it
/// saves; fall through to the serial passes.
const PAR_THRESHOLD: usize = 1 << 13;

/// Computes the permutation that stably sorts `keys` ascending, i.e. the
/// same permutation [`sort_permutation`] returns for the comparator
/// `keys[a].cmp(&keys[b])` — ties keep their original position order.
///
/// The sort is a least-significant-digit radix sort over `(key, position)`
/// pairs with 8-bit digits. With `threads > 1` and enough entries, each
/// pass runs its histogram and scatter phases across the global
/// [`pool`](pasta_par::pool): per-thread histograms over contiguous chunks
/// are combined into digit-major/thread-minor scatter offsets, which keeps
/// the pass stable. Passes beyond the highest set digit of the maximum
/// key, and passes where one bucket holds every entry, are skipped.
///
/// # Panics
///
/// Panics if `keys.len()` exceeds `u32::MAX` (permutations are `u32`).
pub fn par_sort_keys<K: RadixKey>(keys: &[K], threads: usize) -> Vec<u32> {
    let n = keys.len();
    assert!(n <= u32::MAX as usize, "entry count exceeds u32 permutation range");
    if n <= 1 {
        return (0..n as u32).collect();
    }
    let max_key = keys.iter().copied().max().expect("n >= 1");
    let mut passes = K::DIGITS;
    while passes > 0 && max_key.digit(passes - 1) == 0 {
        passes -= 1;
    }
    if passes == 0 {
        // All keys are zero: the stable permutation is the identity.
        return (0..n as u32).collect();
    }
    let mut cur: Vec<(K, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
    let mut buf = cur.clone();
    let threads = threads.max(1).min(n);
    counters().add(CounterId::SortEntries, n as u64);
    let serial = threads == 1 || n < PAR_THRESHOLD;
    let _span = span_detail(
        "sort",
        "sort.radix",
        if serial { "serial" } else { "parallel" },
        n as u64,
        passes as u64,
        threads as u64,
    );
    if serial {
        serial_radix_passes(&mut cur, &mut buf, passes);
    } else {
        parallel_radix_passes(&mut cur, &mut buf, passes, threads);
    }
    cur.into_iter().map(|(_, p)| p).collect()
}

fn serial_radix_passes<K: RadixKey>(
    cur: &mut Vec<(K, u32)>,
    buf: &mut Vec<(K, u32)>,
    passes: usize,
) {
    let n = cur.len();
    for pass in 0..passes {
        let mut hist = [0u32; RADIX];
        for &(k, _) in cur.iter() {
            hist[k.digit(pass) as usize] += 1;
        }
        if hist.iter().any(|&c| c as usize == n) {
            continue; // single-bucket pass: a stable no-op
        }
        counters().add(CounterId::SortRadixPasses, 1);
        let mut offs = [0u32; RADIX];
        let mut sum = 0u32;
        for (o, &c) in offs.iter_mut().zip(&hist) {
            *o = sum;
            sum += c;
        }
        for &(k, p) in cur.iter() {
            let d = k.digit(pass) as usize;
            buf[offs[d] as usize] = (k, p);
            offs[d] += 1;
        }
        std::mem::swap(cur, buf);
    }
}

fn parallel_radix_passes<K: RadixKey>(
    cur: &mut Vec<(K, u32)>,
    buf: &mut Vec<(K, u32)>,
    passes: usize,
    threads: usize,
) {
    let n = cur.len();
    let per = n / threads;
    let rem = n % threads;
    let chunk = |t: usize| {
        let start = t * per + t.min(rem);
        start..start + per + usize::from(t < rem)
    };
    let pool = pasta_par::pool::global();
    for pass in 0..passes {
        let mut hists = vec![[0u32; RADIX]; threads];
        {
            let slots = SharedSlice::new(&mut hists);
            let cur = &*cur;
            pool.broadcast(threads, |t| {
                let mut h = [0u32; RADIX];
                for &(k, _) in &cur[chunk(t)] {
                    h[k.digit(pass) as usize] += 1;
                }
                // SAFETY: participant ids are unique, so slot `t` is
                // written by exactly one thread.
                unsafe { slots.write(t, h) };
            });
        }
        let mut totals = [0u32; RADIX];
        for h in &hists {
            for (tot, &c) in totals.iter_mut().zip(h) {
                *tot += c;
            }
        }
        if totals.iter().any(|&c| c as usize == n) {
            continue;
        }
        counters().add(CounterId::SortRadixPasses, 1);
        // Scatter offsets: digit-major, thread-minor, so each thread writes
        // its chunk's entries for a digit after every lower-ranked thread's
        // — the ordering that makes the parallel pass stable.
        let mut offsets = vec![[0u32; RADIX]; threads];
        let mut sum = 0u32;
        for d in 0..RADIX {
            for (offs, h) in offsets.iter_mut().zip(&hists) {
                offs[d] = sum;
                sum += h[d];
            }
        }
        {
            let out = SharedSlice::new(&mut *buf);
            let cur = &*cur;
            let offsets = &offsets;
            pool.broadcast(threads, |t| {
                let mut offs = offsets[t];
                for &(k, p) in &cur[chunk(t)] {
                    let d = k.digit(pass) as usize;
                    // SAFETY: offset ranges are disjoint across (digit,
                    // thread) pairs by construction.
                    unsafe { out.write(offs[d] as usize, (k, p)) };
                    offs[d] += 1;
                }
            });
        }
        std::mem::swap(cur, buf);
    }
}

/// The mode permutation that keeps all modes in increasing order except that
/// `product_mode` is moved last.
///
/// This is the sort order required before computing the mode-`n` fiber
/// structure for TTV/TTM (Algorithm 1, line 1 of the paper): non-zeros of the
/// same fiber (identical indices in every mode but `n`) become contiguous.
///
/// # Examples
///
/// ```
/// use pasta_core::sort::mode_last_order;
///
/// assert_eq!(mode_last_order(4, 1), vec![0, 2, 3, 1]);
/// assert_eq!(mode_last_order(3, 2), vec![0, 1, 2]);
/// ```
pub fn mode_last_order(order: usize, product_mode: usize) -> Vec<usize> {
    assert!(product_mode < order);
    let mut v: Vec<usize> = (0..order).filter(|&m| m != product_mode).collect();
    v.push(product_mode);
    v
}

/// The mode order that puts `mode` first and keeps the remaining modes in
/// ascending order, e.g. `mode_first_order(4, 1) == [1, 0, 2, 3]`.
///
/// Sorting by this order makes the mode-`mode` index array non-decreasing,
/// which is exactly what the owner-computes MTTKRP schedule needs: all
/// non-zeros contributing to one output row become contiguous, so the rows
/// can be partitioned among threads without write conflicts.
///
/// # Panics
///
/// Panics if `mode >= order`.
///
/// # Examples
///
/// ```
/// use pasta_core::sort::mode_first_order;
///
/// assert_eq!(mode_first_order(4, 1), vec![1, 0, 2, 3]);
/// assert_eq!(mode_first_order(3, 0), vec![0, 1, 2]);
/// ```
pub fn mode_first_order(order: usize, mode: usize) -> Vec<usize> {
    assert!(mode < order);
    let mut v = Vec::with_capacity(order);
    v.push(mode);
    v.extend((0..order).filter(|&m| m != mode));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_sorts_values() {
        let vals = [3, 1, 2];
        let perm = sort_permutation(3, |a, b| vals[a].cmp(&vals[b]));
        assert_eq!(gather(&vals, &perm), vec![1, 2, 3]);
    }

    #[test]
    fn stable_for_equal_keys() {
        let keys = [1, 0, 1, 0];
        let perm = sort_permutation(4, |a, b| keys[a].cmp(&keys[b]));
        assert_eq!(perm, vec![1, 3, 0, 2]);
    }

    #[test]
    fn apply_permutation_gathers_all_columns() {
        let mut inds = vec![vec![2, 0, 1], vec![20, 0, 10]];
        let mut vals = vec![2.0_f32, 0.0, 1.0];
        let perm = sort_permutation(3, |a, b| inds[0][a].cmp(&inds[0][b]));
        apply_permutation(&mut inds, &mut vals, &perm);
        assert_eq!(inds[0], vec![0, 1, 2]);
        assert_eq!(inds[1], vec![0, 10, 20]);
        assert_eq!(vals, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn mode_first_order_is_permutation() {
        for order in 1..5 {
            for n in 0..order {
                let p = mode_first_order(order, n);
                assert_eq!(p[0], n);
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..order).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn lex_cmp_respects_mode_order() {
        let inds = vec![vec![0, 1], vec![1, 0]];
        // In natural order entry 0 < entry 1; ordering by mode 1 first flips it.
        assert_eq!(lex_cmp(&inds, &[0, 1], 0, 1), Ordering::Less);
        assert_eq!(lex_cmp(&inds, &[1, 0], 0, 1), Ordering::Greater);
        assert_eq!(lex_cmp(&inds, &[0], 0, 0), Ordering::Equal);
    }

    /// Deterministic pseudo-random keys (xorshift) for radix tests.
    fn pseudo_keys(n: usize, seed: u64, modulus: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % modulus
            })
            .collect()
    }

    fn assert_matches_comparator<K: RadixKey>(keys: &[K], threads: usize) {
        let expect = sort_permutation(keys.len(), |a, b| keys[a].cmp(&keys[b]));
        let got = par_sort_keys(keys, threads);
        assert_eq!(got, expect);
    }

    #[test]
    fn radix_matches_stable_comparator_u64() {
        for &n in &[0usize, 1, 2, 100, 10_000] {
            // Narrow modulus forces many duplicates (stability matters).
            for &modulus in &[2u64, 17, 1 << 20, u64::MAX] {
                for &t in &[1usize, 4] {
                    assert_matches_comparator(&pseudo_keys(n, 42, modulus), t);
                }
            }
        }
    }

    #[test]
    fn radix_matches_stable_comparator_u128() {
        let base = pseudo_keys(5000, 7, u64::MAX);
        // Spread bits into the high half so u128 passes actually run.
        let keys: Vec<u128> =
            base.iter().map(|&k| ((k as u128) << 64) | (k as u128 >> 3)).collect();
        assert_matches_comparator(&keys, 1);
        assert_matches_comparator(&keys, 4);
    }

    #[test]
    fn u128_digits_cover_both_halves() {
        // Digit extraction at the 64-bit seam: digits 7 and 8 come from
        // adjacent bytes of the low and high words.
        let k: u128 = 0xAB << 56 | 0xCD_u128 << 64;
        assert_eq!(<u128 as RadixKey>::DIGITS, 16);
        assert_eq!(k.digit(7), 0xAB);
        assert_eq!(k.digit(8), 0xCD);
        assert_eq!(u128::MAX.digit(15), 0xFF);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// u128 keys whose low halves collide and whose high halves straddle
        /// the 64-bit digit boundary still sort stably, matching the
        /// comparator fallback exactly — the contract that lets the format
        /// converters switch between the two paths freely.
        #[test]
        fn prop_u128_radix_matches_comparator(
            pairs in proptest::collection::vec((0u64..u64::MAX, 0u64..8u64), 1..400),
            threads in proptest::sample::select(vec![1usize, 2, 4]),
        ) {
            // High half varies over few values, low half over many, plus
            // boundary patterns mixed in to hit all-zero and all-one digits.
            let keys: Vec<u128> = pairs
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| match i % 7 {
                    0 => (hi as u128) << 64,
                    1 => u64::MAX as u128,
                    2 => (u64::MAX as u128) + 1,
                    _ => ((hi as u128) << 64) | lo as u128,
                })
                .collect();
            let expect = sort_permutation(keys.len(), |a, b| keys[a].cmp(&keys[b]));
            proptest::prop_assert_eq!(par_sort_keys(&keys, threads), expect);
        }
    }

    #[test]
    fn radix_all_equal_keys_is_identity() {
        let keys = vec![9u64; 1000];
        assert_eq!(par_sort_keys(&keys, 4), (0..1000u32).collect::<Vec<_>>());
        let zeros = vec![0u64; 1000];
        assert_eq!(par_sort_keys(&zeros, 4), (0..1000u32).collect::<Vec<_>>());
    }

    #[test]
    fn radix_skips_uniform_middle_digits() {
        // Keys differ only in digit 2; digits 0, 1 and 3+ are uniform.
        let keys: Vec<u64> = (0..9000u64).map(|i| ((i % 256) << 16) | 0xAB00CD).collect();
        assert_matches_comparator(&keys, 4);
        assert_matches_comparator(&keys, 1);
    }

    #[test]
    fn radix_sorted_and_reversed_inputs() {
        let asc: Vec<u64> = (0..20_000).map(|i| i as u64 / 3).collect();
        let desc: Vec<u64> = asc.iter().rev().copied().collect();
        assert_matches_comparator(&asc, 4);
        assert_matches_comparator(&desc, 4);
    }

    #[test]
    fn mode_last_order_is_permutation() {
        for order in 1..6 {
            for n in 0..order {
                let p = mode_last_order(order, n);
                assert_eq!(p.len(), order);
                assert_eq!(*p.last().unwrap(), n);
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..order).collect::<Vec<_>>());
            }
        }
    }
}
