//! Reading and writing sparse tensors.
//!
//! Two formats are supported:
//!
//! - **`.tns` text** — the FROSTT interchange format: one non-zero per line,
//!   `N` 1-based indices followed by the value, whitespace-separated. This is
//!   the format the paper's dataset repositories (FROSTT, HaTen2) use.
//! - **binary** — a simple little-endian container (`PSTA` magic) for fast
//!   reloads of generated tensors, built with the `bytes` crate.

use crate::coo::CooTensor;
use crate::error::{Error, Result};
use crate::shape::{Coord, Shape};
use crate::value::Value;
use bytes::{Buf, BufMut};
use std::io::{BufRead, BufReader, Read, Write};

/// Reads a `.tns` text tensor, inferring the shape from the maximum index in
/// each mode.
///
/// A mut reference is a fine reader: `read_tns(&mut file)?`.
///
/// # Errors
///
/// Returns a [`Error::Parse`] for malformed lines, inconsistent orders or
/// non-finite values, and [`Error::Io`] for read failures.
pub fn read_tns<V: Value, R: Read>(reader: R) -> Result<CooTensor<V>> {
    let buf = BufReader::new(reader);
    let mut order: Option<usize> = None;
    let mut inds: Vec<Vec<Coord>> = Vec::new();
    let mut vals: Vec<V> = Vec::new();
    let mut dims: Vec<Coord> = Vec::new();

    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 2 {
            return Err(Error::Parse {
                line: lineno + 1,
                msg: "expected indices and a value".into(),
            });
        }
        let n = toks.len() - 1;
        match order {
            None => {
                order = Some(n);
                inds = vec![Vec::new(); n];
                dims = vec![0; n];
            }
            Some(o) if o != n => {
                return Err(Error::Parse {
                    line: lineno + 1,
                    msg: format!("expected {o} indices, found {n}"),
                });
            }
            _ => {}
        }
        for (m, tok) in toks[..n].iter().enumerate() {
            let one_based: u64 = tok.parse().map_err(|_| Error::Parse {
                line: lineno + 1,
                msg: format!("invalid index {tok:?}"),
            })?;
            if one_based == 0 || one_based > u64::from(u32::MAX) {
                return Err(Error::Parse {
                    line: lineno + 1,
                    msg: format!("index {one_based} out of the 1-based 32-bit range"),
                });
            }
            let c = (one_based - 1) as Coord;
            dims[m] = dims[m].max(c + 1);
            inds[m].push(c);
        }
        let v: f64 = toks[n].parse().map_err(|_| Error::Parse {
            line: lineno + 1,
            msg: format!("invalid value {:?}", toks[n]),
        })?;
        if !v.is_finite() {
            return Err(Error::Parse { line: lineno + 1, msg: "non-finite value".into() });
        }
        vals.push(V::from_f64(v));
    }

    let order = order.ok_or(Error::EmptyShape)?;
    debug_assert_eq!(inds.len(), order);
    let shape = Shape::try_new(dims)?;
    CooTensor::from_parts(shape, inds, vals)
}

/// Writes a tensor in `.tns` text format (1-based indices).
///
/// # Errors
///
/// Returns [`Error::Io`] on write failure.
pub fn write_tns<V: Value, W: Write>(t: &CooTensor<V>, mut writer: W) -> Result<()> {
    for x in 0..t.nnz() {
        for m in 0..t.order() {
            write!(writer, "{} ", t.mode_inds(m)[x] + 1)?;
        }
        writeln!(writer, "{}", t.vals()[x])?;
    }
    Ok(())
}

const MAGIC: &[u8; 4] = b"PSTA";
const VERSION: u8 = 1;

/// Writes a tensor in the suite's little-endian binary format.
///
/// Layout: magic, version, value width, order, dims, nnz, then per-mode index
/// arrays and the value array.
///
/// # Errors
///
/// Returns [`Error::Io`] on write failure.
pub fn write_binary<V: Value, W: Write>(t: &CooTensor<V>, mut writer: W) -> Result<()> {
    let mut header = Vec::with_capacity(16 + 4 * t.order());
    header.put_slice(MAGIC);
    header.put_u8(VERSION);
    header.put_u8(V::BYTES as u8);
    header.put_u16_le(t.order() as u16);
    for &d in t.shape().dims() {
        header.put_u32_le(d);
    }
    header.put_u64_le(t.nnz() as u64);
    writer.write_all(&header)?;

    let mut body = Vec::with_capacity(t.nnz() * (4 * t.order() + V::BYTES));
    for m in 0..t.order() {
        for &c in t.mode_inds(m) {
            body.put_u32_le(c);
        }
    }
    for &v in t.vals() {
        if V::BYTES == 4 {
            body.put_f32_le(v.to_f64() as f32);
        } else {
            body.put_f64_le(v.to_f64());
        }
    }
    writer.write_all(&body)?;
    Ok(())
}

/// Reads a tensor written by [`write_binary`].
///
/// # Errors
///
/// Returns [`Error::Corrupt`] for a bad magic/version/width or truncated
/// payload, and [`Error::Io`] for read failures.
pub fn read_binary<V: Value, R: Read>(mut reader: R) -> Result<CooTensor<V>> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = &raw[..];

    if buf.remaining() < 8 {
        return Err(Error::Corrupt("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Corrupt("bad magic".into()));
    }
    if buf.get_u8() != VERSION {
        return Err(Error::Corrupt("unsupported version".into()));
    }
    let width = buf.get_u8() as usize;
    if width != V::BYTES {
        return Err(Error::Corrupt(format!(
            "value width {width} does not match requested type ({} bytes)",
            V::BYTES
        )));
    }
    let order = buf.get_u16_le() as usize;
    if order == 0 || buf.remaining() < 4 * order + 8 {
        return Err(Error::Corrupt("truncated dims".into()));
    }
    let dims: Vec<Coord> = (0..order).map(|_| buf.get_u32_le()).collect();
    let nnz = buf.get_u64_le() as usize;
    let need =
        nnz.checked_mul(4 * order + width).ok_or_else(|| Error::Corrupt("overflow".into()))?;
    if buf.remaining() < need {
        return Err(Error::Corrupt("truncated payload".into()));
    }
    let mut inds = Vec::with_capacity(order);
    for _ in 0..order {
        inds.push((0..nnz).map(|_| buf.get_u32_le()).collect::<Vec<Coord>>());
    }
    let vals: Vec<V> = (0..nnz)
        .map(|_| {
            if width == 4 {
                V::from_f64(buf.get_f32_le() as f64)
            } else {
                V::from_f64(buf.get_f64_le())
            }
        })
        .collect();

    let shape = Shape::try_new(dims)?;
    CooTensor::from_parts(shape, inds, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![(vec![0, 0, 0], 1.5), (vec![2, 3, 4], -2.25), (vec![1, 2, 3], 0.5)],
        )
        .unwrap()
    }

    #[test]
    fn tns_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back: CooTensor<f32> = read_tns(&buf[..]).unwrap();
        // Shape is inferred from max indices: 3x4x5 here because the corner
        // entry (2,3,4) pins every mode.
        assert_eq!(back.shape().dims(), &[3, 4, 5]);
        assert_eq!(back.nnz(), 3);
        assert_eq!(back.get(&[2, 3, 4]), Some(-2.25));
    }

    #[test]
    fn tns_skips_comments_and_blank_lines() {
        let text = "# comment\n\n% another\n1 1 2.0\n2 2 3.0\n";
        let t: CooTensor<f64> = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.order(), 2);
        assert_eq!(t.get(&[1, 1]), Some(3.0));
    }

    #[test]
    fn tns_rejects_malformed() {
        assert!(read_tns::<f32, _>("1 2\n1 2 3 4.0\n".as_bytes()).is_err()); // order change
        assert!(read_tns::<f32, _>("x 2 3.0\n".as_bytes()).is_err()); // bad index
        assert!(read_tns::<f32, _>("1 2 zzz\n".as_bytes()).is_err()); // bad value
        assert!(read_tns::<f32, _>("0 2 1.0\n".as_bytes()).is_err()); // 0 in 1-based
        assert!(read_tns::<f32, _>("1\n".as_bytes()).is_err()); // too short
        assert!(read_tns::<f32, _>("".as_bytes()).is_err()); // empty
        assert!(read_tns::<f32, _>("1 2 inf\n".as_bytes()).is_err()); // non-finite
    }

    #[test]
    fn binary_roundtrip_f32() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back: CooTensor<f32> = read_binary(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_roundtrip_f64() {
        let t = CooTensor::<f64>::from_entries(
            Shape::new(vec![2, 2]),
            vec![(vec![0, 1], std::f64::consts::PI)],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back: CooTensor<f64> = read_binary(&buf[..]).unwrap();
        assert_eq!(back.get(&[0, 1]), Some(std::f64::consts::PI));
    }

    #[test]
    fn binary_detects_corruption() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();

        let short = &buf[..buf.len() - 4];
        assert!(matches!(read_binary::<f32, _>(short), Err(Error::Corrupt(_))));

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(read_binary::<f32, _>(&bad_magic[..]), Err(Error::Corrupt(_))));

        // Wrong value type.
        assert!(matches!(read_binary::<f64, _>(&buf[..]), Err(Error::Corrupt(_))));
    }

    #[test]
    fn binary_header_is_compact() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // 4 magic + 1 ver + 1 width + 2 order + 12 dims + 8 nnz + payload.
        assert_eq!(buf.len(), 28 + 3 * (12 + 4));
    }
}
