//! The semi-sparse HiCOO (sHiCOO) format.
//!
//! sHiCOO (Figure 2(c) of the paper) is to HiCOO what sCOO is to COO: the
//! dense mode(s) are stored as dense per-fiber arrays while the sparse modes
//! use HiCOO's block/element index compression. The HiCOO-TTM kernel writes
//! its semi-sparse output in this format.

use crate::error::Result;
use crate::hicoo::block_bits_for;
use crate::morton::morton_cmp;
use crate::scoo::SemiCooTensor;
use crate::shape::{Coord, Shape};
use crate::sort::sort_permutation;
use crate::value::Value;

/// A semi-sparse tensor with HiCOO-compressed sparse modes.
///
/// The unit of sparsity is the *fiber* (one per distinct sparse coordinate
/// tuple); fibers are grouped into blocks over the sparse modes exactly as
/// HiCOO groups non-zeros.
///
/// # Examples
///
/// ```
/// use pasta_core::{SemiCooTensor, SHiCooTensor, Shape};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let scoo = SemiCooTensor::from_fibers(
///     Shape::new(vec![4, 4, 2]),
///     vec![2],
///     vec![vec![0, 3], vec![1, 3]],
///     vec![1.0_f32, 2.0, 3.0, 4.0],
/// )?;
/// let sh = SHiCooTensor::from_scoo(&scoo, 2)?;
/// assert_eq!(sh.num_fibers(), 2);
/// assert_eq!(sh.num_blocks(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SHiCooTensor<V> {
    shape: Shape,
    block_bits: u8,
    dense_modes: Vec<usize>,
    sparse_modes: Vec<usize>,
    /// Fiber range per block (length `num_blocks + 1`).
    bptr: Vec<usize>,
    /// Block indices per sparse mode (parallel to `sparse_modes`).
    binds: Vec<Vec<Coord>>,
    /// Element indices per sparse mode, one per fiber.
    einds: Vec<Vec<u8>>,
    /// `num_fibers × dense_volume` values.
    vals: Vec<V>,
}

impl<V: Value> SHiCooTensor<V> {
    /// Converts an sCOO tensor into sHiCOO with the given block size.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidBlockSize`] for an invalid block size.
    pub fn from_scoo(scoo: &SemiCooTensor<V>, block_size: u32) -> Result<Self> {
        let bits = block_bits_for(block_size)?;
        let ns = scoo.sparse_modes().len();
        let nf = scoo.num_fibers();
        let d = scoo.dense_volume();

        let block_coord =
            |f: usize| -> Vec<Coord> { (0..ns).map(|k| scoo.sparse_inds(k)[f] >> bits).collect() };
        let perm = sort_permutation(nf, |a, b| {
            morton_cmp(&block_coord(a), &block_coord(b)).then_with(|| {
                for k in 0..ns {
                    let ord = scoo.sparse_inds(k)[a].cmp(&scoo.sparse_inds(k)[b]);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            })
        });

        let mask = block_size - 1;
        let mut bptr = Vec::new();
        let mut binds: Vec<Vec<Coord>> = vec![Vec::new(); ns];
        let mut einds: Vec<Vec<u8>> = vec![Vec::with_capacity(nf); ns];
        let mut vals = Vec::with_capacity(nf * d);
        let mut prev_block: Option<Vec<Coord>> = None;

        for (pos, &p) in perm.iter().enumerate() {
            let f = p as usize;
            let bc = block_coord(f);
            if prev_block.as_ref() != Some(&bc) {
                bptr.push(pos);
                for (k, col) in binds.iter_mut().enumerate() {
                    col.push(bc[k]);
                }
                prev_block = Some(bc);
            }
            for (k, col) in einds.iter_mut().enumerate() {
                col.push((scoo.sparse_inds(k)[f] & mask) as u8);
            }
            vals.extend_from_slice(scoo.fiber_vals(f));
        }
        bptr.push(nf);

        Ok(Self {
            shape: scoo.shape().clone(),
            block_bits: bits,
            dense_modes: scoo.dense_modes().to_vec(),
            sparse_modes: scoo.sparse_modes().to_vec(),
            bptr,
            binds,
            einds,
            vals,
        })
    }

    /// Assembles an sHiCOO tensor directly from its constituent arrays.
    ///
    /// Intended for kernels (HiCOO-TTM) that derive their output's block
    /// structure from the input's.
    ///
    /// # Errors
    ///
    /// Returns an error if the arrays are mutually inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        shape: Shape,
        block_size: u32,
        dense_modes: Vec<usize>,
        bptr: Vec<usize>,
        binds: Vec<Vec<Coord>>,
        einds: Vec<Vec<u8>>,
        vals: Vec<V>,
    ) -> Result<Self> {
        use crate::error::Error;
        let bits = block_bits_for(block_size)?;
        let mut dm = dense_modes;
        dm.sort_unstable();
        dm.dedup();
        if dm.is_empty() || dm.len() >= shape.order() {
            return Err(Error::OperandMismatch { what: "bad dense mode set".into() });
        }
        for &m in &dm {
            shape.check_mode(m)?;
        }
        let sparse_modes: Vec<usize> = (0..shape.order()).filter(|m| !dm.contains(m)).collect();
        let ns = sparse_modes.len();
        let nb = bptr.len().saturating_sub(1);
        let nf = einds.first().map_or(0, Vec::len);
        let dvol: usize = dm.iter().map(|&m| shape.dim(m) as usize).product();
        let consistent = binds.len() == ns
            && einds.len() == ns
            && binds.iter().all(|c| c.len() == nb)
            && einds.iter().all(|c| c.len() == nf)
            && bptr.first() == Some(&0)
            && bptr.last() == Some(&nf)
            && bptr.windows(2).all(|w| w[0] <= w[1])
            && vals.len() == nf * dvol;
        if !consistent {
            return Err(Error::OperandMismatch { what: "inconsistent sHiCOO arrays".into() });
        }
        Ok(Self {
            shape,
            block_bits: bits,
            dense_modes: dm,
            sparse_modes,
            bptr,
            binds,
            einds,
            vals,
        })
    }

    /// The tensor shape (including dense modes).
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dense modes, in increasing order.
    #[inline]
    pub fn dense_modes(&self) -> &[usize] {
        &self.dense_modes
    }

    /// The sparse modes, in increasing order.
    #[inline]
    pub fn sparse_modes(&self) -> &[usize] {
        &self.sparse_modes
    }

    /// The number of stored fibers.
    pub fn num_fibers(&self) -> usize {
        self.einds.first().map_or(0, Vec::len)
    }

    /// The number of blocks over the sparse modes.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.bptr.len().saturating_sub(1)
    }

    /// The block size `B`.
    #[inline]
    pub fn block_size(&self) -> u32 {
        1 << self.block_bits
    }

    /// The product of the dense mode dimensions.
    pub fn dense_volume(&self) -> usize {
        self.dense_modes.iter().map(|&m| self.shape.dim(m) as usize).product()
    }

    /// The fiber range of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.num_blocks()`.
    #[inline]
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        self.bptr[b]..self.bptr[b + 1]
    }

    /// The dense values of fiber `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= self.num_fibers()`.
    #[inline]
    pub fn fiber_vals(&self, f: usize) -> &[V] {
        let d = self.dense_volume();
        &self.vals[f * d..(f + 1) * d]
    }

    /// Mutable dense values of fiber `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= self.num_fibers()`.
    #[inline]
    pub fn fiber_vals_mut(&mut self, f: usize) -> &mut [V] {
        let d = self.dense_volume();
        &mut self.vals[f * d..(f + 1) * d]
    }

    /// The whole value array.
    #[inline]
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Mutable access to the whole value array (fiber order preserved).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    /// The block pointer array (fiber range per block).
    #[inline]
    pub fn bptr(&self) -> &[usize] {
        &self.bptr
    }

    /// The block indices of the `k`-th sparse mode (parallel to
    /// [`Self::sparse_modes`]).
    #[inline]
    pub fn mode_binds(&self, k: usize) -> &[Coord] {
        &self.binds[k]
    }

    /// The element indices of the `k`-th sparse mode (parallel to
    /// [`Self::sparse_modes`]).
    #[inline]
    pub fn mode_einds(&self, k: usize) -> &[u8] {
        &self.einds[k]
    }

    /// Reconstructs the sparse coordinates of fiber `f` in block `b`
    /// (parallel to [`Self::sparse_modes`]).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn fiber_coords(&self, b: usize, f: usize) -> Vec<Coord> {
        debug_assert!(self.block_range(b).contains(&f));
        (0..self.sparse_modes.len())
            .map(|k| (self.binds[k][b] << self.block_bits) | self.einds[k][f] as Coord)
            .collect()
    }

    /// The storage footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        let ns = self.sparse_modes.len();
        self.num_blocks() * (4 * ns + 8) + self.num_fibers() * ns + self.vals.len() * V::BYTES
    }

    /// Expands back to sCOO (fibers in block-major Morton order).
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed tensor; the `Result` mirrors the sCOO
    /// constructor.
    pub fn to_scoo(&self) -> Result<SemiCooTensor<V>> {
        let ns = self.sparse_modes.len();
        let mut inds: Vec<Vec<Coord>> = vec![Vec::with_capacity(self.num_fibers()); ns];
        for b in 0..self.num_blocks() {
            for f in self.block_range(b) {
                let coords = self.fiber_coords(b, f);
                for (k, col) in inds.iter_mut().enumerate() {
                    col.push(coords[k]);
                }
            }
        }
        SemiCooTensor::from_fibers(
            self.shape.clone(),
            self.dense_modes.clone(),
            inds,
            self.vals.clone(),
        )
    }
}

impl<V: Value> crate::access::FormatAccess<V> for SHiCooTensor<V> {
    fn format_name(&self) -> &'static str {
        "sHiCOO"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn level_kind(&self, mode: usize) -> crate::access::LevelKind {
        self.shape.check_mode(mode).expect("mode in range");
        if self.dense_modes.contains(&mode) {
            crate::access::LevelKind::Dense
        } else {
            crate::access::LevelKind::Blocked
        }
    }

    fn stored_vals(&self) -> &[V] {
        &self.vals
    }

    fn stored_vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    fn same_structure(&self, other: &Self) -> bool {
        self.shape == other.shape
            && self.block_bits == other.block_bits
            && self.dense_modes == other.dense_modes
            && self.bptr == other.bptr
            && self.binds == other.binds
            && self.einds == other.einds
    }

    /// Visits every stored slot, *including* explicit zeros inside dense
    /// fibers, block-major then fiber-major then dense-offset order.
    fn for_each_stored<F: FnMut(&[Coord], V)>(&self, mut f: F) {
        let order = self.shape.order();
        let d = self.dense_volume();
        let dense_dims: Vec<usize> =
            self.dense_modes.iter().map(|&m| self.shape.dim(m) as usize).collect();
        let mut coords = vec![0 as Coord; order];
        for b in 0..self.num_blocks() {
            for fib in self.block_range(b) {
                for (k, &m) in self.sparse_modes.iter().enumerate() {
                    coords[m] = (self.binds[k][b] << self.block_bits) | self.einds[k][fib] as Coord;
                }
                for (lin, &v) in self.fiber_vals(fib).iter().enumerate().take(d) {
                    let mut rem = lin;
                    for (di, &m) in self.dense_modes.iter().enumerate().rev() {
                        coords[m] = (rem % dense_dims[di]) as Coord;
                        rem /= dense_dims[di];
                    }
                    f(&coords, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scoo() -> SemiCooTensor<f32> {
        // 8x8x2, dense mode 2, four fibers.
        SemiCooTensor::from_fibers(
            Shape::new(vec![8, 8, 2]),
            vec![2],
            vec![vec![0, 1, 4, 7], vec![0, 1, 5, 7]],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        )
        .unwrap()
    }

    #[test]
    fn blocks_group_nearby_fibers() {
        let sh = SHiCooTensor::from_scoo(&sample_scoo(), 2).unwrap();
        assert_eq!(sh.num_fibers(), 4);
        // Fibers (0,0) & (1,1) share block (0,0); (4,5) is block (2,2); (7,7) is block (3,3).
        assert_eq!(sh.num_blocks(), 3);
        assert_eq!(sh.block_size(), 2);
        assert_eq!(sh.dense_volume(), 2);
    }

    #[test]
    fn roundtrip_to_scoo() {
        let scoo = sample_scoo();
        let sh = SHiCooTensor::from_scoo(&scoo, 4).unwrap();
        let back = sh.to_scoo().unwrap();
        // Same fibers, possibly reordered: compare via COO expansion.
        let mut a = scoo.to_coo();
        a.sort();
        let mut b = back.to_coo();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn fiber_values_follow_reordering() {
        let sh = SHiCooTensor::from_scoo(&sample_scoo(), 2).unwrap();
        for b in 0..sh.num_blocks() {
            for f in sh.block_range(b) {
                let coords = sh.fiber_coords(b, f);
                // Fiber (0,0) carried [1,2]; (1,1) carried [3,4]; etc.
                let expect_first = match (coords[0], coords[1]) {
                    (0, 0) => 1.0,
                    (1, 1) => 3.0,
                    (4, 5) => 5.0,
                    (7, 7) => 7.0,
                    other => panic!("unexpected fiber {other:?}"),
                };
                assert_eq!(sh.fiber_vals(f)[0], expect_first);
            }
        }
    }

    #[test]
    fn invalid_block_size_rejected() {
        assert!(matches!(
            SHiCooTensor::from_scoo(&sample_scoo(), 5),
            Err(crate::error::Error::InvalidBlockSize { size: 5 })
        ));
    }

    #[test]
    fn storage_accounts_blocks_fibers_values() {
        let sh = SHiCooTensor::from_scoo(&sample_scoo(), 2).unwrap();
        // 3 blocks x (4*2 + 8) + 4 fibers x 2 sparse modes x 1B + 8 vals x 4B.
        assert_eq!(sh.storage_bytes(), 3 * 16 + 8 + 32);
    }
}
