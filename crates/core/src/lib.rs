//! # pasta-core — sparse tensor formats and data structures
//!
//! The foundation crate of **PASTA-rs**, a Rust reproduction of the IISWC
//! 2020 paper *"A Sparse Tensor Benchmark Suite for CPUs and GPUs"*. It
//! provides the sparse tensor formats the paper's kernels operate on:
//!
//! - [`CooTensor`] — coordinate format, the mode-generic default;
//! - [`SemiCooTensor`] — sCOO for semi-sparse tensors with dense mode(s);
//! - [`HiCooTensor`] — hierarchical COO with blocked 8-bit element indices;
//! - [`GHiCooTensor`] — gHiCOO with a per-mode blocked/full choice;
//! - [`SHiCooTensor`] — sHiCOO for semi-sparse tensors;
//!
//! plus the format-access trait layer ([`FormatAccess`], [`FiberCursor`],
//! [`LevelKind`]) that lets `pasta-kernels` write each kernel once against
//! per-mode level kinds instead of once per format,
//! dense operands ([`DenseMatrix`], [`DenseVector`]), small dense linear
//! algebra for the example tensor methods ([`linalg`]), Morton-order helpers
//! ([`morton`]), fiber indexing ([`FiberIndex`]), tensor statistics
//! ([`TensorStats`]) and `.tns`/binary I/O ([`io`]).
//!
//! # Examples
//!
//! Build a third-order tensor, convert it to HiCOO and inspect its blocks:
//!
//! ```
//! use pasta_core::{CooTensor, HiCooTensor, Shape};
//!
//! # fn main() -> Result<(), pasta_core::Error> {
//! let coo = CooTensor::from_entries(
//!     Shape::new(vec![8, 8, 8]),
//!     vec![
//!         (vec![0, 0, 0], 1.0_f32),
//!         (vec![1, 0, 1], 2.0),
//!         (vec![7, 7, 7], 3.0),
//!     ],
//! )?;
//! let hicoo = HiCooTensor::from_coo(&coo, 2)?;
//! assert_eq!(hicoo.num_blocks(), 2);
//! assert!(hicoo.storage_bytes() > 0);
//! # Ok(())
//! # }
//! ```

// Dense/kernel code indexes several arrays in lockstep; iterator
// rewrites of those loops obscure the math.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod coo;
pub mod csf;
pub mod dense;
pub mod error;
pub mod fcoo;
pub mod fiber;
pub mod ghicoo;
pub mod hicoo;
pub mod io;
pub mod keys;
pub mod linalg;
pub mod morton;
pub mod reorder;
pub mod scoo;
pub mod shape;
pub mod shicoo;
pub mod sort;
pub mod stats;
pub mod validate;
pub mod value;

pub use access::{FiberCursor, FormatAccess, LevelKind};
pub use coo::{CooTensor, SortState};
pub use csf::CsfTensor;
pub use dense::{seeded_matrix, seeded_vector, DenseMatrix, DenseVector};
pub use error::{Error, Result};
pub use fcoo::FCooTensor;
pub use fiber::FiberIndex;
pub use ghicoo::{GHiCooTensor, ModeIndex};
pub use hicoo::{block_bits_for, HiCooTensor};
pub use reorder::Relabel;
pub use scoo::SemiCooTensor;
pub use shape::{Coord, Shape};
pub use shicoo::SHiCooTensor;
pub use stats::{BlockStats, TensorStats};
pub use validate::{validate_coo, validate_csf, validate_ghicoo, validate_hicoo, validate_scoo};
pub use value::Value;
