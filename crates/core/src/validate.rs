//! Deep structural validation of the sparse formats.
//!
//! A benchmark suite lives on *comparability and reproducibility*; these
//! checkers verify every representation invariant of each format so that
//! new implementations (the suite's stated goal is adoption of
//! community-contributed kernels and formats) can be fuzzed and regression-
//! tested against the reference structures.

use crate::coo::CooTensor;
use crate::csf::CsfTensor;
use crate::error::{Error, Result};
use crate::ghicoo::{GHiCooTensor, ModeIndex};
use crate::hicoo::HiCooTensor;
use crate::morton::morton_cmp;
use crate::scoo::SemiCooTensor;
use crate::value::Value;

fn fail(what: impl Into<String>) -> Error {
    Error::OperandMismatch { what: what.into() }
}

/// Checks a COO tensor: index bounds per mode, consistent array lengths,
/// finite values, and — if the tensor claims an order — that ordering.
///
/// # Errors
///
/// Returns a descriptive error for the first violated invariant.
pub fn validate_coo<V: Value>(t: &CooTensor<V>) -> Result<()> {
    for m in 0..t.order() {
        if t.mode_inds(m).len() != t.nnz() {
            return Err(fail(format!("mode {m} index array length mismatch")));
        }
        let dim = t.shape().dim(m);
        if let Some(&bad) = t.mode_inds(m).iter().find(|&&c| c >= dim) {
            return Err(Error::IndexOutOfBounds { mode: m, index: bad, dim });
        }
    }
    if let Some(&v) = t.vals().iter().find(|v| !v.is_finite()) {
        return Err(fail(format!("non-finite value {v}")));
    }
    if let Some(order) = t.sorted_by() {
        for x in 1..t.nnz() {
            let cmp = crate::sort::lex_cmp(t.inds(), order, x - 1, x);
            if cmp == std::cmp::Ordering::Greater {
                return Err(fail(format!("claimed sort order {order:?} violated at entry {x}")));
            }
        }
    }
    Ok(())
}

/// Checks a HiCOO tensor: monotone `bptr` covering all entries, non-empty
/// blocks in strictly increasing Morton order, element indices inside the
/// block, block coordinates inside the shape.
///
/// # Errors
///
/// Returns a descriptive error for the first violated invariant.
pub fn validate_hicoo<V: Value>(t: &HiCooTensor<V>) -> Result<()> {
    let nb = t.num_blocks();
    let bits = t.block_bits();
    if t.bptr().first().copied().unwrap_or(0) != 0
        || t.bptr().last().copied().unwrap_or(0) != t.nnz()
    {
        return Err(fail("bptr does not span the entries"));
    }
    for b in 0..nb {
        let range = t.block_range(b);
        if range.is_empty() {
            return Err(fail(format!("block {b} is empty")));
        }
        if b > 0 {
            let prev = t.block_coords(b - 1);
            let cur = t.block_coords(b);
            if morton_cmp(&prev, &cur) != std::cmp::Ordering::Less {
                return Err(fail(format!("blocks {b} and {} out of Morton order", b - 1)));
            }
        }
        for m in 0..t.order() {
            let reconstructed_base = (t.mode_binds(m)[b] as u64) << bits;
            if reconstructed_base + (t.block_size() as u64 - 1)
                < t.mode_einds(m)[range.start] as u64
            {
                // cannot happen structurally; kept for clarity
            }
            for x in range.clone() {
                if (t.mode_einds(m)[x] as u32) >= t.block_size() {
                    return Err(fail(format!("element index out of block at entry {x}")));
                }
                let coord = (t.mode_binds(m)[b] << bits) | t.mode_einds(m)[x] as u32;
                if coord >= t.shape().dim(m) {
                    return Err(Error::IndexOutOfBounds {
                        mode: m,
                        index: coord,
                        dim: t.shape().dim(m),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks a gHiCOO tensor: the blocked-mode invariants of
/// [`validate_hicoo`] plus length checks on the uncompressed index arrays.
///
/// # Errors
///
/// Returns a descriptive error for the first violated invariant.
pub fn validate_ghicoo<V: Value>(t: &GHiCooTensor<V>) -> Result<()> {
    if t.bptr().first().copied().unwrap_or(0) != 0
        || t.bptr().last().copied().unwrap_or(0) != t.nnz()
    {
        return Err(fail("bptr does not span the entries"));
    }
    for m in 0..t.order() {
        match t.mode_index(m) {
            ModeIndex::Blocked { binds, einds } => {
                if binds.len() != t.num_blocks() || einds.len() != t.nnz() {
                    return Err(fail(format!("mode {m} blocked array lengths")));
                }
                if einds.iter().any(|&e| (e as u32) >= t.block_size()) {
                    return Err(fail(format!("mode {m} element index exceeds block")));
                }
            }
            ModeIndex::Full(finds) => {
                if finds.len() != t.nnz() {
                    return Err(fail(format!("mode {m} full index length")));
                }
                let dim = t.shape().dim(m);
                if let Some(&bad) = finds.iter().find(|&&c| c >= dim) {
                    return Err(Error::IndexOutOfBounds { mode: m, index: bad, dim });
                }
            }
        }
    }
    // Every reconstructed coordinate in range.
    for b in 0..t.num_blocks() {
        for x in t.block_range(b) {
            for m in 0..t.order() {
                let c = t.coord(m, b, x);
                if c >= t.shape().dim(m) {
                    return Err(Error::IndexOutOfBounds {
                        mode: m,
                        index: c,
                        dim: t.shape().dim(m),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks an sCOO tensor: disjoint sparse/dense mode sets covering all
/// modes, index bounds, and value-array sizing.
///
/// # Errors
///
/// Returns a descriptive error for the first violated invariant.
pub fn validate_scoo<V: Value>(t: &SemiCooTensor<V>) -> Result<()> {
    let mut all: Vec<usize> = t.dense_modes().iter().chain(t.sparse_modes()).copied().collect();
    all.sort_unstable();
    if all != (0..t.shape().order()).collect::<Vec<_>>() {
        return Err(fail("dense + sparse modes do not partition the modes"));
    }
    if t.vals().len() != t.num_fibers() * t.dense_volume() {
        return Err(fail("value array does not match fibers x dense volume"));
    }
    for (k, &m) in t.sparse_modes().iter().enumerate() {
        let dim = t.shape().dim(m);
        if t.sparse_inds(k).len() != t.num_fibers() {
            return Err(fail(format!("sparse mode {m} index array length")));
        }
        if let Some(&bad) = t.sparse_inds(k).iter().find(|&&c| c >= dim) {
            return Err(Error::IndexOutOfBounds { mode: m, index: bad, dim });
        }
    }
    Ok(())
}

/// Checks a CSF tensor: pointer arrays monotone and spanning, ids in range,
/// leaf count matching the value array.
///
/// # Errors
///
/// Returns a descriptive error for the first violated invariant.
pub fn validate_csf<V: Value>(t: &CsfTensor<V>) -> Result<()> {
    let order = t.order();
    if t.level_size(order - 1) != t.nnz() {
        return Err(fail("leaf count != nnz"));
    }
    for l in 0..order {
        let mode = t.mode_order()[l];
        let dim = t.shape().dim(mode);
        if let Some(&bad) = t.fids(l).iter().find(|&&c| c >= dim) {
            return Err(Error::IndexOutOfBounds { mode, index: bad, dim });
        }
    }
    for l in 0..order - 1 {
        let mut prev_end = 0usize;
        for i in 0..t.level_size(l) {
            let r = t.children(l, i);
            if r.start != prev_end {
                return Err(fail(format!("level {l} child ranges not contiguous at node {i}")));
            }
            if r.is_empty() {
                return Err(fail(format!("level {l} node {i} has no children")));
            }
            prev_end = r.end;
        }
        if prev_end != t.level_size(l + 1) {
            return Err(fail(format!("level {l} pointers do not cover level {}", l + 1)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![16, 16, 16]),
            (0..40u32)
                .map(|i| (vec![i % 16, (i * 3) % 16, (i * 7) % 16], i as f32 + 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn well_formed_structures_pass() {
        let mut t = sample();
        t.dedup_sum();
        validate_coo(&t).unwrap();
        validate_hicoo(&HiCooTensor::from_coo(&t, 4).unwrap()).unwrap();
        validate_ghicoo(&GHiCooTensor::from_coo(&t, 4, &[true, false, true]).unwrap()).unwrap();
        validate_csf(&CsfTensor::from_coo(&t, &[2, 0, 1]).unwrap()).unwrap();
        let scoo = SemiCooTensor::from_fibers(
            Shape::new(vec![4, 4, 3]),
            vec![2],
            vec![vec![0, 1], vec![2, 3]],
            vec![1.0f32; 6],
        )
        .unwrap();
        validate_scoo(&scoo).unwrap();
    }

    #[test]
    fn coo_detects_nonfinite_value() {
        let mut t = sample();
        t.vals_mut()[3] = f32::NAN;
        assert!(validate_coo(&t).is_err());
    }

    #[test]
    fn coo_detects_false_sort_claim() {
        let mut t = sample();
        t.sort();
        validate_coo(&t).unwrap();
        // Break the order while keeping the claim (values only swap is fine,
        // so forge via from_parts + assume).
        let (shape, mut inds, vals) = t.clone().into_parts();
        inds[0].swap(0, t.nnz() - 1);
        let forged = CooTensor::from_parts(shape, inds, vals).unwrap();
        // A fresh tensor has no claim — fine.
        validate_coo(&forged).unwrap();
    }

    #[test]
    fn validators_run_on_generated_structures_of_every_block_size() {
        let mut t = sample();
        t.dedup_sum();
        for bs in [2u32, 8, 32, 128, 256] {
            validate_hicoo(&HiCooTensor::from_coo(&t, bs).unwrap()).unwrap();
        }
    }

    #[test]
    fn empty_structures_validate() {
        let t = CooTensor::<f32>::new(Shape::new(vec![4, 4]));
        validate_coo(&t).unwrap();
        validate_hicoo(&HiCooTensor::from_coo(&t, 4).unwrap()).unwrap();
        validate_csf(&CsfTensor::from_coo(&t, &[0, 1]).unwrap()).unwrap();
    }
}
