//! Packed sort-key construction for the format converters.
//!
//! The comparator-based sorts that order non-zeros for COO/CSF
//! (lexicographic in a mode order) and HiCOO/gHiCOO (Morton order of block
//! coordinates with lexicographic tie-breaks) re-derive the same
//! information — shifted block coordinates, per-mode comparisons — on
//! *every* comparison, `O(M log M)` times. This module instead packs each
//! entry's full sort key into one integer, once, so the conversion can run
//! a key-based radix sort ([`crate::sort::par_sort_keys`]) instead.
//!
//! Key layouts are chosen so that *integer comparison of keys is exactly
//! the comparator order* (see each builder's docs); combined with a stable
//! sort and position tie-breaking this reproduces the comparator sort's
//! permutation bit-for-bit.
//!
//! Keys wider than 128 bits cannot be packed; builders then return
//! [`PackedKeys::Overflow`] and callers fall back to the comparator path.

use crate::shape::Coord;

/// The packed keys for one sort, in entry order.
#[derive(Debug, Clone)]
pub enum PackedKeys {
    /// All keys fit in 64 bits.
    U64(Vec<u64>),
    /// All keys fit in 128 bits.
    U128(Vec<u128>),
    /// The key would exceed 128 bits; use a comparator sort instead.
    Overflow,
}

/// Bits needed to represent every coordinate in `0..dim`.
#[inline]
fn bits_needed(dim: Coord) -> u32 {
    if dim <= 1 {
        0
    } else {
        Coord::BITS - (dim - 1).leading_zeros()
    }
}

/// Number of blocks covering `0..dim` with blocks of `2^block_bits`.
#[inline]
fn block_dim(dim: Coord, block_bits: u8) -> Coord {
    if dim == 0 {
        0
    } else {
        ((dim - 1) >> block_bits) + 1
    }
}

/// An unsigned word keys can be packed into (`u64` or `u128`).
trait Word: Copy {
    const ZERO: Self;
    fn push_bits(self, value: Coord, width: u32) -> Self;
}

impl Word for u64 {
    const ZERO: Self = 0;
    #[inline]
    fn push_bits(self, value: Coord, width: u32) -> Self {
        (self << width) | value as u64
    }
}

impl Word for u128 {
    const ZERO: Self = 0;
    #[inline]
    fn push_bits(self, value: Coord, width: u32) -> Self {
        (self << width) | value as u128
    }
}

/// Packs lexicographic mode-order keys: for each entry, the coordinates of
/// the modes in `mode_order` are concatenated most-significant-first, each
/// in a field just wide enough for its dimension.
///
/// Integer order of these keys equals [`crate::sort::lex_cmp`] in
/// `mode_order`: fields are compared most-significant-first and a
/// zero-width field (dimension ≤ 1) drops out exactly like the always-equal
/// comparison it replaces.
pub fn lex_keys(inds: &[Vec<Coord>], dims: &[Coord], mode_order: &[usize]) -> PackedKeys {
    let widths: Vec<u32> = mode_order.iter().map(|&m| bits_needed(dims[m])).collect();
    let total: u32 = widths.iter().sum();
    let n = inds.first().map_or(0, Vec::len);
    if total <= 64 {
        let mut keys = vec![0u64; n];
        fill_lex(&mut keys, inds, mode_order, &widths);
        PackedKeys::U64(keys)
    } else if total <= 128 {
        let mut keys = vec![0u128; n];
        fill_lex(&mut keys, inds, mode_order, &widths);
        PackedKeys::U128(keys)
    } else {
        PackedKeys::Overflow
    }
}

fn fill_lex<W: Word>(keys: &mut [W], inds: &[Vec<Coord>], mode_order: &[usize], widths: &[u32]) {
    for (x, key) in keys.iter_mut().enumerate() {
        let mut k = W::ZERO;
        for (&m, &w) in mode_order.iter().zip(widths) {
            k = k.push_bits(inds[m][x], w);
        }
        *key = k;
    }
}

/// Packs HiCOO conversion keys: the Morton code of the entry's block
/// coordinates in the high bits, the concatenated in-block element offsets
/// in the low bits.
///
/// The Morton code interleaves the block coordinates *equal-width* and
/// *mode-major* (mode 0 contributes the most significant bit of each
/// width-group), which is precisely the order [`crate::morton::morton_cmp`]
/// compares by: the most significant differing bit decides, and among modes
/// whose difference has the same bit position the earliest mode wins.
/// Within one block the Morton part ties, and the offset part compares the
/// modes lexicographically — equal to the full-coordinate tie-break in
/// [`crate::hicoo::HiCooTensor::from_coo`] because the block parts agree.
pub fn hicoo_keys(inds: &[Vec<Coord>], dims: &[Coord], block_bits: u8) -> PackedKeys {
    let order = dims.len();
    let morton_width =
        dims.iter().map(|&d| bits_needed(block_dim(d, block_bits))).max().unwrap_or(0);
    let total = (morton_width + u32::from(block_bits)) * order as u32;
    let n = inds.first().map_or(0, Vec::len);
    let all_modes: Vec<usize> = (0..order).collect();
    if total <= 64 {
        let mut keys = vec![0u64; n];
        fill_block_keys(&mut keys, inds, &all_modes, &[], block_bits, morton_width);
        PackedKeys::U64(keys)
    } else if total <= 128 {
        let mut keys = vec![0u128; n];
        fill_block_keys(&mut keys, inds, &all_modes, &[], block_bits, morton_width);
        PackedKeys::U128(keys)
    } else {
        PackedKeys::Overflow
    }
}

/// Packs gHiCOO conversion keys: Morton code of the *blocked* modes' block
/// coordinates, then the blocked modes' element offsets, then the full
/// (uncompressed) modes' coordinates — matching the three-level comparator
/// in [`crate::ghicoo::GHiCooTensor::from_coo`].
pub fn ghicoo_keys(
    inds: &[Vec<Coord>],
    dims: &[Coord],
    block_bits: u8,
    blocked_modes: &[usize],
    full_modes: &[usize],
) -> PackedKeys {
    let morton_width = blocked_modes
        .iter()
        .map(|&m| bits_needed(block_dim(dims[m], block_bits)))
        .max()
        .unwrap_or(0);
    let full_widths: Vec<u32> = full_modes.iter().map(|&m| bits_needed(dims[m])).collect();
    let full_bits: u32 = full_widths.iter().sum();
    let total = (morton_width + u32::from(block_bits)) * blocked_modes.len() as u32 + full_bits;
    let n = inds.first().map_or(0, Vec::len);
    let fulls: Vec<(usize, u32)> =
        full_modes.iter().copied().zip(full_widths.iter().copied()).collect();
    if total <= 64 {
        let mut keys = vec![0u64; n];
        fill_block_keys(&mut keys, inds, blocked_modes, &fulls, block_bits, morton_width);
        PackedKeys::U64(keys)
    } else if total <= 128 {
        let mut keys = vec![0u128; n];
        fill_block_keys(&mut keys, inds, blocked_modes, &fulls, block_bits, morton_width);
        PackedKeys::U128(keys)
    } else {
        PackedKeys::Overflow
    }
}

/// Shared builder for [`hicoo_keys`] (all modes blocked, no full modes) and
/// [`ghicoo_keys`]: `[morton(block coords)] [element offsets] [full coords]`.
/// `full_modes` pairs each uncompressed mode with its field width.
fn fill_block_keys<W: Word>(
    keys: &mut [W],
    inds: &[Vec<Coord>],
    blocked_modes: &[usize],
    full_modes: &[(usize, u32)],
    block_bits: u8,
    morton_width: u32,
) {
    let bits = u32::from(block_bits);
    let mask: Coord = (1 << bits) - 1;
    let mut bc: Vec<Coord> = vec![0; blocked_modes.len()];
    for (x, key) in keys.iter_mut().enumerate() {
        for (slot, &m) in bc.iter_mut().zip(blocked_modes) {
            *slot = inds[m][x] >> bits;
        }
        let mut k = W::ZERO;
        // Equal-width mode-major bit interleave of the block coordinates.
        for w in (0..morton_width).rev() {
            for &c in &bc {
                k = k.push_bits((c >> w) & 1, 1);
            }
        }
        for &m in blocked_modes {
            k = k.push_bits(inds[m][x] & mask, bits);
        }
        for &(m, width) in full_modes {
            k = k.push_bits(inds[m][x], width);
        }
        *key = k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::morton_cmp;

    #[test]
    fn bits_needed_edges() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 0);
        assert_eq!(bits_needed(2), 1);
        assert_eq!(bits_needed(3), 2);
        assert_eq!(bits_needed(4), 2);
        assert_eq!(bits_needed(5), 3);
        assert_eq!(bits_needed(Coord::MAX), 32);
    }

    #[test]
    fn block_dim_edges() {
        assert_eq!(block_dim(0, 2), 0);
        assert_eq!(block_dim(1, 2), 1);
        assert_eq!(block_dim(4, 2), 1);
        assert_eq!(block_dim(5, 2), 2);
        assert_eq!(block_dim(16, 2), 4);
    }

    #[test]
    fn lex_key_order_matches_lex_cmp() {
        use crate::sort::lex_cmp;
        let inds = vec![vec![0, 1, 1, 0, 2], vec![3, 0, 3, 3, 1], vec![1, 2, 0, 1, 2]];
        let dims = vec![3, 4, 3];
        for mode_order in [vec![0, 1, 2], vec![2, 0, 1], vec![1, 2], vec![2]] {
            let PackedKeys::U64(keys) = lex_keys(&inds, &dims, &mode_order) else {
                panic!("small keys must pack into u64");
            };
            for a in 0..5 {
                for b in 0..5 {
                    assert_eq!(
                        keys[a].cmp(&keys[b]),
                        lex_cmp(&inds, &mode_order, a, b),
                        "order {mode_order:?}, entries {a},{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn hicoo_key_order_matches_morton_then_lex() {
        let dims = vec![16u32, 16, 16];
        // All coordinate combinations in a small cube.
        let coords: Vec<[Coord; 3]> =
            (0..8).flat_map(|i| (0..8).flat_map(move |j| (0..8).map(move |k| [i, j, k]))).collect();
        let inds: Vec<Vec<Coord>> = (0..3).map(|m| coords.iter().map(|c| c[m]).collect()).collect();
        let bits = 1u8;
        let PackedKeys::U64(keys) = hicoo_keys(&inds, &dims, bits) else {
            panic!("small keys must pack into u64");
        };
        let block = |x: usize| -> Vec<Coord> { (0..3).map(|m| inds[m][x] >> bits).collect() };
        for a in 0..coords.len() {
            for b in 0..coords.len() {
                let expect = morton_cmp(&block(a), &block(b)).then_with(|| {
                    (0..3)
                        .map(|m| inds[m][a].cmp(&inds[m][b]))
                        .find(|o| *o != std::cmp::Ordering::Equal)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                assert_eq!(keys[a].cmp(&keys[b]), expect, "entries {a},{b}");
            }
        }
    }

    #[test]
    fn wide_tensors_overflow() {
        // Eight modes of 2^30: 240 bits of lexicographic key.
        let dims = vec![1 << 30; 8];
        let inds = vec![vec![5u32]; 8];
        let mode_order: Vec<usize> = (0..8).collect();
        assert!(matches!(lex_keys(&inds, &dims, &mode_order), PackedKeys::Overflow));
        assert!(matches!(hicoo_keys(&inds, &dims, 2), PackedKeys::Overflow));
    }

    #[test]
    fn lex_overflow_threshold_is_exactly_128_bits() {
        // Four full-width modes: 4 × 32 = 128 bits packs into u128; one more
        // bit (a fifth mode of dimension 2) must overflow.
        let dims128 = vec![Coord::MAX; 4];
        let inds4 = vec![vec![7u32]; 4];
        assert!(matches!(lex_keys(&inds4, &dims128, &[0, 1, 2, 3]), PackedKeys::U128(_)));
        let mut dims129 = dims128;
        dims129.push(2);
        let inds5 = vec![vec![1u32]; 5];
        assert!(matches!(lex_keys(&inds5, &dims129, &[0, 1, 2, 3, 4]), PackedKeys::Overflow));
    }

    #[test]
    fn ghicoo_overflow_threshold() {
        // Five blocked modes of 2^30 at block size 4: 5 × (28 + 2) = 150 bits.
        let dims = vec![1u32 << 30; 5];
        let inds = vec![vec![3u32]; 5];
        let blocked: Vec<usize> = (0..5).collect();
        assert!(matches!(ghicoo_keys(&inds, &dims, 2, &blocked, &[]), PackedKeys::Overflow));
        // Three blocked + two full modes of 2^16: 3 × 30 + 2 × 16 = 122 bits.
        let dims = vec![1 << 30, 1 << 30, 1 << 30, 1 << 16, 1 << 16];
        let inds = vec![vec![9u32], vec![8], vec![7], vec![6], vec![5]];
        assert!(matches!(ghicoo_keys(&inds, &dims, 2, &[0, 1, 2], &[3, 4]), PackedKeys::U128(_)));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// u128 lexicographic keys at the 128-bit boundary (four full-width
        /// modes) order exactly like the comparator they replace.
        #[test]
        fn prop_u128_lex_keys_match_lex_cmp(
            entries in proptest::collection::vec(
                (0u32..Coord::MAX, 0u32..Coord::MAX, 0u32..Coord::MAX, 0u32..Coord::MAX),
                2..20,
            ),
        ) {
            use crate::sort::lex_cmp;
            let dims = vec![Coord::MAX; 4];
            let inds: Vec<Vec<Coord>> = (0..4)
                .map(|m| entries.iter().map(|e| [e.0, e.1, e.2, e.3][m]).collect())
                .collect();
            for mode_order in [vec![0, 1, 2, 3], vec![3, 1, 0, 2]] {
                let PackedKeys::U128(keys) = lex_keys(&inds, &dims, &mode_order) else {
                    panic!("128-bit keys must pack into u128");
                };
                for a in 0..entries.len() {
                    for b in 0..entries.len() {
                        proptest::prop_assert_eq!(
                            keys[a].cmp(&keys[b]),
                            lex_cmp(&inds, &mode_order, a, b),
                            "order {:?}, entries {},{}", mode_order, a, b
                        );
                    }
                }
            }
        }

        /// u128 HiCOO keys (wide dims force the 128-bit path) order exactly
        /// like Morton-of-blocks with lexicographic tie-breaks, including
        /// entries whose block coordinates differ only in the high halves.
        #[test]
        fn prop_u128_hicoo_keys_match_morton_then_lex(
            entries in proptest::collection::vec(
                (0u32..Coord::MAX, 0u32..Coord::MAX, 0u32..Coord::MAX),
                2..16,
            ),
        ) {
            let dims = vec![Coord::MAX; 3];
            let bits = 2u8;
            let inds: Vec<Vec<Coord>> = (0..3)
                .map(|m| entries.iter().map(|e| [e.0, e.1, e.2][m]).collect())
                .collect();
            let PackedKeys::U128(keys) = hicoo_keys(&inds, &dims, bits) else {
                panic!("3 × (30 + 2) = 96-bit keys must pack into u128");
            };
            let block = |x: usize| -> Vec<Coord> { (0..3).map(|m| inds[m][x] >> bits).collect() };
            for a in 0..entries.len() {
                for b in 0..entries.len() {
                    let expect = morton_cmp(&block(a), &block(b)).then_with(|| {
                        (0..3)
                            .map(|m| inds[m][a].cmp(&inds[m][b]))
                            .find(|o| *o != std::cmp::Ordering::Equal)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    proptest::prop_assert_eq!(keys[a].cmp(&keys[b]), expect, "entries {},{}", a, b);
                }
            }
        }
    }
}
