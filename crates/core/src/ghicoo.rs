//! The generalized HiCOO (gHiCOO) format.
//!
//! gHiCOO (Figure 2(b) of the paper, introduced by this benchmark suite)
//! lets the user pick *which* modes are compressed in HiCOO's block/element
//! form and which stay as plain COO index arrays. Two uses:
//!
//! 1. **Hyper-sparse tensors** where blocking every mode yields one-non-zero
//!    blocks: compressing only the denser modes keeps HiCOO's savings.
//! 2. **TTV/TTM**, where the product mode's indices are consumed wholesale:
//!    leaving that mode uncompressed lets the kernels bypass HiCOO's blocking
//!    and reuse the COO computation without data races between blocks.

use crate::coo::CooTensor;
use crate::error::{Error, Result};
use crate::hicoo::block_bits_for;
use crate::keys::{ghicoo_keys, PackedKeys};
use crate::morton::morton_cmp;
use crate::shape::{Coord, Shape};
use crate::sort::{par_sort_keys, sort_permutation};
use crate::value::Value;

/// Per-mode index storage inside a [`GHiCooTensor`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModeIndex {
    /// HiCOO-style: 32-bit block indices per block + 8-bit element indices
    /// per non-zero.
    Blocked {
        /// Block index per block (length `num_blocks`).
        binds: Vec<Coord>,
        /// Element index per non-zero (length `nnz`).
        einds: Vec<u8>,
    },
    /// COO-style: a full 32-bit index per non-zero.
    Full(
        /// Index per non-zero (length `nnz`).
        Vec<Coord>,
    ),
}

impl ModeIndex {
    /// Whether this mode is block-compressed.
    pub fn is_blocked(&self) -> bool {
        matches!(self, ModeIndex::Blocked { .. })
    }
}

/// A sparse tensor in generalized HiCOO format.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, GHiCooTensor, Shape};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let coo = CooTensor::from_entries(
///     Shape::new(vec![8, 8, 1 << 20]),
///     vec![(vec![0, 0, 12345], 1.0_f32), (vec![1, 1, 99999], 2.0)],
/// )?;
/// // Compress modes 0 and 1, keep the huge mode 2 in COO form.
/// let g = GHiCooTensor::from_coo(&coo, 4, &[true, true, false])?;
/// assert_eq!(g.nnz(), 2);
/// assert!(g.mode_index(0).is_blocked());
/// assert!(!g.mode_index(2).is_blocked());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GHiCooTensor<V> {
    shape: Shape,
    block_bits: u8,
    /// Modes that are block-compressed, in increasing order.
    blocked_modes: Vec<usize>,
    /// Block pointer over the blocked modes (length `num_blocks + 1`).
    bptr: Vec<usize>,
    modes: Vec<ModeIndex>,
    vals: Vec<V>,
}

impl<V: Value> GHiCooTensor<V> {
    /// Converts COO to gHiCOO, compressing exactly the modes where
    /// `blocked[m]` is `true`.
    ///
    /// Entries are sorted by the Morton order of the blocked modes' block
    /// coordinates, then lexicographically by blocked-mode coordinates, then
    /// by uncompressed-mode coordinates — so runs of equal blocked
    /// coordinates (e.g. TTV fibers when only the product mode is
    /// uncompressed) are contiguous.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid block size, a `blocked` slice of the
    /// wrong length, or no blocked mode at all.
    pub fn from_coo(coo: &CooTensor<V>, block_size: u32, blocked: &[bool]) -> Result<Self> {
        Self::from_coo_threads(coo, block_size, blocked, pasta_par::default_threads())
    }

    /// [`Self::from_coo`] with an explicit worker count for the sort.
    ///
    /// Like [`HiCooTensor::from_coo_threads`](crate::hicoo::HiCooTensor::from_coo_threads):
    /// a parallel radix sort over packed keys when they fit in 128 bits,
    /// otherwise a comparator sort with the blocked modes' block
    /// coordinates hoisted out of the comparison loop. Both paths yield
    /// the identical permutation.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid block size, a `blocked` slice of the
    /// wrong length, or no blocked mode at all.
    pub fn from_coo_threads(
        coo: &CooTensor<V>,
        block_size: u32,
        blocked: &[bool],
        threads: usize,
    ) -> Result<Self> {
        let bits = block_bits_for(block_size)?;
        let order = coo.order();
        if blocked.len() != order {
            return Err(Error::OrderMismatch { left: order, right: blocked.len() });
        }
        let blocked_modes: Vec<usize> = (0..order).filter(|&m| blocked[m]).collect();
        if blocked_modes.is_empty() {
            return Err(Error::OperandMismatch {
                what: "gHiCOO needs at least one blocked mode".into(),
            });
        }
        let full_modes: Vec<usize> = (0..order).filter(|&m| !blocked[m]).collect();

        let m = coo.nnz();
        let block_coord = |x: usize| -> Vec<Coord> {
            blocked_modes.iter().map(|&md| coo.mode_inds(md)[x] >> bits).collect()
        };
        let nb = blocked_modes.len();
        let perm =
            match ghicoo_keys(coo.inds(), coo.shape().dims(), bits, &blocked_modes, &full_modes) {
                PackedKeys::U64(keys) => par_sort_keys(&keys, threads),
                PackedKeys::U128(keys) => par_sort_keys(&keys, threads),
                PackedKeys::Overflow => {
                    // Comparator fallback with the block coordinates hoisted
                    // out of the closure (computed once, compared cached).
                    let cached: Vec<Coord> = (0..m).flat_map(&block_coord).collect();
                    sort_permutation(m, |a, b| {
                        morton_cmp(&cached[a * nb..(a + 1) * nb], &cached[b * nb..(b + 1) * nb])
                            .then_with(|| {
                                for &md in &blocked_modes {
                                    let ord = coo.mode_inds(md)[a].cmp(&coo.mode_inds(md)[b]);
                                    if ord != std::cmp::Ordering::Equal {
                                        return ord;
                                    }
                                }
                                std::cmp::Ordering::Equal
                            })
                            .then_with(|| {
                                for &md in &full_modes {
                                    let ord = coo.mode_inds(md)[a].cmp(&coo.mode_inds(md)[b]);
                                    if ord != std::cmp::Ordering::Equal {
                                        return ord;
                                    }
                                }
                                std::cmp::Ordering::Equal
                            })
                    })
                }
            };

        let mask = block_size - 1;
        let mut bptr = Vec::new();
        let mut modes: Vec<ModeIndex> = (0..order)
            .map(|md| {
                if blocked[md] {
                    ModeIndex::Blocked { binds: Vec::new(), einds: Vec::with_capacity(m) }
                } else {
                    ModeIndex::Full(Vec::with_capacity(m))
                }
            })
            .collect();
        let mut vals = Vec::with_capacity(m);
        let mut prev_block: Option<Vec<Coord>> = None;

        for (pos, &p) in perm.iter().enumerate() {
            let x = p as usize;
            let bc = block_coord(x);
            let new_block = prev_block.as_ref() != Some(&bc);
            if new_block {
                bptr.push(pos);
                prev_block = Some(bc.clone());
            }
            for (md, mode) in modes.iter_mut().enumerate() {
                let c = coo.mode_inds(md)[x];
                match mode {
                    ModeIndex::Blocked { binds, einds } => {
                        if new_block {
                            binds.push(c >> bits);
                        }
                        einds.push((c & mask) as u8);
                    }
                    ModeIndex::Full(finds) => finds.push(c),
                }
            }
            vals.push(coo.vals()[x]);
        }
        bptr.push(m);

        Ok(Self { shape: coo.shape().clone(), block_bits: bits, blocked_modes, bptr, modes, vals })
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor order.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// The number of non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The number of blocks over the blocked modes.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.bptr.len().saturating_sub(1)
    }

    /// The block size `B`.
    #[inline]
    pub fn block_size(&self) -> u32 {
        1 << self.block_bits
    }

    /// `log2` of the block size.
    #[inline]
    pub fn block_bits(&self) -> u8 {
        self.block_bits
    }

    /// The blocked modes, in increasing order.
    #[inline]
    pub fn blocked_modes(&self) -> &[usize] {
        &self.blocked_modes
    }

    /// The block pointer array.
    #[inline]
    pub fn bptr(&self) -> &[usize] {
        &self.bptr
    }

    /// The index storage of mode `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= self.order()`.
    #[inline]
    pub fn mode_index(&self, m: usize) -> &ModeIndex {
        &self.modes[m]
    }

    /// The value array, in block-major order.
    #[inline]
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Mutable access to the value array (block-major order preserved).
    ///
    /// Element-wise kernels (TEW/TS) reuse the input's block structure and
    /// rewrite only the values; the indices stay untouched.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    /// The entry range of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.num_blocks()`.
    #[inline]
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        self.bptr[b]..self.bptr[b + 1]
    }

    /// Reconstructs the mode-`m` coordinate of non-zero `x` in block `b`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn coord(&self, m: usize, b: usize, x: usize) -> Coord {
        match &self.modes[m] {
            ModeIndex::Blocked { binds, einds } => {
                (binds[self.block_of(b)] << self.block_bits) | einds[x] as Coord
            }
            ModeIndex::Full(finds) => finds[x],
        }
    }

    #[inline]
    fn block_of(&self, b: usize) -> usize {
        b
    }

    /// Reconstructs the full coordinates of non-zero `x` inside block `b`.
    pub fn coords_of(&self, b: usize, x: usize) -> Vec<Coord> {
        (0..self.order()).map(|m| self.coord(m, b, x)).collect()
    }

    /// The storage footprint in bytes: blocked modes cost `4·n_b + M` each,
    /// full modes `4M` each, plus `8·n_b` for `bptr` and the values.
    pub fn storage_bytes(&self) -> usize {
        let nb = self.num_blocks();
        let m = self.nnz();
        let mut bytes = 8 * nb + m * V::BYTES;
        for mode in &self.modes {
            bytes += match mode {
                ModeIndex::Blocked { .. } => 4 * nb + m,
                ModeIndex::Full(_) => 4 * m,
            };
        }
        bytes
    }

    /// Expands back to COO.
    pub fn to_coo(&self) -> CooTensor<V> {
        let mut out = CooTensor::with_capacity(self.shape.clone(), self.nnz());
        for b in 0..self.num_blocks() {
            for x in self.block_range(b) {
                let coords = self.coords_of(b, x);
                out.push(&coords, self.vals[x]).expect("gHiCOO coords are valid by construction");
            }
        }
        out
    }
}

impl<V: Value> crate::access::FormatAccess<V> for GHiCooTensor<V> {
    fn format_name(&self) -> &'static str {
        "gHiCOO"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Blocked or full COO storage per the constructor's `blocked` choice.
    fn level_kind(&self, mode: usize) -> crate::access::LevelKind {
        if self.modes[mode].is_blocked() {
            crate::access::LevelKind::Blocked
        } else {
            crate::access::LevelKind::Coordinate
        }
    }

    fn stored_vals(&self) -> &[V] {
        &self.vals
    }

    fn stored_vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    fn same_structure(&self, other: &Self) -> bool {
        self.shape == other.shape
            && self.block_bits == other.block_bits
            && self.blocked_modes == other.blocked_modes
            && self.bptr == other.bptr
            && self.modes == other.modes
    }

    fn for_each_stored<F: FnMut(&[Coord], V)>(&self, mut f: F) {
        let order = self.order();
        let mut coords = vec![0 as Coord; order];
        for b in 0..self.num_blocks() {
            for x in self.block_range(b) {
                for (m, c) in coords.iter_mut().enumerate() {
                    *c = self.coord(m, b, x);
                }
                f(&coords, self.vals[x]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![8, 8, 1024]),
            vec![
                (vec![0, 0, 100], 1.0),
                (vec![0, 1, 200], 2.0),
                (vec![1, 0, 100], 3.0),
                (vec![4, 4, 999], 4.0),
                (vec![5, 5, 0], 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn mixed_compression_roundtrip() {
        let coo = sample_coo();
        let g = GHiCooTensor::from_coo(&coo, 2, &[true, true, false]).unwrap();
        assert_eq!(g.nnz(), 5);
        assert!(g.mode_index(0).is_blocked());
        assert!(g.mode_index(1).is_blocked());
        assert!(!g.mode_index(2).is_blocked());
        assert_eq!(g.blocked_modes(), &[0, 1]);
        let mut back = g.to_coo();
        back.sort();
        let mut orig = coo;
        orig.sort();
        assert_eq!(back, orig);
    }

    #[test]
    fn all_blocked_matches_hicoo_block_count() {
        use crate::hicoo::HiCooTensor;
        let coo = CooTensor::from_entries(
            Shape::new(vec![16, 16, 16]),
            (0..16u32).map(|i| (vec![i, (i * 3) % 16, (i * 7) % 16], i as f32)).collect::<Vec<_>>(),
        )
        .unwrap();
        let g = GHiCooTensor::from_coo(&coo, 4, &[true, true, true]).unwrap();
        let h = HiCooTensor::from_coo(&coo, 4).unwrap();
        assert_eq!(g.num_blocks(), h.num_blocks());
        assert_eq!(g.vals(), h.vals());
    }

    #[test]
    fn rejects_invalid_configs() {
        let coo = sample_coo();
        assert!(GHiCooTensor::from_coo(&coo, 3, &[true, true, false]).is_err());
        assert!(GHiCooTensor::from_coo(&coo, 2, &[true, true]).is_err());
        assert!(GHiCooTensor::from_coo(&coo, 2, &[false, false, false]).is_err());
    }

    #[test]
    fn blocking_fewer_modes_saves_space_when_one_mode_is_scattered() {
        // Mode 2 is huge and scattered: blocking it explodes the block count.
        let entries: Vec<(Vec<Coord>, f32)> =
            (0..64u32).map(|i| (vec![i % 4, (i / 4) % 4, i * 16], 1.0)).collect();
        let coo = CooTensor::from_entries(Shape::new(vec![4, 4, 1024]), entries).unwrap();
        let all = GHiCooTensor::from_coo(&coo, 4, &[true, true, true]).unwrap();
        let partial = GHiCooTensor::from_coo(&coo, 4, &[true, true, false]).unwrap();
        assert!(partial.num_blocks() < all.num_blocks());
        assert!(partial.storage_bytes() < all.storage_bytes());
    }

    #[test]
    fn fibers_contiguous_when_product_mode_uncompressed() {
        // With modes {0,1} blocked and mode 2 full, entries sharing (i, j)
        // must be contiguous — the property HiCOO-TTV relies on.
        let coo = sample_coo();
        let g = GHiCooTensor::from_coo(&coo, 2, &[true, true, false]).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<(Coord, Coord)> = None;
        for b in 0..g.num_blocks() {
            for x in g.block_range(b) {
                let key = (g.coord(0, b, x), g.coord(1, b, x));
                if prev != Some(key) {
                    assert!(seen.insert(key), "fiber {key:?} split into non-contiguous runs");
                    prev = Some(key);
                }
            }
        }
    }

    #[test]
    fn coords_reconstruct_all_entries() {
        let coo = sample_coo();
        let g = GHiCooTensor::from_coo(&coo, 4, &[true, false, true]).unwrap();
        for b in 0..g.num_blocks() {
            for x in g.block_range(b) {
                let c = g.coords_of(b, x);
                assert_eq!(coo.get(&c), Some(g.vals()[x]));
            }
        }
    }
}
