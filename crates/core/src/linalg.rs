//! Small dense linear algebra for the example tensor methods.
//!
//! CP-ALS (the application driving MTTKRP) needs Gram matrices, Hadamard
//! products and a small SPD solve; the rank `R` is small (the paper uses
//! `R = 16`), so an unblocked Cholesky factorization is ample.

use crate::dense::DenseMatrix;
use crate::value::Value;

/// Computes the Gram matrix `Aᵀ A` (`cols × cols`) of a row-major matrix.
///
/// # Examples
///
/// ```
/// use pasta_core::{DenseMatrix, linalg};
///
/// let a = DenseMatrix::from_vec(2, 2, vec![1.0_f32, 0.0, 0.0, 2.0]);
/// let g = linalg::gram(&a);
/// assert_eq!(g.get(0, 0), 1.0);
/// assert_eq!(g.get(1, 1), 4.0);
/// ```
pub fn gram<V: Value>(a: &DenseMatrix<V>) -> DenseMatrix<V> {
    let (n, r) = (a.rows(), a.cols());
    let mut g = DenseMatrix::zeros(r, r);
    for i in 0..n {
        let row = a.row(i);
        for p in 0..r {
            let ap = row[p];
            if ap == V::ZERO {
                continue;
            }
            for q in 0..r {
                let add = ap * row[q];
                g.set(p, q, g.get(p, q) + add);
            }
        }
    }
    g
}

/// Element-wise (Hadamard) product of two equally sized matrices.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn hadamard<V: Value>(a: &DenseMatrix<V>, b: &DenseMatrix<V>) -> DenseMatrix<V> {
    assert_eq!(a.rows(), b.rows(), "row mismatch");
    assert_eq!(a.cols(), b.cols(), "col mismatch");
    let mut out = a.clone();
    for (o, &x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o *= x;
    }
    out
}

/// Dense matrix product `A B`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul<V: Value>(a: &DenseMatrix<V>, b: &DenseMatrix<V>) -> DenseMatrix<V> {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a.get(i, p);
            if aip == V::ZERO {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    c
}

/// A Cholesky factorization `M = L Lᵀ` of a symmetric positive-definite
/// matrix, with a small diagonal ridge available for near-singular systems.
#[derive(Debug, Clone)]
pub struct Cholesky<V> {
    l: DenseMatrix<V>,
}

impl<V: Value> Cholesky<V> {
    /// Factors the SPD matrix `m`.
    ///
    /// `ridge` is added to the diagonal before factoring (pass `V::ZERO` for
    /// none); CP-ALS passes a tiny ridge so rank-deficient Hadamard products
    /// of Grams stay factorable.
    ///
    /// # Errors
    ///
    /// Returns `None` if the matrix is not positive definite even after the
    /// ridge.
    pub fn factor(m: &DenseMatrix<V>, ridge: V) -> Option<Self> {
        assert_eq!(m.rows(), m.cols(), "matrix must be square");
        let n = m.rows();
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = m.get(i, j);
                if i == j {
                    sum += ridge;
                }
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= V::ZERO || !sum.is_finite() {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Some(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &DenseMatrix<V> {
        &self.l
    }

    /// Solves `M x = b` in place for one right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factor dimension.
    pub fn solve_in_place(&self, b: &mut [V]) {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward: L y = b.
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l.get(i, k) * b[k];
            }
            b[i] = s / self.l.get(i, i);
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in i + 1..n {
                s -= self.l.get(k, i) * b[k];
            }
            b[i] = s / self.l.get(i, i);
        }
    }

    /// Solves `X M = B` for a row-major `B` (each *row* of `B` is a RHS of
    /// the transposed system, which is how CP-ALS consumes the MTTKRP
    /// output: `A ← M_mttkrp · V⁻¹` with symmetric `V`).
    pub fn solve_rows(&self, b: &mut DenseMatrix<V>) {
        assert_eq!(b.cols(), self.l.rows(), "column count must match factor dimension");
        for i in 0..b.rows() {
            self.solve_in_place(b.row_mut(i));
        }
    }
}

/// Normalizes each column of `a` to unit 2-norm and returns the previous
/// column norms (the CP-ALS `λ` weights). Zero columns are left unchanged.
pub fn normalize_columns<V: Value>(a: &mut DenseMatrix<V>) -> Vec<V> {
    let (n, r) = (a.rows(), a.cols());
    let mut norms = vec![V::ZERO; r];
    for i in 0..n {
        for (j, nj) in norms.iter_mut().enumerate() {
            let v = a.get(i, j);
            *nj += v * v;
        }
    }
    for nj in &mut norms {
        *nj = nj.sqrt();
    }
    for i in 0..n {
        for j in 0..r {
            if norms[j] != V::ZERO {
                a.set(i, j, a.get(i, j) / norms[j]);
            }
        }
    }
    norms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_is_symmetric() {
        let a = DenseMatrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64 * 0.5);
        let g = gram(&a);
        for p in 0..3 {
            for q in 0..3 {
                assert!((g.get(p, q) - g.get(q, p)).abs() < 1e-12);
            }
        }
        // g[0][0] = sum_i a[i][0]^2
        let expect: f64 = (0..5).map(|i| (i as f64 * 0.5).powi(2)).sum();
        assert!((g.get(0, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0_f32, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0_f32, 6.0, 7.0, 8.0]);
        let h = hadamard(&a, &b);
        assert_eq!(h.as_slice(), &[5.0, 12.0, 21.0, 32.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::from_fn(3, 3, |i, j| if i == j { 1.0_f64 } else { 0.0 });
        let b = DenseMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let c = matmul(&a, &b);
        assert_eq!(c, b);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // M = A^T A + I is SPD.
        let a = DenseMatrix::from_fn(4, 3, |i, j| ((i + j) % 3) as f64 + 0.5);
        let mut m = gram(&a);
        for i in 0..3 {
            m.set(i, i, m.get(i, i) + 1.0);
        }
        let ch = Cholesky::factor(&m, 0.0).expect("SPD");
        // Verify L L^T = M.
        let l = ch.l().clone();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l.get(i, k) * l.get(j, k);
                }
                assert!((s - m.get(i, j)).abs() < 1e-10);
            }
        }
        // Solve against a known x.
        let x = [1.0, -2.0, 3.0];
        let mut b = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += m.get(i, j) * x[j];
            }
        }
        ch.solve_in_place(&mut b);
        for i in 0..3 {
            assert!((b[i] - x[i]).abs() < 1e-9, "{b:?}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0_f64, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(Cholesky::factor(&m, 0.0).is_none());
        // A big enough ridge rescues it.
        assert!(Cholesky::factor(&m, 1.5).is_some());
    }

    #[test]
    fn solve_rows_matches_per_row_solve() {
        let m = DenseMatrix::from_vec(2, 2, vec![4.0_f64, 1.0, 1.0, 3.0]);
        let ch = Cholesky::factor(&m, 0.0).unwrap();
        let mut b = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 2.0]);
        let rows: Vec<Vec<f64>> = (0..3).map(|i| b.row(i).to_vec()).collect();
        ch.solve_rows(&mut b);
        for (i, r) in rows.iter().enumerate() {
            let mut one = r.clone();
            ch.solve_in_place(&mut one);
            assert_eq!(b.row(i), &one[..]);
        }
    }

    #[test]
    fn normalize_columns_returns_norms() {
        let mut a = DenseMatrix::from_vec(2, 2, vec![3.0_f32, 0.0, 4.0, 0.0]);
        let norms = normalize_columns(&mut a);
        assert_eq!(norms, vec![5.0, 0.0]);
        assert!((a.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((a.get(1, 0) - 0.8).abs() < 1e-6);
        assert_eq!(a.get(0, 1), 0.0); // zero column untouched
    }
}
