//! Error types for the PASTA core crate.

use std::fmt;

/// A convenient alias for `Result` with [`Error`] as the error type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by tensor construction, conversion, I/O and kernels.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, Shape};
///
/// let shape = Shape::new(vec![2, 2]);
/// let err = CooTensor::<f32>::from_entries(shape, vec![(vec![5, 0], 1.0)]).unwrap_err();
/// assert!(err.to_string().contains("index"));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Two tensors were expected to have the same shape but do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<u32>,
        /// Shape of the right operand.
        right: Vec<u32>,
    },
    /// Two tensors were expected to have the same order (number of modes).
    OrderMismatch {
        /// Order of the left operand.
        left: usize,
        /// Order of the right operand.
        right: usize,
    },
    /// An index along `mode` was out of range for that mode's dimension.
    IndexOutOfBounds {
        /// The offending mode.
        mode: usize,
        /// The offending index.
        index: u32,
        /// The dimension size of that mode.
        dim: u32,
    },
    /// A mode number was out of range for the tensor order.
    InvalidMode {
        /// The requested mode.
        mode: usize,
        /// The tensor order.
        order: usize,
    },
    /// The block size for HiCOO was invalid (must be a power of two in `2..=256`).
    InvalidBlockSize {
        /// The requested block size.
        size: u32,
    },
    /// An operand dimension did not match the tensor mode it multiplies
    /// (e.g. TTV vector length vs. `I_n`).
    OperandMismatch {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// Two tensors were expected to share a non-zero pattern but do not.
    PatternMismatch,
    /// Division by a zero element in element-wise division.
    DivisionByZero,
    /// A tensor had no modes or no dimensions where at least one was required.
    EmptyShape,
    /// An I/O failure while reading or writing a tensor file.
    Io(std::io::Error),
    /// A parse failure while reading a text tensor file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A binary tensor file had an invalid header or truncated payload.
    Corrupt(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            Error::OrderMismatch { left, right } => {
                write!(f, "tensor order mismatch: {left} vs {right}")
            }
            Error::IndexOutOfBounds { mode, index, dim } => {
                write!(f, "index {index} out of bounds for mode {mode} with dimension {dim}")
            }
            Error::InvalidMode { mode, order } => {
                write!(f, "mode {mode} invalid for tensor of order {order}")
            }
            Error::InvalidBlockSize { size } => {
                write!(f, "invalid HiCOO block size {size}: must be a power of two in 2..=256")
            }
            Error::OperandMismatch { what } => write!(f, "operand mismatch: {what}"),
            Error::PatternMismatch => write!(f, "tensors do not share a non-zero pattern"),
            Error::DivisionByZero => write!(f, "element-wise division by zero"),
            Error::EmptyShape => write!(f, "tensor shape must have at least one mode"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt tensor file: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases: Vec<Error> = vec![
            Error::ShapeMismatch { left: vec![2], right: vec![3] },
            Error::OrderMismatch { left: 3, right: 4 },
            Error::IndexOutOfBounds { mode: 1, index: 9, dim: 4 },
            Error::InvalidMode { mode: 5, order: 3 },
            Error::InvalidBlockSize { size: 3 },
            Error::OperandMismatch { what: "vector length 3 vs mode dim 4".into() },
            Error::PatternMismatch,
            Error::DivisionByZero,
            Error::EmptyShape,
            Error::Parse { line: 2, msg: "bad float".into() },
            Error::Corrupt("short read".into()),
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
