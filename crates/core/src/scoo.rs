//! The semi-sparse COO (sCOO) format for tensors with dense mode(s).
//!
//! A *dense mode* is one whose fibers are all dense vectors (Figure 1(b) of
//! the paper). sCOO stores the dense mode(s) as dense arrays attached to each
//! sparse "fiber" and keeps the remaining modes in ordinary COO index arrays.
//! The TTM kernel's output is semi-sparse: the product mode becomes dense with
//! length `R` while every other mode keeps the input's sparsity.

use crate::coo::CooTensor;
use crate::error::{Error, Result};
use crate::shape::{Coord, Shape};
use crate::value::Value;

/// A semi-sparse tensor: dense modes stored densely per sparse fiber.
///
/// With `F` sparse fibers, `S` sparse modes and dense volume
/// `D = ∏ dense dims`, storage is `4·S·F` index bytes plus `F·D` values.
///
/// # Examples
///
/// ```
/// use pasta_core::{SemiCooTensor, Shape};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// // A 2x2x3 tensor whose mode 2 is dense, holding one fiber at (i=0, j=1).
/// let t = SemiCooTensor::from_fibers(
///     Shape::new(vec![2, 2, 3]),
///     vec![2],
///     vec![vec![0], vec![1]],
///     vec![7.0_f32, 8.0, 9.0],
/// )?;
/// assert_eq!(t.num_fibers(), 1);
/// assert_eq!(t.fiber_vals(0), &[7.0, 8.0, 9.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SemiCooTensor<V> {
    shape: Shape,
    dense_modes: Vec<usize>,
    sparse_modes: Vec<usize>,
    /// One index array per *sparse* mode (parallel to `sparse_modes`), each of
    /// length `num_fibers`.
    inds: Vec<Vec<Coord>>,
    /// `num_fibers × dense_volume` values; the dense modes are linearized
    /// row-major in increasing mode order.
    vals: Vec<V>,
}

impl<V: Value> SemiCooTensor<V> {
    /// Creates an empty semi-sparse tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if `dense_modes` is empty, contains duplicates or an
    /// out-of-range mode, or covers *all* modes (use a dense tensor then).
    pub fn new(shape: Shape, dense_modes: Vec<usize>) -> Result<Self> {
        let mut dm = dense_modes;
        dm.sort_unstable();
        dm.dedup();
        if dm.is_empty() || dm.len() >= shape.order() {
            return Err(Error::OperandMismatch {
                what: format!(
                    "semi-sparse tensor needs between 1 and order-1 dense modes, got {}",
                    dm.len()
                ),
            });
        }
        for &m in &dm {
            shape.check_mode(m)?;
        }
        let sparse_modes: Vec<usize> = (0..shape.order()).filter(|m| !dm.contains(m)).collect();
        let ns = sparse_modes.len();
        Ok(Self {
            shape,
            dense_modes: dm,
            sparse_modes,
            inds: vec![Vec::new(); ns],
            vals: Vec::new(),
        })
    }

    /// Creates a semi-sparse tensor from fiber index arrays and values.
    ///
    /// `inds` has one array per sparse mode (in increasing mode order), each
    /// of length `F`; `vals` has length `F × dense_volume`.
    ///
    /// # Errors
    ///
    /// Returns an error on inconsistent lengths or out-of-range indices.
    pub fn from_fibers(
        shape: Shape,
        dense_modes: Vec<usize>,
        inds: Vec<Vec<Coord>>,
        vals: Vec<V>,
    ) -> Result<Self> {
        let mut t = Self::new(shape, dense_modes)?;
        if inds.len() != t.sparse_modes.len() {
            return Err(Error::OperandMismatch {
                what: format!(
                    "expected {} sparse index arrays, got {}",
                    t.sparse_modes.len(),
                    inds.len()
                ),
            });
        }
        let nf = inds.first().map_or(0, Vec::len);
        for (k, col) in inds.iter().enumerate() {
            if col.len() != nf {
                return Err(Error::OperandMismatch {
                    what: "sparse index arrays have differing lengths".into(),
                });
            }
            let mode = t.sparse_modes[k];
            let dim = t.shape.dim(mode);
            if let Some(&bad) = col.iter().find(|&&c| c >= dim) {
                return Err(Error::IndexOutOfBounds { mode, index: bad, dim });
            }
        }
        if vals.len() != nf * t.dense_volume() {
            return Err(Error::OperandMismatch {
                what: format!(
                    "expected {} values ({} fibers x dense volume {}), got {}",
                    nf * t.dense_volume(),
                    nf,
                    t.dense_volume(),
                    vals.len()
                ),
            });
        }
        t.inds = inds;
        t.vals = vals;
        Ok(t)
    }

    /// Appends one fiber given its sparse coordinates and dense values.
    ///
    /// # Errors
    ///
    /// Returns an error on wrong lengths or out-of-range indices.
    pub fn push_fiber(&mut self, sparse_coords: &[Coord], dense_vals: &[V]) -> Result<()> {
        if sparse_coords.len() != self.sparse_modes.len() {
            return Err(Error::OrderMismatch {
                left: self.sparse_modes.len(),
                right: sparse_coords.len(),
            });
        }
        if dense_vals.len() != self.dense_volume() {
            return Err(Error::OperandMismatch {
                what: format!(
                    "fiber has {} values but dense volume is {}",
                    dense_vals.len(),
                    self.dense_volume()
                ),
            });
        }
        for (k, &c) in sparse_coords.iter().enumerate() {
            let mode = self.sparse_modes[k];
            let dim = self.shape.dim(mode);
            if c >= dim {
                return Err(Error::IndexOutOfBounds { mode, index: c, dim });
            }
        }
        for (col, &c) in self.inds.iter_mut().zip(sparse_coords) {
            col.push(c);
        }
        self.vals.extend_from_slice(dense_vals);
        Ok(())
    }

    /// The tensor shape (including dense modes).
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dense modes, in increasing order.
    #[inline]
    pub fn dense_modes(&self) -> &[usize] {
        &self.dense_modes
    }

    /// The sparse modes, in increasing order.
    #[inline]
    pub fn sparse_modes(&self) -> &[usize] {
        &self.sparse_modes
    }

    /// The number of stored sparse fibers `F`.
    #[inline]
    pub fn num_fibers(&self) -> usize {
        self.inds.first().map_or(0, Vec::len)
    }

    /// The product of the dense mode dimensions.
    pub fn dense_volume(&self) -> usize {
        self.dense_modes.iter().map(|&m| self.shape.dim(m) as usize).product()
    }

    /// The index array of the `k`-th *sparse* mode (parallel to
    /// [`Self::sparse_modes`]).
    #[inline]
    pub fn sparse_inds(&self, k: usize) -> &[Coord] {
        &self.inds[k]
    }

    /// The dense values of fiber `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= self.num_fibers()`.
    #[inline]
    pub fn fiber_vals(&self, f: usize) -> &[V] {
        let d = self.dense_volume();
        &self.vals[f * d..(f + 1) * d]
    }

    /// Mutable dense values of fiber `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= self.num_fibers()`.
    #[inline]
    pub fn fiber_vals_mut(&mut self, f: usize) -> &mut [V] {
        let d = self.dense_volume();
        &mut self.vals[f * d..(f + 1) * d]
    }

    /// The whole value array (`F × dense_volume`).
    #[inline]
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Mutable access to the whole value array.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    /// The sparse coordinates of fiber `f` (parallel to
    /// [`Self::sparse_modes`]).
    pub fn fiber_coords(&self, f: usize) -> Vec<Coord> {
        self.inds.iter().map(|col| col[f]).collect()
    }

    /// The storage footprint in bytes (sparse indices + dense values).
    pub fn storage_bytes(&self) -> usize {
        self.num_fibers() * self.sparse_modes.len() * 4 + self.vals.len() * V::BYTES
    }

    /// Expands to COO, dropping exact zeros inside dense fibers.
    pub fn to_coo(&self) -> CooTensor<V> {
        let order = self.shape.order();
        let d = self.dense_volume();
        let dense_dims: Vec<usize> =
            self.dense_modes.iter().map(|&m| self.shape.dim(m) as usize).collect();
        let mut out = CooTensor::with_capacity(self.shape.clone(), self.vals.len());
        let mut coords = vec![0u32; order];
        for f in 0..self.num_fibers() {
            for (k, &m) in self.sparse_modes.iter().enumerate() {
                coords[m] = self.inds[k][f];
            }
            let fv = self.fiber_vals(f);
            for (lin, &v) in fv.iter().enumerate().take(d) {
                if v == V::ZERO {
                    continue;
                }
                // De-linearize the dense offset into the dense modes.
                let mut rem = lin;
                for (di, &m) in self.dense_modes.iter().enumerate().rev() {
                    coords[m] = (rem % dense_dims[di]) as Coord;
                    rem /= dense_dims[di];
                }
                out.push(&coords, v).expect("sCOO coords validated at construction");
            }
        }
        out
    }
}

impl<V: Value> crate::access::FormatAccess<V> for SemiCooTensor<V> {
    fn format_name(&self) -> &'static str {
        "sCOO"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn level_kind(&self, mode: usize) -> crate::access::LevelKind {
        self.shape.check_mode(mode).expect("mode in range");
        if self.dense_modes.contains(&mode) {
            crate::access::LevelKind::Dense
        } else {
            crate::access::LevelKind::Coordinate
        }
    }

    fn stored_vals(&self) -> &[V] {
        &self.vals
    }

    fn stored_vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    fn same_structure(&self, other: &Self) -> bool {
        self.shape == other.shape
            && self.dense_modes == other.dense_modes
            && self.inds == other.inds
    }

    /// Visits every stored slot, *including* explicit zeros inside dense
    /// fibers — they are materialized storage, unlike COO's absent entries.
    fn for_each_stored<F: FnMut(&[Coord], V)>(&self, mut f: F) {
        let order = self.shape.order();
        let d = self.dense_volume();
        let dense_dims: Vec<usize> =
            self.dense_modes.iter().map(|&m| self.shape.dim(m) as usize).collect();
        let mut coords = vec![0 as Coord; order];
        for fib in 0..self.num_fibers() {
            for (k, &m) in self.sparse_modes.iter().enumerate() {
                coords[m] = self.inds[k][fib];
            }
            for (lin, &v) in self.fiber_vals(fib).iter().enumerate().take(d) {
                let mut rem = lin;
                for (di, &m) in self.dense_modes.iter().enumerate().rev() {
                    coords[m] = (rem % dense_dims[di]) as Coord;
                    rem /= dense_dims[di];
                }
                f(&coords, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SemiCooTensor<f32> {
        // 2x3x2, dense mode 1 (volume 3), two fibers.
        SemiCooTensor::from_fibers(
            Shape::new(vec![2, 3, 2]),
            vec![1],
            vec![vec![0, 1], vec![1, 0]],
            vec![1.0, 2.0, 3.0, 4.0, 0.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample();
        assert_eq!(t.num_fibers(), 2);
        assert_eq!(t.dense_volume(), 3);
        assert_eq!(t.dense_modes(), &[1]);
        assert_eq!(t.sparse_modes(), &[0, 2]);
        assert_eq!(t.fiber_vals(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.fiber_coords(1), vec![1, 0]);
        assert_eq!(t.sparse_inds(0), &[0, 1]);
    }

    #[test]
    fn rejects_bad_dense_modes() {
        assert!(SemiCooTensor::<f32>::new(Shape::new(vec![2, 2]), vec![]).is_err());
        assert!(SemiCooTensor::<f32>::new(Shape::new(vec![2, 2]), vec![0, 1]).is_err());
        assert!(SemiCooTensor::<f32>::new(Shape::new(vec![2, 2]), vec![5]).is_err());
        // Duplicates collapse and survive.
        let t = SemiCooTensor::<f32>::new(Shape::new(vec![2, 2, 2]), vec![1, 1]).unwrap();
        assert_eq!(t.dense_modes(), &[1]);
    }

    #[test]
    fn from_fibers_validates() {
        let shape = Shape::new(vec![2, 3, 2]);
        // Wrong value length.
        assert!(SemiCooTensor::from_fibers(
            shape.clone(),
            vec![1],
            vec![vec![0], vec![0]],
            vec![1.0_f32; 2],
        )
        .is_err());
        // Out-of-range sparse index.
        assert!(SemiCooTensor::from_fibers(
            shape.clone(),
            vec![1],
            vec![vec![2], vec![0]],
            vec![1.0_f32; 3],
        )
        .is_err());
        // Wrong number of index arrays.
        assert!(
            SemiCooTensor::from_fibers(shape, vec![1], vec![vec![0]], vec![1.0_f32; 3]).is_err()
        );
    }

    #[test]
    fn push_fiber_appends() {
        let mut t = SemiCooTensor::<f32>::new(Shape::new(vec![2, 3, 2]), vec![1]).unwrap();
        t.push_fiber(&[1, 1], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(t.num_fibers(), 1);
        assert!(t.push_fiber(&[1], &[1.0, 2.0, 3.0]).is_err());
        assert!(t.push_fiber(&[1, 1], &[1.0]).is_err());
        assert!(t.push_fiber(&[2, 0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn to_coo_expands_and_drops_zeros() {
        let t = sample();
        let coo = t.to_coo();
        assert_eq!(coo.nnz(), 5); // one stored zero dropped
        assert_eq!(coo.get(&[0, 0, 1]), Some(1.0));
        assert_eq!(coo.get(&[0, 2, 1]), Some(3.0));
        assert_eq!(coo.get(&[1, 1, 0]), None); // was the zero
        assert_eq!(coo.get(&[1, 2, 0]), Some(6.0));
    }

    #[test]
    fn multi_dense_mode_roundtrip() {
        // 2x2x3 with dense modes {1, 2}: volume 6.
        let t = SemiCooTensor::from_fibers(
            Shape::new(vec![2, 2, 3]),
            vec![1, 2],
            vec![vec![1]],
            (1..=6).map(|v| v as f32).collect(),
        )
        .unwrap();
        assert_eq!(t.dense_volume(), 6);
        let coo = t.to_coo();
        assert_eq!(coo.nnz(), 6);
        // Row-major among dense modes: (j=0,k=0)->1, (j=0,k=2)->3, (j=1,k=0)->4.
        assert_eq!(coo.get(&[1, 0, 2]), Some(3.0));
        assert_eq!(coo.get(&[1, 1, 0]), Some(4.0));
    }

    #[test]
    fn storage_bytes_counts_indices_and_values() {
        let t = sample();
        // 2 fibers x 2 sparse modes x 4B + 6 values x 4B = 16 + 24.
        assert_eq!(t.storage_bytes(), 40);
    }
}
