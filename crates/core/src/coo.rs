//! The coordinate (COO) sparse tensor format.
//!
//! COO is the most common sparse tensor representation (Figure 1(a) of the
//! paper): one index array per mode plus one value array, all of length `M`
//! (the number of non-zeros). It imposes no mode order and a single
//! representation supports computations in every mode ("mode generic").

use crate::error::{Error, Result};
use crate::keys::{lex_keys, PackedKeys};
use crate::shape::{Coord, Shape};
use crate::sort::{apply_permutation, lex_cmp, mode_last_order, par_sort_keys, sort_permutation};
use crate::value::Value;

/// The entry ordering a [`CooTensor`] is known to satisfy.
///
/// Set by the sorters ([`CooTensor::sort_by_mode_order`] and friends, or
/// [`CooTensor::assume_sorted_by`] for producers that emit pre-ordered
/// entries) and invalidated by any mutation of the non-zero pattern
/// ([`CooTensor::push`]). Kernels dispatch on this typed state instead of
/// assuming an ordering: the owner-computes MTTKRP schedule, for example,
/// requires [`SortState::outermost`] to equal the product mode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SortState {
    /// No ordering is known (freshly built, loaded, or mutated).
    #[default]
    Unsorted,
    /// Entries are sorted lexicographically by the listed modes (a prefix of
    /// a mode permutation; entries equal on all listed modes keep their
    /// relative order).
    Lexicographic {
        /// The modes compared, outermost first.
        mode_order: Vec<usize>,
    },
}

impl SortState {
    /// The sorted mode order, if one is known.
    pub fn mode_order(&self) -> Option<&[usize]> {
        match self {
            SortState::Unsorted => None,
            SortState::Lexicographic { mode_order } => Some(mode_order),
        }
    }

    /// The outermost (slowest-varying) sorted mode, if known.
    ///
    /// When this equals `n`, the mode-`n` index array is non-decreasing and
    /// every output row of a mode-`n` MTTKRP occupies one contiguous entry
    /// range — the precondition for owner-computes scheduling.
    pub fn outermost(&self) -> Option<usize> {
        self.mode_order().and_then(|o| o.first().copied())
    }

    /// The innermost (fastest-varying) sorted mode, if known — the product
    /// mode for which [`crate::FiberIndex`] can be built directly.
    pub fn innermost(&self) -> Option<usize> {
        self.mode_order().and_then(|o| o.last().copied())
    }
}

/// A sparse tensor in coordinate (COO) format.
///
/// Indices are stored *columnar*: `inds[m][x]` is the mode-`m` index of the
/// `x`-th non-zero and `vals[x]` its value. Storage is `4(N+1)M` bytes for an
/// `N`th-order tensor with `M` `f32` non-zeros, as analyzed in the paper.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, Shape};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(
///     Shape::new(vec![2, 2, 2]),
///     vec![(vec![0, 0, 1], 1.0_f32), (vec![1, 1, 0], 2.0)],
/// )?;
/// assert_eq!(x.nnz(), 2);
/// assert_eq!(x.order(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CooTensor<V> {
    shape: Shape,
    inds: Vec<Vec<Coord>>,
    vals: Vec<V>,
    /// The entry ordering currently known to hold.
    sort: SortState,
}

impl<V: PartialEq> PartialEq for CooTensor<V> {
    /// Content equality: shape, index arrays and values in storage order.
    /// The internal sort cache does not participate.
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.inds == other.inds && self.vals == other.vals
    }
}

impl<V: Value> CooTensor<V> {
    /// Creates an empty tensor of the given shape.
    pub fn new(shape: Shape) -> Self {
        let order = shape.order();
        Self { shape, inds: vec![Vec::new(); order], vals: Vec::new(), sort: SortState::Unsorted }
    }

    /// Creates an empty tensor with capacity for `cap` non-zeros.
    pub fn with_capacity(shape: Shape, cap: usize) -> Self {
        let order = shape.order();
        Self {
            shape,
            inds: vec![Vec::with_capacity(cap); order],
            vals: Vec::with_capacity(cap),
            sort: SortState::Unsorted,
        }
    }

    /// Builds a tensor from `(coords, value)` entries, validating every
    /// coordinate against `shape`.
    ///
    /// # Errors
    ///
    /// Returns an error if any coordinate tuple has the wrong length or an
    /// out-of-range index.
    pub fn from_entries<I>(shape: Shape, entries: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Vec<Coord>, V)>,
    {
        let mut t = Self::new(shape);
        for (coords, v) in entries {
            t.push(&coords, v)?;
        }
        Ok(t)
    }

    /// Builds a tensor directly from columnar arrays without copying.
    ///
    /// # Errors
    ///
    /// Returns an error if array lengths are inconsistent with each other or
    /// any index is out of range.
    pub fn from_parts(shape: Shape, inds: Vec<Vec<Coord>>, vals: Vec<V>) -> Result<Self> {
        if inds.len() != shape.order() {
            return Err(Error::OrderMismatch { left: shape.order(), right: inds.len() });
        }
        for (mode, col) in inds.iter().enumerate() {
            if col.len() != vals.len() {
                return Err(Error::OperandMismatch {
                    what: format!(
                        "index array for mode {mode} has length {} but there are {} values",
                        col.len(),
                        vals.len()
                    ),
                });
            }
            let dim = shape.dim(mode);
            if let Some(&bad) = col.iter().find(|&&c| c >= dim) {
                return Err(Error::IndexOutOfBounds { mode, index: bad, dim });
            }
        }
        Ok(Self { shape, inds, vals, sort: SortState::Unsorted })
    }

    /// Appends one non-zero entry.
    ///
    /// # Errors
    ///
    /// Returns an error if `coords` has the wrong length or is out of range.
    pub fn push(&mut self, coords: &[Coord], value: V) -> Result<()> {
        self.shape.check_coords(coords)?;
        for (col, &c) in self.inds.iter_mut().zip(coords) {
            col.push(c);
        }
        self.vals.push(value);
        self.sort = SortState::Unsorted;
        Ok(())
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor order `N`.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// The number of non-zeros `M`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The index array of mode `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= self.order()`.
    #[inline]
    pub fn mode_inds(&self, m: usize) -> &[Coord] {
        &self.inds[m]
    }

    /// All index arrays, one per mode.
    #[inline]
    pub fn inds(&self) -> &[Vec<Coord>] {
        &self.inds
    }

    /// The value array.
    #[inline]
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Mutable access to the value array (the non-zero pattern is fixed).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    /// The coordinates of non-zero `x` as an owned tuple.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.nnz()`.
    pub fn coords_of(&self, x: usize) -> Vec<Coord> {
        self.inds.iter().map(|col| col[x]).collect()
    }

    /// Iterates over `(coords, value)` pairs in storage order.
    pub fn iter(&self) -> Entries<'_, V> {
        Entries { t: self, pos: 0 }
    }

    /// The mode order the entries are currently sorted by, if tracked.
    #[inline]
    pub fn sorted_by(&self) -> Option<&[usize]> {
        self.sort.mode_order()
    }

    /// The typed sort state of the entries (see [`SortState`]).
    #[inline]
    pub fn sort_state(&self) -> &SortState {
        &self.sort
    }

    /// Sorts entries lexicographically in natural mode order `0, 1, …, N−1`.
    pub fn sort(&mut self) {
        let order: Vec<usize> = (0..self.order()).collect();
        self.sort_by_mode_order(&order);
    }

    /// Sorts entries lexicographically in the given mode order.
    ///
    /// # Panics
    ///
    /// Panics if `mode_order` is not a permutation prefix of the modes (each
    /// listed mode must be valid; modes may be omitted, in which case ties
    /// keep their relative order).
    pub fn sort_by_mode_order(&mut self, mode_order: &[usize]) {
        self.sort_by_mode_order_threads(mode_order, pasta_par::default_threads());
    }

    /// [`Self::sort_by_mode_order`] with an explicit worker count.
    ///
    /// When the per-entry sort key (coordinates of the listed modes,
    /// concatenated) fits in 128 bits — every tensor of practical order —
    /// the sort runs as a key-based radix sort
    /// ([`crate::sort::par_sort_keys`]), parallel across `threads`
    /// participants of the global pool. Wider keys fall back to the serial
    /// comparator sort. Both paths produce the identical (stable)
    /// permutation, so results do not depend on `threads`.
    ///
    /// # Panics
    ///
    /// Panics if any listed mode is out of range.
    pub fn sort_by_mode_order_threads(&mut self, mode_order: &[usize], threads: usize) {
        for &m in mode_order {
            assert!(m < self.order(), "mode {m} out of range");
        }
        if self.sort.mode_order() == Some(mode_order) {
            return;
        }
        let perm = match lex_keys(&self.inds, self.shape.dims(), mode_order) {
            PackedKeys::U64(keys) => par_sort_keys(&keys, threads),
            PackedKeys::U128(keys) => par_sort_keys(&keys, threads),
            PackedKeys::Overflow => {
                sort_permutation(self.nnz(), |a, b| lex_cmp(&self.inds, mode_order, a, b))
            }
        };
        apply_permutation(&mut self.inds, &mut self.vals, &perm);
        self.sort = SortState::Lexicographic { mode_order: mode_order.to_vec() };
    }

    /// Sorts entries so that mode-`n` fibers are contiguous: lexicographic in
    /// all modes but `n` (ascending), with `n` last.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn sort_mode_last(&mut self, n: usize) {
        let order = mode_last_order(self.order(), n);
        self.sort_by_mode_order(&order);
    }

    /// Merges duplicate coordinates by summing their values; requires no
    /// particular prior order (sorts in natural order first).
    pub fn dedup_sum(&mut self) {
        if self.nnz() <= 1 {
            return;
        }
        self.sort();
        let n = self.nnz();
        let order = self.order();
        let mut w = 0usize; // write cursor
        for r in 1..n {
            let same = (0..order).all(|m| self.inds[m][r] == self.inds[m][w]);
            if same {
                let add = self.vals[r];
                self.vals[w] += add;
            } else {
                w += 1;
                for m in 0..order {
                    self.inds[m][w] = self.inds[m][r];
                }
                self.vals[w] = self.vals[r];
            }
        }
        let new_len = w + 1;
        for col in &mut self.inds {
            col.truncate(new_len);
        }
        self.vals.truncate(new_len);
    }

    /// Looks up a value by coordinates with a linear scan.
    ///
    /// Intended for tests and small tensors; kernels never use random access.
    pub fn get(&self, coords: &[Coord]) -> Option<V> {
        if coords.len() != self.order() {
            return None;
        }
        (0..self.nnz())
            .find(|&x| self.inds.iter().zip(coords).all(|(col, &c)| col[x] == c))
            .map(|x| self.vals[x])
    }

    /// Returns `true` if both tensors have identical shape and index arrays
    /// (the precondition for the fast-path TEW of the paper).
    pub fn same_pattern(&self, other: &CooTensor<V>) -> bool {
        self.shape == other.shape && self.inds == other.inds
    }

    /// The COO storage footprint in bytes: `N` index arrays of 4-byte indices
    /// plus the value array (`4(N+1)M` for `f32`, per Section III-A).
    pub fn storage_bytes(&self) -> usize {
        self.nnz() * (self.order() * 4 + V::BYTES)
    }

    /// Materializes the tensor densely (row-major); test oracle only.
    ///
    /// # Panics
    ///
    /// Panics if the dense size exceeds `max_entries` (guards against
    /// accidentally densifying a huge tensor in a test).
    pub fn to_dense(&self, max_entries: usize) -> Vec<V> {
        let n = self.shape.num_entries();
        assert!(n <= max_entries as f64, "tensor too large to densify ({n} entries)");
        let mut out = vec![V::ZERO; n as usize];
        for x in 0..self.nnz() {
            let coords = self.coords_of(x);
            out[self.shape.linearize(&coords)] += self.vals[x];
        }
        out
    }

    /// Creates a tensor with the same non-zero pattern as `self` and all
    /// values set to `fill` (used to pre-allocate TEW/TS outputs).
    pub fn like_pattern(&self, fill: V) -> CooTensor<V> {
        CooTensor {
            shape: self.shape.clone(),
            inds: self.inds.clone(),
            vals: vec![fill; self.nnz()],
            sort: self.sort.clone(),
        }
    }

    /// Consumes the tensor and returns `(shape, index arrays, values)`.
    pub fn into_parts(self) -> (Shape, Vec<Vec<Coord>>, Vec<V>) {
        (self.shape, self.inds, self.vals)
    }

    /// Splits the non-zeros into `parts` contiguous chunks (in the current
    /// storage order), each a tensor of the same shape — the 1-D
    /// decomposition used for multi-device execution.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn split_nnz(&self, parts: usize) -> Vec<CooTensor<V>> {
        assert!(parts > 0, "parts must be positive");
        let n = self.nnz();
        let per = n / parts;
        let rem = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let len = per + usize::from(p < rem);
            let range = start..start + len;
            start += len;
            let inds: Vec<Vec<Coord>> =
                self.inds.iter().map(|col| col[range.clone()].to_vec()).collect();
            let vals = self.vals[range].to_vec();
            out.push(
                CooTensor::from_parts(self.shape.clone(), inds, vals)
                    .expect("chunks of a valid tensor are valid"),
            );
        }
        out
    }

    /// Marks the current entry order as sorted by `mode_order` without
    /// sorting — for use by producers (format converters, kernels) that emit
    /// data already in the claimed order.
    ///
    /// Debug builds verify the claim; release builds trust it.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the entries are not actually sorted by
    /// `mode_order`.
    pub fn assume_sorted_by(&mut self, mode_order: Vec<usize>) {
        debug_assert!({
            (1..self.nnz())
                .all(|x| lex_cmp(&self.inds, &mode_order, x - 1, x) != std::cmp::Ordering::Greater)
        });
        self.sort = SortState::Lexicographic { mode_order };
    }
}

impl<V: Value> crate::access::FormatAccess<V> for CooTensor<V> {
    fn format_name(&self) -> &'static str {
        "COO"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Every mode stores a full coordinate per non-zero.
    fn level_kind(&self, mode: usize) -> crate::access::LevelKind {
        debug_assert!(mode < self.order());
        crate::access::LevelKind::Coordinate
    }

    fn stored_vals(&self) -> &[V] {
        &self.vals
    }

    fn stored_vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    fn same_structure(&self, other: &Self) -> bool {
        self.same_pattern(other)
    }

    fn for_each_stored<F: FnMut(&[Coord], V)>(&self, mut f: F) {
        let order = self.order();
        let mut coords = vec![0 as Coord; order];
        for x in 0..self.nnz() {
            for (m, c) in coords.iter_mut().enumerate() {
                *c = self.inds[m][x];
            }
            f(&coords, self.vals[x]);
        }
    }
}

/// Iterator over `(coords, value)` entries of a [`CooTensor`].
#[derive(Debug)]
pub struct Entries<'a, V> {
    t: &'a CooTensor<V>,
    pos: usize,
}

impl<'a, V: Value> Iterator for Entries<'a, V> {
    type Item = (Vec<Coord>, V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.t.nnz() {
            return None;
        }
        let item = (self.t.coords_of(self.pos), self.t.vals[self.pos]);
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.t.nnz() - self.pos;
        (rem, Some(rem))
    }
}

impl<'a, V: Value> ExactSizeIterator for Entries<'a, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4, 4]),
            vec![
                (vec![3, 1, 0], 4.0),
                (vec![0, 0, 1], 1.0),
                (vec![0, 2, 1], 2.0),
                (vec![1, 0, 3], 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample();
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.order(), 3);
        assert_eq!(t.shape().dims(), &[4, 4, 4]);
        assert_eq!(t.coords_of(0), vec![3, 1, 0]);
        assert_eq!(t.get(&[0, 2, 1]), Some(2.0));
        assert_eq!(t.get(&[2, 2, 2]), None);
        assert_eq!(t.get(&[0, 0]), None);
    }

    #[test]
    fn from_entries_validates() {
        let err = CooTensor::<f32>::from_entries(Shape::new(vec![2, 2]), vec![(vec![2, 0], 1.0)]);
        assert!(matches!(err, Err(Error::IndexOutOfBounds { mode: 0, index: 2, dim: 2 })));
        let err = CooTensor::<f32>::from_entries(Shape::new(vec![2, 2]), vec![(vec![0], 1.0)]);
        assert!(matches!(err, Err(Error::OrderMismatch { .. })));
    }

    #[test]
    fn from_parts_validates_lengths() {
        let shape = Shape::new(vec![2, 2]);
        let bad = CooTensor::<f32>::from_parts(shape.clone(), vec![vec![0], vec![0, 1]], vec![1.0]);
        assert!(bad.is_err());
        let bad = CooTensor::<f32>::from_parts(shape.clone(), vec![vec![0, 1]], vec![1.0, 2.0]);
        assert!(matches!(bad, Err(Error::OrderMismatch { .. })));
        let ok = CooTensor::<f32>::from_parts(shape, vec![vec![0, 1], vec![1, 0]], vec![1.0, 2.0]);
        assert!(ok.is_ok());
    }

    #[test]
    fn sort_natural_order() {
        let mut t = sample();
        t.sort();
        let coords: Vec<Vec<Coord>> = (0..t.nnz()).map(|x| t.coords_of(x)).collect();
        assert_eq!(coords, vec![vec![0, 0, 1], vec![0, 2, 1], vec![1, 0, 3], vec![3, 1, 0]]);
        assert_eq!(t.vals(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sorted_by(), Some(&[0usize, 1, 2][..]));
    }

    #[test]
    fn sort_mode_last_groups_fibers() {
        let mut t = CooTensor::<f32>::from_entries(
            Shape::new(vec![2, 2, 4]),
            vec![
                (vec![1, 0, 0], 1.0),
                (vec![0, 1, 3], 2.0),
                (vec![0, 1, 0], 3.0),
                (vec![1, 0, 2], 4.0),
            ],
        )
        .unwrap();
        t.sort_mode_last(2);
        let coords: Vec<Vec<Coord>> = (0..t.nnz()).map(|x| t.coords_of(x)).collect();
        assert_eq!(coords, vec![vec![0, 1, 0], vec![0, 1, 3], vec![1, 0, 0], vec![1, 0, 2]]);
    }

    #[test]
    fn sort_is_cached() {
        let mut t = sample();
        t.sort();
        let before = t.vals().to_vec();
        t.sort(); // no-op
        assert_eq!(t.vals(), &before[..]);
    }

    #[test]
    fn dedup_sums_duplicates() {
        let mut t = CooTensor::<f32>::from_entries(
            Shape::new(vec![2, 2]),
            vec![
                (vec![1, 1], 1.0),
                (vec![0, 0], 2.0),
                (vec![1, 1], 3.0),
                (vec![0, 0], 4.0),
                (vec![0, 1], 5.0),
            ],
        )
        .unwrap();
        t.dedup_sum();
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.get(&[0, 0]), Some(6.0));
        assert_eq!(t.get(&[1, 1]), Some(4.0));
        assert_eq!(t.get(&[0, 1]), Some(5.0));
    }

    #[test]
    fn storage_bytes_matches_paper_formula() {
        let t = sample();
        // 4(N+1)M with N=3, M=4 -> 64 bytes.
        assert_eq!(t.storage_bytes(), 64);
    }

    #[test]
    fn to_dense_oracle() {
        let t = sample();
        let d = t.to_dense(64);
        assert_eq!(d.len(), 64);
        assert_eq!(d[t.shape().linearize(&[3, 1, 0])], 4.0);
        assert_eq!(d.iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn like_pattern_shares_indices() {
        let t = sample();
        let z = t.like_pattern(0.0);
        assert!(t.same_pattern(&z));
        assert!(z.vals().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iter_yields_all_entries() {
        let t = sample();
        let v: Vec<_> = t.iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[1], (vec![0, 0, 1], 1.0));
        assert_eq!(t.iter().len(), 4);
    }

    #[test]
    fn push_invalidates_sort_cache() {
        let mut t = sample();
        t.sort();
        t.push(&[0, 0, 0], 9.0).unwrap();
        assert_eq!(t.sorted_by(), None);
    }
}
