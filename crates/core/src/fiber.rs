//! Mode-`n` fiber structure of a sparse tensor.
//!
//! A mode-`n` fiber is the vector obtained by fixing every index but the
//! `n`-th. TTV and TTM iterate over the (sparse) fibers of the product mode:
//! the pre-processing step of Algorithm 1 computes the number of non-empty
//! fibers `M_F` and a fiber pointer array `fptr` marking where each fiber's
//! non-zeros begin in the (mode-last sorted) entry order.

use crate::coo::CooTensor;
use crate::shape::Coord;
use crate::value::Value;

/// The mode-`n` fiber decomposition of a sorted COO tensor.
///
/// Produced by [`FiberIndex::build`]; consumed by the TTV/TTM kernels and the
/// operational-intensity analysis (the `M_F` term of Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiberIndex {
    /// The product mode `n`.
    mode: usize,
    /// Start offset of each fiber in the entry order, plus a final sentinel:
    /// fiber `f` spans entries `fptr[f]..fptr[f+1]`.
    fptr: Vec<usize>,
}

impl FiberIndex {
    /// Builds the mode-`n` fiber index of `t`.
    ///
    /// `t` must already be sorted with mode `n` last (see
    /// [`CooTensor::sort_mode_last`]); this is asserted in debug builds via
    /// the tensor's sort cache.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn build<V: Value>(t: &CooTensor<V>, n: usize) -> Self {
        assert!(n < t.order(), "mode out of range");
        debug_assert_eq!(
            t.sorted_by().map(|o| o.last().copied()),
            Some(Some(n)),
            "tensor must be sorted with the product mode last"
        );
        let m = t.nnz();
        if m == 0 {
            return Self { mode: n, fptr: vec![0] };
        }
        let mut fptr = Vec::with_capacity(m / 2 + 2);
        fptr.push(0);
        let other: Vec<usize> = (0..t.order()).filter(|&mm| mm != n).collect();
        for x in 1..m {
            let boundary = other.iter().any(|&mm| t.mode_inds(mm)[x] != t.mode_inds(mm)[x - 1]);
            if boundary {
                fptr.push(x);
            }
        }
        fptr.push(m);
        Self { mode: n, fptr }
    }

    /// The product mode this index was built for.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// The number of non-empty mode-`n` fibers, `M_F`.
    #[inline]
    pub fn num_fibers(&self) -> usize {
        self.fptr.len().saturating_sub(1)
    }

    /// The entry range of fiber `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= self.num_fibers()`.
    #[inline]
    pub fn fiber_range(&self, f: usize) -> std::ops::Range<usize> {
        self.fptr[f]..self.fptr[f + 1]
    }

    /// The raw fiber pointer array (length `M_F + 1`).
    #[inline]
    pub fn fptr(&self) -> &[usize] {
        &self.fptr
    }

    /// The length of the longest fiber (for load-imbalance diagnostics).
    pub fn max_fiber_len(&self) -> usize {
        (0..self.num_fibers()).map(|f| self.fptr[f + 1] - self.fptr[f]).max().unwrap_or(0)
    }

    /// The coordinates of fiber `f` in the non-product modes, in increasing
    /// mode order (i.e. the output coordinates for TTV).
    pub fn fiber_coords<V: Value>(&self, t: &CooTensor<V>, f: usize) -> Vec<Coord> {
        let first = self.fptr[f];
        (0..t.order()).filter(|&m| m != self.mode).map(|m| t.mode_inds(m)[first]).collect()
    }
}

/// Counts the number of non-empty mode-`n` fibers without keeping the index.
///
/// Sorts a clone of the tensor; use [`FiberIndex::build`] when the caller has
/// already sorted. Used by the analysis module to obtain the `M_F` values of
/// Table I for every mode.
pub fn count_fibers<V: Value>(t: &CooTensor<V>, n: usize) -> usize {
    let mut c = t.clone();
    c.sort_mode_last(n);
    FiberIndex::build(&c, n).num_fibers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn sorted_sample() -> CooTensor<f32> {
        let mut t = CooTensor::from_entries(
            Shape::new(vec![2, 2, 4]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![0, 1, 1], 3.0),
                (vec![1, 1, 0], 4.0),
                (vec![1, 1, 3], 5.0),
            ],
        )
        .unwrap();
        t.sort_mode_last(2);
        t
    }

    #[test]
    fn fiber_boundaries() {
        let t = sorted_sample();
        let fi = FiberIndex::build(&t, 2);
        assert_eq!(fi.num_fibers(), 3);
        assert_eq!(fi.fptr(), &[0, 2, 3, 5]);
        assert_eq!(fi.fiber_range(0), 0..2);
        assert_eq!(fi.fiber_range(2), 3..5);
        assert_eq!(fi.max_fiber_len(), 2);
        assert_eq!(fi.mode(), 2);
    }

    #[test]
    fn fiber_coords_drop_product_mode() {
        let t = sorted_sample();
        let fi = FiberIndex::build(&t, 2);
        assert_eq!(fi.fiber_coords(&t, 0), vec![0, 0]);
        assert_eq!(fi.fiber_coords(&t, 1), vec![0, 1]);
        assert_eq!(fi.fiber_coords(&t, 2), vec![1, 1]);
    }

    #[test]
    fn count_fibers_every_mode() {
        let t = sorted_sample();
        // Mode 0 fibers: (j,k) pairs = (0,0),(0,2),(1,1),(1,0),(1,3) -> 5.
        assert_eq!(count_fibers(&t, 0), 5);
        // Mode 1 fibers: (i,k) pairs = (0,0),(0,2),(0,1),(1,0),(1,3) -> 5.
        assert_eq!(count_fibers(&t, 1), 5);
        assert_eq!(count_fibers(&t, 2), 3);
    }

    #[test]
    fn single_entry_single_fiber() {
        let mut t = CooTensor::<f32>::from_entries(Shape::new(vec![3, 3]), vec![(vec![1, 2], 1.0)])
            .unwrap();
        t.sort_mode_last(0);
        let fi = FiberIndex::build(&t, 0);
        assert_eq!(fi.num_fibers(), 1);
        assert_eq!(fi.fiber_coords(&t, 0), vec![2]);
    }

    #[test]
    fn dense_fiber_collapses_to_one() {
        // All entries share the non-product coordinates -> one fiber.
        let mut t = CooTensor::<f32>::from_entries(
            Shape::new(vec![2, 4]),
            (0..4).map(|k| (vec![1, k], k as f32)).collect::<Vec<_>>(),
        )
        .unwrap();
        t.sort_mode_last(1);
        let fi = FiberIndex::build(&t, 1);
        assert_eq!(fi.num_fibers(), 1);
        assert_eq!(fi.max_fiber_len(), 4);
    }
}
