//! Mode-index relabeling (tensor reordering).
//!
//! The paper notes that "data reuse could happen if its access has or gains
//! a good localized pattern naturally or from reordering techniques"
//! (Section III, citing Smith et al. and Li et al.'s reordering work). This
//! module provides the two baseline relabelings those studies compare
//! against and build on:
//!
//! - [`Relabel::random`] — a random permutation per mode (destroys locality;
//!   the adversarial baseline);
//! - [`Relabel::by_degree`] — sort indices of each mode by decreasing
//!   non-zero count, packing hot indices together (the simple
//!   locality-improving heuristic).
//!
//! A [`Relabel`] is a per-mode bijection; applying it preserves the tensor's
//! values and only renames coordinates, so every kernel result is the same
//! up to the same renaming — a property the tests verify.

use crate::coo::CooTensor;
use crate::error::{Error, Result};
use crate::shape::Coord;
use crate::value::Value;

/// A per-mode index bijection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabel {
    /// `maps[m][old] = new` for each mode `m`.
    maps: Vec<Vec<Coord>>,
}

impl Relabel {
    /// The identity relabeling for a tensor's shape.
    pub fn identity<V: Value>(t: &CooTensor<V>) -> Self {
        Self { maps: t.shape().dims().iter().map(|&d| (0..d).collect()).collect() }
    }

    /// A deterministic pseudo-random permutation per mode, keyed by `seed`
    /// (Fisher-Yates over a SplitMix64 stream).
    pub fn random<V: Value>(t: &CooTensor<V>, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B54A32D192ED03);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let maps = t
            .shape()
            .dims()
            .iter()
            .map(|&d| {
                let mut perm: Vec<Coord> = (0..d).collect();
                for i in (1..d as usize).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    perm.swap(i, j);
                }
                perm
            })
            .collect();
        Self { maps }
    }

    /// Relabels each mode so the most frequently used indices come first
    /// (decreasing non-zero count, ties by original index).
    pub fn by_degree<V: Value>(t: &CooTensor<V>) -> Self {
        let maps = (0..t.order())
            .map(|m| {
                let d = t.shape().dim(m) as usize;
                let mut counts = vec![0u64; d];
                for &c in t.mode_inds(m) {
                    counts[c as usize] += 1;
                }
                let mut order: Vec<usize> = (0..d).collect();
                order.sort_by_key(|&i| (std::cmp::Reverse(counts[i]), i));
                // order[rank] = old index; invert to map[old] = rank.
                let mut map = vec![0 as Coord; d];
                for (rank, &old) in order.iter().enumerate() {
                    map[old] = rank as Coord;
                }
                map
            })
            .collect();
        Self { maps }
    }

    /// The mapping of mode `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn map(&self, m: usize) -> &[Coord] {
        &self.maps[m]
    }

    /// Applies the relabeling, producing a renamed tensor with identical
    /// values.
    ///
    /// # Errors
    ///
    /// Returns an error if the relabeling's mode count or dimension sizes do
    /// not match the tensor.
    pub fn apply<V: Value>(&self, t: &CooTensor<V>) -> Result<CooTensor<V>> {
        if self.maps.len() != t.order() {
            return Err(Error::OrderMismatch { left: t.order(), right: self.maps.len() });
        }
        for (m, map) in self.maps.iter().enumerate() {
            if map.len() != t.shape().dim(m) as usize {
                return Err(Error::OperandMismatch {
                    what: format!("relabel map for mode {m} has wrong length"),
                });
            }
        }
        let inds = (0..t.order())
            .map(|m| t.mode_inds(m).iter().map(|&c| self.maps[m][c as usize]).collect())
            .collect();
        CooTensor::from_parts(t.shape().clone(), inds, t.vals().to_vec())
    }

    /// The inverse relabeling.
    pub fn inverse(&self) -> Self {
        let maps = self
            .maps
            .iter()
            .map(|map| {
                let mut inv = vec![0 as Coord; map.len()];
                for (old, &new) in map.iter().enumerate() {
                    inv[new as usize] = old as Coord;
                }
                inv
            })
            .collect();
        Self { maps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hicoo::HiCooTensor;
    use crate::shape::Shape;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![8, 8, 8]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 0], 2.0),
                (vec![0, 0, 1], 3.0),
                (vec![7, 6, 5], 4.0),
                (vec![0, 2, 0], 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn identity_is_noop() {
        let t = sample();
        let id = Relabel::identity(&t);
        assert_eq!(id.apply(&t).unwrap(), t);
    }

    #[test]
    fn random_is_a_bijection_and_invertible() {
        let t = sample();
        let r = Relabel::random(&t, 42);
        for m in 0..3 {
            let mut sorted = r.map(m).to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "mode {m} not a permutation");
        }
        let renamed = r.apply(&t).unwrap();
        let back = r.inverse().apply(&renamed).unwrap();
        let mut a = back;
        a.sort();
        let mut b = t;
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn random_seeds_differ() {
        let t = sample();
        assert_ne!(Relabel::random(&t, 1), Relabel::random(&t, 2));
        assert_eq!(Relabel::random(&t, 1), Relabel::random(&t, 1));
    }

    #[test]
    fn by_degree_puts_hot_index_first() {
        let t = sample();
        // Mode 0: index 0 appears 4 times, 7 once -> 0 stays first.
        let r = Relabel::by_degree(&t);
        assert_eq!(r.map(0)[0], 0);
        // Mode 1: index 0 appears twice -> rank 0; index 1, 2, 6 once each.
        assert_eq!(r.map(1)[0], 0);
        let renamed = r.apply(&t).unwrap();
        assert_eq!(renamed.nnz(), t.nnz());
        // Mass is preserved.
        let s0: f32 = t.vals().iter().sum();
        let s1: f32 = renamed.vals().iter().sum();
        assert_eq!(s0, s1);
    }

    #[test]
    fn degree_reorder_improves_block_density_on_scattered_hot_rows() {
        // Hot indices scattered across the index space: degree reordering
        // packs them into few HiCOO blocks.
        let mut t = CooTensor::<f32>::new(Shape::new(vec![1024, 1024, 1024]));
        for s in 0..64u32 {
            let hot = s * 16 + 7; // scattered hot rows
            for k in 0..8u32 {
                t.push(&[hot, hot, k * 128], 1.0).unwrap();
            }
        }
        let before = HiCooTensor::from_coo(&t, 8).unwrap();
        let after = HiCooTensor::from_coo(&Relabel::by_degree(&t).apply(&t).unwrap(), 8).unwrap();
        assert!(
            after.num_blocks() < before.num_blocks(),
            "{} vs {}",
            after.num_blocks(),
            before.num_blocks()
        );
    }

    #[test]
    fn apply_validates_shape() {
        let t = sample();
        let other = CooTensor::<f32>::new(Shape::new(vec![4, 4]));
        let r = Relabel::identity(&other);
        assert!(r.apply(&t).is_err());
    }
}
