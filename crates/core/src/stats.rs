//! Tensor feature statistics.
//!
//! The paper's Table II characterizes every dataset by order, dimensions,
//! non-zero count and density; the kernel analysis (Table I) additionally
//! needs the per-mode fiber counts `M_F`, and the HiCOO discussion relies on
//! block-occupancy statistics. [`TensorStats`] gathers all of these.

use crate::coo::CooTensor;
use crate::hicoo::HiCooTensor;
use crate::shape::Coord;
use crate::value::Value;

/// Summary statistics of a sparse tensor.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, Shape, TensorStats};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let t = CooTensor::from_entries(
///     Shape::new(vec![4, 4]),
///     vec![(vec![0, 0], 1.0_f32), (vec![0, 1], 2.0)],
/// )?;
/// let s = TensorStats::compute(&t);
/// assert_eq!(s.nnz, 2);
/// assert_eq!(s.fiber_counts[0], 2); // two mode-0 fibers: columns 0 and 1
/// assert_eq!(s.fiber_counts[1], 1); // one mode-1 fiber: row 0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TensorStats {
    /// Tensor order `N`.
    pub order: usize,
    /// Mode dimensions.
    pub dims: Vec<Coord>,
    /// Number of non-zeros `M`.
    pub nnz: usize,
    /// Density `M / ∏ I_n`.
    pub density: f64,
    /// Number of non-empty mode-`n` fibers for each mode (`M_F` in Table I).
    pub fiber_counts: Vec<usize>,
    /// Longest mode-`n` fiber per mode (load-imbalance indicator for
    /// fiber-parallel TTV/TTM).
    pub max_fiber_lens: Vec<usize>,
}

impl TensorStats {
    /// Computes statistics for a COO tensor (sorts internal clones per mode).
    pub fn compute<V: Value>(t: &CooTensor<V>) -> Self {
        let order = t.order();
        let mut fiber_counts = Vec::with_capacity(order);
        let mut max_fiber_lens = Vec::with_capacity(order);
        for n in 0..order {
            let mut c = t.clone();
            c.sort_mode_last(n);
            let fi = crate::fiber::FiberIndex::build(&c, n);
            fiber_counts.push(fi.num_fibers());
            max_fiber_lens.push(fi.max_fiber_len());
        }
        Self {
            order,
            dims: t.shape().dims().to_vec(),
            nnz: t.nnz(),
            density: t.shape().density(t.nnz()),
            fiber_counts,
            max_fiber_lens,
        }
    }

    /// The smallest per-mode fiber count (a proxy for the best TTV mode).
    pub fn min_fiber_count(&self) -> usize {
        self.fiber_counts.iter().copied().min().unwrap_or(0)
    }

    /// The average fiber count across modes, used by the mode-averaged
    /// experiment harness (the paper averages TTV/TTM/MTTKRP over all modes).
    pub fn avg_fiber_count(&self) -> f64 {
        if self.fiber_counts.is_empty() {
            0.0
        } else {
            self.fiber_counts.iter().sum::<usize>() as f64 / self.fiber_counts.len() as f64
        }
    }
}

/// Block-occupancy statistics of a HiCOO tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStats {
    /// Block size `B`.
    pub block_size: u32,
    /// Number of non-empty blocks `n_b`.
    pub num_blocks: usize,
    /// Mean non-zeros per block.
    pub avg_nnz: f64,
    /// Largest block population (GPU HiCOO-MTTKRP imbalance indicator).
    pub max_nnz: usize,
    /// Fraction of blocks holding exactly one non-zero (hyper-sparsity
    /// indicator: HiCOO stops paying off as this approaches 1).
    pub singleton_fraction: f64,
}

impl BlockStats {
    /// Computes block statistics for a HiCOO tensor.
    pub fn compute<V: Value>(t: &HiCooTensor<V>) -> Self {
        let nb = t.num_blocks();
        let mut max_nnz = 0usize;
        let mut singles = 0usize;
        for b in 0..nb {
            let len = t.block_range(b).len();
            max_nnz = max_nnz.max(len);
            if len == 1 {
                singles += 1;
            }
        }
        Self {
            block_size: t.block_size(),
            num_blocks: nb,
            avg_nnz: t.avg_block_nnz(),
            max_nnz,
            singleton_fraction: if nb == 0 { 0.0 } else { singles as f64 / nb as f64 },
        }
    }
}

/// Formats a non-zero count the way Table II does (`26M`, `1.1M`, `5K`).
pub fn human_count(n: usize) -> String {
    let nf = n as f64;
    if nf >= 1e9 {
        format!("{:.1}B", nf / 1e9)
    } else if nf >= 1e6 {
        let m = nf / 1e6;
        if m >= 10.0 {
            format!("{m:.0}M")
        } else {
            format!("{m:.1}M")
        }
    } else if nf >= 1e3 {
        let k = nf / 1e3;
        if k >= 10.0 {
            format!("{k:.0}K")
        } else {
            format!("{k:.1}K")
        }
    } else {
        format!("{n}")
    }
}

/// Re-export of [`crate::fiber::count_fibers`] at the stats level for convenience.
pub use crate::fiber::count_fibers as mode_fiber_count;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fiber::count_fibers;
    use crate::shape::Shape;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4, 4]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 1], 2.0),
                (vec![0, 1, 0], 3.0),
                (vec![3, 3, 3], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn stats_fields() {
        let s = TensorStats::compute(&sample());
        assert_eq!(s.order, 3);
        assert_eq!(s.nnz, 4);
        assert!((s.density - 4.0 / 64.0).abs() < 1e-12);
        // Mode-2 fibers: (0,0), (0,1), (3,3) -> 3.
        assert_eq!(s.fiber_counts[2], 3);
        assert_eq!(s.max_fiber_lens[2], 2);
        assert_eq!(s.min_fiber_count(), 3);
        assert!(s.avg_fiber_count() >= 3.0);
    }

    #[test]
    fn stats_agree_with_count_fibers() {
        let t = sample();
        let s = TensorStats::compute(&t);
        for n in 0..3 {
            assert_eq!(s.fiber_counts[n], count_fibers(&t, n));
        }
    }

    #[test]
    fn block_stats() {
        let h = HiCooTensor::from_coo(&sample(), 2).unwrap();
        let b = BlockStats::compute(&h);
        assert_eq!(b.block_size, 2);
        assert_eq!(b.num_blocks, 2);
        assert_eq!(b.max_nnz, 3);
        assert!((b.avg_nnz - 2.0).abs() < 1e-12);
        assert!((b.singleton_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn human_count_formatting() {
        assert_eq!(human_count(0), "0");
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(1_500), "1.5K");
        assert_eq!(human_count(26_000_000), "26M");
        assert_eq!(human_count(1_100_000), "1.1M");
        assert_eq!(human_count(2_300_000_000), "2.3B");
    }
}
