//! The Hierarchical COOrdinate (HiCOO) format.
//!
//! HiCOO (Li et al., SC'18; Section III-C of the benchmark paper) compresses
//! COO indices in units of sparse blocks with a pre-specified block size `B`
//! (a power of two, ≤ 256 so element indices fit in 8 bits). Indices split
//! into per-block 32-bit *block indices* and per-non-zero 8-bit *element
//! indices*; a block pointer array `bptr` records where each block's
//! non-zeros start. Blocks are laid out in Morton (Z-) order, which both
//! compresses the block index arrays and improves locality.

use crate::coo::CooTensor;
use crate::error::{Error, Result};
use crate::keys::{hicoo_keys, PackedKeys};
use crate::morton::morton_cmp;
use crate::shape::{Coord, Shape};
use crate::sort::{par_sort_keys, sort_permutation};
use crate::value::Value;
use pasta_obs::{counters, span_detail, CounterId};

/// Checks a HiCOO block size and returns `log2(B)`.
///
/// # Errors
///
/// Returns [`Error::InvalidBlockSize`] unless `size` is a power of two in
/// `2..=256`.
pub fn block_bits_for(size: u32) -> Result<u8> {
    if size.is_power_of_two() && (2..=256).contains(&size) {
        Ok(size.trailing_zeros() as u8)
    } else {
        Err(Error::InvalidBlockSize { size })
    }
}

/// A sparse tensor in HiCOO format.
///
/// Storage for an `N`th-order tensor with `M` non-zeros in `n_b` blocks is
/// `n_b (4N + 8)` bytes of block metadata plus `M (N + 4)` bytes of element
/// indices and `f32` values — usually well below COO's `4(N+1)M`.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, HiCooTensor, Shape};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let coo = CooTensor::from_entries(
///     Shape::new(vec![4, 4, 4]),
///     vec![(vec![0, 0, 1], 1.0_f32), (vec![3, 3, 3], 2.0)],
/// )?;
/// let hicoo = HiCooTensor::from_coo(&coo, 2)?; // B = 2
/// assert_eq!(hicoo.nnz(), 2);
/// assert_eq!(hicoo.num_blocks(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HiCooTensor<V> {
    shape: Shape,
    block_bits: u8,
    /// Block pointer: block `b` spans entries `bptr[b]..bptr[b+1]`.
    bptr: Vec<usize>,
    /// Block indices, one array per mode, each of length `num_blocks`.
    binds: Vec<Vec<Coord>>,
    /// Element indices within the block, one array per mode, length `nnz`.
    einds: Vec<Vec<u8>>,
    vals: Vec<V>,
}

impl<V: Value> HiCooTensor<V> {
    /// Converts a COO tensor into HiCOO with block size `block_size`.
    ///
    /// Non-zeros are sorted by the Morton order of their block coordinates
    /// (ties broken lexicographically within the block), then grouped into
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBlockSize`] for a block size that is not a
    /// power of two in `2..=256`.
    pub fn from_coo(coo: &CooTensor<V>, block_size: u32) -> Result<Self> {
        Self::from_coo_threads(coo, block_size, pasta_par::default_threads())
    }

    /// [`Self::from_coo`] with an explicit worker count for the sort.
    ///
    /// When the per-entry key (Morton code of the block coordinates plus
    /// the in-block element offsets) fits in 128 bits, non-zeros are
    /// ordered with the parallel radix sort
    /// ([`crate::sort::par_sort_keys`]); wider keys fall back to the
    /// comparator sort over block coordinates hoisted out of the
    /// comparison loop. Both paths yield the identical permutation, so
    /// the result does not depend on `threads`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBlockSize`] for a block size that is not a
    /// power of two in `2..=256`.
    pub fn from_coo_threads(coo: &CooTensor<V>, block_size: u32, threads: usize) -> Result<Self> {
        let bits = block_bits_for(block_size)?;
        let order = coo.order();
        let m = coo.nnz();
        counters().add(CounterId::HicooConversions, 1);
        let _span = span_detail(
            "convert",
            "convert.hicoo",
            "",
            m as u64,
            block_size as u64,
            threads as u64,
        );

        let block_coord = |x: usize| -> Vec<Coord> {
            (0..order).map(|md| coo.mode_inds(md)[x] >> bits).collect()
        };
        let perm = match hicoo_keys(coo.inds(), coo.shape().dims(), bits) {
            PackedKeys::U64(keys) => par_sort_keys(&keys, threads),
            PackedKeys::U128(keys) => par_sort_keys(&keys, threads),
            PackedKeys::Overflow => {
                // Comparator fallback: precompute every entry's block
                // coordinates once (flattened row-major) instead of
                // re-deriving them inside each of the O(M log M)
                // comparisons.
                let cached: Vec<Coord> = (0..m).flat_map(&block_coord).collect();
                sort_permutation(m, |a, b| {
                    morton_cmp(
                        &cached[a * order..(a + 1) * order],
                        &cached[b * order..(b + 1) * order],
                    )
                    .then_with(|| {
                        for md in 0..order {
                            let ord = coo.mode_inds(md)[a].cmp(&coo.mode_inds(md)[b]);
                            if ord != std::cmp::Ordering::Equal {
                                return ord;
                            }
                        }
                        std::cmp::Ordering::Equal
                    })
                })
            }
        };

        let mask = block_size - 1;
        let mut bptr = Vec::new();
        let mut binds: Vec<Vec<Coord>> = vec![Vec::new(); order];
        let mut einds: Vec<Vec<u8>> = vec![Vec::with_capacity(m); order];
        let mut vals = Vec::with_capacity(m);
        let mut prev_block: Option<Vec<Coord>> = None;

        for (pos, &p) in perm.iter().enumerate() {
            let x = p as usize;
            let bc = block_coord(x);
            if prev_block.as_ref() != Some(&bc) {
                bptr.push(pos);
                for (md, col) in binds.iter_mut().enumerate() {
                    col.push(bc[md]);
                }
                prev_block = Some(bc);
            }
            for md in 0..order {
                einds[md].push((coo.mode_inds(md)[x] & mask) as u8);
            }
            vals.push(coo.vals()[x]);
        }
        bptr.push(m);

        Ok(Self { shape: coo.shape().clone(), block_bits: bits, bptr, binds, einds, vals })
    }

    /// Assembles a HiCOO tensor directly from its constituent arrays.
    ///
    /// Intended for kernels that construct their output's block structure
    /// analytically (e.g. HiCOO-TTV inherits the input's blocks restricted to
    /// the non-product modes).
    ///
    /// # Errors
    ///
    /// Returns an error if the arrays are mutually inconsistent: wrong number
    /// of index arrays, mismatched lengths, a non-monotone `bptr`, element
    /// indices outside the block, or block coordinates outside the shape.
    pub fn from_raw_parts(
        shape: Shape,
        block_size: u32,
        bptr: Vec<usize>,
        binds: Vec<Vec<Coord>>,
        einds: Vec<Vec<u8>>,
        vals: Vec<V>,
    ) -> Result<Self> {
        let bits = block_bits_for(block_size)?;
        let order = shape.order();
        let nb = bptr.len().saturating_sub(1);
        let m = vals.len();
        let consistent = binds.len() == order
            && einds.len() == order
            && binds.iter().all(|c| c.len() == nb)
            && einds.iter().all(|c| c.len() == m)
            && bptr.first() == Some(&0)
            && bptr.last() == Some(&m)
            && bptr.windows(2).all(|w| w[0] <= w[1]);
        if !consistent {
            return Err(Error::OperandMismatch { what: "inconsistent HiCOO arrays".into() });
        }
        for md in 0..order {
            let dim = shape.dim(md);
            if binds[md].iter().any(|&b| (b << bits) >= dim && b != 0)
                || einds[md].iter().any(|&e| (e as u32) >= (1 << bits))
            {
                return Err(Error::OperandMismatch {
                    what: format!("mode {md} block/element indices out of range"),
                });
            }
        }
        Ok(Self { shape, block_bits: bits, bptr, binds, einds, vals })
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor order `N`.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// The number of non-zeros `M`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The number of non-empty blocks `n_b`.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.bptr.len().saturating_sub(1)
    }

    /// The block size `B`.
    #[inline]
    pub fn block_size(&self) -> u32 {
        1 << self.block_bits
    }

    /// `log2` of the block size.
    #[inline]
    pub fn block_bits(&self) -> u8 {
        self.block_bits
    }

    /// The block pointer array (length `n_b + 1`).
    #[inline]
    pub fn bptr(&self) -> &[usize] {
        &self.bptr
    }

    /// The block index array of mode `m` (length `n_b`).
    ///
    /// # Panics
    ///
    /// Panics if `m >= self.order()`.
    #[inline]
    pub fn mode_binds(&self, m: usize) -> &[Coord] {
        &self.binds[m]
    }

    /// The element index array of mode `m` (length `nnz`).
    ///
    /// # Panics
    ///
    /// Panics if `m >= self.order()`.
    #[inline]
    pub fn mode_einds(&self, m: usize) -> &[u8] {
        &self.einds[m]
    }

    /// The value array, in block-major Morton order.
    #[inline]
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Mutable access to the value array.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    /// The entry range of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.num_blocks()`.
    #[inline]
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        self.bptr[b]..self.bptr[b + 1]
    }

    /// Whether the mode-`m` block indices are non-decreasing across blocks.
    ///
    /// Morton-sorted HiCOO tensors satisfy this for mode 0 by construction.
    /// When it holds for a product mode `n`, output rows of a mode-`n`
    /// MTTKRP are confined to runs of blocks sharing a `binds[n]` value, so
    /// block ranges cut at `binds[n]` boundaries can be written without
    /// synchronization (owner-computes scheduling).
    ///
    /// # Panics
    ///
    /// Panics if `m >= self.order()`.
    pub fn mode_binds_monotone(&self, m: usize) -> bool {
        self.binds[m].windows(2).all(|w| w[0] <= w[1])
    }

    /// The block coordinates of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.num_blocks()`.
    pub fn block_coords(&self, b: usize) -> Vec<Coord> {
        self.binds.iter().map(|col| col[b]).collect()
    }

    /// Reconstructs the full coordinates of non-zero `x` inside block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` is out of range or `x` is not in block `b`
    /// (debug builds).
    pub fn coords_of(&self, b: usize, x: usize) -> Vec<Coord> {
        debug_assert!(self.block_range(b).contains(&x));
        (0..self.order())
            .map(|md| (self.binds[md][b] << self.block_bits) | self.einds[md][x] as Coord)
            .collect()
    }

    /// Iterates over block views.
    pub fn blocks(&self) -> Blocks<'_, V> {
        Blocks { t: self, b: 0 }
    }

    /// The HiCOO storage footprint in bytes: `n_b (4N + 8)` block metadata
    /// (32-bit block indices + 64-bit `bptr`) plus `M·N` element-index bytes
    /// plus values — the formula underlying Table I's HiCOO rows.
    pub fn storage_bytes(&self) -> usize {
        let n = self.order();
        self.num_blocks() * (4 * n + 8) + self.nnz() * (n + V::BYTES)
    }

    /// Expands back to COO (entries in block-major Morton order).
    pub fn to_coo(&self) -> CooTensor<V> {
        let mut out = CooTensor::with_capacity(self.shape.clone(), self.nnz());
        for b in 0..self.num_blocks() {
            for x in self.block_range(b) {
                let coords = self.coords_of(b, x);
                out.push(&coords, self.vals[x]).expect("HiCOO coords are valid by construction");
            }
        }
        out
    }

    /// The average number of non-zeros per block (the paper's block density
    /// diagnostic: HiCOO degrades when this approaches 1).
    pub fn avg_block_nnz(&self) -> f64 {
        if self.num_blocks() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.num_blocks() as f64
        }
    }
}

impl<V: Value> crate::access::FormatAccess<V> for HiCooTensor<V> {
    fn format_name(&self) -> &'static str {
        "HiCOO"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Every mode splits into Morton-ordered block + element indices.
    fn level_kind(&self, mode: usize) -> crate::access::LevelKind {
        debug_assert!(mode < self.order());
        crate::access::LevelKind::Blocked
    }

    fn stored_vals(&self) -> &[V] {
        &self.vals
    }

    fn stored_vals_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    fn same_structure(&self, other: &Self) -> bool {
        self.shape == other.shape
            && self.block_bits == other.block_bits
            && self.bptr == other.bptr
            && self.binds == other.binds
            && self.einds == other.einds
    }

    fn for_each_stored<F: FnMut(&[Coord], V)>(&self, mut f: F) {
        let order = self.order();
        let mut coords = vec![0 as Coord; order];
        for b in 0..self.num_blocks() {
            for x in self.block_range(b) {
                for (m, c) in coords.iter_mut().enumerate() {
                    *c = (self.binds[m][b] << self.block_bits) | self.einds[m][x] as Coord;
                }
                f(&coords, self.vals[x]);
            }
        }
    }
}

/// A borrowed view of one HiCOO block.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a, V> {
    t: &'a HiCooTensor<V>,
    /// The block number.
    pub index: usize,
}

impl<'a, V: Value> BlockView<'a, V> {
    /// The entry range of this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.t.block_range(self.index)
    }

    /// The block coordinates.
    pub fn coords(&self) -> Vec<Coord> {
        self.t.block_coords(self.index)
    }

    /// The number of non-zeros in this block.
    pub fn len(&self) -> usize {
        let r = self.range();
        r.end - r.start
    }

    /// Whether the block is empty (never true for well-formed tensors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Iterator over the blocks of a [`HiCooTensor`].
#[derive(Debug)]
pub struct Blocks<'a, V> {
    t: &'a HiCooTensor<V>,
    b: usize,
}

impl<'a, V: Value> Iterator for Blocks<'a, V> {
    type Item = BlockView<'a, V>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.b >= self.t.num_blocks() {
            return None;
        }
        let v = BlockView { t: self.t, index: self.b };
        self.b += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.t.num_blocks() - self.b;
        (rem, Some(rem))
    }
}

impl<'a, V: Value> ExactSizeIterator for Blocks<'a, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![8, 8, 8]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![1, 1, 0], 2.0),
                (vec![0, 1, 1], 3.0),
                (vec![4, 4, 4], 4.0),
                (vec![5, 5, 5], 5.0),
                (vec![7, 0, 0], 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn block_bits_validation() {
        assert_eq!(block_bits_for(2).unwrap(), 1);
        assert_eq!(block_bits_for(128).unwrap(), 7);
        assert_eq!(block_bits_for(256).unwrap(), 8);
        assert!(block_bits_for(1).is_err());
        assert!(block_bits_for(3).is_err());
        assert!(block_bits_for(512).is_err());
        assert!(block_bits_for(0).is_err());
    }

    #[test]
    fn groups_into_blocks() {
        let hicoo = HiCooTensor::from_coo(&sample_coo(), 2).unwrap();
        assert_eq!(hicoo.nnz(), 6);
        // Blocks (B=2): (0,0,0) holds 3 entries, (2,2,2) holds 2, (3,0,0) holds 1.
        assert_eq!(hicoo.num_blocks(), 3);
        assert_eq!(hicoo.block_size(), 2);
        let sizes: Vec<usize> = hicoo.blocks().map(|b| b.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert!(hicoo.blocks().all(|b| !b.is_empty()));
        assert_eq!(hicoo.avg_block_nnz(), 2.0);
    }

    #[test]
    fn roundtrips_to_coo() {
        let coo = sample_coo();
        for bs in [2, 4, 8, 128] {
            let hicoo = HiCooTensor::from_coo(&coo, bs).unwrap();
            let mut back = hicoo.to_coo();
            back.sort();
            let mut orig = coo.clone();
            orig.sort();
            assert_eq!(back, orig, "block size {bs}");
        }
    }

    #[test]
    fn blocks_are_in_morton_order() {
        let hicoo = HiCooTensor::from_coo(&sample_coo(), 2).unwrap();
        for b in 1..hicoo.num_blocks() {
            let prev = hicoo.block_coords(b - 1);
            let cur = hicoo.block_coords(b);
            assert_eq!(morton_cmp(&prev, &cur), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn element_indices_fit_block() {
        let hicoo = HiCooTensor::from_coo(&sample_coo(), 4).unwrap();
        for md in 0..3 {
            assert!(hicoo.mode_einds(md).iter().all(|&e| (e as u32) < 4));
        }
    }

    #[test]
    fn coords_reconstruct() {
        let coo = sample_coo();
        let hicoo = HiCooTensor::from_coo(&coo, 2).unwrap();
        for b in 0..hicoo.num_blocks() {
            for x in hicoo.block_range(b) {
                let c = hicoo.coords_of(b, x);
                assert_eq!(coo.get(&c), Some(hicoo.vals()[x]));
            }
        }
    }

    #[test]
    fn storage_beats_coo_for_clustered_tensors() {
        // A dense-ish cluster: every entry in one 4x4x4 corner.
        let entries: Vec<(Vec<Coord>, f32)> = (0..4u32)
            .flat_map(|i| (0..4u32).flat_map(move |j| (0..4u32).map(move |k| (vec![i, j, k], 1.0))))
            .collect();
        let coo = CooTensor::from_entries(Shape::new(vec![256, 256, 256]), entries).unwrap();
        let hicoo = HiCooTensor::from_coo(&coo, 4).unwrap();
        assert_eq!(hicoo.num_blocks(), 1);
        assert!(hicoo.storage_bytes() < coo.storage_bytes());
    }

    #[test]
    fn hypersparse_tensors_inflate_hicoo() {
        // One non-zero per far-apart block: HiCOO pays block overhead per nnz.
        let entries: Vec<(Vec<Coord>, f32)> =
            (0..32u32).map(|i| (vec![i * 8, i * 8, i * 8], 1.0)).collect();
        let coo = CooTensor::from_entries(Shape::new(vec![256, 256, 256]), entries).unwrap();
        let hicoo = HiCooTensor::from_coo(&coo, 8).unwrap();
        assert_eq!(hicoo.num_blocks(), 32);
        assert!(hicoo.storage_bytes() > coo.storage_bytes());
        assert_eq!(hicoo.avg_block_nnz(), 1.0);
    }

    #[test]
    fn empty_tensor() {
        let coo = CooTensor::<f32>::new(Shape::new(vec![4, 4]));
        let hicoo = HiCooTensor::from_coo(&coo, 2).unwrap();
        assert_eq!(hicoo.nnz(), 0);
        assert_eq!(hicoo.num_blocks(), 0);
        assert_eq!(hicoo.avg_block_nnz(), 0.0);
        assert_eq!(hicoo.to_coo().nnz(), 0);
    }
}
