//! Morton (Z-) order comparison and encoding for arbitrary-order coordinates.
//!
//! HiCOO sorts tensor blocks in Morton order to obtain spatial locality
//! (Section III-C of the paper). For arbitrary tensor orders we avoid building
//! wide interleaved keys and instead compare coordinate tuples directly with
//! the classic most-significant-differing-bit technique (Chan's trick).

use crate::shape::Coord;
use std::cmp::Ordering;

/// Returns `true` if the most significant set bit of `b` is higher than the
/// most significant set bit of `a` ("less in most-significant-bit order").
#[inline]
fn less_msb(a: Coord, b: Coord) -> bool {
    a < b && a < (a ^ b)
}

/// Compares two coordinate tuples in Morton (Z-curve) order.
///
/// Both tuples must have the same length; bits of each coordinate are
/// conceptually interleaved mode-major (mode 0 contributes the most
/// significant bit among equal bit positions), matching an interleaved-key
/// encoding.
///
/// # Panics
///
/// Panics in debug builds if the tuples have different lengths.
///
/// # Examples
///
/// ```
/// use pasta_core::morton::morton_cmp;
/// use std::cmp::Ordering;
///
/// assert_eq!(morton_cmp(&[0, 0], &[1, 1]), Ordering::Less);
/// assert_eq!(morton_cmp(&[1, 0], &[0, 1]), Ordering::Greater);
/// assert_eq!(morton_cmp(&[2, 3], &[2, 3]), Ordering::Equal);
/// ```
pub fn morton_cmp(a: &[Coord], b: &[Coord]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    // Find the mode whose differing bit is the most significant overall.
    let mut msd = 0usize;
    let mut best = a[0] ^ b[0];
    for d in 1..a.len() {
        let x = a[d] ^ b[d];
        if less_msb(best, x) {
            msd = d;
            best = x;
        }
    }
    a[msd].cmp(&b[msd])
}

/// Encodes up to four 16-bit coordinates into a single interleaved 64-bit
/// Morton key (used by tests as an independent oracle for [`morton_cmp`] and
/// by the statistics module for compact block labels).
///
/// # Panics
///
/// Panics if more than 4 coordinates are given or any coordinate exceeds
/// 16 bits.
pub fn morton_encode16(coords: &[Coord]) -> u64 {
    assert!(coords.len() <= 4, "morton_encode16 supports at most 4 modes");
    let n = coords.len() as u64;
    let mut key = 0u64;
    for bit in 0..16u64 {
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < (1 << 16), "coordinate exceeds 16 bits");
            let b = ((c as u64) >> (15 - bit)) & 1;
            key = (key << 1) | b;
            let _ = d;
        }
    }
    debug_assert!(16 * n <= 64);
    key
}

/// Decodes a 64-bit interleaved Morton key built by [`morton_encode16`] back
/// into its `n` 16-bit coordinates — the exact inverse, so
/// `morton_decode16(morton_encode16(c), c.len()) == c`.
///
/// # Panics
///
/// Panics if `n` is zero or greater than 4.
pub fn morton_decode16(key: u64, n: usize) -> Vec<Coord> {
    assert!((1..=4).contains(&n), "morton_decode16 supports 1..=4 modes");
    let mut coords = vec![0 as Coord; n];
    // morton_encode16 emits 16 groups of n bits, mode 0 first in each group,
    // most significant bit group first.
    for bit in 0..16u64 {
        for (d, c) in coords.iter_mut().enumerate() {
            let pos = 16 * n as u64 - 1 - (bit * n as u64 + d as u64);
            let b = (key >> pos) & 1;
            *c = (*c << 1) | b as Coord;
        }
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn less_msb_examples() {
        assert!(less_msb(1, 2)); // 0b01 vs 0b10
        assert!(!less_msb(2, 1));
        assert!(!less_msb(3, 3));
        assert!(less_msb(0, 1));
    }

    #[test]
    fn matches_encoded_key_order_2d() {
        // Exhaustive 2-D check against the interleaved-key oracle.
        let pts: Vec<[Coord; 2]> = (0..8).flat_map(|i| (0..8).map(move |j| [i, j])).collect();
        for a in &pts {
            for b in &pts {
                let by_cmp = morton_cmp(a, b);
                let by_key = morton_encode16(a).cmp(&morton_encode16(b));
                assert_eq!(by_cmp, by_key, "a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn matches_encoded_key_order_3d() {
        let pts: Vec<[Coord; 3]> =
            (0..4).flat_map(|i| (0..4).flat_map(move |j| (0..4).map(move |k| [i, j, k]))).collect();
        for a in &pts {
            for b in &pts {
                assert_eq!(
                    morton_cmp(a, b),
                    morton_encode16(a).cmp(&morton_encode16(b)),
                    "a={a:?} b={b:?}"
                );
            }
        }
    }

    #[test]
    fn z_curve_first_quadrant_precedes_others() {
        // Everything in the all-low-bits quadrant precedes any point with a
        // high bit set in any mode.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(morton_cmp(&[i, j], &[4, 0]), Ordering::Less);
                assert_eq!(morton_cmp(&[i, j], &[0, 4]), Ordering::Less);
            }
        }
    }

    #[test]
    fn decode_inverts_encode_at_corners() {
        // 16-bit boundary values: the top-most bit group of the key.
        for c in [&[0u32, 0xFFFF][..], &[0xFFFF, 0xFFFF], &[0x8000, 0x7FFF, 1], &[1, 2, 3, 4]] {
            assert_eq!(morton_decode16(morton_encode16(c), c.len()), c.to_vec());
        }
        // Four full-width coordinates use all 64 key bits.
        let full = [0xFFFFu32; 4];
        assert_eq!(morton_encode16(&full), u64::MAX);
        assert_eq!(morton_decode16(u64::MAX, 4), full.to_vec());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round-trip through the interleaved key for 1..=4 modes with
        /// coordinates spanning the whole 16-bit range.
        #[test]
        fn prop_encode_decode_roundtrip(
            coords in proptest::collection::vec(0u32..0x1_0000, 1..5),
        ) {
            let key = morton_encode16(&coords);
            prop_assert_eq!(morton_decode16(key, coords.len()), coords);
        }

        /// At full 16-bit width the integer key order still equals
        /// `morton_cmp` — the comparator never looks past bit 15.
        #[test]
        fn prop_key_order_matches_cmp_at_16bit_boundary(
            a in (0u32..0x1_0000, 0u32..0x1_0000, 0u32..0x1_0000),
            b in (0u32..0x1_0000, 0u32..0x1_0000, 0u32..0x1_0000),
        ) {
            let (a, b) = ([a.0, a.1, a.2], [b.0, b.1, b.2]);
            prop_assert_eq!(
                morton_cmp(&a, &b),
                morton_encode16(&a).cmp(&morton_encode16(&b)),
                "a={:?} b={:?}", a, b
            );
        }
    }

    #[test]
    fn total_order_properties() {
        let pts: Vec<[Coord; 2]> = (0..16).flat_map(|i| (0..16).map(move |j| [i, j])).collect();
        let mut sorted = pts.clone();
        sorted.sort_by(|a, b| morton_cmp(a, b));
        // Sorting twice is a fixpoint and all elements are retained.
        let mut again = sorted.clone();
        again.sort_by(|a, b| morton_cmp(a, b));
        assert_eq!(sorted, again);
        assert_eq!(sorted.len(), pts.len());
    }
}
