//! The conversion-product cache: sorted COO copies, HiCOO blockings, and
//! pre-processed kernel plans, keyed by tensor id + product parameters.
//!
//! Conversions dominate the cost of a cold request (a HiCOO blocking or a
//! CSF build walks every non-zero); under sustained traffic the same
//! products are needed over and over, so the server keeps them in an
//! LRU-evicted table with a byte budget. Every lookup lands on exactly
//! one of the `cache.hits` / `cache.misses` counters, and every eviction
//! on `cache.evictions`, so load tests can verify cache behavior from
//! counter deltas alone. A disabled cache is represented by the server
//! holding no `ConvCache` at all — the counters then stay untouched
//! (zero-delta), not merely at a 100% miss rate.

use crate::request::TensorId;
use pasta_core::{CooTensor, HiCooTensor, Result};
use pasta_kernels::{CsfTtvPlan, ExprPlan, TtmCooPlan};
use pasta_obs::{counters, instant, CounterId};
use std::collections::HashMap;
use std::sync::Arc;

/// What product of which parameters a cache entry holds.
///
/// The key carries every parameter that changes the product's bytes:
/// the sort mode, the block size, the contracted mode. Tensor identity is
/// the other half of the full key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProductKey {
    /// Mode-outermost sorted COO copy (owner-computes precondition).
    SortedCoo {
        /// The outermost mode.
        mode: usize,
    },
    /// HiCOO blocking with this block size.
    Hicoo {
        /// Block edge length (power of two).
        block: u32,
    },
    /// Pre-processed CSF TTV plan contracting this mode.
    CsfTtv {
        /// The contracted (leaf) mode.
        mode: usize,
    },
    /// Pre-processed semi-sparse TTM plan contracting this mode.
    TtmPlan {
        /// The contracted mode.
        mode: usize,
    },
    /// A lowered expression plan for a composite request, keyed by the
    /// spec's [`signature`](crate::ExprSpec::signature) (the plan holds
    /// the subexpression conversion products — sorted copies, fiber
    /// runs — so repeated graph traffic skips re-planning entirely).
    Expr {
        /// [`crate::ExprSpec::signature`] of the lowered spec.
        sig: u64,
    },
}

/// A cached conversion product.
#[derive(Debug)]
pub enum Product {
    /// See [`ProductKey::SortedCoo`].
    SortedCoo(CooTensor<f32>),
    /// See [`ProductKey::Hicoo`].
    Hicoo(HiCooTensor<f32>),
    /// See [`ProductKey::CsfTtv`].
    CsfTtv(CsfTtvPlan<f32>),
    /// See [`ProductKey::TtmPlan`].
    TtmPlan(TtmCooPlan<f32>),
    /// See [`ProductKey::Expr`]. The plan owns its tensor (`Arc`), so the
    /// product is self-contained like every other cache entry.
    Expr(Box<ExprPlan<'static, f32>>),
}

#[derive(Debug)]
struct Entry {
    product: Arc<Product>,
    bytes: usize,
    stamp: u64,
}

/// The LRU conversion-product cache.
#[derive(Debug)]
pub struct ConvCache {
    cap_bytes: usize,
    used_bytes: usize,
    clock: u64,
    map: HashMap<(TensorId, ProductKey), Entry>,
}

impl ConvCache {
    /// A cache bounded to roughly `cap_bytes` of product storage.
    pub fn new(cap_bytes: usize) -> Self {
        Self { cap_bytes, used_bytes: 0, clock: 0, map: HashMap::new() }
    }

    /// Number of resident products.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Estimated bytes held by resident products.
    pub fn bytes(&self) -> usize {
        self.used_bytes
    }

    /// Returns the cached product for `(tensor, key)`, building it with
    /// `build` on a miss. `bytes_hint` is the caller's size estimate
    /// (used for the eviction budget; products larger than the whole
    /// budget are returned without being cached).
    ///
    /// The boolean is `true` on a hit. Bumps `cache.hits` /
    /// `cache.misses` accordingly, and `cache.evictions` once per entry
    /// evicted to make room.
    ///
    /// # Errors
    ///
    /// Propagates `build` failures (the failed key is not cached).
    pub fn get_or_build(
        &mut self,
        tensor: TensorId,
        key: ProductKey,
        bytes_hint: usize,
        build: impl FnOnce() -> Result<Product>,
    ) -> Result<(Arc<Product>, bool)> {
        self.clock += 1;
        if let Some(e) = self.map.get_mut(&(tensor, key)) {
            e.stamp = self.clock;
            counters().add(CounterId::CacheHits, 1);
            instant("serve", "cache.hit", "", u64::from(tensor), e.bytes as u64, 0);
            return Ok((Arc::clone(&e.product), true));
        }
        counters().add(CounterId::CacheMisses, 1);
        instant("serve", "cache.miss", "", u64::from(tensor), bytes_hint as u64, 0);
        let product = Arc::new(build()?);
        if bytes_hint <= self.cap_bytes {
            while self.used_bytes + bytes_hint > self.cap_bytes && !self.map.is_empty() {
                self.evict_lru();
            }
            self.used_bytes += bytes_hint;
            let stamp = self.clock;
            self.map.insert(
                (tensor, key),
                Entry { product: Arc::clone(&product), bytes: bytes_hint, stamp },
            );
        }
        Ok((product, false))
    }

    fn evict_lru(&mut self) {
        let victim = self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k);
        if let Some(k) = victim {
            if let Some(e) = self.map.remove(&k) {
                self.used_bytes -= e.bytes;
                counters().add(CounterId::CacheEvictions, 1);
                instant("serve", "cache.evict", "", u64::from(k.0), e.bytes as u64, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    fn product() -> Result<Product> {
        Ok(Product::SortedCoo(CooTensor::new(Shape::new(vec![2, 2]))))
    }

    #[test]
    fn hit_after_miss_and_lru_eviction() {
        let mut c = ConvCache::new(100);
        let k0 = ProductKey::SortedCoo { mode: 0 };
        let k1 = ProductKey::SortedCoo { mode: 1 };
        let k2 = ProductKey::Hicoo { block: 4 };

        let (_, hit) = c.get_or_build(1, k0, 40, product).unwrap();
        assert!(!hit);
        let (_, hit) = c.get_or_build(1, k0, 40, || panic!("must not rebuild")).unwrap();
        assert!(hit);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 40);

        // Fill to capacity, then overflow: the least-recently-used entry
        // (k1 — k0 was touched by the hit above... k1 is older) goes.
        c.get_or_build(1, k1, 40, product).unwrap();
        c.get_or_build(1, k0, 40, || panic!("still cached")).unwrap();
        c.get_or_build(1, k2, 40, product).unwrap();
        assert_eq!(c.len(), 2, "one entry evicted to fit");
        let (_, hit) = c.get_or_build(1, k1, 40, product).unwrap();
        assert!(!hit, "k1 was the LRU victim");
        let (_, hit) = c.get_or_build(1, k2, 40, || panic!("k2 stays")).unwrap();
        assert!(hit);
    }

    #[test]
    fn oversized_products_bypass_the_cache() {
        let mut c = ConvCache::new(10);
        let k = ProductKey::TtmPlan { mode: 0 };
        let (_, hit) = c.get_or_build(1, k, 1000, product).unwrap();
        assert!(!hit);
        assert_eq!(c.len(), 0, "too big to cache");
        let (_, hit) = c.get_or_build(1, k, 1000, product).unwrap();
        assert!(!hit, "never cached, so never a hit");
    }

    #[test]
    fn distinct_tensors_do_not_collide() {
        let mut c = ConvCache::new(1000);
        let k = ProductKey::CsfTtv { mode: 1 };
        c.get_or_build(1, k, 10, product).unwrap();
        let (_, hit) = c.get_or_build(2, k, 10, product).unwrap();
        assert!(!hit);
        assert_eq!(c.len(), 2);
    }
}
