//! # pasta-serve — a sharded tensor-algebra service over the PASTA kernels
//!
//! The suite's kernels answer one call at a time; this crate stands them
//! up as a long-running front-end for sustained traffic:
//!
//! - a [`Catalog`] of resident tensors, addressed by [`TensorId`];
//! - [`Request`]s ([`OpSpec`]: TEW/TS/TTV/TTM/MTTKRP kernels, CPD/Tucker
//!   jobs, plus composite [`OpSpec::Expr`] chains lowered through the
//!   `pasta_kernels::expr` planner) whose operands are *derived*
//!   deterministically from the request seed, so any response can be
//!   re-computed independently;
//! - a [`Server`] that batches compatible requests, resolves each
//!   batch's conversion product (sorted COO, HiCOO blocking, CSF/TTM
//!   plans) against an LRU [`ConvCache`] once, and dispatches onto the
//!   `pasta-par` pool through the `KernelPlan` registry — sharding
//!   MTTKRP owner-computes style across mode-outermost ranges;
//! - [`direct_eval`], the cache-free sequential reference every response
//!   is differentially tested against ([`OpSpec::budget`] ULPs; 0 for
//!   everything but the TTV/TTM reduction routes);
//! - [`LatencyStats`], the nearest-rank percentile estimator behind the
//!   `servebench` closed-loop load generator.
//!
//! The request lifecycle is observable end to end: `serve.requests`,
//! `serve.batches`, `serve.shard_tasks` and `cache.hits` /
//! `cache.misses` / `cache.evictions` counters, plus `serve.*` spans
//! over admission → batch → dispatch → reply.
//!
//! # Examples
//!
//! ```
//! use pasta_core::{CooTensor, Shape};
//! use pasta_kernels::EwOp;
//! use pasta_serve::{direct_eval, Catalog, OpSpec, Request, Server, ServerConfig};
//!
//! # fn main() -> pasta_core::Result<()> {
//! let mut x = CooTensor::<f32>::new(Shape::new(vec![4, 4, 4]));
//! for i in 0..4u32 {
//!     x.push(&[i, (i + 1) % 4, (i + 2) % 4], 1.5)?;
//! }
//! let mut catalog = Catalog::new();
//! catalog.insert(0, "demo", x.clone());
//!
//! let mut server = Server::new(catalog, ServerConfig::default());
//! let req = Request { tensor: 0, op: OpSpec::Tew { op: EwOp::Add, seed: 7 } };
//! let responses = server.submit([req])?;
//! // The differential contract: service == direct, bit for bit here.
//! assert_eq!(responses[0].values, direct_eval(&x, &req.op)?);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod catalog;
pub mod direct;
pub mod request;
pub mod server;
pub mod stats;

pub use cache::{ConvCache, Product, ProductKey};
pub use catalog::{Catalog, ResidentTensor};
pub use direct::direct_eval;
pub use request::{ExprSpec, ExprStep, MttkrpRoute, OpSpec, Request, Response, TensorId};
pub use server::{Server, ServerConfig};
pub use stats::{LatencyStats, LatencySummary};

use pasta_kernels::{FormatKind, Kernel};

/// One route the service exposes: an op label, the format its dispatch
/// executes through, and the pipeline kernel it maps to (`None` for the
/// CPD/Tucker jobs, which orchestrate several kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRoute {
    /// Op label as it appears in cell ids (`"tew"`, …, `"tucker"`).
    pub op: &'static str,
    /// The tensor format the dispatch executes through.
    pub format: FormatKind,
    /// The pipeline kernel, when the route is a single kernel.
    pub kernel: Option<Kernel>,
}

/// Every route the service answers — the source the `serve-*` conformance
/// cells are generated from. Kernel routes must stay a subset of
/// [`pasta_kernels::registry`] (the conformance completeness tests check
/// this), mirroring how the format matrix is pinned to the registry.
pub fn serve_registry() -> &'static [ServeRoute] {
    &[
        ServeRoute { op: "tew", format: FormatKind::Coo, kernel: Some(Kernel::Tew) },
        ServeRoute { op: "ts", format: FormatKind::Coo, kernel: Some(Kernel::Ts) },
        ServeRoute { op: "ttv", format: FormatKind::Csf, kernel: Some(Kernel::Ttv) },
        ServeRoute { op: "ttm", format: FormatKind::Coo, kernel: Some(Kernel::Ttm) },
        ServeRoute { op: "mttkrp", format: FormatKind::Coo, kernel: Some(Kernel::Mttkrp) },
        ServeRoute { op: "mttkrp", format: FormatKind::Hicoo, kernel: Some(Kernel::Mttkrp) },
        ServeRoute { op: "cpd", format: FormatKind::Coo, kernel: None },
        ServeRoute { op: "tucker", format: FormatKind::Coo, kernel: None },
        ServeRoute { op: "expr", format: FormatKind::Coo, kernel: None },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_routes_are_unique_and_kernel_backed() {
        let routes = serve_registry();
        assert_eq!(routes.len(), 9);
        for (i, a) in routes.iter().enumerate() {
            for b in &routes[i + 1..] {
                assert!(
                    (a.op, a.format) != (b.op, b.format),
                    "duplicate serve route {}/{}",
                    a.op,
                    a.format
                );
            }
        }
        let combos = pasta_kernels::registry();
        for r in routes.iter().filter(|r| r.kernel.is_some()) {
            let k = r.kernel.unwrap();
            assert!(
                combos.iter().any(|c| c.kernel == k
                    && c.format == r.format
                    && c.backend == pasta_kernels::BackendKind::Cpu),
                "serve route {}/{} has no registered combo",
                r.op,
                r.format
            );
        }
    }
}
