//! The direct reference path: every [`OpSpec`] evaluated as a plain
//! kernel call, with no catalog, batching, sharding, or caching.
//!
//! This is the other half of the differential contract. The test tier
//! (`tests/serve_props.rs`, the `serve-*` conformance cells) compares
//! every served [`Response`](crate::Response) against [`direct_eval`]
//! on the same tensor and spec; [`OpSpec::budget`] says how close they
//! must be (0 ULP for everything except the TTV/TTM reduction routes).
//!
//! The reference deliberately re-derives all of its own operands and
//! conversions — it shares the *derivation rules* with the server (the
//! functions in [`crate::request`]) but none of its state, so a cache
//! bug on the service side cannot silently infect the reference.

use crate::request::{
    canonical_vals, contraction_matrix, contraction_vector, cpd_options, expr_step_matrix,
    expr_step_vector, factor_set, pattern_operand, sorted_by_mode, tucker_options, ExprStep,
    MttkrpRoute, OpSpec,
};
use pasta_algos::{cp_als, tucker_hooi};
use pasta_core::{CooTensor, HiCooTensor, Result};
use pasta_kernels::{
    mttkrp_coo, mttkrp_hicoo, tew_coo_same_pattern, ts_coo, ttm_coo, ttv_coo, Ctx,
};

/// Evaluates `op` against `x` as a direct sequential kernel call and
/// returns the canonical value stream — the reference a served response
/// is compared against.
///
/// # Errors
///
/// Propagates kernel and decomposition errors. A spec that fails here
/// must also fail through the service (and vice versa); the test tier
/// checks outcome parity as well as value parity.
pub fn direct_eval(x: &CooTensor<f32>, op: &OpSpec) -> Result<Vec<f32>> {
    let ctx = Ctx::sequential();
    match *op {
        OpSpec::Tew { op, seed } => {
            let y = pattern_operand(x, seed);
            Ok(canonical_vals(&tew_coo_same_pattern(op, x, &y, &ctx)?))
        }
        OpSpec::Ts { op, scalar } => Ok(canonical_vals(&ts_coo(op, x, scalar, &ctx)?)),
        OpSpec::Ttv { mode, seed } => {
            let v = contraction_vector(x, mode, seed);
            Ok(canonical_vals(&ttv_coo(x, &v, mode, &ctx)?))
        }
        OpSpec::Ttm { mode, rank, seed } => {
            let u = contraction_matrix(x, mode, rank, seed);
            Ok(canonical_vals(&ttm_coo(x, &u, mode, &ctx)?.to_coo()))
        }
        OpSpec::Mttkrp { mode, rank, seed, route } => {
            let factors = factor_set(x, rank, seed);
            let out = match route {
                // The reference for the sharded owner-computes route is
                // the sequential kernel over the *sorted* copy — the same
                // contract the owner conformance cells pin at 0 ULP.
                MttkrpRoute::Coo => mttkrp_coo(&sorted_by_mode(x, mode), &factors, mode, &ctx)?,
                MttkrpRoute::Hicoo(block) => {
                    let h = HiCooTensor::from_coo(x, block)?;
                    mttkrp_hicoo(&h, &factors, mode, &ctx)?
                }
            };
            Ok(out.as_slice().to_vec())
        }
        OpSpec::Cpd { rank, sweeps, seed } => {
            let model = cp_als(x, &cpd_options(rank, sweeps, seed))?;
            let mut vals: Vec<f32> = Vec::new();
            for f in &model.factors {
                vals.extend_from_slice(f.as_slice());
            }
            vals.extend_from_slice(&model.lambda);
            Ok(vals)
        }
        OpSpec::Tucker { rank, sweeps, seed } => {
            let model = tucker_hooi(x, &tucker_options(x, rank, sweeps, seed))?;
            let mut vals = model.core.clone();
            for f in &model.factors {
                vals.extend_from_slice(f.as_slice());
            }
            Ok(vals)
        }
        OpSpec::Expr { spec } => {
            // The chain evaluated kernel-at-a-time, one materialized
            // intermediate per step — the ablation the service's lowered
            // (fused) plan is differentially tested against.
            let mut cur = x.clone();
            for (i, step) in spec.steps.iter().flatten().enumerate() {
                cur = match *step {
                    ExprStep::Tew { op } => {
                        tew_coo_same_pattern(op, &cur, &pattern_operand(&cur, spec.seed), &ctx)?
                    }
                    ExprStep::Ts { op, scalar } => ts_coo(op, &cur, scalar, &ctx)?,
                    ExprStep::Ttv { mode } => {
                        let v = expr_step_vector(cur.shape().dim(mode) as usize, spec.seed, i);
                        ttv_coo(&cur, &v, mode, &ctx)?
                    }
                    ExprStep::Ttm { mode, rank } => {
                        let u =
                            expr_step_matrix(cur.shape().dim(mode) as usize, rank, spec.seed, i);
                        ttm_coo(&cur, &u, mode, &ctx)?.to_coo()
                    }
                };
            }
            Ok(canonical_vals(&cur))
        }
    }
}
