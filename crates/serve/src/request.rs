//! Request/response types and the operand-derivation rules shared by the
//! server and the direct reference path.
//!
//! A request names a resident tensor and an [`OpSpec`]; every other
//! operand (the second TEW tensor, contraction vectors/matrices, factor
//! sets) is derived deterministically from the tensor's shape and the
//! request seed. Deriving operands on both sides of the differential
//! contract — instead of shipping them in the request — is what lets the
//! test tier compare a served response against a direct kernel call
//! bit-for-bit: both paths call the same functions in this module.

use pasta_algos::{CpdBackend, CpdOptions, TuckerOptions};
use pasta_core::{
    seeded_matrix, seeded_vector, CooTensor, DenseMatrix, DenseVector, Error, Result,
};
use pasta_kernels::{lower, Ctx, EwOp, ExprGraph, ExprPlan, Kernel, MatOperand, TsOp, VecOperand};
use std::sync::Arc;

/// Catalog key for a resident tensor.
pub type TensorId = u32;

/// Which MTTKRP route a request asks the service for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MttkrpRoute {
    /// Owner-computes over the cached mode-outermost sorted COO copy.
    Coo,
    /// HiCOO MTTKRP over the cached blocking with this block size.
    Hicoo(u32),
}

/// One step of a composite [`OpSpec::Expr`] chain, applied in order to
/// the (chain-relative) running tensor.
///
/// Modes are relative to the tensor's shape *at that point in the chain*:
/// a `Ttv` removes its mode, a `Ttm` replaces the mode's dimension with
/// the rank — exactly the [`pasta_kernels::ExprGraph`] convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExprStep {
    /// Element-wise against a derived same-pattern operand. Only valid as
    /// the first step (the operand pattern is the resident tensor's).
    Tew {
        /// Element-wise operator.
        op: EwOp,
    },
    /// Tensor-scalar `∘ scalar`.
    Ts {
        /// Scalar operator.
        op: TsOp,
        /// The scalar operand.
        scalar: f32,
    },
    /// Contract `mode` with a derived vector.
    Ttv {
        /// Contracted mode (chain-relative).
        mode: usize,
    },
    /// Multiply `mode` by a derived `dim(mode) × rank` matrix.
    Ttm {
        /// Multiplied mode (chain-relative).
        mode: usize,
        /// Output rank (matrix columns, ≥ 1).
        rank: usize,
    },
}

/// A composite expression job: up to four [`ExprStep`]s lowered through
/// the expression-graph planner and executed as one (mostly) fused plan.
///
/// All derived operands flow from `seed` plus the step position, so the
/// spec is self-contained and the direct reference can re-derive them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExprSpec {
    /// The chain's steps, in order; trailing `None` slots are unused
    /// (steps must be contiguous from slot 0).
    pub steps: [Option<ExprStep>; 4],
    /// Seed for derived operands.
    pub seed: u64,
}

impl ExprSpec {
    /// A stable 64-bit signature over every field — the conversion-cache
    /// key under which the lowered plan (and its sorted copy) is stored,
    /// so repeated graph traffic skips re-planning and re-sorting.
    pub fn signature(&self) -> u64 {
        let mut h = self.seed ^ 0xE09A_1D5E_ED00_0001;
        let mut mix = |v: u64| {
            let mut s = h ^ v.wrapping_mul(0xA24B_AED4_963E_E407);
            h = splitmix(&mut s);
        };
        for s in &self.steps {
            match s {
                None => mix(0),
                Some(ExprStep::Tew { op }) => {
                    mix(1);
                    mix(EwOp::ALL.iter().position(|o| o == op).unwrap_or(0) as u64);
                }
                Some(ExprStep::Ts { op, scalar }) => {
                    mix(2);
                    mix(TsOp::ALL.iter().position(|o| o == op).unwrap_or(0) as u64);
                    mix(u64::from(scalar.to_bits()));
                }
                Some(ExprStep::Ttv { mode }) => {
                    mix(3);
                    mix(*mode as u64);
                }
                Some(ExprStep::Ttm { mode, rank }) => {
                    mix(4);
                    mix(*mode as u64);
                    mix(*rank as u64);
                }
            }
        }
        h
    }
}

/// One kernel request or decomposition job against a resident tensor.
///
/// `seed` fields drive the deterministic operand derivation; two requests
/// with the same spec against the same tensor are the same computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpSpec {
    /// Element-wise `z = x ∘ y` against a derived same-pattern operand.
    Tew {
        /// Element-wise operator.
        op: EwOp,
        /// Seed for the derived second operand's values.
        seed: u64,
    },
    /// Tensor-scalar `y = x ∘ s`.
    Ts {
        /// Scalar operator.
        op: TsOp,
        /// The scalar operand.
        scalar: f32,
    },
    /// Tensor-times-vector contracting `mode`.
    Ttv {
        /// Contracted mode.
        mode: usize,
        /// Seed for the derived contraction vector.
        seed: u64,
    },
    /// Tensor-times-matrix contracting `mode` with a `dim(mode) × rank`
    /// matrix.
    Ttm {
        /// Contracted mode.
        mode: usize,
        /// Output rank (matrix columns).
        rank: usize,
        /// Seed for the derived matrix.
        seed: u64,
    },
    /// MTTKRP for `mode` against a derived factor set.
    Mttkrp {
        /// Target mode.
        mode: usize,
        /// Factor rank.
        rank: usize,
        /// Seed for the derived factor matrices.
        seed: u64,
        /// COO (sharded owner-computes) or HiCOO route.
        route: MttkrpRoute,
    },
    /// A CP-ALS decomposition job.
    Cpd {
        /// Decomposition rank.
        rank: usize,
        /// ALS sweeps to run.
        sweeps: usize,
        /// Seed for factor initialization.
        seed: u64,
    },
    /// A Tucker-HOOI decomposition job (ranks clamped per-mode to the
    /// tensor dimensions).
    Tucker {
        /// Requested core rank (clamped to `dim(m)` per mode).
        rank: usize,
        /// HOOI sweeps to run.
        sweeps: usize,
        /// Seed for factor initialization.
        seed: u64,
    },
    /// A composite expression job lowered through the graph planner.
    Expr {
        /// The chain to lower and execute.
        spec: ExprSpec,
    },
}

impl OpSpec {
    /// The lowercase op label used in cell ids and reports.
    pub fn label(&self) -> &'static str {
        match self {
            OpSpec::Tew { .. } => "tew",
            OpSpec::Ts { .. } => "ts",
            OpSpec::Ttv { .. } => "ttv",
            OpSpec::Ttm { .. } => "ttm",
            OpSpec::Mttkrp { .. } => "mttkrp",
            OpSpec::Cpd { .. } => "cpd",
            OpSpec::Tucker { .. } => "tucker",
            OpSpec::Expr { .. } => "expr",
        }
    }

    /// The pipeline kernel this spec drives (`None` for decomposition
    /// jobs, which orchestrate several kernels).
    pub fn kernel(&self) -> Option<Kernel> {
        match self {
            OpSpec::Tew { .. } => Some(Kernel::Tew),
            OpSpec::Ts { .. } => Some(Kernel::Ts),
            OpSpec::Ttv { .. } => Some(Kernel::Ttv),
            OpSpec::Ttm { .. } => Some(Kernel::Ttm),
            OpSpec::Mttkrp { .. } => Some(Kernel::Mttkrp),
            OpSpec::Cpd { .. } | OpSpec::Tucker { .. } | OpSpec::Expr { .. } => None,
        }
    }

    /// The service's ULP budget versus the direct reference.
    ///
    /// Zero wherever the conformance matrix pins the underlying kernel at
    /// zero (element-wise lanes; MTTKRP, whose owner-computes schedule is
    /// pinned bit-identical to sequential on the sorted copy; CPD/Tucker,
    /// which run the identical option set on both sides). TTV and TTM
    /// inherit their conformance reduction budget because the service
    /// executes a different (cached-plan) route than the direct call.
    pub fn budget(&self) -> u64 {
        match self {
            OpSpec::Ttv { .. } | OpSpec::Ttm { .. } => 256,
            // A chain compounds up to four reduction steps, so it gets the
            // fused-chain conformance budget rather than a single kernel's.
            OpSpec::Expr { .. } => 1024,
            _ => 0,
        }
    }

    /// Validates the spec against a concrete tensor at admission time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OperandMismatch`] for an out-of-range mode, a
    /// zero rank/sweep count, or an op that needs order ≥ 2 on an
    /// order-1 tensor.
    pub fn validate(&self, x: &CooTensor<f32>) -> Result<()> {
        let order = x.order();
        let need_mode = |m: usize| {
            if m >= order {
                return Err(Error::OperandMismatch {
                    what: format!("mode {m} out of range for order-{order} tensor"),
                });
            }
            if order < 2 {
                return Err(Error::OperandMismatch {
                    what: format!("{} needs order >= 2, got {order}", self.label()),
                });
            }
            Ok(())
        };
        let need_pos = |n: usize, what: &str| {
            if n == 0 {
                return Err(Error::OperandMismatch { what: format!("{what} must be >= 1") });
            }
            Ok(())
        };
        match *self {
            OpSpec::Tew { .. } | OpSpec::Ts { .. } => Ok(()),
            OpSpec::Ttv { mode, .. } => need_mode(mode),
            OpSpec::Ttm { mode, rank, .. } => {
                need_mode(mode)?;
                need_pos(rank, "ttm rank")
            }
            OpSpec::Mttkrp { mode, rank, route, .. } => {
                need_mode(mode)?;
                need_pos(rank, "mttkrp rank")?;
                if let MttkrpRoute::Hicoo(block) = route {
                    if !block.is_power_of_two() {
                        return Err(Error::OperandMismatch {
                            what: format!("hicoo block {block} must be a power of two"),
                        });
                    }
                }
                Ok(())
            }
            OpSpec::Cpd { rank, sweeps, .. } | OpSpec::Tucker { rank, sweeps, .. } => {
                if order < 2 {
                    return Err(Error::OperandMismatch {
                        what: format!("{} needs order >= 2, got {order}", self.label()),
                    });
                }
                need_pos(rank, "rank")?;
                need_pos(sweeps, "sweeps")
            }
            OpSpec::Expr { spec } => {
                // Replays the chain against the shape, tracking how each
                // step transforms it — the same walk the graph builder and
                // the direct reference take.
                if spec.steps[0].is_none() {
                    return Err(Error::OperandMismatch {
                        what: "expr chain needs at least one step".into(),
                    });
                }
                let mut dims = x.shape().dims().to_vec();
                let mut seen_none = false;
                for (i, s) in spec.steps.iter().enumerate() {
                    let Some(step) = s else {
                        seen_none = true;
                        continue;
                    };
                    if seen_none {
                        return Err(Error::OperandMismatch {
                            what: "expr steps must be contiguous from slot 0".into(),
                        });
                    }
                    match *step {
                        ExprStep::Tew { .. } => {
                            if i != 0 {
                                return Err(Error::OperandMismatch {
                                    what: "tew must be the first expr step".into(),
                                });
                            }
                        }
                        ExprStep::Ts { .. } => {}
                        ExprStep::Ttv { mode } => {
                            if dims.len() < 2 {
                                return Err(Error::OperandMismatch {
                                    what: format!(
                                        "expr ttv step {i} needs order >= 2, got {}",
                                        dims.len()
                                    ),
                                });
                            }
                            if mode >= dims.len() {
                                return Err(Error::OperandMismatch {
                                    what: format!(
                                        "expr ttv step {i}: mode {mode} out of range for order {}",
                                        dims.len()
                                    ),
                                });
                            }
                            dims.remove(mode);
                        }
                        ExprStep::Ttm { mode, rank } => {
                            if mode >= dims.len() {
                                return Err(Error::OperandMismatch {
                                    what: format!(
                                        "expr ttm step {i}: mode {mode} out of range for order {}",
                                        dims.len()
                                    ),
                                });
                            }
                            need_pos(rank, "expr ttm rank")?;
                            dims[mode] = rank as u32;
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// One admitted unit of work: a resident tensor plus an [`OpSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Catalog id of the tensor to operate on.
    pub tensor: TensorId,
    /// What to compute.
    pub op: OpSpec,
}

/// The service's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The computed values in canonical order (see [`canonical_vals`]).
    pub values: Vec<f32>,
    /// How many shards / partitions the dispatch used.
    pub shards: usize,
    /// Whether a conversion product was served from the cache.
    pub cache_hit: bool,
    /// Wall-clock dispatch-to-completion time for this request.
    pub latency_ns: u64,
}

/// SplitMix64 — the same generator the conformance cases use, so derived
/// operands are reproducible everywhere from a single `u64` seed.
pub(crate) fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the second TEW operand: `x`'s pattern with seeded values in
/// `[0.5, 2)` — bounded away from zero so `Div` requests stay finite.
pub fn pattern_operand(x: &CooTensor<f32>, seed: u64) -> CooTensor<f32> {
    let mut y = x.like_pattern(0.0);
    let mut state = seed ^ 0x7E57_5EED;
    for v in y.vals_mut() {
        let u = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        *v = (0.5 + 1.5 * u) as f32;
    }
    y
}

/// Derives the TTV contraction vector for `mode`.
pub fn contraction_vector(x: &CooTensor<f32>, mode: usize, seed: u64) -> DenseVector<f32> {
    seeded_vector(x.shape().dim(mode) as usize, seed ^ 0x77_0001)
}

/// Derives the TTM contraction matrix for `mode`.
pub fn contraction_matrix(
    x: &CooTensor<f32>,
    mode: usize,
    rank: usize,
    seed: u64,
) -> DenseMatrix<f32> {
    seeded_matrix(x.shape().dim(mode) as usize, rank, seed ^ 0x77_0002)
}

/// Derives the full factor set for MTTKRP / CPD comparisons.
pub fn factor_set(x: &CooTensor<f32>, rank: usize, seed: u64) -> Vec<DenseMatrix<f32>> {
    (0..x.order())
        .map(|m| seeded_matrix(x.shape().dim(m) as usize, rank, seed.wrapping_add(m as u64)))
        .collect()
}

/// A mode-outermost sorted copy of `x` — the owner-computes precondition.
///
/// Both the service's cached product and the direct reference derive
/// their sorted copy here, so the two paths feed MTTKRP byte-identical
/// inputs in byte-identical entry order.
pub fn sorted_by_mode(x: &CooTensor<f32>, mode: usize) -> CooTensor<f32> {
    let mut order: Vec<usize> = Vec::with_capacity(x.order());
    order.push(mode);
    order.extend((0..x.order()).filter(|&m| m != mode));
    let mut sorted = x.clone();
    sorted.sort_by_mode_order(&order);
    sorted
}

/// The CSF mode order TTV requests convert through: the contracted mode
/// innermost (leaf), matching [`pasta_kernels::CsfTtvPlan`]'s contract.
pub fn csf_ttv_order(order: usize, mode: usize) -> Vec<usize> {
    let mut mo: Vec<usize> = (0..order).filter(|&m| m != mode).collect();
    mo.push(mode);
    mo
}

/// The CP-ALS option set a `Cpd { rank, sweeps, seed }` spec runs —
/// identical on the service and direct paths, which is what makes the
/// responses bit-comparable.
pub fn cpd_options(rank: usize, sweeps: usize, seed: u64) -> CpdOptions {
    CpdOptions {
        rank,
        max_iters: sweeps,
        tol: 0.0,
        seed,
        ctx: Ctx::sequential(),
        backend: CpdBackend::Coo,
    }
}

/// The Tucker option set for a `Tucker { rank, sweeps, seed }` spec, with
/// per-mode ranks clamped to the tensor dimensions.
pub fn tucker_options(x: &CooTensor<f32>, rank: usize, sweeps: usize, seed: u64) -> TuckerOptions {
    let ranks =
        (0..x.order()).map(|m| rank.min(x.shape().dim(m) as usize).max(1)).collect::<Vec<_>>();
    TuckerOptions { ranks, max_iters: sweeps, seed, ctx: Ctx::sequential() }
}

/// Derives the contraction vector for expr chain step `step` (the length
/// is the contracted mode's dimension *at that point in the chain*).
pub fn expr_step_vector(len: usize, seed: u64, step: usize) -> DenseVector<f32> {
    seeded_vector(len, seed ^ (0x77_0100 + step as u64))
}

/// Derives the multiplication matrix for expr chain step `step`.
pub fn expr_step_matrix(rows: usize, rank: usize, seed: u64, step: usize) -> DenseMatrix<f32> {
    seeded_matrix(rows, rank, seed ^ (0x77_0200 + step as u64))
}

/// Lowers an [`ExprSpec`] against `x` into an executable plan: builds the
/// graph step by step (deriving every operand from the spec seed — the
/// exact derivation [`crate::direct_eval`] replays kernel-at-a-time) and
/// hands it to the [`pasta_kernels::expr`] planner. The returned plan
/// owns an `Arc` of the tensor, so the server can cache it as a
/// conversion product outliving any one batch.
///
/// # Errors
///
/// Propagates graph-builder and lowering errors (all unreachable for
/// specs that passed [`OpSpec::validate`]).
pub fn expr_plan(
    x: &Arc<CooTensor<f32>>,
    spec: &ExprSpec,
    ctx: &Ctx,
) -> Result<ExprPlan<'static, f32>> {
    let mut g = ExprGraph::new();
    let mut dims: Vec<u32> = x.shape().dims().to_vec();
    let mut cur = g.leaf_shared(Arc::clone(x));
    for (i, step) in spec.steps.iter().flatten().enumerate() {
        cur = match *step {
            ExprStep::Tew { op } => g.tew(cur, op, pattern_operand(x, spec.seed))?,
            ExprStep::Ts { op, scalar } => g.ts(cur, op, scalar)?,
            ExprStep::Ttv { mode } => {
                let v = expr_step_vector(dims[mode] as usize, spec.seed, i);
                dims.remove(mode);
                g.ttv(cur, mode, VecOperand::Owned(v))?
            }
            ExprStep::Ttm { mode, rank } => {
                let u = expr_step_matrix(dims[mode] as usize, rank, spec.seed, i);
                dims[mode] = rank as u32;
                g.ttm(cur, mode, MatOperand::Owned(u))?
            }
        };
    }
    lower(&g, cur, ctx)
}

/// Canonicalizes a sparse result for comparison: values in fully
/// lexicographic coordinate order, independent of how the producing route
/// ordered its output entries.
pub fn canonical_vals(t: &CooTensor<f32>) -> Vec<f32> {
    let order: Vec<usize> = (0..t.order()).collect();
    let mut c = t.clone();
    c.sort_by_mode_order(&order);
    c.vals().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    fn tensor() -> CooTensor<f32> {
        let mut t = CooTensor::new(Shape::new(vec![6, 5, 4]));
        for e in 0..40u32 {
            t.push(&[e % 6, (e * 3 + 1) % 5, (e * 7 + 2) % 4], f32::from(e as u16) * 0.25 + 1.0)
                .unwrap();
        }
        t.dedup_sum();
        t
    }

    #[test]
    fn pattern_operand_matches_pattern_and_avoids_zero() {
        let x = tensor();
        let y = pattern_operand(&x, 42);
        assert_eq!(y.nnz(), x.nnz());
        for m in 0..x.order() {
            assert_eq!(y.mode_inds(m), x.mode_inds(m));
        }
        assert!(y.vals().iter().all(|v| *v >= 0.5 && *v < 2.0));
        // Deterministic in the seed.
        assert_eq!(pattern_operand(&x, 42).vals(), y.vals());
        assert_ne!(pattern_operand(&x, 43).vals(), y.vals());
    }

    #[test]
    fn sorted_by_mode_puts_mode_outermost() {
        let x = tensor();
        for mode in 0..3 {
            let s = sorted_by_mode(&x, mode);
            assert_eq!(s.nnz(), x.nnz());
            let idx = s.mode_inds(mode);
            assert!(idx.windows(2).all(|w| w[0] <= w[1]), "mode {mode} not outermost");
        }
    }

    #[test]
    fn canonical_vals_is_order_independent() {
        let x = tensor();
        let mut shuffled = x.clone();
        shuffled.sort_by_mode_order(&[2, 0, 1]);
        assert_eq!(canonical_vals(&x), canonical_vals(&shuffled));
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let x = tensor();
        assert!(OpSpec::Ttv { mode: 3, seed: 1 }.validate(&x).is_err());
        assert!(OpSpec::Ttm { mode: 0, rank: 0, seed: 1 }.validate(&x).is_err());
        assert!(OpSpec::Mttkrp { mode: 1, rank: 4, seed: 1, route: MttkrpRoute::Hicoo(3) }
            .validate(&x)
            .is_err());
        assert!(OpSpec::Cpd { rank: 2, sweeps: 0, seed: 1 }.validate(&x).is_err());
        assert!(OpSpec::Ttv { mode: 2, seed: 1 }.validate(&x).is_ok());
    }

    #[test]
    fn budgets_follow_the_conformance_scheme() {
        assert_eq!(OpSpec::Tew { op: EwOp::Add, seed: 0 }.budget(), 0);
        assert_eq!(OpSpec::Ttv { mode: 0, seed: 0 }.budget(), 256);
        assert_eq!(
            OpSpec::Mttkrp { mode: 0, rank: 1, seed: 0, route: MttkrpRoute::Coo }.budget(),
            0
        );
    }
}
