//! Latency accounting for closed-loop load runs: a nearest-rank
//! percentile estimator plus throughput.
//!
//! Nearest-rank (rank `⌈p/100 · N⌉` over the sorted samples) is exact —
//! it always returns an observed sample, never an interpolation — which
//! keeps the servebench JSON rows reproducible across runs of the same
//! seeded stream on the same host, and makes the estimator trivially
//! testable against known distributions.

/// Accumulates per-request latencies (nanoseconds) for one load pass.
#[derive(Debug, Default, Clone)]
pub struct LatencyStats {
    samples: Vec<u64>,
}

/// The digest of one pass: percentiles plus closed-loop throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Requests observed.
    pub count: usize,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Requests per second over the pass's wall-clock time.
    pub throughput_rps: f64,
}

impl LatencyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request latency.
    pub fn record(&mut self, ns: u64) {
        self.samples.push(ns);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The nearest-rank `p`-th percentile (`0 < p <= 100`), or `None` on
    /// an empty stream. `p = 100` is the maximum; small `p` degenerates
    /// to the minimum (the rank is clamped to the first sample).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, n) - 1])
    }

    /// Median latency.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Tail latency.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// Summarizes the pass given its wall-clock duration. `None` when no
    /// samples were recorded or the duration is zero.
    pub fn summary(&self, elapsed_ns: u64) -> Option<LatencySummary> {
        if self.samples.is_empty() || elapsed_ns == 0 {
            return None;
        }
        Some(LatencySummary {
            count: self.samples.len(),
            p50_ns: self.p50()?,
            p99_ns: self.p99()?,
            throughput_rps: self.samples.len() as f64 / (elapsed_ns as f64 / 1e9),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(samples: &[u64]) -> LatencyStats {
        let mut s = LatencyStats::new();
        for &x in samples {
            s.record(x);
        }
        s
    }

    #[test]
    fn exact_percentiles_on_one_to_hundred() {
        // 1..=100: nearest-rank p-th percentile of this sample is exactly p.
        let s = stats(&(1..=100).collect::<Vec<_>>());
        assert_eq!(s.percentile(50.0), Some(50));
        assert_eq!(s.percentile(99.0), Some(99));
        assert_eq!(s.percentile(100.0), Some(100));
        assert_eq!(s.percentile(1.0), Some(1));
    }

    #[test]
    fn order_of_recording_does_not_matter() {
        let a = stats(&[5, 1, 4, 2, 3]);
        let b = stats(&[1, 2, 3, 4, 5]);
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.p50(), Some(3));
        // Five samples: rank ceil(0.99·5)=5 → the max.
        assert_eq!(a.p99(), Some(5));
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let s = stats(&[10, 500, 20, 30, 1000, 40, 50, 60, 70, 80]);
        let ps = [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0];
        let vals: Vec<u64> = ps.iter().map(|&p| s.percentile(p).unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{vals:?} not monotone");
    }

    #[test]
    fn single_sample_answers_every_percentile() {
        let s = stats(&[777]);
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), Some(777));
        }
        let sum = s.summary(1_000_000_000).unwrap();
        assert_eq!(sum.count, 1);
        assert_eq!(sum.p50_ns, 777);
        assert!((sum.throughput_rps - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_has_no_percentiles() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.p50(), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.summary(1_000), None);
        assert_eq!(stats(&[1]).summary(0), None, "zero elapsed time");
    }

    #[test]
    fn throughput_counts_requests_per_second() {
        let s = stats(&[100, 200, 300, 400]);
        let sum = s.summary(2_000_000_000).unwrap();
        assert_eq!(sum.count, 4);
        assert!((sum.throughput_rps - 2.0).abs() < 1e-9);
    }
}
