//! The server: admission → batch → dispatch → reply.
//!
//! Requests are validated and queued at admission ([`Server::enqueue`],
//! `serve.requests`), then [`Server::drain`] groups the queue into
//! batches of compatible requests — same tensor, same conversion product
//! — so each batch resolves its product against the
//! [`ConvCache`] exactly once (`serve.batches`).
//! Dispatch routes every request through the `KernelPlan` registry and
//! onto the `pasta-par` pool via the kernel entry points; MTTKRP-COO
//! requests over large tensors are sharded owner-computes style across
//! mode-outermost ranges of the cached sorted copy (`serve.shard_tasks`),
//! which is what keeps the parallel response bit-identical to the
//! sequential reference. Replies come back in admission order.
//!
//! Every lifecycle stage is spanned under the `serve` category
//! (`serve.admit` / `serve.batch` / `serve.dispatch` / `serve.reply`),
//! so a traced run shows the full request timeline in the chrome trace.

use crate::cache::{ConvCache, Product, ProductKey};
use crate::catalog::Catalog;
use crate::request::{
    canonical_vals, contraction_matrix, contraction_vector, cpd_options, csf_ttv_order, expr_plan,
    factor_set, pattern_operand, sorted_by_mode, tucker_options, MttkrpRoute, OpSpec, Request,
    Response, TensorId,
};
use pasta_algos::{cp_als, tucker_hooi};
use pasta_core::{CooTensor, CsfTensor, Error, HiCooTensor, Result};
use pasta_kernels::{
    mttkrp_coo, mttkrp_hicoo, owner_ranges, tew_coo_same_pattern, ts_coo, BackendKind, Bindings,
    CsfTtvPlan, Ctx, ExprOut, FormatKind, Kernel, KernelPlan, StrategyChoice, TtmCooPlan,
};
use pasta_obs::{counters, instant, span, span_detail, CounterId};
use pasta_par::Schedule;
use std::sync::Arc;
use std::time::Instant;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Pool width for element-wise / TTV / TTM dispatches (≥ 1).
    pub threads: usize,
    /// Shard count for owner-computes MTTKRP dispatches (≥ 1).
    pub shards: usize,
    /// Tensors with fewer non-zeros than this are never sharded.
    pub shard_nnz_threshold: usize,
    /// Conversion-cache byte budget; `0` disables caching entirely (the
    /// `cache.*` counters then stay zero-delta, not just cold).
    pub cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { threads: 2, shards: 2, shard_nnz_threshold: 1 << 10, cache_bytes: 64 << 20 }
    }
}

/// A queued request plus its admission slot (reply position).
#[derive(Debug)]
struct Pending {
    slot: usize,
    req: Request,
}

/// Requests in one batch share the tensor and the conversion product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchKey {
    tensor: TensorId,
    class: OpClass,
}

/// The product-equivalence class of an op (everything that decides which
/// conversion product, if any, the request needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Tew,
    Ts,
    Ttv(usize),
    Ttm(usize),
    MttkrpCoo(usize),
    MttkrpHicoo(u32),
    Cpd,
    Tucker,
    Expr(u64),
}

fn class(op: &OpSpec) -> OpClass {
    match *op {
        OpSpec::Tew { .. } => OpClass::Tew,
        OpSpec::Ts { .. } => OpClass::Ts,
        OpSpec::Ttv { mode, .. } => OpClass::Ttv(mode),
        OpSpec::Ttm { mode, .. } => OpClass::Ttm(mode),
        OpSpec::Mttkrp { mode, route: MttkrpRoute::Coo, .. } => OpClass::MttkrpCoo(mode),
        OpSpec::Mttkrp { route: MttkrpRoute::Hicoo(block), .. } => OpClass::MttkrpHicoo(block),
        OpSpec::Cpd { .. } => OpClass::Cpd,
        OpSpec::Tucker { .. } => OpClass::Tucker,
        OpSpec::Expr { spec } => OpClass::Expr(spec.signature()),
    }
}

fn product_key(class: OpClass) -> Option<ProductKey> {
    match class {
        OpClass::Ttv(mode) => Some(ProductKey::CsfTtv { mode }),
        OpClass::Ttm(mode) => Some(ProductKey::TtmPlan { mode }),
        OpClass::MttkrpCoo(mode) => Some(ProductKey::SortedCoo { mode }),
        OpClass::MttkrpHicoo(block) => Some(ProductKey::Hicoo { block }),
        OpClass::Expr(sig) => Some(ProductKey::Expr { sig }),
        OpClass::Tew | OpClass::Ts | OpClass::Cpd | OpClass::Tucker => None,
    }
}

fn build_product(
    cfg: &ServerConfig,
    x: &CooTensor<f32>,
    key: ProductKey,
    op: &OpSpec,
) -> Result<Product> {
    match key {
        ProductKey::SortedCoo { mode } => Ok(Product::SortedCoo(sorted_by_mode(x, mode))),
        ProductKey::Hicoo { block } => Ok(Product::Hicoo(HiCooTensor::from_coo(x, block)?)),
        ProductKey::CsfTtv { mode } => {
            let csf = CsfTensor::from_coo(x, &csf_ttv_order(x.order(), mode))?;
            Ok(Product::CsfTtv(CsfTtvPlan::new(&csf)?))
        }
        ProductKey::TtmPlan { mode } => Ok(Product::TtmPlan(TtmCooPlan::new(x, mode)?)),
        ProductKey::Expr { .. } => {
            let OpSpec::Expr { spec } = op else {
                return Err(Error::OperandMismatch {
                    what: "expr product key for a non-expr op".into(),
                });
            };
            // The plan bakes in the dispatch context; lowering validates
            // every kernel edge against the registry (same PlansBuilt
            // semantics as the other routes' validate_route calls).
            let ctx = Ctx::new(cfg.threads.max(1), Schedule::Static);
            Ok(Product::Expr(Box::new(expr_plan(&Arc::new(x.clone()), spec, &ctx)?)))
        }
    }
}

/// Routes a kernel-class dispatch through the pipeline registry (bumps
/// `pipeline.plans_built` and rejects unregistered combos, exactly like a
/// direct `KernelPlan` user).
fn validate_route(kernel: Kernel, format: FormatKind, ctx: &Ctx) -> Result<()> {
    KernelPlan::new(kernel, format, BackendKind::Cpu, ctx).map(|_| ())
}

/// The sharded tensor-algebra server.
#[derive(Debug)]
pub struct Server {
    catalog: Catalog,
    cfg: ServerConfig,
    cache: Option<ConvCache>,
    queue: Vec<Pending>,
}

impl Server {
    /// A server over `catalog` with the given knobs. `cache_bytes = 0`
    /// runs cacheless (every batch rebuilds its conversion product).
    pub fn new(catalog: Catalog, cfg: ServerConfig) -> Self {
        let cache = (cfg.cache_bytes > 0).then(|| ConvCache::new(cfg.cache_bytes));
        Self { catalog, cfg, cache, queue: Vec::new() }
    }

    /// The resident-tensor catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The conversion cache, if enabled.
    pub fn cache(&self) -> Option<&ConvCache> {
        self.cache.as_ref()
    }

    /// Admits one request into the queue.
    ///
    /// # Errors
    ///
    /// Rejects unknown tensor ids and specs that fail
    /// [`OpSpec::validate`] against the resident tensor. Rejected
    /// requests are not queued and do not count toward `serve.requests`.
    pub fn enqueue(&mut self, req: Request) -> Result<()> {
        let _g = span("serve", "serve.admit");
        let resident = self.catalog.get(req.tensor).ok_or_else(|| Error::OperandMismatch {
            what: format!("no resident tensor with id {}", req.tensor),
        })?;
        req.op.validate(&resident.tensor)?;
        counters().add(CounterId::ServeRequests, 1);
        let slot = self.queue.len();
        self.queue.push(Pending { slot, req });
        Ok(())
    }

    /// Drains the queue: batches compatible requests, resolves each
    /// batch's conversion product once, dispatches, and returns the
    /// responses in admission order.
    ///
    /// # Errors
    ///
    /// Propagates the first dispatch failure; the queue is consumed
    /// either way (admission-time validation makes dispatch failures
    /// unreachable for well-formed catalogs).
    pub fn drain(&mut self) -> Result<Vec<Response>> {
        let pending = std::mem::take(&mut self.queue);
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        let n = pending.len();

        // Group into batches, preserving first-arrival order.
        let mut batches: Vec<(BatchKey, Vec<Pending>)> = Vec::new();
        for p in pending {
            let key = BatchKey { tensor: p.req.tensor, class: class(&p.req.op) };
            match batches.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(p),
                None => batches.push((key, vec![p])),
            }
        }

        let mut out: Vec<Option<Response>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        for (key, members) in batches {
            let _b = span_detail(
                "serve",
                "serve.batch",
                "",
                members.len() as u64,
                u64::from(key.tensor),
                0,
            );
            counters().add(CounterId::ServeBatches, 1);
            let x = &self.catalog.get(key.tensor).expect("validated at admission").tensor;

            // One product resolution per batch.
            let bytes_hint = x.nnz() * (x.order() + 1) * std::mem::size_of::<f32>();
            // Batch members share the class, so the first member's op is
            // representative for product building (for Expr, the class is
            // the spec signature — same class, same lowered plan).
            let op0 = members[0].req.op;
            let (product, cache_hit) = match (product_key(key.class), self.cache.as_mut()) {
                (None, _) => (None, false),
                (Some(k), Some(cache)) => {
                    let (p, hit) = cache.get_or_build(key.tensor, k, bytes_hint, || {
                        build_product(&self.cfg, x, k, &op0)
                    })?;
                    (Some(p), hit)
                }
                // Cache disabled: build ad hoc, touch no cache.* counter.
                (Some(k), None) => (Some(Arc::new(build_product(&self.cfg, x, k, &op0)?)), false),
            };

            for p in members {
                let _d = span("serve", "serve.dispatch");
                let t0 = Instant::now();
                let (values, shards) = exec(&self.cfg, x, &p.req.op, product.as_deref())?;
                let latency_ns = t0.elapsed().as_nanos() as u64;
                out[p.slot] = Some(Response { values, shards, cache_hit, latency_ns });
            }
        }
        instant("serve", "serve.reply", "", n as u64, 0, 0);
        Ok(out.into_iter().map(|r| r.expect("every slot dispatched")).collect())
    }

    /// [`enqueue`](Self::enqueue)s every request, then
    /// [`drain`](Self::drain)s — one closed-loop submission window.
    ///
    /// # Errors
    ///
    /// Admission and dispatch errors, as for the two steps.
    pub fn submit(&mut self, reqs: impl IntoIterator<Item = Request>) -> Result<Vec<Response>> {
        for r in reqs {
            self.enqueue(r)?;
        }
        self.drain()
    }
}

/// How many owner-computes shards a tensor of `nnz` non-zeros gets.
fn shards_for(cfg: &ServerConfig, nnz: usize) -> usize {
    if nnz >= cfg.shard_nnz_threshold {
        cfg.shards.max(1)
    } else {
        1
    }
}

/// Executes one request against its resolved conversion product.
/// Returns the canonical value stream and the partition count used.
fn exec(
    cfg: &ServerConfig,
    x: &CooTensor<f32>,
    op: &OpSpec,
    product: Option<&Product>,
) -> Result<(Vec<f32>, usize)> {
    let threads = cfg.threads.max(1);
    let ctx = Ctx::new(threads, Schedule::Static);
    match *op {
        OpSpec::Tew { op, seed } => {
            validate_route(Kernel::Tew, FormatKind::Coo, &ctx)?;
            let y = pattern_operand(x, seed);
            let z = tew_coo_same_pattern(op, x, &y, &ctx)?;
            Ok((canonical_vals(&z), threads))
        }
        OpSpec::Ts { op, scalar } => {
            validate_route(Kernel::Ts, FormatKind::Coo, &ctx)?;
            let z = ts_coo(op, x, scalar, &ctx)?;
            Ok((canonical_vals(&z), threads))
        }
        OpSpec::Ttv { mode, seed } => {
            validate_route(Kernel::Ttv, FormatKind::Csf, &ctx)?;
            let Some(Product::CsfTtv(plan)) = product else {
                return Err(Error::OperandMismatch { what: "ttv product missing".into() });
            };
            let v = contraction_vector(x, mode, seed);
            Ok((canonical_vals(&plan.execute(&v, &ctx)?), threads))
        }
        OpSpec::Ttm { mode, rank, seed } => {
            validate_route(Kernel::Ttm, FormatKind::Coo, &ctx)?;
            let Some(Product::TtmPlan(plan)) = product else {
                return Err(Error::OperandMismatch { what: "ttm product missing".into() });
            };
            let u = contraction_matrix(x, mode, rank, seed);
            Ok((canonical_vals(&plan.execute(&u, &ctx)?.to_coo()), threads))
        }
        OpSpec::Mttkrp { mode, rank, seed, route: MttkrpRoute::Coo } => {
            let shards = shards_for(cfg, x.nnz());
            let shard_ctx = Ctx::new(shards, Schedule::Static).with_mttkrp(StrategyChoice::Owner);
            validate_route(Kernel::Mttkrp, FormatKind::Coo, &shard_ctx)?;
            let Some(Product::SortedCoo(sorted)) = product else {
                return Err(Error::OperandMismatch { what: "sorted product missing".into() });
            };
            // Owner-computes over mode-outermost ranges of the sorted
            // copy: bit-identical to the sequential reference by the
            // conformance contract, at any shard count.
            let ranges = owner_ranges(sorted.mode_inds(mode), shards);
            let tasks = ranges.iter().filter(|r| !r.is_empty()).count().max(1);
            counters().add(CounterId::ServeShardTasks, tasks as u64);
            let factors = factor_set(x, rank, seed);
            let out = mttkrp_coo(sorted, &factors, mode, &shard_ctx)?;
            Ok((out.as_slice().to_vec(), tasks))
        }
        OpSpec::Mttkrp { mode, rank, seed, route: MttkrpRoute::Hicoo(_) } => {
            // The HiCOO route is cache-accelerated but not sharded: its
            // privatized parallel schedule is not bit-stable across
            // worker counts, and the differential contract wins.
            let seq = Ctx::sequential();
            validate_route(Kernel::Mttkrp, FormatKind::Hicoo, &seq)?;
            let Some(Product::Hicoo(h)) = product else {
                return Err(Error::OperandMismatch { what: "hicoo product missing".into() });
            };
            let factors = factor_set(x, rank, seed);
            let out = mttkrp_hicoo(h, &factors, mode, &seq)?;
            Ok((out.as_slice().to_vec(), 1))
        }
        OpSpec::Cpd { rank, sweeps, seed } => {
            let model = cp_als(x, &cpd_options(rank, sweeps, seed))?;
            let mut vals: Vec<f32> = Vec::new();
            for f in &model.factors {
                vals.extend_from_slice(f.as_slice());
            }
            vals.extend_from_slice(&model.lambda);
            Ok((vals, 1))
        }
        OpSpec::Tucker { rank, sweeps, seed } => {
            let model = tucker_hooi(x, &tucker_options(x, rank, sweeps, seed))?;
            let mut vals = model.core.clone();
            for f in &model.factors {
                vals.extend_from_slice(f.as_slice());
            }
            Ok((vals, 1))
        }
        OpSpec::Expr { .. } => {
            // The whole chain is the cached conversion product: a lowered
            // plan whose operands were baked in at build time, so execute
            // is a single (fused where the planner chose so) pass.
            let Some(Product::Expr(plan)) = product else {
                return Err(Error::OperandMismatch { what: "expr product missing".into() });
            };
            let vals = match plan.execute(&Bindings::none())? {
                ExprOut::Coo(t) => canonical_vals(&t),
                ExprOut::Semi(s) => canonical_vals(&s.to_coo()),
                ExprOut::Dense { vals, .. } => vals,
                ExprOut::Matrix(m) => m.as_slice().to_vec(),
            };
            Ok((vals, threads))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;
    use pasta_kernels::EwOp;

    fn catalog() -> Catalog {
        let mut t = CooTensor::new(Shape::new(vec![8, 7, 6]));
        for e in 0..150u32 {
            t.push(&[e % 8, (e * 3 + 1) % 7, (e * 5 + 2) % 6], (f64::from(e % 13) * 0.5) as f32)
                .unwrap();
        }
        t.dedup_sum();
        let mut cat = Catalog::new();
        cat.insert(0, "t0", t);
        cat
    }

    #[test]
    fn admission_rejects_unknown_tensor_and_bad_mode() {
        let mut s = Server::new(catalog(), ServerConfig::default());
        let bad_id =
            Request { tensor: 9, op: OpSpec::Ts { op: pasta_kernels::TsOp::Mul, scalar: 2.0 } };
        assert!(s.enqueue(bad_id).is_err());
        let bad_mode = Request { tensor: 0, op: OpSpec::Ttv { mode: 5, seed: 1 } };
        assert!(s.enqueue(bad_mode).is_err());
        assert!(s.drain().unwrap().is_empty(), "nothing was admitted");
    }

    #[test]
    fn batching_resolves_one_product_for_compatible_requests() {
        let mut s = Server::new(catalog(), ServerConfig::default());
        let reqs =
            (0..4).map(|i| Request { tensor: 0, op: OpSpec::Ttv { mode: 1, seed: 100 + i } });
        let responses = s.submit(reqs).unwrap();
        assert_eq!(responses.len(), 4);
        // One CSF build for the whole batch...
        assert_eq!(s.cache().unwrap().len(), 1);
        // ...and a second window hits it.
        let again =
            s.submit([Request { tensor: 0, op: OpSpec::Ttv { mode: 1, seed: 100 } }]).unwrap();
        assert!(again[0].cache_hit);
        assert_eq!(again[0].values, responses[0].values, "same request, same response");
    }

    #[test]
    fn responses_come_back_in_admission_order() {
        let mut s = Server::new(catalog(), ServerConfig::default());
        // Interleave two batch classes; replies must not be regrouped.
        let reqs = vec![
            Request { tensor: 0, op: OpSpec::Ts { op: pasta_kernels::TsOp::Mul, scalar: 2.0 } },
            Request { tensor: 0, op: OpSpec::Tew { op: EwOp::Add, seed: 7 } },
            Request { tensor: 0, op: OpSpec::Ts { op: pasta_kernels::TsOp::Mul, scalar: 3.0 } },
        ];
        let rs = s.submit(reqs).unwrap();
        assert_eq!(rs.len(), 3);
        // ts(*2) then ts(*3): element-wise scaling keeps the value stream
        // proportional; the middle slot is the TEW response.
        let direct2 = crate::direct_eval(
            &s.catalog().get(0).unwrap().tensor,
            &OpSpec::Ts { op: pasta_kernels::TsOp::Mul, scalar: 2.0 },
        )
        .unwrap();
        assert_eq!(rs[0].values, direct2);
        let direct3 = crate::direct_eval(
            &s.catalog().get(0).unwrap().tensor,
            &OpSpec::Ts { op: pasta_kernels::TsOp::Mul, scalar: 3.0 },
        )
        .unwrap();
        assert_eq!(rs[2].values, direct3);
    }

    #[test]
    fn cacheless_server_still_answers() {
        let cfg = ServerConfig { cache_bytes: 0, ..Default::default() };
        let mut s = Server::new(catalog(), cfg);
        assert!(s.cache().is_none());
        let r = s
            .submit([Request { tensor: 0, op: OpSpec::Ttm { mode: 2, rank: 3, seed: 5 } }])
            .unwrap();
        assert!(!r[0].cache_hit);
        assert!(!r[0].values.is_empty());
    }

    #[test]
    fn expr_requests_cache_the_lowered_plan_and_match_direct() {
        use crate::request::{ExprSpec, ExprStep};
        let mut s = Server::new(catalog(), ServerConfig::default());
        let spec = ExprSpec {
            steps: [
                Some(ExprStep::Tew { op: EwOp::Mul }),
                Some(ExprStep::Ttv { mode: 2 }),
                Some(ExprStep::Ttm { mode: 1, rank: 3 }),
                Some(ExprStep::Ts { op: pasta_kernels::TsOp::Mul, scalar: 0.5 }),
            ],
            seed: 77,
        };
        let op = OpSpec::Expr { spec };
        let rs = s.submit([Request { tensor: 0, op }, Request { tensor: 0, op }]).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].values, rs[1].values);
        // One lowered plan cached for the batch; a second window hits it.
        assert_eq!(s.cache().unwrap().len(), 1);
        let again = s.submit([Request { tensor: 0, op }]).unwrap();
        assert!(again[0].cache_hit, "repeated graph traffic must skip re-planning");
        // Differential contract against the kernel-at-a-time reference.
        let direct = crate::direct_eval(&s.catalog().get(0).unwrap().tensor, &op).unwrap();
        assert_eq!(again[0].values.len(), direct.len());
        let budget = op.budget() as f32;
        for (a, b) in again[0].values.iter().zip(&direct) {
            assert!((a - b).abs() <= budget * f32::EPSILON * b.abs().max(1.0), "{a} vs {b}");
        }
        // Malformed chains are rejected at admission.
        let bad = OpSpec::Expr {
            spec: ExprSpec { steps: [Some(ExprStep::Ttv { mode: 9 }), None, None, None], seed: 1 },
        };
        assert!(s.enqueue(Request { tensor: 0, op: bad }).is_err());
    }

    #[test]
    fn sharded_mttkrp_matches_direct() {
        let cfg = ServerConfig { shards: 4, shard_nnz_threshold: 1, ..Default::default() };
        let mut s = Server::new(catalog(), cfg);
        let op = OpSpec::Mttkrp { mode: 0, rank: 4, seed: 11, route: MttkrpRoute::Coo };
        let r = s.submit([Request { tensor: 0, op }]).unwrap();
        assert!(r[0].shards > 1, "large-enough tensor must shard");
        let direct = crate::direct_eval(&s.catalog().get(0).unwrap().tensor, &op).unwrap();
        assert_eq!(r[0].values, direct, "owner-computes shards must be bit-identical");
    }
}
