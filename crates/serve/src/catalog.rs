//! The catalog of resident tensors the server answers requests against.
//!
//! Tensors are loaded once (from `pasta-gen` profiles or test fixtures)
//! and stay resident for the server's lifetime; requests reference them
//! by [`TensorId`]. The catalog is deliberately dumb — ownership and
//! lookup only. Conversion products derived from a resident tensor live
//! in the [`ConvCache`](crate::cache::ConvCache), not here, so cache pressure
//! can evict a blocking without evicting the tensor itself.

use crate::request::TensorId;
use pasta_core::CooTensor;
use std::collections::BTreeMap;

/// One resident tensor plus its human-readable name.
#[derive(Debug, Clone)]
pub struct ResidentTensor {
    /// Display name (profile id or fixture label).
    pub name: String,
    /// The tensor itself, in canonical COO.
    pub tensor: CooTensor<f32>,
}

/// The id-keyed table of resident tensors.
///
/// A `BTreeMap` keeps [`ids`](Catalog::ids) in deterministic order, which
/// the load generator relies on to map stream indices to tensors
/// reproducibly.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: BTreeMap<TensorId, ResidentTensor>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes `tensor` resident under `id`, replacing any previous holder.
    pub fn insert(&mut self, id: TensorId, name: impl Into<String>, tensor: CooTensor<f32>) {
        self.entries.insert(id, ResidentTensor { name: name.into(), tensor });
    }

    /// Looks up a resident tensor.
    pub fn get(&self, id: TensorId) -> Option<&ResidentTensor> {
        self.entries.get(&id)
    }

    /// All resident ids, ascending.
    pub fn ids(&self) -> Vec<TensorId> {
        self.entries.keys().copied().collect()
    }

    /// Number of resident tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    #[test]
    fn insert_lookup_replace() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        let t = CooTensor::<f32>::new(Shape::new(vec![2, 2]));
        cat.insert(7, "a", t.clone());
        cat.insert(3, "b", t.clone());
        cat.insert(7, "a2", t);
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.ids(), vec![3, 7]);
        assert_eq!(cat.get(7).unwrap().name, "a2");
        assert!(cat.get(8).is_none());
    }
}
