//! The Roofline performance model (Section V-B, Figure 3).
//!
//! `attainable GFLOPS = min(peak, OI × bandwidth)` for each bandwidth roof.
//! The paper plots three roofs per platform — theoretical DRAM, ERT-measured
//! DRAM, and ERT-measured LLC — and marks the five kernels' operational
//! intensities on the ERT-DRAM line. The per-kernel "Roofline performance"
//! upper bound used in Figures 4–7 is `OI × ERT-DRAM bandwidth` with the OI
//! evaluated from actual tensor features (Table I).

use crate::spec::PlatformSpec;
use pasta_kernels::Kernel;

/// A Roofline model for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Roofline {
    /// Platform name.
    pub platform: &'static str,
    /// Peak single-precision FLOPS.
    pub peak_flops: f64,
    /// Theoretical DRAM bandwidth, bytes/s.
    pub theoretical_dram_bw: f64,
    /// ERT-measured (obtainable) DRAM bandwidth, bytes/s.
    pub ert_dram_bw: f64,
    /// ERT-measured LLC bandwidth, bytes/s.
    pub ert_llc_bw: f64,
}

impl Roofline {
    /// Builds the Roofline from a platform spec.
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        Self {
            platform: spec.name,
            peak_flops: spec.peak_flops(),
            theoretical_dram_bw: spec.mem_bw_gbps * 1e9,
            ert_dram_bw: spec.ert_dram_bw(),
            ert_llc_bw: spec.ert_llc_bw(),
        }
    }

    /// Attainable FLOPS at operational intensity `oi` under the ERT-DRAM
    /// roof — the red "Roofline performance" line of Figures 4–7.
    pub fn attainable(&self, oi: f64) -> f64 {
        (oi * self.ert_dram_bw).min(self.peak_flops)
    }

    /// Attainable FLOPS under the LLC roof (cache-resident working sets).
    pub fn attainable_llc(&self, oi: f64) -> f64 {
        (oi * self.ert_llc_bw).min(self.peak_flops)
    }

    /// Attainable FLOPS under the theoretical-peak DRAM roof.
    pub fn attainable_theoretical(&self, oi: f64) -> f64 {
        (oi * self.theoretical_dram_bw).min(self.peak_flops)
    }

    /// The ridge point: the OI where the ERT-DRAM roof meets peak compute.
    pub fn ridge_oi(&self) -> f64 {
        self.peak_flops / self.ert_dram_bw
    }

    /// Whether a kernel at `oi` is memory bound under the ERT-DRAM roof.
    pub fn is_memory_bound(&self, oi: f64) -> bool {
        oi < self.ridge_oi()
    }

    /// Sampled `(oi, attainable_flops)` series for plotting the ERT-DRAM
    /// roof over `lo..=hi` (log-spaced, `points` samples).
    pub fn series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(lo > 0.0 && hi > lo && points >= 2);
        let step = (hi / lo).powf(1.0 / (points - 1) as f64);
        (0..points)
            .map(|i| {
                let oi = lo * step.powi(i as i32);
                (oi, self.attainable(oi))
            })
            .collect()
    }

    /// The kernel OI markers of Figure 3: every kernel's nominal OI with its
    /// attainable performance on this platform.
    pub fn kernel_markers(&self) -> Vec<(Kernel, f64, f64)> {
        Kernel::ALL
            .iter()
            .map(|&k| {
                let oi = k.nominal_oi();
                (k, oi, self.attainable(oi))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{all_platforms, bluesky, dgx1v};

    #[test]
    fn attainable_is_min_of_roofs() {
        let r = Roofline::for_platform(&bluesky());
        // Far left: bandwidth bound.
        assert!(r.attainable(0.01) < r.peak_flops);
        assert!((r.attainable(0.01) - 0.01 * r.ert_dram_bw).abs() < 1.0);
        // Far right: compute bound.
        assert_eq!(r.attainable(1e6), r.peak_flops);
        // LLC roof sits above the DRAM roof in the bandwidth region.
        assert!(r.attainable_llc(0.1) > r.attainable(0.1));
        assert!(r.attainable_theoretical(0.1) > r.attainable(0.1));
    }

    #[test]
    fn all_kernels_memory_bound_on_all_platforms() {
        // The paper: "all the sparse tensor kernels we consider are main or
        // global memory bound for CPUs and GPUs."
        for spec in all_platforms() {
            let r = Roofline::for_platform(&spec);
            for (k, oi, att) in r.kernel_markers() {
                assert!(r.is_memory_bound(oi), "{k} on {}", spec.name);
                assert!(att < r.peak_flops);
            }
        }
    }

    #[test]
    fn ridge_point_ordering() {
        // GPUs have higher peak AND higher bandwidth; ridge points all land
        // right of every kernel OI (max 1/2 for TTM).
        for spec in all_platforms() {
            let r = Roofline::for_platform(&spec);
            assert!(r.ridge_oi() > 0.5, "{}: ridge {}", spec.name, r.ridge_oi());
        }
    }

    #[test]
    fn series_is_monotone() {
        let r = Roofline::for_platform(&dgx1v());
        let s = r.series(0.01, 100.0, 32);
        assert_eq!(s.len(), 32);
        for w in s.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        // Saturates at peak on the right.
        assert_eq!(s.last().unwrap().1, r.peak_flops);
    }

    #[test]
    fn gpu_attainable_exceeds_cpu_for_same_oi() {
        let cpu = Roofline::for_platform(&bluesky());
        let gpu = Roofline::for_platform(&dgx1v());
        for oi in [0.05, 0.125, 0.25, 0.5] {
            assert!(gpu.attainable(oi) > cpu.attainable(oi));
        }
    }
}
