//! Platform specifications — Table III of the paper.
//!
//! Two Intel CPU platforms (Bluesky/Skylake, Wingtip/Haswell) and two NVIDIA
//! GPU platforms (DGX-1P/P100, DGX-1V/V100), with peak single-precision
//! performance and memory bandwidth computed from the published parameters.

/// CPU vs GPU distinction, with the topology the performance model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// A multicore, possibly multi-socket CPU.
    Cpu {
        /// NUMA sockets.
        sockets: u32,
        /// Total physical cores.
        cores: u32,
    },
    /// A CUDA-style GPU.
    Gpu {
        /// Streaming multiprocessors.
        sms: u32,
        /// Total CUDA cores.
        cores: u32,
    },
}

impl PlatformKind {
    /// Whether this is a CPU platform.
    pub fn is_cpu(&self) -> bool {
        matches!(self, PlatformKind::Cpu { .. })
    }

    /// Number of NUMA sockets (1 for GPUs).
    pub fn sockets(&self) -> u32 {
        match self {
            PlatformKind::Cpu { sockets, .. } => *sockets,
            PlatformKind::Gpu { .. } => 1,
        }
    }
}

/// One platform row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Platform name (`Bluesky`, `Wingtip`, `DGX-1P`, `DGX-1V`).
    pub name: &'static str,
    /// Processor model.
    pub processor: &'static str,
    /// Microarchitecture.
    pub microarch: &'static str,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Topology.
    pub kind: PlatformKind,
    /// Peak single-precision performance in TFLOPS.
    pub peak_sp_tflops: f64,
    /// Last-level cache size in bytes.
    pub llc_bytes: usize,
    /// Main/global memory size in GB.
    pub mem_gb: f64,
    /// Memory technology.
    pub mem_type: &'static str,
    /// Memory clock in GHz.
    pub mem_freq_ghz: f64,
    /// Theoretical peak memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Compiler used by the paper.
    pub compiler: &'static str,
    /// Fraction of peak bandwidth obtainable per ERT measurement
    /// (the "ERT-DRAM" line of Figure 3 relative to the theoretical peak).
    pub ert_dram_fraction: f64,
    /// Obtainable LLC bandwidth as a multiple of the obtainable DRAM
    /// bandwidth (also an ERT output; feeds the cache roof of Figure 3).
    pub llc_bw_multiple: f64,
}

impl PlatformSpec {
    /// Peak single-precision FLOPS (not TFLOPS).
    pub fn peak_flops(&self) -> f64 {
        self.peak_sp_tflops * 1e12
    }

    /// Obtainable (ERT-DRAM) bandwidth in bytes/s.
    pub fn ert_dram_bw(&self) -> f64 {
        self.mem_bw_gbps * 1e9 * self.ert_dram_fraction
    }

    /// Obtainable LLC bandwidth in bytes/s.
    pub fn ert_llc_bw(&self) -> f64 {
        self.ert_dram_bw() * self.llc_bw_multiple
    }
}

/// Bluesky: dual-socket Intel Xeon Gold 6126 (Skylake).
pub fn bluesky() -> PlatformSpec {
    PlatformSpec {
        name: "Bluesky",
        processor: "Intel Xeon Gold 6126",
        microarch: "Skylake",
        freq_ghz: 2.60,
        kind: PlatformKind::Cpu { sockets: 2, cores: 24 },
        peak_sp_tflops: 1.0,
        llc_bytes: 19 << 20,
        mem_gb: 196.0,
        mem_type: "DDR4",
        mem_freq_ghz: 2.666,
        mem_bw_gbps: 256.0,
        compiler: "gcc 7.1.0",
        ert_dram_fraction: 0.62,
        llc_bw_multiple: 3.0,
    }
}

/// Wingtip: four-socket Intel Xeon E7-4850 v3 (Haswell).
pub fn wingtip() -> PlatformSpec {
    PlatformSpec {
        name: "Wingtip",
        processor: "Intel Xeon E7-4850v3",
        microarch: "Haswell",
        freq_ghz: 2.20,
        kind: PlatformKind::Cpu { sockets: 4, cores: 56 },
        peak_sp_tflops: 2.0,
        llc_bytes: 35 << 20,
        mem_gb: 2114.0,
        mem_type: "DDR4",
        mem_freq_ghz: 2.133,
        mem_bw_gbps: 273.0,
        compiler: "gcc 5.5.0",
        ert_dram_fraction: 0.55,
        llc_bw_multiple: 3.5,
    }
}

/// DGX-1P: NVIDIA Tesla P100 (Pascal).
pub fn dgx1p() -> PlatformSpec {
    PlatformSpec {
        name: "DGX-1P",
        processor: "NVIDIA Tesla P100",
        microarch: "Pascal",
        freq_ghz: 1.48,
        kind: PlatformKind::Gpu { sms: 56, cores: 3584 },
        peak_sp_tflops: 10.6,
        llc_bytes: 3 << 20,
        mem_gb: 16.0,
        mem_type: "HBM2",
        mem_freq_ghz: 0.715,
        mem_bw_gbps: 732.0,
        compiler: "CUDA Tkit 9.1",
        ert_dram_fraction: 0.72,
        llc_bw_multiple: 2.5,
    }
}

/// DGX-1V: NVIDIA Tesla V100 (Volta).
pub fn dgx1v() -> PlatformSpec {
    PlatformSpec {
        name: "DGX-1V",
        processor: "NVIDIA Tesla V100",
        microarch: "Volta",
        freq_ghz: 1.53,
        kind: PlatformKind::Gpu { sms: 80, cores: 5120 },
        peak_sp_tflops: 14.9,
        llc_bytes: 6 << 20,
        mem_gb: 16.0,
        mem_type: "HBM2",
        mem_freq_ghz: 0.877,
        mem_bw_gbps: 900.0,
        compiler: "CUDA Tkit 9.0",
        ert_dram_fraction: 0.78,
        llc_bw_multiple: 2.5,
    }
}

/// All four platforms in Table III order.
pub fn all_platforms() -> Vec<PlatformSpec> {
    vec![bluesky(), wingtip(), dgx1p(), dgx1v()]
}

/// Looks up a platform by (case-insensitive) name.
pub fn find_platform(name: &str) -> Option<PlatformSpec> {
    all_platforms().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_platforms() {
        let all = all_platforms();
        assert_eq!(all.len(), 4);
        assert!(all[0].kind.is_cpu());
        assert!(all[1].kind.is_cpu());
        assert!(!all[2].kind.is_cpu());
        assert!(!all[3].kind.is_cpu());
    }

    #[test]
    fn paper_advantage_ratios_hold() {
        // "GPUs show advantages in peak performance and memory bandwidth
        // over CPUs by approximately 4-12x and 3-7x respectively."
        let (bs, wt, p, v) = (bluesky(), wingtip(), dgx1p(), dgx1v());
        for gpu in [&p, &v] {
            for cpu in [&bs, &wt] {
                let perf = gpu.peak_sp_tflops / cpu.peak_sp_tflops;
                let bw = gpu.mem_bw_gbps / cpu.mem_bw_gbps;
                assert!((4.0..=15.0).contains(&perf), "perf ratio {perf}");
                assert!((2.5..=7.5).contains(&bw), "bw ratio {bw}");
            }
        }
    }

    #[test]
    fn peak_sp_above_one_tflops() {
        // "The peak SP performance of all machines is above 1 TFLOPS."
        assert!(all_platforms().iter().all(|p| p.peak_sp_tflops >= 1.0));
    }

    #[test]
    fn derived_quantities() {
        let b = bluesky();
        assert_eq!(b.peak_flops(), 1e12);
        assert!(b.ert_dram_bw() < b.mem_bw_gbps * 1e9);
        assert!(b.ert_llc_bw() > b.ert_dram_bw());
        assert_eq!(b.kind.sockets(), 2);
        assert_eq!(dgx1v().kind.sockets(), 1);
    }

    #[test]
    fn llc_sizes_match_table() {
        assert_eq!(bluesky().llc_bytes, 19 * 1024 * 1024);
        assert_eq!(wingtip().llc_bytes, 35 * 1024 * 1024);
        assert_eq!(dgx1p().llc_bytes, 3 * 1024 * 1024);
        assert_eq!(dgx1v().llc_bytes, 6 * 1024 * 1024);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(find_platform("bluesky").unwrap().name, "Bluesky");
        assert_eq!(find_platform("DGX-1V").unwrap().microarch, "Volta");
        assert!(find_platform("cray").is_none());
    }
}
