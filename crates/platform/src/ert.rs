//! ERT-style empirical bandwidth measurement of the *host* machine.
//!
//! The Empirical Roofline Tool sweeps STREAM-like micro-kernels over
//! working-set sizes to extract the obtainable bandwidth of each memory
//! level. This module does the same for the machine running the suite:
//! copy/scale/add/triad kernels, multi-threaded through `pasta-par`, swept
//! from cache-resident to DRAM-resident sizes. The host's numbers anchor the
//! host-measured rows of the experiment harness; the four paper platforms
//! use the calibrated fractions in [`crate::spec`].

use pasta_par::{parallel_for, Schedule};
use std::time::Instant;

/// The four STREAM kernels ERT-style sweeps use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    /// `b[i] = a[i]` — 2 bytes moved per element-byte, 0 flops.
    Copy,
    /// `b[i] = s * a[i]` — 1 flop.
    Scale,
    /// `c[i] = a[i] + b[i]` — 1 flop, 3 streams.
    Add,
    /// `c[i] = a[i] + s * b[i]` — 2 flops, 3 streams.
    Triad,
}

impl StreamKernel {
    /// Bytes moved per element (reads + write, 4-byte floats).
    pub fn bytes_per_elem(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 8,
            StreamKernel::Add | StreamKernel::Triad => 12,
        }
    }
}

/// One sweep point: a working-set size and the measured bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErtPoint {
    /// Total working-set bytes across all arrays.
    pub working_set_bytes: usize,
    /// Measured bandwidth in bytes/s.
    pub bandwidth: f64,
}

/// The result of an ERT sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ErtResult {
    /// Kernel used.
    pub kernel: StreamKernel,
    /// Threads used.
    pub threads: usize,
    /// Sweep points, smallest working set first.
    pub points: Vec<ErtPoint>,
}

impl ErtResult {
    /// The DRAM-level bandwidth: the median of the largest third of the
    /// sweep (working sets well beyond any cache).
    pub fn dram_bandwidth(&self) -> f64 {
        let n = self.points.len();
        let tail: Vec<f64> =
            self.points[n - (n / 3).max(1)..].iter().map(|p| p.bandwidth).collect();
        median(tail)
    }

    /// The cache-level bandwidth: the maximum over the sweep (small,
    /// cache-resident working sets).
    pub fn cache_bandwidth(&self) -> f64 {
        self.points.iter().map(|p| p.bandwidth).fold(0.0, f64::max)
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN bandwidths"));
    v[v.len() / 2]
}

/// Runs one kernel at one working-set size and returns bytes/s.
///
/// `elems` is the length of each array; the kernel repeats until ~`min_ms`
/// of work has been timed.
pub fn measure_bandwidth(kernel: StreamKernel, elems: usize, threads: usize, min_ms: f64) -> f64 {
    let mut a = vec![1.0f32; elems];
    let mut b = vec![2.0f32; elems];
    let mut c = vec![0.0f32; elems];
    // Touch once to fault pages in.
    run_once(kernel, &mut a, &mut b, &mut c, threads);

    let mut reps = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..reps {
            run_once(kernel, &mut a, &mut b, &mut c, threads);
        }
        let secs = start.elapsed().as_secs_f64();
        if secs * 1e3 >= min_ms || reps >= 1 << 20 {
            let bytes = (kernel.bytes_per_elem() * elems * reps) as f64;
            return bytes / secs;
        }
        reps *= 2;
    }
}

fn run_once(kernel: StreamKernel, a: &mut [f32], b: &mut [f32], c: &mut [f32], threads: usize) {
    let n = a.len();
    let s = 3.0f32;
    match kernel {
        StreamKernel::Copy => {
            let (src, dst) = (&*a, pasta_par::SharedSlice::new(b));
            parallel_for(n, threads, Schedule::Static, |r| {
                // SAFETY: static ranges are disjoint.
                let d = unsafe { dst.slice_mut(r.clone()) };
                d.copy_from_slice(&src[r]);
            });
        }
        StreamKernel::Scale => {
            let (src, dst) = (&*a, pasta_par::SharedSlice::new(b));
            parallel_for(n, threads, Schedule::Static, |r| {
                let d = unsafe { dst.slice_mut(r.clone()) };
                for (o, &x) in d.iter_mut().zip(&src[r]) {
                    *o = s * x;
                }
            });
        }
        StreamKernel::Add => {
            let (x, y, dst) = (&*a, &*b, pasta_par::SharedSlice::new(c));
            parallel_for(n, threads, Schedule::Static, |r| {
                let d = unsafe { dst.slice_mut(r.clone()) };
                for (i, o) in r.zip(d.iter_mut()) {
                    *o = x[i] + y[i];
                }
            });
        }
        StreamKernel::Triad => {
            let (x, y, dst) = (&*a, &*b, pasta_par::SharedSlice::new(c));
            parallel_for(n, threads, Schedule::Static, |r| {
                let d = unsafe { dst.slice_mut(r.clone()) };
                for (i, o) in r.zip(d.iter_mut()) {
                    *o = x[i] + s * y[i];
                }
            });
        }
    }
}

/// Runs an ERT sweep with the given kernel from `min_bytes` to `max_bytes`
/// total working set (doubling each step).
pub fn run_ert(
    kernel: StreamKernel,
    threads: usize,
    min_bytes: usize,
    max_bytes: usize,
) -> ErtResult {
    assert!(min_bytes >= 4096 && max_bytes >= min_bytes, "degenerate sweep bounds");
    let arrays = if kernel.bytes_per_elem() == 8 { 2 } else { 3 };
    let mut points = Vec::new();
    let mut ws = min_bytes;
    while ws <= max_bytes {
        let elems = ws / (4 * arrays);
        let bw = measure_bandwidth(kernel, elems.max(1024), threads, 20.0);
        points.push(ErtPoint { working_set_bytes: ws, bandwidth: bw });
        ws *= 2;
    }
    ErtResult { kernel, threads, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_elem() {
        assert_eq!(StreamKernel::Copy.bytes_per_elem(), 8);
        assert_eq!(StreamKernel::Triad.bytes_per_elem(), 12);
    }

    #[test]
    fn measures_positive_bandwidth() {
        for k in [StreamKernel::Copy, StreamKernel::Scale, StreamKernel::Add, StreamKernel::Triad] {
            let bw = measure_bandwidth(k, 64 * 1024, 2, 5.0);
            assert!(bw > 1e8, "{k:?}: {bw}");
        }
    }

    #[test]
    fn sweep_produces_points_and_summaries() {
        let r = run_ert(StreamKernel::Triad, 2, 1 << 16, 1 << 19);
        assert_eq!(r.points.len(), 4);
        assert!(r.points.windows(2).all(|w| w[1].working_set_bytes == 2 * w[0].working_set_bytes));
        assert!(r.dram_bandwidth() > 0.0);
        assert!(r.cache_bandwidth() >= r.dram_bandwidth());
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![5.0]), 5.0);
    }
}
