//! Modeled kernel performance on the four paper platforms.
//!
//! This suite cannot run on Bluesky, Wingtip or the DGX boxes, so the
//! figure harness reports *modeled* GFLOPS for them (the GPU platforms can
//! additionally be driven through the cycle-approximate `pasta-simt`
//! simulator). The model is a calibrated Roofline refinement:
//!
//! ```text
//! time = (bytes / effective_bandwidth) × base_slowdown × tensor_modifiers
//! ```
//!
//! - `bytes` comes from the Table I cost model evaluated on the *actual*
//!   tensor's features (`M`, `M_F`, `n_b`);
//! - `effective_bandwidth` interpolates between the ERT-DRAM and ERT-LLC
//!   roofs by cache residency of the working set — this reproduces
//!   Observation 2 (small tensors exceed the DRAM Roofline);
//! - `base_slowdown` is one calibration constant per
//!   (platform, kernel, format), set from the paper's reported *average*
//!   efficiencies (Observations 1 and 3) — NUMA effects on the four-socket
//!   Wingtip are baked in here;
//! - `tensor_modifiers` derive from the tensor itself: fiber-length
//!   imbalance penalizes fiber-parallel TTV/TTM, atomic-contention pressure
//!   (non-zeros per output row) penalizes MTTKRP, and block singletons
//!   penalize HiCOO.
//!
//! The constants live in [`base_slowdown`] and are deliberately transparent:
//! EXPERIMENTS.md compares model output against every figure of the paper.

use crate::spec::{PlatformKind, PlatformSpec};
use pasta_core::{BlockStats, TensorStats};
use pasta_kernels::{kernel_cost, CostParams, Kernel, KernelCost};

/// Sparse format selector for modeled runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Coordinate format.
    Coo,
    /// Hierarchical coordinate format.
    Hicoo,
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Format::Coo => "COO",
            Format::Hicoo => "HiCOO",
        })
    }
}

/// Per-tensor features that modulate modeled performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorFeatures {
    /// Non-zero count `M`.
    pub nnz: f64,
    /// Fiber count `M_F` of the product mode (mode-averaged by callers).
    pub mf: f64,
    /// Working-set bytes of the kernel (tensor + operands + output).
    pub working_set: f64,
    /// `max fiber length / mean fiber length` of the product mode.
    pub fiber_imbalance: f64,
    /// Output-mode dimension `I_n` (MTTKRP contention: smaller `I_n` means
    /// more atomic collisions per row).
    pub out_dim: f64,
    /// HiCOO block count `n_b`.
    pub nb: f64,
    /// Fraction of HiCOO blocks holding a single non-zero.
    pub block_singleton_fraction: f64,
    /// HiCOO block size `B`.
    pub block_size: f64,
    /// `max block nnz / mean block nnz` — the GPU HiCOO-MTTKRP
    /// load-imbalance driver (one tensor block per CUDA block).
    pub block_imbalance: f64,
}

impl TensorFeatures {
    /// Derives features from tensor and block statistics for product mode
    /// `mode`, rank `r` and a given format's storage bytes.
    pub fn from_stats(
        stats: &TensorStats,
        blocks: &BlockStats,
        mode: usize,
        r: usize,
        storage_bytes: f64,
    ) -> Self {
        let mf = stats.fiber_counts[mode] as f64;
        let mean_fiber = if mf > 0.0 { stats.nnz as f64 / mf } else { 1.0 };
        let max_fiber = stats.max_fiber_lens[mode] as f64;
        let out_rows = stats.dims[mode] as f64;
        Self {
            nnz: stats.nnz as f64,
            mf,
            working_set: storage_bytes + out_rows * r as f64 * 4.0,
            fiber_imbalance: (max_fiber / mean_fiber.max(1.0)).max(1.0),
            out_dim: out_rows,
            nb: blocks.num_blocks as f64,
            block_singleton_fraction: blocks.singleton_fraction,
            block_size: blocks.block_size as f64,
            block_imbalance: (blocks.max_nnz as f64 / blocks.avg_nnz.max(1.0)).max(1.0),
        }
    }

    /// The Table I cost parameters implied by these features.
    pub fn cost_params(&self, r: usize) -> CostParams {
        CostParams {
            m: self.nnz,
            mf: self.mf,
            r: r as f64,
            nb: self.nb,
            block_size: self.block_size,
        }
    }
}

/// Calibration constant: average `ideal_time / achieved_time` slowdown for
/// one (platform, kernel, format), set from the paper's reported average
/// performance efficiencies (Section V-C, Observations 1 and 3).
pub fn base_slowdown(platform: &str, kernel: Kernel, format: Format) -> f64 {
    use Format::{Coo, Hicoo};
    use Kernel::{Mttkrp, Tew, Ts, Ttm, Ttv};
    match (platform, kernel, format) {
        // Bluesky (2-socket Skylake): TTV/TTM/MTTKRP COO eff 31/64/6 %,
        // HiCOO 73/61/5 %; TEW/TS near (often above) the roofline.
        ("Bluesky", Tew, Coo) => 1.05,
        ("Bluesky", Tew, Hicoo) => 0.95,
        ("Bluesky", Ts, Coo) => 1.0,
        ("Bluesky", Ts, Hicoo) => 0.95,
        ("Bluesky", Ttv, Coo) => 3.2,
        ("Bluesky", Ttv, Hicoo) => 1.4,
        ("Bluesky", Ttm, Coo) => 1.6,
        ("Bluesky", Ttm, Hicoo) => 1.65,
        ("Bluesky", Mttkrp, Coo) => 16.0,
        ("Bluesky", Mttkrp, Hicoo) => 19.0,
        // Wingtip (4-socket Haswell): NUMA hurts the non-streaming kernels —
        // TTV eff 9/13 %, TTM 52/47 %, MTTKRP 9/9 %.
        ("Wingtip", Tew, Coo) => 1.15,
        ("Wingtip", Tew, Hicoo) => 1.05,
        ("Wingtip", Ts, Coo) => 1.1,
        ("Wingtip", Ts, Hicoo) => 1.05,
        ("Wingtip", Ttv, Coo) => 11.0,
        ("Wingtip", Ttv, Hicoo) => 7.7,
        ("Wingtip", Ttm, Coo) => 1.9,
        ("Wingtip", Ttm, Hicoo) => 2.1,
        ("Wingtip", Mttkrp, Coo) => 11.0,
        ("Wingtip", Mttkrp, Hicoo) => 11.0,
        // DGX-1P (P100): TTV 30 %, TTM 60 %, MTTKRP 40 % COO / 28 % HiCOO.
        ("DGX-1P", Tew, _) => 1.2,
        ("DGX-1P", Ts, _) => 1.2,
        ("DGX-1P", Ttv, _) => 3.3,
        ("DGX-1P", Ttm, _) => 1.67,
        ("DGX-1P", Mttkrp, Coo) => 2.5,
        ("DGX-1P", Mttkrp, Hicoo) => 3.6,
        // DGX-1V (V100): TTV 30 %, TTM 69 %, MTTKRP 110 % COO (cache +
        // improved atomics push it past the DRAM roofline) / 57 % HiCOO.
        ("DGX-1V", Tew, _) => 1.2,
        ("DGX-1V", Ts, _) => 1.2,
        ("DGX-1V", Ttv, _) => 3.3,
        ("DGX-1V", Ttm, _) => 1.45,
        ("DGX-1V", Mttkrp, Coo) => 0.91,
        ("DGX-1V", Mttkrp, Hicoo) => 1.75,
        // Unknown platform: assume the Roofline is achieved.
        _ => 1.0,
    }
}

/// Effective bandwidth: interpolates between the ERT-DRAM roof and the
/// ERT-LLC roof by how much of the working set is cache-resident (the warm
/// five-run average of the paper keeps resident sets in cache).
pub fn effective_bandwidth(spec: &PlatformSpec, working_set: f64) -> f64 {
    let dram = spec.ert_dram_bw();
    let llc = spec.ert_llc_bw();
    let resident = (spec.llc_bytes as f64 / working_set.max(1.0)).min(1.0);
    dram * (1.0 - resident) + llc * resident
}

/// Per-tensor slowdown modifiers on top of the calibrated base.
fn tensor_modifier(spec: &PlatformSpec, kernel: Kernel, format: Format, f: &TensorFeatures) -> f64 {
    let mut m = 1.0;
    match kernel {
        Kernel::Ttv | Kernel::Ttm => {
            // Fiber-parallel loops suffer when one fiber dominates.
            m *= f.fiber_imbalance.powf(0.25).min(4.0);
        }
        Kernel::Mttkrp => {
            // Atomic pressure: average non-zeros per output row.
            let per_row = (f.nnz / f.out_dim.max(1.0)).max(1.0);
            m *= per_row.powf(0.15).min(4.0);
            if format == Format::Hicoo {
                // Hyper-sparse blocks lose HiCOO's reuse (Observation 4).
                m *= 1.0 + f.block_singleton_fraction;
                if let PlatformKind::Gpu { sms, .. } = spec.kind {
                    // One tensor block per CUDA block: too few blocks starve
                    // the SMs, and a dominant block serializes on one SM —
                    // the reasons HiCOO-MTTKRP-GPU trails COO (Observation 4).
                    let needed = 4.0 * sms as f64;
                    m *= (needed / f.nb.max(1.0)).clamp(1.0, 64.0);
                    m *= f.block_imbalance.powf(0.3).min(8.0);
                }
            }
        }
        Kernel::Tew | Kernel::Ts => {}
    }
    m
}

/// One modeled kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeledRun {
    /// Time in seconds.
    pub time: f64,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// The per-tensor Roofline bound (OI × ERT-DRAM bandwidth) in GFLOPS —
    /// the red line of Figures 4–7.
    pub roofline_gflops: f64,
    /// `gflops / roofline_gflops` (the paper's performance efficiency).
    pub efficiency: f64,
}

/// Models one kernel execution on one platform.
///
/// `r` is the dense-operand rank (the paper uses 16 for TTM/MTTKRP; ignored
/// by TEW/TS/TTV cost formulas).
pub fn model_run(
    spec: &PlatformSpec,
    kernel: Kernel,
    format: Format,
    features: &TensorFeatures,
    r: usize,
) -> ModeledRun {
    let cost: KernelCost = kernel_cost(kernel, &features.cost_params(r));
    let bytes = match format {
        Format::Coo => cost.coo_bytes,
        Format::Hicoo => cost.hicoo_bytes,
    };
    let bw = effective_bandwidth(spec, features.working_set);
    let ideal_mem = bytes / bw;
    let ideal_compute = cost.flops / spec.peak_flops();
    let slowdown =
        base_slowdown(spec.name, kernel, format) * tensor_modifier(spec, kernel, format, features);
    let time = ideal_mem.max(ideal_compute) * slowdown;
    let gflops = cost.flops / time / 1e9;
    let oi = match format {
        Format::Coo => cost.coo_oi(),
        Format::Hicoo => cost.hicoo_oi(),
    };
    let roofline = (oi * spec.ert_dram_bw()).min(spec.peak_flops()) / 1e9;
    ModeledRun { time, gflops, roofline_gflops: roofline, efficiency: gflops / roofline }
}

/// Whether the platform is best modeled here (CPUs) or simulated in
/// `pasta-simt` (GPUs).
pub fn prefers_simulation(spec: &PlatformSpec) -> bool {
    matches!(spec.kind, PlatformKind::Gpu { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{all_platforms, bluesky, dgx1v, wingtip};

    fn features(nnz: f64, ws: f64) -> TensorFeatures {
        TensorFeatures {
            nnz,
            mf: nnz / 8.0,
            working_set: ws,
            fiber_imbalance: 2.0,
            out_dim: 10_000.0,
            nb: nnz / 30.0,
            block_singleton_fraction: 0.2,
            block_size: 128.0,
            block_imbalance: 3.0,
        }
    }

    #[test]
    fn small_tensors_can_exceed_roofline() {
        // Observation 2: cache-resident working sets beat the DRAM Roofline.
        let spec = bluesky();
        let small = features(1e5, 2e6); // 2 MB << 19 MB LLC
        let big = features(1e8, 2e9);
        let rs = model_run(&spec, Kernel::Ts, Format::Coo, &small, 16);
        let rb = model_run(&spec, Kernel::Ts, Format::Coo, &big, 16);
        assert!(rs.efficiency > 1.0, "small: {}", rs.efficiency);
        assert!(rb.efficiency <= 1.05, "big: {}", rb.efficiency);
    }

    #[test]
    fn numa_hurts_nonstreaming_more_on_wingtip() {
        // Observation 3: four-socket Wingtip has lower TTV efficiency than
        // two-socket Bluesky; streaming kernels are fine on both.
        let f = features(1e7, 5e8);
        let b = model_run(&bluesky(), Kernel::Ttv, Format::Coo, &f, 16);
        let w = model_run(&wingtip(), Kernel::Ttv, Format::Coo, &f, 16);
        assert!(w.efficiency < b.efficiency);
        let bs = model_run(&bluesky(), Kernel::Ts, Format::Coo, &f, 16);
        let ws = model_run(&wingtip(), Kernel::Ts, Format::Coo, &f, 16);
        assert!((bs.efficiency - ws.efficiency).abs() < 0.3);
    }

    #[test]
    fn hicoo_beats_coo_for_ttv_on_cpu() {
        // Observation 4 (CPU side): HiCOO ≥ COO for TEW/TS/TTV.
        let f = features(1e7, 5e8);
        for spec in [bluesky(), wingtip()] {
            let coo = model_run(&spec, Kernel::Ttv, Format::Coo, &f, 16);
            let hicoo = model_run(&spec, Kernel::Ttv, Format::Hicoo, &f, 16);
            assert!(hicoo.gflops > coo.gflops, "{}", spec.name);
        }
    }

    #[test]
    fn hicoo_mttkrp_loses_on_gpus() {
        // Observation 4 (GPU side): block-parallel HiCOO-MTTKRP underperforms.
        let f = features(1e7, 5e8);
        let coo = model_run(&dgx1v(), Kernel::Mttkrp, Format::Coo, &f, 16);
        let hicoo = model_run(&dgx1v(), Kernel::Mttkrp, Format::Hicoo, &f, 16);
        assert!(hicoo.gflops < coo.gflops);
    }

    #[test]
    fn v100_mttkrp_can_break_roofline() {
        // Observation 2's GPU case: COO-MTTKRP on DGX-1V exceeds the DRAM
        // Roofline for low-contention tensors.
        let mut f = features(1e6, 4e6);
        f.out_dim = 1e6; // almost no atomic contention
        let run = model_run(&dgx1v(), Kernel::Mttkrp, Format::Coo, &f, 16);
        assert!(run.efficiency > 1.0, "{}", run.efficiency);
    }

    #[test]
    fn mttkrp_efficiency_is_lowest_on_cpus() {
        // Observation 3: MTTKRP's efficiency is far below TTV/TTM on CPUs.
        let f = features(1e7, 5e8);
        for spec in [bluesky(), wingtip()] {
            let ttv = model_run(&spec, Kernel::Ttv, Format::Coo, &f, 16);
            let ttm = model_run(&spec, Kernel::Ttm, Format::Coo, &f, 16);
            let mt = model_run(&spec, Kernel::Mttkrp, Format::Coo, &f, 16);
            assert!(mt.efficiency < ttv.efficiency.min(ttm.efficiency), "{}", spec.name);
        }
    }

    #[test]
    fn modeled_numbers_are_finite_and_positive() {
        let f = features(1e6, 1e7);
        for spec in all_platforms() {
            for k in Kernel::ALL {
                for fmt in [Format::Coo, Format::Hicoo] {
                    let run = model_run(&spec, k, fmt, &f, 16);
                    assert!(run.time > 0.0 && run.time.is_finite());
                    assert!(run.gflops > 0.0 && run.gflops.is_finite());
                    assert!(run.roofline_gflops > 0.0);
                }
            }
        }
    }

    #[test]
    fn simulation_preference() {
        assert!(!prefers_simulation(&bluesky()));
        assert!(prefers_simulation(&dgx1v()));
    }
}
