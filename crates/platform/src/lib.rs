//! # pasta-platform — platforms, Rooflines, ERT and the performance model
//!
//! Reproduces the paper's platform-side machinery:
//!
//! - [`spec`] — Table III's four platforms (Bluesky, Wingtip, DGX-1P,
//!   DGX-1V) as data, with derived peak FLOPS and obtainable bandwidths;
//! - [`roofline`] — the Roofline model of Figure 3, including the per-kernel
//!   OI markers and the "Roofline performance" upper bound of Figures 4–7;
//! - [`ert`] — STREAM-style micro-benchmarks measuring the *host* machine's
//!   obtainable DRAM/cache bandwidth, after the Empirical Roofline Tool;
//! - [`model`] — the calibrated analytic model producing per-tensor modeled
//!   GFLOPS for the paper platforms (GPUs can instead be driven through the
//!   `pasta-simt` simulator).
//!
//! # Examples
//!
//! ```
//! use pasta_platform::{Roofline, spec::bluesky};
//!
//! let r = Roofline::for_platform(&bluesky());
//! // TS (OI = 1/8) is memory bound on every platform in the paper.
//! assert!(r.is_memory_bound(0.125));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ert;
pub mod model;
pub mod roofline;
pub mod spec;

pub use ert::{run_ert, ErtPoint, ErtResult, StreamKernel};
pub use model::{
    base_slowdown, effective_bandwidth, model_run, Format, ModeledRun, TensorFeatures,
};
pub use roofline::Roofline;
pub use spec::{
    all_platforms, bluesky, dgx1p, dgx1v, find_platform, wingtip, PlatformKind, PlatformSpec,
};
