//! Regenerators for the paper's tables.

use pasta_gen::TensorProfile;
use pasta_kernels::{kernel_cost, CostParams, Kernel};
use pasta_platform::PlatformSpec;

/// Table I: kernel analysis for third-order cubical tensors — the paper's
/// symbolic formulas plus a numeric evaluation at the given parameters.
pub fn table1(m: f64, mf: f64, r: f64, nb: f64, block_size: f64) -> String {
    let p = CostParams { m, mf, r, nb, block_size };
    let mut out = String::new();
    out.push_str(&format!(
        "Table I — kernel analysis (M = {m:.3e}, M_F = {mf:.3e}, R = {r}, n_b = {nb:.3e}, B = {block_size})\n"
    ));
    out.push_str(
        "| Kernel | Work (#Flops) | COO bytes (upper bound) | HiCOO bytes (upper bound) | OI (COO) | OI (HiCOO) | OI (paper approx) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    let formulas = [
        (Kernel::Tew, "M", "12M", "12M"),
        (Kernel::Ts, "M", "8M", "8M"),
        (Kernel::Ttv, "2M", "12M + 12M_F", "12M + 12M_F"),
        (Kernel::Ttm, "2MR", "4MR + 4M_F·R + 8M_F + 8M + 8M_F", "4MR + 4M_F·R + 8M + 8M_F"),
        (Kernel::Mttkrp, "3MR", "12MR + 16M", "12R·min{n_b·B, M} + 7M + 20n_b"),
    ];
    for (k, wf, cf, hf) in formulas {
        let c = kernel_cost(k, &p);
        out.push_str(&format!(
            "| {k} | {wf} = {:.3e} | {cf} = {:.3e} | {hf} = {:.3e} | {:.4} | {:.4} | {} |\n",
            c.flops,
            c.coo_bytes,
            c.hicoo_bytes,
            c.coo_oi(),
            c.hicoo_oi(),
            oi_label(k),
        ));
    }
    out
}

fn oi_label(k: Kernel) -> &'static str {
    match k {
        Kernel::Tew => "1/12",
        Kernel::Ts => "1/8",
        Kernel::Ttv => "~1/6",
        Kernel::Ttm => "~1/2",
        Kernel::Mttkrp => "~1/4",
    }
}

fn fmt_dims(dims: &[u64]) -> String {
    dims.iter().map(|d| pasta_core::stats::human_count(*d as usize)).collect::<Vec<_>>().join("x")
}

/// Table II: one dataset's description. `actual_nnz` optionally reports the
/// generated (post-dedup) non-zero counts alongside the targets.
pub fn table2(profiles: &[TensorProfile], actual_nnz: Option<&[usize]>) -> String {
    let mut out = String::new();
    out.push_str(
        "| No. | Tensor | Gen. | Order | Dims (scaled) | #Nnz (scaled) | Density (scaled) | Dims (paper) | #Nnz (paper) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for (i, p) in profiles.iter().enumerate() {
        let nnz = actual_nnz.map(|a| a[i]).unwrap_or(p.target_nnz);
        let dims64: Vec<u64> = p.dims.iter().map(|&d| d as u64).collect();
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {:.2e} | {} | {} |\n",
            p.id,
            p.name,
            p.method,
            p.order(),
            fmt_dims(&dims64),
            pasta_core::stats::human_count(nnz),
            p.density(),
            fmt_dims(&p.paper_dims),
            pasta_core::stats::human_count(p.paper_nnz as usize),
        ));
    }
    out
}

/// Table III: platform parameters.
pub fn table3(platforms: &[PlatformSpec]) -> String {
    let mut out = String::new();
    let row = |label: &str, f: &dyn Fn(&PlatformSpec) -> String| {
        let cells: Vec<String> = platforms.iter().map(f).collect();
        format!("| {label} | {} |\n", cells.join(" | "))
    };
    out.push_str(&row("Parameters", &|p| p.name.to_string()));
    out.push_str(&format!("|---|{}\n", "---|".repeat(platforms.len())));
    out.push_str(&row("Processor", &|p| p.processor.to_string()));
    out.push_str(&row("Microarch", &|p| p.microarch.to_string()));
    out.push_str(&row("Frequency", &|p| format!("{:.2} GHz", p.freq_ghz)));
    out.push_str(&row("#Cores", &|p| match p.kind {
        pasta_platform::PlatformKind::Cpu { sockets, cores } => {
            format!("{cores} ({} x {sockets})", cores / sockets)
        }
        pasta_platform::PlatformKind::Gpu { cores, .. } => format!("{cores}"),
    }));
    out.push_str(&row("Peak SP Perf.", &|p| format!("{:.1} TFLOPS", p.peak_sp_tflops)));
    out.push_str(&row("LLC size", &|p| format!("{} MB", p.llc_bytes >> 20)));
    out.push_str(&row("Mem. size", &|p| format!("{} GB", p.mem_gb)));
    out.push_str(&row("Mem. type", &|p| p.mem_type.to_string()));
    out.push_str(&row("Mem. freq.", &|p| format!("{:.3} GHz", p.mem_freq_ghz)));
    out.push_str(&row("Mem. BW", &|p| format!("{} GB/s", p.mem_bw_gbps)));
    out.push_str(&row("Compiler", &|p| p.compiler.to_string()));
    out.push_str(&row("ERT-DRAM BW (modeled)", &|p| format!("{:.0} GB/s", p.ert_dram_bw() / 1e9)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_gen::synthetic_profiles;
    use pasta_platform::all_platforms;

    #[test]
    fn table1_contains_all_kernels_and_matches_approximations() {
        let s = table1(1e6, 1e5, 16.0, 2e4, 128.0);
        for k in ["TEW", "TS", "TTV", "TTM", "MTTKRP"] {
            assert!(s.contains(k), "{k} missing");
        }
        assert!(s.contains("1/12"));
        assert!(s.contains("~1/4"));
    }

    #[test]
    fn table2_lists_every_profile() {
        let profiles = synthetic_profiles();
        let s = table2(&profiles, None);
        for p in &profiles {
            assert!(s.contains(p.name), "{} missing", p.name);
        }
        assert!(s.contains("Kron."));
        assert!(s.contains("PL"));
    }

    #[test]
    fn table3_lists_every_platform() {
        let s = table3(&all_platforms());
        for name in ["Bluesky", "Wingtip", "DGX-1P", "DGX-1V"] {
            assert!(s.contains(name));
        }
        assert!(s.contains("Skylake"));
        assert!(s.contains("HBM2"));
        assert!(s.contains("900 GB/s"));
    }
}
