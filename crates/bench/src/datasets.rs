//! Dataset loading for the experiment harness.
//!
//! Materializes the Table II profiles (synthetic `s1`–`s15`, real analogs
//! `r1`–`r15`) together with the statistics every experiment needs: tensor
//! stats (nnz, per-mode fiber counts), HiCOO conversion at the paper's
//! `B = 128`, and block statistics.

use pasta_core::{BlockStats, CooTensor, HiCooTensor, TensorStats};
use pasta_gen::{real_profiles, synthetic_profiles, TensorProfile};

/// The paper's fixed HiCOO block size.
pub const BLOCK_SIZE: u32 = 128;
/// The paper's dense-operand rank for TTM/MTTKRP.
pub const RANK: usize = 16;

/// Which dataset of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Table II(a): real-tensor analogs `r1`–`r15`.
    Real,
    /// Table II(b): synthetic tensors `s1`–`s15`.
    Synthetic,
}

impl std::str::FromStr for DatasetKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "real" | "r" => Ok(DatasetKind::Real),
            "synthetic" | "syn" | "s" => Ok(DatasetKind::Synthetic),
            other => Err(format!("unknown dataset {other:?} (expected real|synthetic)")),
        }
    }
}

/// A fully materialized benchmark tensor.
#[derive(Debug, Clone)]
pub struct BenchTensor {
    /// The generating profile (ids, names, paper-scale characteristics).
    pub profile: TensorProfile,
    /// The generated COO tensor.
    pub tensor: CooTensor<f32>,
    /// Tensor statistics (per-mode fiber counts, density, …).
    pub stats: TensorStats,
    /// The HiCOO conversion at `B = 128`.
    pub hicoo: HiCooTensor<f32>,
    /// HiCOO block statistics.
    pub block_stats: BlockStats,
}

impl BenchTensor {
    /// Materializes one profile at the given non-zero scale fraction.
    ///
    /// # Panics
    ///
    /// Panics if generation fails (built-in profiles never fail).
    pub fn materialize(profile: &TensorProfile, scale: f64) -> Self {
        let tensor = profile.generate_scaled(scale).expect("built-in profile generates");
        let stats = TensorStats::compute(&tensor);
        let hicoo = HiCooTensor::from_coo(&tensor, BLOCK_SIZE).expect("valid block size");
        let block_stats = BlockStats::compute(&hicoo);
        Self { profile: profile.clone(), tensor, stats, hicoo, block_stats }
    }
}

/// Loads a dataset at `scale` (1.0 = the suite's full scaled targets;
/// use ~0.05 for quick runs).
pub fn load_dataset(kind: DatasetKind, scale: f64) -> Vec<BenchTensor> {
    let profiles = match kind {
        DatasetKind::Real => real_profiles(),
        DatasetKind::Synthetic => synthetic_profiles(),
    };
    profiles.iter().map(|p| BenchTensor::materialize(p, scale)).collect()
}

/// Loads a single profile by id or name.
pub fn load_one(key: &str, scale: f64) -> Option<BenchTensor> {
    pasta_gen::find_profile(key).map(|p| BenchTensor::materialize(&p, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_kind_parses() {
        assert_eq!("real".parse::<DatasetKind>().unwrap(), DatasetKind::Real);
        assert_eq!("SYN".parse::<DatasetKind>().unwrap(), DatasetKind::Synthetic);
        assert!("bogus".parse::<DatasetKind>().is_err());
    }

    #[test]
    fn materialize_small() {
        let bt = load_one("regS", 0.02).unwrap();
        assert!(bt.tensor.nnz() > 0);
        assert_eq!(bt.stats.order, 3);
        assert_eq!(bt.hicoo.block_size(), BLOCK_SIZE);
        assert!(bt.block_stats.num_blocks > 0);
    }

    #[test]
    fn tiny_dataset_load() {
        // Loading all 15 synthetic profiles at minuscule scale must work.
        let all = load_dataset(DatasetKind::Synthetic, 0.002);
        assert_eq!(all.len(), 15);
        assert!(all.iter().all(|t| t.tensor.nnz() > 0));
    }
}
