//! Regenerators for the paper's figures.
//!
//! Figure 3 (Roofline models with kernel OI markers) comes straight from
//! `pasta-platform`; Figures 4–7 (five kernels × two formats × 30 tensors ×
//! four platforms, with the per-tensor "Roofline performance" bound) are
//! produced by evaluating the calibrated performance model — and optionally
//! the SIMT simulator for the GPU platforms — on the materialized datasets.

use crate::datasets::{BenchTensor, RANK};
use pasta_kernels::Kernel;
use pasta_platform::{model_run, Format, PlatformSpec, Roofline, TensorFeatures};

/// One bar of Figures 4–7.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// Tensor id (`r1`, `s7`, …).
    pub tensor_id: String,
    /// Tensor name.
    pub tensor_name: String,
    /// Non-zero count of the materialized tensor.
    pub nnz: usize,
    /// Kernel.
    pub kernel: Kernel,
    /// Format.
    pub format: Format,
    /// Modeled (or simulated) GFLOPS, mode-averaged.
    pub gflops: f64,
    /// The per-tensor Roofline bound in GFLOPS (the red line).
    pub roofline: f64,
    /// `gflops / roofline`.
    pub efficiency: f64,
}

/// Working-set bytes of one kernel invocation (tensor + operands + output),
/// the quantity compared against the LLC for Observation 2.
pub fn working_set(bt: &BenchTensor, kernel: Kernel, format: Format, mode: usize) -> f64 {
    let m = bt.stats.nnz as f64;
    let mf = bt.stats.fiber_counts[mode] as f64;
    let storage = match format {
        Format::Coo => bt.tensor.storage_bytes() as f64,
        Format::Hicoo => bt.hicoo.storage_bytes() as f64,
    };
    let dim_n = bt.stats.dims[mode] as f64;
    let r = RANK as f64;
    match kernel {
        Kernel::Tew => 12.0 * m,
        Kernel::Ts => 8.0 * m,
        Kernel::Ttv => storage + 4.0 * dim_n + 12.0 * mf,
        Kernel::Ttm => storage + 4.0 * dim_n * r + (4.0 * r + 8.0) * mf,
        Kernel::Mttkrp => {
            let all_rows: f64 = bt.stats.dims.iter().map(|&d| d as f64).sum();
            storage + 4.0 * r * all_rows
        }
    }
}

/// Evaluates the performance model for one tensor × kernel × format on one
/// platform, averaging over modes as the paper does.
pub fn model_row(
    spec: &PlatformSpec,
    bt: &BenchTensor,
    kernel: Kernel,
    format: Format,
) -> FigureRow {
    let order = bt.stats.order;
    let mut gflops = 0.0;
    let mut roofline = 0.0;
    for n in 0..order {
        let features = TensorFeatures::from_stats(
            &bt.stats,
            &bt.block_stats,
            n,
            RANK,
            working_set(bt, kernel, format, n),
        );
        let run = model_run(spec, kernel, format, &features, RANK);
        gflops += run.gflops;
        roofline += run.roofline_gflops;
    }
    gflops /= order as f64;
    roofline /= order as f64;
    FigureRow {
        tensor_id: bt.profile.id.to_string(),
        tensor_name: bt.profile.name.to_string(),
        nnz: bt.stats.nnz,
        kernel,
        format,
        gflops,
        roofline,
        efficiency: gflops / roofline,
    }
}

/// All rows of one performance figure (Figures 4–7): every kernel × format
/// for every tensor.
pub fn figure_rows(spec: &PlatformSpec, tensors: &[BenchTensor]) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for bt in tensors {
        for k in Kernel::ALL {
            for fmt in [Format::Coo, Format::Hicoo] {
                rows.push(model_row(spec, bt, k, fmt));
            }
        }
    }
    rows
}

/// Renders rows as CSV (one figure panel per kernel, as in the paper).
pub fn to_csv(rows: &[FigureRow]) -> String {
    let mut out = String::from("tensor,name,nnz,kernel,format,gflops,roofline_gflops,efficiency\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{:.4},{:.4},{:.4}\n",
            r.tensor_id,
            r.tensor_name,
            r.nnz,
            r.kernel,
            r.format,
            r.gflops,
            r.roofline,
            r.efficiency
        ));
    }
    out
}

/// Figure 3's data: the Roofline series plus kernel OI markers per platform.
pub fn fig3(platforms: &[PlatformSpec]) -> String {
    let mut out = String::new();
    for spec in platforms {
        let r = Roofline::for_platform(spec);
        out.push_str(&format!(
            "# {} — peak {:.1} TFLOPS, theoretical DRAM {:.0} GB/s, ERT-DRAM {:.0} GB/s, ERT-LLC {:.0} GB/s, ridge OI {:.1}\n",
            spec.name,
            r.peak_flops / 1e12,
            r.theoretical_dram_bw / 1e9,
            r.ert_dram_bw / 1e9,
            r.ert_llc_bw / 1e9,
            r.ridge_oi(),
        ));
        out.push_str("oi,ert_dram_gflops,ert_llc_gflops,theoretical_gflops\n");
        for (oi, att) in r.series(0.01, 64.0, 25) {
            out.push_str(&format!(
                "{:.4},{:.2},{:.2},{:.2}\n",
                oi,
                att / 1e9,
                r.attainable_llc(oi) / 1e9,
                r.attainable_theoretical(oi) / 1e9
            ));
        }
        out.push_str("kernel,oi,attainable_gflops\n");
        for (k, oi, att) in r.kernel_markers() {
            out.push_str(&format!("{k},{oi:.4},{:.2}\n", att / 1e9));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::load_one;
    use pasta_platform::{all_platforms, bluesky, dgx1v};

    #[test]
    fn model_rows_cover_all_cells() {
        let bt = load_one("irrS", 0.01).unwrap();
        let rows = figure_rows(&bluesky(), &[bt]);
        assert_eq!(rows.len(), 10); // 5 kernels x 2 formats
        assert!(rows.iter().all(|r| r.gflops > 0.0 && r.roofline > 0.0));
    }

    #[test]
    fn csv_renders() {
        let bt = load_one("regS4d", 0.01).unwrap();
        let rows = figure_rows(&dgx1v(), &[bt]);
        let csv = to_csv(&rows);
        assert!(csv.lines().count() == rows.len() + 1);
        assert!(csv.contains("MTTKRP"));
    }

    #[test]
    fn fig3_covers_platforms_and_kernels() {
        let s = fig3(&all_platforms());
        for p in ["Bluesky", "Wingtip", "DGX-1P", "DGX-1V"] {
            assert!(s.contains(p));
        }
        assert!(s.matches("MTTKRP").count() >= 4);
    }

    #[test]
    fn working_set_grows_with_rank_kernels() {
        let bt = load_one("regS", 0.01).unwrap();
        let ttv = working_set(&bt, Kernel::Ttv, Format::Coo, 0);
        let ttm = working_set(&bt, Kernel::Ttm, Format::Coo, 0);
        assert!(ttm > ttv);
    }
}
