//! Driving the SIMT simulator over the benchmark datasets.
//!
//! The figure harness's `--simulate` path: instead of the calibrated
//! analytic model, run the actual GPU kernels on `pasta-simt` and report
//! simulated GFLOPS. Slower but first-principles — coalescing, L2 and
//! atomic behavior come from the executed access stream.

use crate::datasets::{BenchTensor, RANK};
use pasta_core::{seeded_matrix, seeded_vector, DenseMatrix, Result};
use pasta_kernels::{EwOp, Kernel, TsOp};
use pasta_platform::Format;
use pasta_simt::{launch, DeviceSpec, LaunchStats};

/// One simulated kernel result (mode-averaged).
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun {
    /// Mean simulated time.
    pub time: f64,
    /// Achieved GFLOPS over the mode-averaged launch.
    pub gflops: f64,
    /// Aggregate stats of the last launch (diagnostics).
    pub last: LaunchStats,
}

/// Simulates one kernel × format on a device, averaging over modes.
///
/// HiCOO shares the COO GPU kernels for TEW/TS/TTV/TTM (as the paper
/// states); MTTKRP switches to the block-per-CUDA-block HiCOO kernel.
///
/// # Errors
///
/// Propagates kernel construction errors.
pub fn simulate(
    bt: &BenchTensor,
    device: &DeviceSpec,
    kernel: Kernel,
    format: Format,
) -> Result<SimRun> {
    let x = &bt.tensor;
    let order = x.order();
    match kernel {
        Kernel::Tew => {
            let y = x.like_pattern(1.5f32);
            let mut k = pasta_simt::GpuTewCoo::new(x, &y, EwOp::Add)?;
            let stats = launch(device, &mut k);
            Ok(SimRun { time: stats.time, gflops: stats.gflops(), last: stats })
        }
        Kernel::Ts => {
            let mut k = pasta_simt::GpuTsCoo::new(x, TsOp::Mul, 1.5)?;
            let stats = launch(device, &mut k);
            Ok(SimRun { time: stats.time, gflops: stats.gflops(), last: stats })
        }
        Kernel::Ttv => {
            let mut total = 0.0;
            let mut last = None;
            for n in 0..order {
                let v = seeded_vector(x.shape().dim(n) as usize, 7);
                let mut k = pasta_simt::GpuTtvCoo::new(x, &v, n)?;
                let stats = launch(device, &mut k);
                total += stats.time;
                last = Some(stats);
            }
            let time = total / order as f64;
            let flops = 2.0 * x.nnz() as f64;
            Ok(SimRun { time, gflops: flops / time / 1e9, last: last.expect("order >= 1") })
        }
        Kernel::Ttm => {
            let mut total = 0.0;
            let mut last = None;
            for n in 0..order {
                let u = seeded_matrix(x.shape().dim(n) as usize, RANK, 9);
                let mut k = pasta_simt::GpuTtmCoo::new(x, &u, n)?;
                let stats = launch(device, &mut k);
                total += stats.time;
                last = Some(stats);
            }
            let time = total / order as f64;
            let flops = 2.0 * x.nnz() as f64 * RANK as f64;
            Ok(SimRun { time, gflops: flops / time / 1e9, last: last.expect("order >= 1") })
        }
        Kernel::Mttkrp => {
            let factors: Vec<DenseMatrix<f32>> = (0..order)
                .map(|m| seeded_matrix(x.shape().dim(m) as usize, RANK, 11 + m as u64))
                .collect();
            let mut total = 0.0;
            let mut last = None;
            for n in 0..order {
                let stats = match format {
                    Format::Coo => {
                        let mut k = pasta_simt::GpuMttkrpCoo::new(x, &factors, n)?;
                        launch(device, &mut k)
                    }
                    Format::Hicoo => {
                        let mut k = pasta_simt::GpuMttkrpHicoo::new(&bt.hicoo, &factors, n)?;
                        launch(device, &mut k)
                    }
                };
                total += stats.time;
                last = Some(stats);
            }
            let time = total / order as f64;
            let flops = 3.0 * x.nnz() as f64 * RANK as f64;
            Ok(SimRun { time, gflops: flops / time / 1e9, last: last.expect("order >= 1") })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::load_one;
    use pasta_simt::{p100, v100};

    #[test]
    fn simulate_all_kernels_tiny() {
        let bt = load_one("irrS", 0.005).unwrap();
        for k in Kernel::ALL {
            let r = simulate(&bt, &p100(), k, Format::Coo).unwrap();
            assert!(r.time > 0.0 && r.gflops > 0.0, "{k}");
        }
    }

    #[test]
    fn hicoo_mttkrp_uses_block_grid() {
        let bt = load_one("regS", 0.005).unwrap();
        let r = simulate(&bt, &v100(), Kernel::Mttkrp, Format::Hicoo).unwrap();
        assert_eq!(r.last.blocks, bt.hicoo.num_blocks());
    }

    #[test]
    fn v100_not_slower_than_p100_on_streaming() {
        let bt = load_one("irrS", 0.5).unwrap(); // enough blocks to fill both GPUs
        let p = simulate(&bt, &p100(), Kernel::Ts, Format::Coo).unwrap();
        let v = simulate(&bt, &v100(), Kernel::Ts, Format::Coo).unwrap();
        assert!(v.time <= p.time * 1.05, "{} vs {}", v.time, p.time);
    }
}
