//! The paper's five observations, recomputed from figure data.
//!
//! Each check aggregates the Figure 4–7 rows and reports whether the
//! paper's qualitative claim holds in this reproduction (it should — the
//! *shape* of the results is what the suite reproduces, not the absolute
//! numbers).

use crate::figures::FigureRow;
use pasta_kernels::Kernel;
use pasta_platform::Format;

/// The outcome of one observation check on one platform's rows.
#[derive(Debug, Clone)]
pub struct ObservationReport {
    /// Observation number (1–5).
    pub number: u8,
    /// The claim, paraphrased.
    pub claim: &'static str,
    /// Supporting numbers, rendered.
    pub evidence: String,
    /// Whether the reproduction agrees.
    pub holds: bool,
}

fn mean<I: IntoIterator<Item = f64>>(it: I) -> f64 {
    let v: Vec<f64> = it.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn kernel_mean(
    rows: &[FigureRow],
    k: Kernel,
    fmt: Format,
    field: impl Fn(&FigureRow) -> f64,
) -> f64 {
    mean(rows.iter().filter(|r| r.kernel == k && r.format == fmt).map(field))
}

/// Observation 1: achieved performance is diverse (orders of magnitude
/// between the slowest and fastest cell).
pub fn obs1(platform: &str, rows: &[FigureRow]) -> ObservationReport {
    let min = rows.iter().map(|r| r.gflops).fold(f64::INFINITY, f64::min);
    let max = rows.iter().map(|r| r.gflops).fold(0.0, f64::max);
    let spread = max / min.max(1e-12);
    ObservationReport {
        number: 1,
        claim: "achieved performance is diverse and hard to predict",
        evidence: format!("{platform}: {min:.2}..{max:.2} GFLOPS ({spread:.0}x spread)"),
        holds: spread > 10.0,
    }
}

/// Observation 2: performance sits below the Roofline bound except for some
/// small (cache-resident) tensors.
pub fn obs2(platform: &str, rows: &[FigureRow]) -> ObservationReport {
    let over: Vec<&FigureRow> = rows.iter().filter(|r| r.efficiency > 1.0).collect();
    let under = rows.len() - over.len();
    let median_nnz = {
        let mut nnzs: Vec<usize> = rows.iter().map(|r| r.nnz).collect();
        nnzs.sort_unstable();
        nnzs[nnzs.len() / 2]
    };
    let over_small = over.iter().filter(|r| r.nnz <= median_nnz).count();
    let holds = under > rows.len() / 2 && (over.is_empty() || over_small * 2 >= over.len());
    ObservationReport {
        number: 2,
        claim: "mostly below Roofline; exceeders are small, cache-resident tensors",
        evidence: format!(
            "{platform}: {under}/{} cells below the bound; {} above, {over_small} of them at/below median nnz",
            rows.len(),
            over.len()
        ),
        holds,
    }
}

/// Observation 3 needs two platforms: the four-socket CPU's non-streaming
/// efficiency is lower than the two-socket CPU's.
pub fn obs3(bluesky_rows: &[FigureRow], wingtip_rows: &[FigureRow]) -> ObservationReport {
    let bs_ttv = kernel_mean(bluesky_rows, Kernel::Ttv, Format::Coo, |r| r.efficiency);
    let wt_ttv = kernel_mean(wingtip_rows, Kernel::Ttv, Format::Coo, |r| r.efficiency);
    let bs_ts = kernel_mean(bluesky_rows, Kernel::Ts, Format::Coo, |r| r.efficiency);
    let wt_ts = kernel_mean(wingtip_rows, Kernel::Ts, Format::Coo, |r| r.efficiency);
    let holds = wt_ttv < bs_ttv && (wt_ts / bs_ts) > (wt_ttv / bs_ttv);
    ObservationReport {
        number: 3,
        claim: "NUMA hurts non-streaming kernels on multi-socket CPUs",
        evidence: format!(
            "TTV eff: Bluesky {bs_ttv:.2} vs Wingtip {wt_ttv:.2}; TS eff: {bs_ts:.2} vs {wt_ts:.2}"
        ),
        holds,
    }
}

/// Observation 4: HiCOO ≥ COO for TEW/TS/TTV on CPUs; HiCOO-MTTKRP loses on
/// GPUs.
pub fn obs4(cpu_rows: &[FigureRow], gpu_rows: &[FigureRow]) -> ObservationReport {
    let cpu_wins = [Kernel::Tew, Kernel::Ts, Kernel::Ttv]
        .iter()
        .filter(|&&k| {
            kernel_mean(cpu_rows, k, Format::Hicoo, |r| r.gflops)
                >= 0.95 * kernel_mean(cpu_rows, k, Format::Coo, |r| r.gflops)
        })
        .count();
    let gpu_mttkrp_coo = kernel_mean(gpu_rows, Kernel::Mttkrp, Format::Coo, |r| r.gflops);
    let gpu_mttkrp_hicoo = kernel_mean(gpu_rows, Kernel::Mttkrp, Format::Hicoo, |r| r.gflops);
    let holds = cpu_wins == 3 && gpu_mttkrp_hicoo < gpu_mttkrp_coo;
    ObservationReport {
        number: 4,
        claim: "HiCOO >= COO on CPU streaming/TTV; HiCOO-MTTKRP loses on GPU",
        evidence: format!(
            "CPU HiCOO wins {cpu_wins}/3 of (TEW,TS,TTV); GPU MTTKRP {gpu_mttkrp_coo:.2} (COO) vs {gpu_mttkrp_hicoo:.2} (HiCOO) GFLOPS"
        ),
        holds,
    }
}

/// Observation 5: real and synthetic datasets expose different behavior but
/// comparable scales for large tensors.
pub fn obs5(real_rows: &[FigureRow], syn_rows: &[FigureRow]) -> ObservationReport {
    let real_mean = mean(real_rows.iter().map(|r| r.gflops));
    let syn_mean = mean(syn_rows.iter().map(|r| r.gflops));
    let ratio = real_mean.max(syn_mean) / real_mean.min(syn_mean).max(1e-12);
    // Comparable scale: within an order of magnitude on average.
    let holds = ratio < 10.0;
    ObservationReport {
        number: 5,
        claim: "synthetic tensors reveal kernel behavior at a scale comparable to real ones",
        evidence: format!(
            "mean GFLOPS: real {real_mean:.2} vs synthetic {syn_mean:.2} (ratio {ratio:.1}x)"
        ),
        holds,
    }
}

/// Renders a report list.
pub fn render(reports: &[ObservationReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&format!(
            "Observation {}: {} — {}\n  {}\n",
            r.number,
            if r.holds { "HOLDS" } else { "DIVERGES" },
            r.claim,
            r.evidence
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::load_one;
    use crate::figures::figure_rows;
    use pasta_platform::{bluesky, dgx1v, wingtip};

    fn small_rows(spec: &pasta_platform::PlatformSpec) -> Vec<FigureRow> {
        let tensors = vec![load_one("regS", 0.01).unwrap(), load_one("irrS", 0.01).unwrap()];
        figure_rows(spec, &tensors)
    }

    #[test]
    fn observations_hold_on_modeled_data() {
        let bs = small_rows(&bluesky());
        let wt = small_rows(&wingtip());
        let gpu = small_rows(&dgx1v());

        assert!(obs1("Bluesky", &bs).holds, "{}", obs1("Bluesky", &bs).evidence);
        assert!(obs3(&bs, &wt).holds, "{}", obs3(&bs, &wt).evidence);
        assert!(obs4(&bs, &gpu).holds, "{}", obs4(&bs, &gpu).evidence);
    }

    #[test]
    fn render_mentions_every_report() {
        let bs = small_rows(&bluesky());
        let reports = vec![obs1("Bluesky", &bs), obs2("Bluesky", &bs)];
        let s = render(&reports);
        assert!(s.contains("Observation 1"));
        assert!(s.contains("Observation 2"));
    }
}
