//! # pasta-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Artifact | Binary | Module |
//! |---|---|---|
//! | Table I (kernel analysis / OI) | `table1` | [`tables`] |
//! | Table II (datasets) | `table2` | [`tables`], [`datasets`] |
//! | Table III (platforms) | `table3` | [`tables`] |
//! | Figure 3 (Rooflines + OI markers) | `fig3` | [`figures`] |
//! | Figures 4–7 (kernel GFLOPS per platform) | `figures` | [`figures`], [`gpu`] |
//! | Observations 1–5 | `observations` | [`observations`] |
//! | Host ERT sweep | `ert` | `pasta_platform::ert` |
//! | Host-measured kernel runs | `hostrun` | [`runner`] |
//!
//! Criterion benches (`benches/`) time the real kernels on the host machine,
//! one bench per kernel plus format-conversion and scheduling ablations.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod datasets;
pub mod figures;
pub mod gpu;
pub mod observations;
pub mod regress;
pub mod runner;
pub mod tables;

pub use datasets::{load_dataset, load_one, BenchTensor, DatasetKind, BLOCK_SIZE, RANK};
pub use figures::{figure_rows, model_row, to_csv, FigureRow};
pub use regress::{diff, parse_baseline, BenchRow, RegressReport};
pub use runner::{mttkrp_coo_atomic, run_host, run_host_mttkrp_variant, HostRun, MttkrpVariant};
