//! The perf-regression gate behind `hostrun --check-regress`.
//!
//! A committed `results/BENCH_host.json` is the baseline; the current run's
//! records are diffed against it keyed by `(tensor, kernel, format)`. A row
//! regresses when its time exceeds the baseline by more than the noise
//! tolerance (`--regress-tol`, `PASTA_REGRESS_TOL`; a fraction, so `0.5`
//! allows 1.5× the baseline time). Keys present on only one side are
//! reported but never fail the gate — datasets and kernels grow between
//! baselines. Malformed baselines always fail hard, advisory mode or not.

use pasta_obs::json::{self, Json};
use std::collections::BTreeMap;

/// One comparable benchmark row: the diff key plus its measured time.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Tensor profile id (`"s1"`, `"r3"`, …).
    pub tensor: String,
    /// Kernel label, including ablation decorations (`"MTTKRP[atomic]"`).
    pub kernel: String,
    /// Format label (`"coo"`, `"hicoo"`).
    pub format: String,
    /// Measured time in nanoseconds.
    pub time_ns: f64,
}

impl BenchRow {
    fn key(&self) -> String {
        format!("{}/{}/{}", self.tensor, self.kernel, self.format)
    }
}

/// The outcome of one baseline diff.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressReport {
    /// Keys compared on both sides.
    pub compared: usize,
    /// Baseline keys missing from the current run, and vice versa.
    pub unmatched: usize,
    /// One line per regressed key: `key: current vs baseline (ratio)`.
    pub regressions: Vec<String>,
}

impl RegressReport {
    /// Whether the gate passes (no row regressed).
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Parses a `BENCH_host.json` baseline into comparable rows.
///
/// # Errors
///
/// Returns a description of the first structural problem: not a JSON
/// array, a non-object element, or a missing/mistyped field.
pub fn parse_baseline(text: &str) -> Result<Vec<BenchRow>, String> {
    let root = json::parse(text)?;
    let Json::Arr(items) = root else {
        return Err("baseline root must be a JSON array of records".into());
    };
    let mut rows = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let err = |e: String| format!("record {i}: {e}");
        rows.push(BenchRow {
            tensor: item.str_field("tensor").map_err(err)?.to_string(),
            kernel: item.str_field("kernel").map_err(err)?.to_string(),
            format: item.str_field("format").map_err(err)?.to_string(),
            time_ns: item.num_field("time_ns").map_err(err)?,
        });
    }
    Ok(rows)
}

/// Diffs the current run against a baseline with fractional tolerance
/// `tol`. Duplicate keys (mode-averaged reruns) keep the fastest time on
/// both sides, so the diff is deterministic and noise-friendly.
pub fn diff(current: &[BenchRow], baseline: &[BenchRow], tol: f64) -> RegressReport {
    let fastest = |rows: &[BenchRow]| {
        let mut map: BTreeMap<String, f64> = BTreeMap::new();
        for r in rows {
            let t = map.entry(r.key()).or_insert(f64::INFINITY);
            *t = t.min(r.time_ns);
        }
        map
    };
    let cur = fastest(current);
    let base = fastest(baseline);
    let mut compared = 0;
    let mut regressions = Vec::new();
    for (key, &b) in &base {
        let Some(&c) = cur.get(key) else { continue };
        compared += 1;
        if c > b * (1.0 + tol) && c - b > 1.0 {
            regressions.push(format!(
                "{key}: {:.3e} ns vs baseline {:.3e} ns ({:.2}x, tol {:.2}x)",
                c,
                b,
                c / b,
                1.0 + tol
            ));
        }
    }
    let unmatched = (base.len() - compared) + (cur.len() - compared);
    RegressReport { compared, unmatched, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(tensor: &str, kernel: &str, format: &str, time_ns: f64) -> BenchRow {
        BenchRow { tensor: tensor.into(), kernel: kernel.into(), format: format.into(), time_ns }
    }

    #[test]
    fn parses_real_shaped_baseline() {
        let text = r#"[
  {"tensor": "s1", "name": "regS", "nnz": 10, "kernel": "TTV", "format": "coo",
   "time_ns": 1200.5, "gflops": 1.0, "oi": 0.16, "strategy": "", "simd": "avx2",
   "tuned": false, "fused": null}
]"#;
        let rows = parse_baseline(text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key(), "s1/TTV/coo");
        assert!((rows[0].time_ns - 1200.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_baselines() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("[{\"tensor\": 3}]").is_err());
        assert!(parse_baseline("[{\"tensor\": \"s1\", \"kernel\": \"TTV\"}]").is_err());
        assert!(parse_baseline("not json").is_err());
    }

    #[test]
    fn flags_only_out_of_tolerance_rows() {
        let base = vec![row("s1", "TTV", "coo", 1000.0), row("s1", "TTM", "coo", 1000.0)];
        let cur = vec![
            row("s1", "TTV", "coo", 1400.0), // within 1.5x
            row("s1", "TTM", "coo", 1600.0), // regressed
            row("s2", "TTV", "coo", 9.0),    // unmatched: never fails
        ];
        let report = diff(&cur, &base, 0.5);
        assert_eq!(report.compared, 2);
        assert_eq!(report.unmatched, 1);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].starts_with("s1/TTM/coo"));
        assert!(!report.ok());
        assert!(diff(&base, &base, 0.5).ok());
    }

    #[test]
    fn duplicate_keys_keep_fastest_side() {
        let base = vec![row("s1", "TTV", "coo", 1000.0)];
        let cur = vec![row("s1", "TTV", "coo", 5000.0), row("s1", "TTV", "coo", 1001.0)];
        assert!(diff(&cur, &base, 0.5).ok());
    }
}
