//! Regenerates Table I: the kernel flop/byte/OI analysis.
//!
//! Usage: `table1 [tensor-id]` — with a tensor id (default `s2`/regM) the
//! parameters `M`, `M_F`, `n_b` come from the actually generated tensor.

use pasta_bench::datasets::{load_one, BLOCK_SIZE, RANK};
use pasta_bench::tables::table1;

fn main() {
    let key = std::env::args().nth(1).unwrap_or_else(|| "s2".to_string());
    let scale: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let bt = load_one(&key, scale).unwrap_or_else(|| {
        eprintln!("unknown tensor {key:?}; try r1..r15, s1..s15 or a name like regM");
        std::process::exit(2);
    });
    // Use the mode with the fewest fibers, as Table I's M_F ≪ M intends.
    let mf = bt.stats.min_fiber_count() as f64;
    println!(
        "Tensor {} ({}), {} non-zeros, HiCOO B = {BLOCK_SIZE}, R = {RANK}\n",
        bt.profile.id, bt.profile.name, bt.stats.nnz
    );
    println!(
        "{}",
        table1(
            bt.stats.nnz as f64,
            mf,
            RANK as f64,
            bt.block_stats.num_blocks as f64,
            BLOCK_SIZE as f64
        )
    );
}
