//! Regenerates Table II: the dataset descriptions.
//!
//! Usage: `table2 [real|synthetic] [--generate [scale]]` — `--generate`
//! materializes every tensor and reports the actual (post-dedup) non-zero
//! counts instead of the targets.

use pasta_bench::datasets::DatasetKind;
use pasta_bench::tables::table2;
use pasta_gen::{real_profiles, synthetic_profiles};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind: DatasetKind = args
        .first()
        .map(|s| s.parse().unwrap_or(DatasetKind::Synthetic))
        .unwrap_or(DatasetKind::Synthetic);
    let generate = args.iter().any(|a| a == "--generate");
    let scale: f64 = args
        .iter()
        .skip_while(|a| *a != "--generate")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    let profiles = match kind {
        DatasetKind::Real => real_profiles(),
        DatasetKind::Synthetic => synthetic_profiles(),
    };
    let title = match kind {
        DatasetKind::Real => "Table II(a) — real-tensor analogs",
        DatasetKind::Synthetic => "Table II(b) — synthetic tensors",
    };
    println!("{title} (dims and nnz scaled from the paper as documented in DESIGN.md)\n");
    if generate {
        let actual: Vec<usize> = profiles
            .iter()
            .map(|p| {
                let t = p.generate_scaled(scale).expect("generation");
                eprintln!("generated {} ({} nnz)", p.id, t.nnz());
                t.nnz()
            })
            .collect();
        println!("{}", table2(&profiles, Some(&actual)));
    } else {
        println!("{}", table2(&profiles, None));
    }
}
