//! Closed-loop load generator for the `pasta-serve` serving layer.
//!
//! Materializes a catalog of Table II synthetic profiles, expands a
//! seeded power-law `.reqs` stream (`pasta_gen::StreamSpec`) into
//! service requests, and drives them through a [`Server`] in submission
//! windows for one or more passes. Each pass reports request count,
//! p50/p99 latency (nearest-rank, `pasta_serve::LatencyStats`),
//! closed-loop throughput, and the `serve.*` / `cache.*` /
//! `convert.*` counter deltas — so cache effectiveness is measured from
//! the same counter registry the rest of the suite uses.
//!
//! Usage: `servebench [--reqs <file>] [--write-reqs <file>] [--json]
//! [--check] [--no-cache] [--passes n] [--threads n] [--shards n]
//! [--window n] [--profile id] [--scale f] [--tensors n] [--count n]
//! [--seed n]`
//!
//! `--reqs` replays a committed `.reqs` header bit-for-bit;
//! `--write-reqs` saves the header of the current run. With `--json`,
//! per-pass rows (tensor/kernel/format/time_ns, compatible with the
//! `hostrun --check-regress` baseline schema) are written to
//! `results/SERVE_host.json`. `--check` exits non-zero unless every
//! pass sustained nonzero throughput and — from the second pass on —
//! the conversion cache showed hits and strictly fewer misses than the
//! cold pass, asserting the cache actually absorbed re-conversions.

use pasta_gen::{GenRequest, ReqKind, StreamSpec};
use pasta_kernels::{counters, CounterId, CounterSnapshot, EwOp, TsOp};
use pasta_serve::{
    Catalog, ExprSpec, ExprStep, LatencyStats, LatencySummary, MttkrpRoute, OpSpec, Request,
    Server, ServerConfig,
};

/// The paper's fixed HiCOO block size, reused for served HiCOO routes.
const BLOCK_SIZE: u32 = 128;
const JSON_PATH: &str = "results/SERVE_host.json";

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let i = args.iter().position(|a| a == flag);
    if let Some(i) = i {
        args.remove(i);
        return true;
    }
    false
}

fn parse_or_exit<T: std::str::FromStr>(val: &str, what: &str) -> T {
    val.parse().unwrap_or_else(|_| {
        eprintln!("bad {what}: {val}");
        std::process::exit(2);
    })
}

/// Builds the catalog: `spec.tensors` synthetic profiles starting at
/// `spec.profile`, materialized at `spec.scale`.
fn build_catalog(spec: &StreamSpec) -> Catalog {
    let profiles = pasta_gen::synthetic_profiles();
    let start = profiles.iter().position(|p| p.id == spec.profile).unwrap_or_else(|| {
        eprintln!("unknown profile {} (expected a synthetic id like s1)", spec.profile);
        std::process::exit(2);
    });
    let mut catalog = Catalog::new();
    for i in 0..spec.tensors {
        let p = &profiles[(start + i) % profiles.len()];
        let tensor = p.generate_scaled(spec.scale).expect("built-in profile generates");
        catalog.insert(i as u32, p.id, tensor);
    }
    catalog
}

/// Maps one stream entry onto a concrete service request against the
/// catalog (mode reduced by the tensor's order, ranks clamped for jobs).
fn to_request(g: &GenRequest, catalog: &Catalog) -> Request {
    let id = g.tensor as u32;
    let order = catalog.get(id).expect("stream indexes the catalog").tensor.order();
    let mode = g.mode % order;
    let op = match g.kind {
        ReqKind::Tew => OpSpec::Tew { op: EwOp::ALL[(g.seed % 4) as usize], seed: g.seed },
        ReqKind::Ts => OpSpec::Ts {
            op: TsOp::ALL[(g.seed % 4) as usize],
            // Bounded away from zero so Div stays finite.
            scalar: 0.5 + (g.seed % 64) as f32 * 0.25,
        },
        ReqKind::Ttv => OpSpec::Ttv { mode, seed: g.seed },
        ReqKind::Ttm => OpSpec::Ttm { mode, rank: g.rank, seed: g.seed },
        ReqKind::Mttkrp => OpSpec::Mttkrp {
            mode,
            rank: g.rank,
            seed: g.seed,
            route: if g.seed.is_multiple_of(2) {
                MttkrpRoute::Coo
            } else {
                MttkrpRoute::Hicoo(BLOCK_SIZE)
            },
        },
        ReqKind::Cpd => OpSpec::Cpd { rank: g.rank.min(4), sweeps: 1, seed: g.seed },
        ReqKind::Tucker => OpSpec::Tucker { rank: g.rank.min(4), sweeps: 1, seed: g.seed },
        ReqKind::Expr => {
            // A mixed TTV→TTM→TS chain that stays well-formed on any
            // order ≥ 2 catalog tensor: contract the drawn mode, then
            // multiply the (post-contraction) first remaining mode.
            let steps = if order >= 3 {
                [
                    Some(ExprStep::Ttv { mode }),
                    Some(ExprStep::Ttm { mode: 0, rank: g.rank }),
                    Some(ExprStep::Ts { op: TsOp::Mul, scalar: 0.5 + (g.seed % 8) as f32 * 0.5 }),
                    None,
                ]
            } else {
                [
                    Some(ExprStep::Ttv { mode }),
                    Some(ExprStep::Ts { op: TsOp::Mul, scalar: 0.5 + (g.seed % 8) as f32 * 0.5 }),
                    None,
                    None,
                ]
            };
            OpSpec::Expr { spec: ExprSpec { steps, seed: g.seed } }
        }
    };
    Request { tensor: id, op }
}

/// One pass's report: the latency digest plus counter deltas.
struct PassReport {
    summary: LatencySummary,
    requests: u64,
    batches: u64,
    shard_tasks: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    conversions: u64,
}

fn delta(after: &CounterSnapshot, before: &CounterSnapshot, id: CounterId) -> u64 {
    after.get(id) - before.get(id)
}

/// Drives the full stream through the server once, in `window`-sized
/// submission windows.
fn run_pass(server: &mut Server, requests: &[Request], window: usize) -> PassReport {
    let before = counters().snapshot();
    let mut lat = LatencyStats::new();
    let t0 = std::time::Instant::now();
    for chunk in requests.chunks(window.max(1)) {
        let responses = server.submit(chunk.iter().copied()).unwrap_or_else(|e| {
            eprintln!("dispatch failed: {e}");
            std::process::exit(1);
        });
        for r in &responses {
            lat.record(r.latency_ns);
        }
    }
    let elapsed = t0.elapsed().as_nanos() as u64;
    let after = counters().snapshot();
    let summary = lat.summary(elapsed.max(1)).unwrap_or_else(|| {
        eprintln!("empty request stream");
        std::process::exit(1);
    });
    PassReport {
        summary,
        requests: delta(&after, &before, CounterId::ServeRequests),
        batches: delta(&after, &before, CounterId::ServeBatches),
        shard_tasks: delta(&after, &before, CounterId::ServeShardTasks),
        cache_hits: delta(&after, &before, CounterId::CacheHits),
        cache_misses: delta(&after, &before, CounterId::CacheMisses),
        cache_evictions: delta(&after, &before, CounterId::CacheEvictions),
        conversions: delta(&after, &before, CounterId::HicooConversions),
    }
}

fn write_json(path: &std::path::Path, spec: &StreamSpec, reports: &[PassReport]) {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create json"));
    writeln!(f, "[").unwrap();
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 == reports.len() { "" } else { "," };
        writeln!(
            f,
            "  {{\"tensor\": \"{}\", \"kernel\": \"SERVE[p{}]\", \"format\": \"mix\", \
             \"time_ns\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"throughput_rps\": {:.2}, \
             \"requests\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}{}",
            spec.profile,
            i + 1,
            r.summary.p99_ns as f64,
            r.summary.p50_ns,
            r.summary.p99_ns,
            r.summary.throughput_rps,
            r.requests,
            r.cache_hits,
            r.cache_misses,
            comma
        )
        .unwrap();
    }
    writeln!(f, "]").unwrap();
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let reqs_path = take_value_flag(&mut args, "--reqs");
    let write_reqs = take_value_flag(&mut args, "--write-reqs");
    let json = take_flag(&mut args, "--json");
    let check = take_flag(&mut args, "--check");
    let no_cache = take_flag(&mut args, "--no-cache");
    let passes: usize =
        take_value_flag(&mut args, "--passes").map_or(2, |v| parse_or_exit(&v, "--passes"));
    let threads: usize =
        take_value_flag(&mut args, "--threads").map_or(2, |v| parse_or_exit(&v, "--threads"));
    let shards: usize =
        take_value_flag(&mut args, "--shards").map_or(2, |v| parse_or_exit(&v, "--shards"));
    let window: usize =
        take_value_flag(&mut args, "--window").map_or(16, |v| parse_or_exit(&v, "--window"));

    let mut spec = match reqs_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(2);
            });
            StreamSpec::parse(&text).unwrap_or_else(|e| {
                eprintln!("bad .reqs header: {e}");
                std::process::exit(2);
            })
        }
        None => StreamSpec::default(),
    };
    if let Some(v) = take_value_flag(&mut args, "--profile") {
        spec.profile = v;
    }
    if let Some(v) = take_value_flag(&mut args, "--scale") {
        spec.scale = parse_or_exit(&v, "--scale");
    }
    if let Some(v) = take_value_flag(&mut args, "--tensors") {
        spec.tensors = parse_or_exit(&v, "--tensors");
    }
    if let Some(v) = take_value_flag(&mut args, "--count") {
        spec.count = parse_or_exit(&v, "--count");
    }
    if let Some(v) = take_value_flag(&mut args, "--seed") {
        spec.seed = parse_or_exit(&v, "--seed");
    }
    if !args.is_empty() {
        eprintln!("unexpected arguments: {args:?}");
        std::process::exit(2);
    }
    if let Some(path) = write_reqs {
        std::fs::write(&path, spec.render()).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }

    let catalog = build_catalog(&spec);
    let nnz: usize = catalog.ids().iter().map(|&id| catalog.get(id).unwrap().tensor.nnz()).sum();
    println!(
        "catalog: {} tensors from {} at scale {} ({} nnz total); stream: {} requests, seed {}",
        catalog.len(),
        spec.profile,
        spec.scale,
        nnz,
        spec.count,
        spec.seed
    );

    let cfg = ServerConfig {
        threads,
        shards,
        cache_bytes: if no_cache { 0 } else { ServerConfig::default().cache_bytes },
        ..ServerConfig::default()
    };
    let mut server = Server::new(catalog, cfg);
    let requests: Vec<Request> =
        spec.generate().iter().map(|g| to_request(g, server.catalog())).collect();

    let mut reports = Vec::new();
    println!(
        "{:<6} {:>9} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10} {:>12}",
        "pass",
        "requests",
        "batches",
        "shard_tasks",
        "p50_us",
        "p99_us",
        "rps",
        "cache_hits",
        "cache_miss",
        "evictions",
        "conversions"
    );
    for pass in 1..=passes.max(1) {
        let r = run_pass(&mut server, &requests, window);
        println!(
            "{:<6} {:>9} {:>8} {:>12} {:>10.1} {:>10.1} {:>10.1} {:>10} {:>11} {:>10} {:>12}",
            pass,
            r.requests,
            r.batches,
            r.shard_tasks,
            r.summary.p50_ns as f64 / 1e3,
            r.summary.p99_ns as f64 / 1e3,
            r.summary.throughput_rps,
            r.cache_hits,
            r.cache_misses,
            r.cache_evictions,
            r.conversions
        );
        reports.push(r);
    }

    if json {
        write_json(std::path::Path::new(JSON_PATH), &spec, &reports);
        println!("wrote {JSON_PATH}");
    }

    if check {
        let mut failures: Vec<String> = Vec::new();
        for (i, r) in reports.iter().enumerate() {
            if r.summary.throughput_rps <= 0.0 {
                failures.push(format!("pass {}: zero throughput", i + 1));
            }
            if r.requests != spec.count as u64 {
                failures.push(format!(
                    "pass {}: {} requests served, expected {}",
                    i + 1,
                    r.requests,
                    spec.count
                ));
            }
        }
        if no_cache {
            for (i, r) in reports.iter().enumerate() {
                if r.cache_hits + r.cache_misses + r.cache_evictions != 0 {
                    failures.push(format!("pass {}: cache counters moved while disabled", i + 1));
                }
            }
        } else if reports.len() >= 2 {
            let (cold, warm) = (&reports[0], reports.last().unwrap());
            if warm.cache_hits == 0 {
                failures.push("warm pass: no cache hits".into());
            }
            if warm.cache_misses >= cold.cache_misses.max(1) {
                failures.push(format!(
                    "warm pass: {} conversions vs {} cold — cache absorbed nothing",
                    warm.cache_misses, cold.cache_misses
                ));
            }
            if warm.conversions > cold.conversions {
                failures.push("warm pass: more HiCOO conversions than cold".into());
            }
        } else {
            failures.push("--check needs --passes >= 2 (cold + warm)".into());
        }
        if failures.is_empty() {
            println!("check OK: sustained throughput, cache effective on warm pass");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
