//! Regenerates Table III: platform parameters.

use pasta_bench::tables::table3;
use pasta_platform::all_platforms;

fn main() {
    println!("Table III — platform parameters\n");
    println!("{}", table3(&all_platforms()));
}
