//! Recomputes the paper's Observations 1–5 from the modeled Figures 4–7.
//!
//! Usage: `observations [scale]`

use pasta_bench::datasets::{load_dataset, DatasetKind};
use pasta_bench::figures::{figure_rows, FigureRow};
use pasta_bench::observations::{obs1, obs2, obs3, obs4, obs5, render};
use pasta_platform::{bluesky, dgx1p, dgx1v, wingtip};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    eprintln!("materializing datasets at scale {scale}...");
    let syn = load_dataset(DatasetKind::Synthetic, scale);
    let real = load_dataset(DatasetKind::Real, scale);
    let all: Vec<_> = syn.iter().chain(real.iter()).cloned().collect();

    let bs = figure_rows(&bluesky(), &all);
    let wt = figure_rows(&wingtip(), &all);
    let p = figure_rows(&dgx1p(), &all);
    let v = figure_rows(&dgx1v(), &all);
    let gpu: Vec<FigureRow> = p.iter().chain(v.iter()).cloned().collect();

    let real_rows = figure_rows(&bluesky(), &real);
    let syn_rows = figure_rows(&bluesky(), &syn);

    let mut reports = Vec::new();
    for (name, rows) in [("Bluesky", &bs), ("Wingtip", &wt), ("DGX-1P", &p), ("DGX-1V", &v)] {
        reports.push(obs1(name, rows));
        reports.push(obs2(name, rows));
    }
    reports.push(obs3(&bs, &wt));
    reports.push(obs4(&bs, &gpu));
    reports.push(obs5(&real_rows, &syn_rows));

    println!("{}", render(&reports));
    let failed = reports.iter().filter(|r| !r.holds).count();
    println!("{} / {} checks hold", reports.len() - failed, reports.len());
}
