//! Regenerates Figures 4–7: five-kernel performance on one platform over
//! both datasets, with the per-tensor Roofline bound.
//!
//! Usage: `figures <bluesky|wingtip|dgx1p|dgx1v> [scale] [--simulate]`
//!
//! - Figure 4 = `figures bluesky`, Figure 5 = `figures wingtip`,
//!   Figure 6 = `figures dgx1p`, Figure 7 = `figures dgx1v`.
//! - `scale` (default 1.0) multiplies the dataset non-zero targets.
//! - `--simulate` (GPU platforms only) drives the SIMT simulator instead of
//!   the calibrated model — slower, first-principles.

use pasta_bench::datasets::{load_dataset, DatasetKind};
use pasta_bench::figures::{figure_rows, to_csv, FigureRow};
use pasta_bench::gpu::simulate;
use pasta_kernels::Kernel;
use pasta_platform::{find_platform, Format};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: figures <bluesky|wingtip|dgx1p|dgx1v> [scale] [--simulate]");
        std::process::exit(2);
    };
    let lower = name.to_ascii_lowercase();
    let lookup = match lower.as_str() {
        "bluesky" => "Bluesky",
        "wingtip" => "Wingtip",
        "dgx1p" | "dgx-1p" | "p100" => "DGX-1P",
        "dgx1v" | "dgx-1v" | "v100" => "DGX-1V",
        other => other,
    };
    let Some(spec) = find_platform(lookup) else {
        eprintln!("unknown platform {name:?}");
        std::process::exit(2);
    };
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let simulate_flag = args.iter().any(|a| a == "--simulate");

    let fig = match spec.name {
        "Bluesky" => 4,
        "Wingtip" => 5,
        "DGX-1P" => 6,
        _ => 7,
    };
    println!(
        "# Figure {fig} — {} (scale {scale}{})",
        spec.name,
        if simulate_flag { ", SIMT-simulated" } else { ", modeled" }
    );

    for (kind, label) in [(DatasetKind::Synthetic, "synthetic"), (DatasetKind::Real, "real")] {
        eprintln!("materializing {label} dataset...");
        let tensors = load_dataset(kind, scale);
        let rows: Vec<FigureRow> = if simulate_flag {
            let device = match spec.name {
                "DGX-1P" => pasta_simt::p100(),
                "DGX-1V" => pasta_simt::v100(),
                other => {
                    eprintln!("--simulate only applies to GPU platforms, not {other}");
                    std::process::exit(2);
                }
            };
            let mut rows = Vec::new();
            for bt in &tensors {
                for k in Kernel::ALL {
                    for fmt in [Format::Coo, Format::Hicoo] {
                        eprintln!("  simulating {} {k} {fmt}...", bt.profile.id);
                        let sim = simulate(bt, &device, k, fmt).expect("simulate");
                        // Roofline bound from the model for comparability.
                        let modeled = pasta_bench::figures::model_row(&spec, bt, k, fmt);
                        rows.push(FigureRow {
                            gflops: sim.gflops,
                            efficiency: sim.gflops / modeled.roofline,
                            ..modeled
                        });
                    }
                }
            }
            rows
        } else {
            figure_rows(&spec, &tensors)
        };
        println!("## {label} dataset");
        print!("{}", to_csv(&rows));
    }
}
