//! Regenerates Figure 3: Roofline models for the four platforms with the
//! kernels' operational intensities marked on the ERT-DRAM line.

use pasta_bench::figures::fig3;
use pasta_platform::all_platforms;

fn main() {
    println!("Figure 3 — Roofline models (CSV series per platform)\n");
    print!("{}", fig3(&all_platforms()));
}
