//! ERT-style bandwidth sweep of the host machine (the measured part of the
//! Figure 3 methodology).
//!
//! Usage: `ert [threads] [max_mb]`

use pasta_par::default_threads;
use pasta_platform::{run_ert, StreamKernel};

fn main() {
    let threads: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or_else(default_threads);
    let max_mb: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(256);
    println!("# Host ERT sweep — {threads} threads, up to {max_mb} MiB working set");
    for kernel in [StreamKernel::Copy, StreamKernel::Scale, StreamKernel::Add, StreamKernel::Triad]
    {
        let r = run_ert(kernel, threads, 1 << 16, max_mb << 20);
        println!("## {kernel:?}");
        println!("working_set_bytes,bandwidth_gbps");
        for p in &r.points {
            println!("{},{:.2}", p.working_set_bytes, p.bandwidth / 1e9);
        }
        println!(
            "summary: cache {:.1} GB/s, dram {:.1} GB/s\n",
            r.cache_bandwidth() / 1e9,
            r.dram_bandwidth() / 1e9
        );
    }
}
