//! Host-measured kernel performance over a dataset — the real-execution
//! complement to the modeled Figures 4–7 (this machine is a fifth,
//! "Host" platform column).
//!
//! Usage: `hostrun [--json] [real|synthetic] [scale] [threads]`
//!
//! With `--json`, the per-run records are additionally written to
//! `results/BENCH_host.json` for downstream tooling.

use pasta_bench::datasets::{load_dataset, DatasetKind};
use pasta_bench::runner::{mode_avg_cost, run_host, run_host_mttkrp_variant, MttkrpVariant};
use pasta_kernels::{Ctx, Kernel};
use pasta_par::Schedule;
use pasta_platform::Format;

struct Record {
    tensor: String,
    name: String,
    nnz: usize,
    kernel: String,
    format: String,
    time_ns: f64,
    gflops: f64,
    oi: f64,
    strategy: String,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_json(path: &std::path::Path, records: &[Record]) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "[")?;
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        writeln!(
            f,
            "  {{\"tensor\": \"{}\", \"name\": \"{}\", \"nnz\": {}, \"kernel\": \"{}\", \
             \"format\": \"{}\", \"time_ns\": {:.1}, \"gflops\": {:.4}, \"oi\": {:.4}, \
             \"strategy\": \"{}\"}}{}",
            json_escape(&r.tensor),
            json_escape(&r.name),
            r.nnz,
            json_escape(&r.kernel),
            json_escape(&r.format),
            r.time_ns,
            r.gflops,
            r.oi,
            json_escape(&r.strategy),
            comma
        )?;
    }
    writeln!(f, "]")?;
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let kind: DatasetKind = args
        .first()
        .map(|s| s.parse().unwrap_or(DatasetKind::Synthetic))
        .unwrap_or(DatasetKind::Synthetic);
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let threads: usize =
        args.get(2).and_then(|s| s.parse().ok()).unwrap_or_else(pasta_par::default_threads);
    let ctx = Ctx::new(threads, Schedule::Dynamic(256));

    eprintln!("materializing dataset at scale {scale}...");
    let tensors = load_dataset(kind, scale);
    let mut records = Vec::new();
    println!("tensor,name,nnz,kernel,format,time_s,gflops,oi,strategy");
    for bt in &tensors {
        for k in Kernel::ALL {
            for fmt in [Format::Coo, Format::Hicoo] {
                let run = run_host(bt, k, fmt, &ctx);
                let (flops, bytes) = mode_avg_cost(bt, k, fmt);
                let strategy = run.strategy.clone().unwrap_or_default();
                println!(
                    "{},{},{},{},{},{:.6e},{:.4},{:.4},{}",
                    bt.profile.id,
                    bt.profile.name,
                    bt.stats.nnz,
                    k,
                    fmt,
                    run.time,
                    run.gflops,
                    flops / bytes,
                    strategy
                );
                if json {
                    records.push(Record {
                        tensor: bt.profile.id.to_string(),
                        name: bt.profile.name.to_string(),
                        nnz: bt.stats.nnz,
                        kernel: k.to_string(),
                        format: fmt.to_string(),
                        time_ns: run.time * 1e9,
                        gflops: run.gflops,
                        oi: flops / bytes,
                        strategy,
                    });
                }
            }
        }
        // The serial-atomic vs owner-computes vs privatized MTTKRP ablation
        // (COO only; the atomic baseline lives in this crate).
        for variant in [MttkrpVariant::Atomic, MttkrpVariant::Owner, MttkrpVariant::Privatized] {
            let run = run_host_mttkrp_variant(bt, variant, &ctx);
            let (flops, bytes) = mode_avg_cost(bt, Kernel::Mttkrp, Format::Coo);
            let strategy = run.strategy.clone().unwrap_or_default();
            println!(
                "{},{},{},MTTKRP[{}],coo,{:.6e},{:.4},{:.4},{}",
                bt.profile.id,
                bt.profile.name,
                bt.stats.nnz,
                variant,
                run.time,
                run.gflops,
                flops / bytes,
                strategy
            );
            if json {
                records.push(Record {
                    tensor: bt.profile.id.to_string(),
                    name: bt.profile.name.to_string(),
                    nnz: bt.stats.nnz,
                    kernel: format!("MTTKRP[{variant}]"),
                    format: "coo".to_string(),
                    time_ns: run.time * 1e9,
                    gflops: run.gflops,
                    oi: flops / bytes,
                    strategy,
                });
            }
        }
    }
    if json {
        let path = std::path::Path::new("results/BENCH_host.json");
        match write_json(path, &records) {
            Ok(()) => eprintln!("wrote {} records to {}", records.len(), path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}
