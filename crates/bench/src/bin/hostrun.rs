//! Host-measured kernel performance over a dataset — the real-execution
//! complement to the modeled Figures 4–7 (this machine is a fifth,
//! "Host" platform column).
//!
//! Usage: `hostrun [--json] [--tune] [--e2e] [real|synthetic|<profile-id>] [scale] [threads]`
//! (a profile id like `s1` selects one tensor)
//!
//! With `--json`, the per-run records are additionally written to
//! `results/BENCH_host.json` for downstream tooling.
//!
//! With `--e2e`, each tensor additionally gets four end-to-end
//! decomposition rows — CP-ALS and Tucker/HOOI, each fused (expression
//! plans + per-thread workspaces) and materialized (kernel-at-a-time
//! baseline) — carrying a `fused` column so the ablation is queryable
//! downstream. Kernel rows leave the column empty (JSON `null`).
//!
//! With `--tune`, the measured parameter search in `pasta_kernels::tune`
//! runs instead of the benchmark: per tensor it searches chunk size, HiCOO
//! block size and the MTTKRP dense-privatization threshold, persists the
//! winners to `results/TUNE_host.json` (verifying the file round-trips),
//! and prints the before/after rows. Subsequent plain runs load that table
//! and execute each kernel × format under its tuned parameters.

use pasta_bench::datasets::{load_dataset, load_one, DatasetKind};
use pasta_bench::runner::{
    mode_avg_cost, run_host, run_host_cpd, run_host_mttkrp_variant, run_host_tucker, HostRun,
    MttkrpVariant,
};
use pasta_kernels::{simd_level, tune_tensor, Ctx, FormatKind, Kernel, TensorBucket, TuneTable};
use pasta_par::Schedule;
use pasta_platform::Format;

const TUNE_PATH: &str = "results/TUNE_host.json";

struct Record {
    tensor: String,
    name: String,
    nnz: usize,
    kernel: String,
    format: String,
    time_ns: f64,
    gflops: f64,
    oi: f64,
    strategy: String,
    simd: String,
    tuned: bool,
    /// `Some` only on end-to-end ablation rows: whether the fused route ran.
    fused: Option<bool>,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_json(path: &std::path::Path, records: &[Record]) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "[")?;
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let fused = r.fused.map_or("null".to_string(), |b| b.to_string());
        writeln!(
            f,
            "  {{\"tensor\": \"{}\", \"name\": \"{}\", \"nnz\": {}, \"kernel\": \"{}\", \
             \"format\": \"{}\", \"time_ns\": {:.1}, \"gflops\": {:.4}, \"oi\": {:.4}, \
             \"strategy\": \"{}\", \"simd\": \"{}\", \"tuned\": {}, \"fused\": {}}}{}",
            json_escape(&r.tensor),
            json_escape(&r.name),
            r.nnz,
            json_escape(&r.kernel),
            json_escape(&r.format),
            r.time_ns,
            r.gflops,
            r.oi,
            json_escape(&r.strategy),
            json_escape(&r.simd),
            r.tuned,
            fused,
            comma
        )?;
    }
    writeln!(f, "]")?;
    Ok(())
}

fn format_kind(fmt: Format) -> FormatKind {
    match fmt {
        Format::Coo => FormatKind::Coo,
        Format::Hicoo => FormatKind::Hicoo,
    }
}

/// Runs the measured search over every tensor of the dataset — or a single
/// profile when the first argument names one (e.g. `--tune s1`) — persists
/// the merged table and prints the before/after rows.
fn tune_main(selector: Option<&str>, kind: DatasetKind, scale: f64, threads: usize) {
    eprintln!("materializing dataset at scale {scale}...");
    let tensors = match selector.and_then(|key| load_one(key, scale)) {
        Some(bt) => vec![bt],
        None => load_dataset(kind, scale),
    };
    let path = std::path::Path::new(TUNE_PATH);
    let mut table = TuneTable::load(path).unwrap_or_default();
    println!("kernel,format,bucket,threads,chunk,dense_threshold,block_size,baseline_ns,tuned_ns,speedup");
    for bt in &tensors {
        eprintln!("tuning on {} ({} nnz)...", bt.profile.name, bt.stats.nnz);
        let entries = match tune_tensor(&bt.tensor, &bt.stats, threads) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("  skipped: {e}");
                continue;
            }
        };
        for e in entries {
            println!(
                "{},{},{},{},{},{},{},{:.1},{:.1},{:.3}",
                e.kernel,
                e.format.label(),
                e.bucket,
                e.threads,
                e.params.chunk,
                e.params.dense_threshold,
                e.params.block_size,
                e.baseline_ns,
                e.tuned_ns,
                e.speedup(),
            );
            table.upsert(e);
        }
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match table.save(path) {
        Ok(()) => eprintln!("wrote {} entries to {}", table.entries.len(), path.display()),
        Err(e) => {
            eprintln!("failed to write tune table: {e}");
            std::process::exit(1);
        }
    }
    // The table a later run loads must reproduce what was just measured.
    match TuneTable::load(path) {
        Ok(back) if back == table => eprintln!("round-trip verified"),
        Ok(_) => {
            eprintln!("round-trip mismatch: reloaded table differs");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("round-trip failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let tune = args.iter().any(|a| a == "--tune");
    let e2e = args.iter().any(|a| a == "--e2e");
    args.retain(|a| a != "--json" && a != "--tune" && a != "--e2e");
    let kind: DatasetKind = args
        .first()
        .map(|s| s.parse().unwrap_or(DatasetKind::Synthetic))
        .unwrap_or(DatasetKind::Synthetic);
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let threads: usize =
        args.get(2).and_then(|s| s.parse().ok()).unwrap_or_else(pasta_par::default_threads);
    if tune {
        tune_main(args.first().map(String::as_str), kind, scale, threads);
        return;
    }
    let ctx = Ctx::new(threads, Schedule::Dynamic(256));
    let table = TuneTable::load(std::path::Path::new(TUNE_PATH)).unwrap_or_default();
    if !table.entries.is_empty() {
        eprintln!("loaded {} tuned entries from {TUNE_PATH}", table.entries.len());
    }
    let simd = simd_level().label();

    eprintln!("materializing dataset at scale {scale}...");
    // A profile id as the first argument (e.g. `r3`) selects one tensor.
    let tensors = match args.first().and_then(|key| load_one(key, scale)) {
        Some(bt) => vec![bt],
        None => load_dataset(kind, scale),
    };
    let mut records = Vec::new();
    println!("tensor,name,nnz,kernel,format,time_s,gflops,oi,strategy,simd,tuned,fused");
    for bt in &tensors {
        let bucket = TensorBucket::from_stats(&bt.stats).key();
        for k in Kernel::ALL {
            for fmt in [Format::Coo, Format::Hicoo] {
                let entry = table.lookup(k, format_kind(fmt), &bucket);
                let row_ctx = entry.map_or(ctx, |e| ctx.with_tuning(e.params));
                let tuned = entry.is_some();
                let run = run_host(bt, k, fmt, &row_ctx);
                let (flops, bytes) = mode_avg_cost(bt, k, fmt);
                let strategy = run.strategy.clone().unwrap_or_default();
                println!(
                    "{},{},{},{},{},{:.6e},{:.4},{:.4},{},{},{},",
                    bt.profile.id,
                    bt.profile.name,
                    bt.stats.nnz,
                    k,
                    fmt,
                    run.time,
                    run.gflops,
                    flops / bytes,
                    strategy,
                    simd,
                    tuned
                );
                if json {
                    records.push(Record {
                        tensor: bt.profile.id.to_string(),
                        name: bt.profile.name.to_string(),
                        nnz: bt.stats.nnz,
                        kernel: k.to_string(),
                        format: fmt.to_string(),
                        time_ns: run.time * 1e9,
                        gflops: run.gflops,
                        oi: flops / bytes,
                        strategy,
                        simd: simd.to_string(),
                        tuned,
                        fused: None,
                    });
                }
            }
        }
        // The serial-atomic vs owner-computes vs privatized MTTKRP ablation
        // (COO only; the atomic baseline lives in this crate).
        let entry = table.lookup(Kernel::Mttkrp, FormatKind::Coo, &bucket);
        let abl_ctx = entry.map_or(ctx, |e| ctx.with_tuning(e.params));
        let tuned = entry.is_some();
        for variant in [MttkrpVariant::Atomic, MttkrpVariant::Owner, MttkrpVariant::Privatized] {
            let run = run_host_mttkrp_variant(bt, variant, &abl_ctx);
            let (flops, bytes) = mode_avg_cost(bt, Kernel::Mttkrp, Format::Coo);
            let strategy = run.strategy.clone().unwrap_or_default();
            println!(
                "{},{},{},MTTKRP[{}],{},{:.6e},{:.4},{:.4},{},{},{},",
                bt.profile.id,
                bt.profile.name,
                bt.stats.nnz,
                variant,
                Format::Coo,
                run.time,
                run.gflops,
                flops / bytes,
                strategy,
                simd,
                tuned
            );
            if json {
                records.push(Record {
                    tensor: bt.profile.id.to_string(),
                    name: bt.profile.name.to_string(),
                    nnz: bt.stats.nnz,
                    kernel: format!("MTTKRP[{variant}]"),
                    format: Format::Coo.to_string(),
                    time_ns: run.time * 1e9,
                    gflops: run.gflops,
                    oi: flops / bytes,
                    strategy,
                    simd: simd.to_string(),
                    tuned,
                    fused: None,
                });
            }
        }
        // The end-to-end fused-vs-materialized ablation: CP-ALS and
        // Tucker/HOOI rows, one per route, carrying the `fused` column.
        if e2e {
            let entry = table.lookup(Kernel::Mttkrp, FormatKind::Coo, &bucket);
            let e2e_ctx = entry.map_or(ctx, |e| ctx.with_tuning(e.params));
            let tuned = entry.is_some();
            type E2eRunner = fn(&pasta_bench::datasets::BenchTensor, bool, &Ctx) -> HostRun;
            for (kernel, runner) in [
                ("CPD-ALS", run_host_cpd as E2eRunner),
                ("TUCKER-HOOI", run_host_tucker as E2eRunner),
            ] {
                for fused in [true, false] {
                    let run = runner(bt, fused, &e2e_ctx);
                    let strategy = run.strategy.clone().unwrap_or_default();
                    println!(
                        "{},{},{},{},{},{:.6e},{:.4},,{},{},{},{}",
                        bt.profile.id,
                        bt.profile.name,
                        bt.stats.nnz,
                        kernel,
                        Format::Coo,
                        run.time,
                        run.gflops,
                        strategy,
                        simd,
                        tuned,
                        fused
                    );
                    if json {
                        records.push(Record {
                            tensor: bt.profile.id.to_string(),
                            name: bt.profile.name.to_string(),
                            nnz: bt.stats.nnz,
                            kernel: kernel.to_string(),
                            format: Format::Coo.to_string(),
                            time_ns: run.time * 1e9,
                            gflops: run.gflops,
                            oi: 0.0,
                            strategy,
                            simd: simd.to_string(),
                            tuned,
                            fused: Some(fused),
                        });
                    }
                }
            }
        }
    }
    if json {
        let path = std::path::Path::new("results/BENCH_host.json");
        match write_json(path, &records) {
            Ok(()) => eprintln!("wrote {} records to {}", records.len(), path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}
