//! Host-measured kernel performance over a dataset — the real-execution
//! complement to the modeled Figures 4–7 (this machine is a fifth,
//! "Host" platform column).
//!
//! Usage: `hostrun [--json] [--tune] [--e2e] [--trace]
//! [--check-regress <baseline.json>] [--regress-tol <frac>]
//! [--regress-advisory] [--check-trace <trace.json>]
//! [real|synthetic|<profile-id>] [scale] [threads]`
//! (a profile id like `s1` selects one tensor)
//!
//! With `--json`, the per-run records are additionally written to
//! `results/BENCH_host.json` for downstream tooling. Every CSV/JSON row
//! carries the Table I model cost (`flops`, `bytes_moved`) and the achieved
//! bandwidth (`achieved_gbps`) alongside the GFLOPS, and a per-run
//! roofline-gap report (model vs measured per kernel × format × bucket)
//! prints to stderr after the table.
//!
//! With `--trace`, pasta-obs span recording is enabled for the run and the
//! collected per-thread events (sort passes, HiCOO conversions, kernel
//! strategies, fused chains, pool broadcasts, per-worker task/steal/idle
//! stats) are exported as chrome://tracing JSON to
//! `results/TRACE_host.json`. `--check-trace <path>` validates such a file
//! (schema + span nesting) and exits non-zero if it is malformed.
//!
//! With `--check-regress <baseline.json>`, the current run is diffed
//! against the committed baseline keyed by (tensor, kernel, format); rows
//! slower than baseline × (1 + tolerance) fail the gate (exit 1) unless
//! `--regress-advisory` is given. The tolerance defaults to 0.5 (1.5×) and
//! can be set via `--regress-tol` or `PASTA_REGRESS_TOL`. A malformed
//! baseline always fails hard, advisory mode or not.
//!
//! With `--e2e`, each tensor additionally gets five end-to-end
//! decomposition rows — CP-ALS and Tucker/HOOI, each fused (expression
//! plans + per-thread workspaces) and materialized (kernel-at-a-time
//! baseline), plus a `CPD-GRAPH` row that drives the ALS sweep directly
//! through a planner-lowered expression graph — carrying a `fused` column
//! so the ablation is queryable downstream. Kernel rows leave the column
//! empty (JSON `null`).
//!
//! With `--tune`, the measured parameter search in `pasta_kernels::tune`
//! runs instead of the benchmark: per tensor it searches chunk size, HiCOO
//! block size and the MTTKRP dense-privatization threshold, persists the
//! winners to the host-keyed `results/TUNE_<hostkey>.json` (verifying the
//! file round-trips), and prints the before/after rows. Subsequent plain
//! runs load that table — falling back to the legacy `TUNE_host.json` —
//! and execute each kernel × format under its tuned parameters.

use pasta_bench::datasets::{load_dataset, load_one, DatasetKind};
use pasta_bench::regress::{diff, parse_baseline, BenchRow};
use pasta_bench::runner::{
    mode_avg_cost, run_host, run_host_cpd, run_host_cpd_graph, run_host_mttkrp_variant,
    run_host_tucker, HostRun, MttkrpVariant,
};
use pasta_kernels::{
    roofline_report, simd_level, tune_tensor, Ctx, FormatKind, Kernel, RooflineSample,
    TensorBucket, TuneTable,
};
use pasta_par::Schedule;
use pasta_platform::Format;

const RESULTS_DIR: &str = "results";
const TRACE_PATH: &str = "results/TRACE_host.json";

struct Record {
    tensor: String,
    name: String,
    nnz: usize,
    kernel: String,
    format: String,
    time_ns: f64,
    gflops: f64,
    oi: f64,
    strategy: String,
    simd: String,
    tuned: bool,
    /// `Some` only on end-to-end ablation rows: whether the fused route ran.
    fused: Option<bool>,
    /// Table I model flop count for the run (mode-averaged).
    flops: f64,
    /// Table I model upper-bound bytes moved (mode-averaged; 0 on e2e rows).
    bytes_moved: f64,
    /// Model bytes over measured time, in GB/s (0 on e2e rows).
    achieved_gbps: f64,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_json(path: &std::path::Path, records: &[Record]) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "[")?;
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let fused = r.fused.map_or("null".to_string(), |b| b.to_string());
        writeln!(
            f,
            "  {{\"tensor\": \"{}\", \"name\": \"{}\", \"nnz\": {}, \"kernel\": \"{}\", \
             \"format\": \"{}\", \"time_ns\": {:.1}, \"gflops\": {:.4}, \"oi\": {:.4}, \
             \"strategy\": \"{}\", \"simd\": \"{}\", \"tuned\": {}, \"fused\": {}, \
             \"flops\": {:.1}, \"bytes_moved\": {:.1}, \"achieved_gbps\": {:.4}}}{}",
            json_escape(&r.tensor),
            json_escape(&r.name),
            r.nnz,
            json_escape(&r.kernel),
            json_escape(&r.format),
            r.time_ns,
            r.gflops,
            r.oi,
            json_escape(&r.strategy),
            json_escape(&r.simd),
            r.tuned,
            fused,
            r.flops,
            r.bytes_moved,
            r.achieved_gbps,
            comma
        )?;
    }
    writeln!(f, "]")?;
    Ok(())
}

fn format_kind(fmt: Format) -> FormatKind {
    match fmt {
        Format::Coo => FormatKind::Coo,
        Format::Hicoo => FormatKind::Hicoo,
    }
}

/// Removes `flag <value>` from `args`, returning the value if present.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Validates a chrome-trace file and exits non-zero if it is malformed.
fn check_trace_main(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }
    };
    match pasta_obs::validate_chrome_trace(&text) {
        Ok(spans) => eprintln!("{path}: valid chrome trace, {spans} nested span pairs"),
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            std::process::exit(1);
        }
    }
}

/// Appends per-worker pool stats as instant events and writes the trace.
fn export_trace() {
    for ws in pasta_par::pool::global().worker_stats() {
        pasta_obs::instant("pool", "pool.worker", "", ws.tasks, ws.steals, ws.idle_ns);
    }
    let path = std::path::Path::new(TRACE_PATH);
    match pasta_obs::write_chrome_trace(path) {
        Ok(()) => eprintln!("wrote trace to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Diffs the current records against a committed baseline; exits non-zero
/// on regression (unless advisory) or on a malformed baseline (always).
fn regress_main(baseline_path: &str, records: &[Record], tol: f64, advisory: bool) {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read baseline {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline = match parse_baseline(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("malformed baseline {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let current: Vec<BenchRow> = records
        .iter()
        .map(|r| BenchRow {
            tensor: r.tensor.clone(),
            kernel: r.kernel.clone(),
            format: r.format.clone(),
            time_ns: r.time_ns,
        })
        .collect();
    let report = diff(&current, &baseline, tol);
    eprintln!(
        "regression gate vs {baseline_path}: {} keys compared, {} unmatched, tolerance {:.2}x",
        report.compared,
        report.unmatched,
        1.0 + tol
    );
    for line in &report.regressions {
        eprintln!("  REGRESSED {line}");
    }
    if report.ok() {
        eprintln!("no regressions");
    } else if advisory {
        eprintln!(
            "{} regression(s); advisory mode, not failing the gate",
            report.regressions.len()
        );
    } else {
        std::process::exit(1);
    }
}

/// Runs the measured search over every tensor of the dataset — or a single
/// profile when the first argument names one (e.g. `--tune s1`) — persists
/// the merged table and prints the before/after rows.
fn tune_main(selector: Option<&str>, kind: DatasetKind, scale: f64, threads: usize) {
    eprintln!("materializing dataset at scale {scale}...");
    let tensors = match selector.and_then(|key| load_one(key, scale)) {
        Some(bt) => vec![bt],
        None => load_dataset(kind, scale),
    };
    let dir = std::path::Path::new(RESULTS_DIR);
    let path = TuneTable::host_path(dir);
    let mut table = TuneTable::load_host(dir).unwrap_or_default();
    table.host = pasta_kernels::host_key();
    println!("kernel,format,bucket,threads,chunk,dense_threshold,block_size,baseline_ns,tuned_ns,speedup");
    for bt in &tensors {
        eprintln!("tuning on {} ({} nnz)...", bt.profile.name, bt.stats.nnz);
        let entries = match tune_tensor(&bt.tensor, &bt.stats, threads) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("  skipped: {e}");
                continue;
            }
        };
        for e in entries {
            println!(
                "{},{},{},{},{},{},{},{:.1},{:.1},{:.3}",
                e.kernel,
                e.format.label(),
                e.bucket,
                e.threads,
                e.params.chunk,
                e.params.dense_threshold,
                e.params.block_size,
                e.baseline_ns,
                e.tuned_ns,
                e.speedup(),
            );
            table.upsert(e);
        }
    }
    let _ = std::fs::create_dir_all(dir);
    match table.save(&path) {
        Ok(()) => eprintln!("wrote {} entries to {}", table.entries.len(), path.display()),
        Err(e) => {
            eprintln!("failed to write tune table: {e}");
            std::process::exit(1);
        }
    }
    // The table a later run loads must reproduce what was just measured.
    match TuneTable::load(&path) {
        Ok(back) if back == table => eprintln!("round-trip verified"),
        Ok(_) => {
            eprintln!("round-trip mismatch: reloaded table differs");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("round-trip failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let tune = args.iter().any(|a| a == "--tune");
    let e2e = args.iter().any(|a| a == "--e2e");
    let trace = args.iter().any(|a| a == "--trace");
    let advisory = args.iter().any(|a| a == "--regress-advisory");
    args.retain(|a| {
        a != "--json"
            && a != "--tune"
            && a != "--e2e"
            && a != "--trace"
            && a != "--regress-advisory"
    });
    let check_trace = take_value_flag(&mut args, "--check-trace");
    let check_regress = take_value_flag(&mut args, "--check-regress");
    let tol = take_value_flag(&mut args, "--regress-tol")
        .or_else(|| std::env::var("PASTA_REGRESS_TOL").ok())
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&t| t >= 0.0)
        .unwrap_or(0.5);
    if let Some(path) = check_trace {
        check_trace_main(&path);
        return;
    }
    let kind: DatasetKind = args
        .first()
        .map(|s| s.parse().unwrap_or(DatasetKind::Synthetic))
        .unwrap_or(DatasetKind::Synthetic);
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let threads: usize =
        args.get(2).and_then(|s| s.parse().ok()).unwrap_or_else(pasta_par::default_threads);
    if tune {
        tune_main(args.first().map(String::as_str), kind, scale, threads);
        return;
    }
    if trace {
        pasta_obs::set_tracing(true);
    }
    let ctx = Ctx::new(threads, Schedule::Dynamic(256));
    let table = TuneTable::load_host(std::path::Path::new(RESULTS_DIR)).unwrap_or_default();
    if !table.entries.is_empty() {
        let host = if table.host.is_empty() { "legacy table".into() } else { table.host.clone() };
        eprintln!("loaded {} tuned entries ({host})", table.entries.len());
    }
    let simd = simd_level().label();

    eprintln!("materializing dataset at scale {scale}...");
    // A profile id as the first argument (e.g. `r3`) selects one tensor.
    let tensors = match args.first().and_then(|key| load_one(key, scale)) {
        Some(bt) => vec![bt],
        None => load_dataset(kind, scale),
    };
    let mut records = Vec::new();
    let mut samples: Vec<RooflineSample> = Vec::new();
    println!(
        "tensor,name,nnz,kernel,format,time_s,gflops,oi,strategy,simd,tuned,fused,\
         flops,bytes_moved,achieved_gbps"
    );
    for bt in &tensors {
        let bucket = TensorBucket::from_stats(&bt.stats).key();
        for k in Kernel::ALL {
            for fmt in [Format::Coo, Format::Hicoo] {
                let entry = table.lookup(k, format_kind(fmt), &bucket);
                let row_ctx = entry.map_or(ctx, |e| ctx.with_tuning(e.params));
                let tuned = entry.is_some();
                let run = run_host(bt, k, fmt, &row_ctx);
                let (flops, bytes) = mode_avg_cost(bt, k, fmt);
                let gbps = bytes / run.time / 1e9;
                let strategy = run.strategy.clone().unwrap_or_default();
                samples.push(RooflineSample {
                    kernel: k,
                    format: fmt.to_string(),
                    bucket: bucket.clone(),
                    time_s: run.time,
                    flops,
                    bytes,
                });
                println!(
                    "{},{},{},{},{},{:.6e},{:.4},{:.4},{},{},{},,{:.4e},{:.4e},{:.4}",
                    bt.profile.id,
                    bt.profile.name,
                    bt.stats.nnz,
                    k,
                    fmt,
                    run.time,
                    run.gflops,
                    flops / bytes,
                    strategy,
                    simd,
                    tuned,
                    flops,
                    bytes,
                    gbps
                );
                records.push(Record {
                    tensor: bt.profile.id.to_string(),
                    name: bt.profile.name.to_string(),
                    nnz: bt.stats.nnz,
                    kernel: k.to_string(),
                    format: fmt.to_string(),
                    time_ns: run.time * 1e9,
                    gflops: run.gflops,
                    oi: flops / bytes,
                    strategy,
                    simd: simd.to_string(),
                    tuned,
                    fused: None,
                    flops,
                    bytes_moved: bytes,
                    achieved_gbps: gbps,
                });
            }
        }
        // The serial-atomic vs owner-computes vs privatized MTTKRP ablation
        // (COO only; the atomic baseline lives in this crate).
        let entry = table.lookup(Kernel::Mttkrp, FormatKind::Coo, &bucket);
        let abl_ctx = entry.map_or(ctx, |e| ctx.with_tuning(e.params));
        let tuned = entry.is_some();
        for variant in [MttkrpVariant::Atomic, MttkrpVariant::Owner, MttkrpVariant::Privatized] {
            let run = run_host_mttkrp_variant(bt, variant, &abl_ctx);
            let (flops, bytes) = mode_avg_cost(bt, Kernel::Mttkrp, Format::Coo);
            let gbps = bytes / run.time / 1e9;
            let strategy = run.strategy.clone().unwrap_or_default();
            println!(
                "{},{},{},MTTKRP[{}],{},{:.6e},{:.4},{:.4},{},{},{},,{:.4e},{:.4e},{:.4}",
                bt.profile.id,
                bt.profile.name,
                bt.stats.nnz,
                variant,
                Format::Coo,
                run.time,
                run.gflops,
                flops / bytes,
                strategy,
                simd,
                tuned,
                flops,
                bytes,
                gbps
            );
            records.push(Record {
                tensor: bt.profile.id.to_string(),
                name: bt.profile.name.to_string(),
                nnz: bt.stats.nnz,
                kernel: format!("MTTKRP[{variant}]"),
                format: Format::Coo.to_string(),
                time_ns: run.time * 1e9,
                gflops: run.gflops,
                oi: flops / bytes,
                strategy,
                simd: simd.to_string(),
                tuned,
                fused: None,
                flops,
                bytes_moved: bytes,
                achieved_gbps: gbps,
            });
        }
        // The end-to-end fused-vs-materialized ablation: CP-ALS and
        // Tucker/HOOI rows, one per route, carrying the `fused` column.
        if e2e {
            let entry = table.lookup(Kernel::Mttkrp, FormatKind::Coo, &bucket);
            let e2e_ctx = entry.map_or(ctx, |e| ctx.with_tuning(e.params));
            let tuned = entry.is_some();
            type E2eRunner = fn(&pasta_bench::datasets::BenchTensor, bool, &Ctx) -> HostRun;
            for (kernel, runner) in [
                ("CPD-ALS", run_host_cpd as E2eRunner),
                ("TUCKER-HOOI", run_host_tucker as E2eRunner),
            ] {
                for fused in [true, false] {
                    let run = runner(bt, fused, &e2e_ctx);
                    let strategy = run.strategy.clone().unwrap_or_default();
                    println!(
                        "{},{},{},{},{},{:.6e},{:.4},,{},{},{},{},{:.4e},,",
                        bt.profile.id,
                        bt.profile.name,
                        bt.stats.nnz,
                        kernel,
                        Format::Coo,
                        run.time,
                        run.gflops,
                        strategy,
                        simd,
                        tuned,
                        fused,
                        run.flops
                    );
                    records.push(Record {
                        tensor: bt.profile.id.to_string(),
                        name: bt.profile.name.to_string(),
                        nnz: bt.stats.nnz,
                        kernel: kernel.to_string(),
                        format: Format::Coo.to_string(),
                        time_ns: run.time * 1e9,
                        gflops: run.gflops,
                        oi: 0.0,
                        strategy,
                        simd: simd.to_string(),
                        tuned,
                        fused: Some(fused),
                        flops: run.flops,
                        bytes_moved: 0.0,
                        achieved_gbps: 0.0,
                    });
                }
            }
            // The planner-driven expression-graph route: a third CPD
            // column (graph vs canned-fused vs materialized).
            let run = run_host_cpd_graph(bt, &e2e_ctx);
            let strategy = run.strategy.clone().unwrap_or_default();
            println!(
                "{},{},{},CPD-GRAPH,{},{:.6e},{:.4},,{},{},{},true,{:.4e},,",
                bt.profile.id,
                bt.profile.name,
                bt.stats.nnz,
                Format::Coo,
                run.time,
                run.gflops,
                strategy,
                simd,
                tuned,
                run.flops
            );
            records.push(Record {
                tensor: bt.profile.id.to_string(),
                name: bt.profile.name.to_string(),
                nnz: bt.stats.nnz,
                kernel: "CPD-GRAPH".to_string(),
                format: Format::Coo.to_string(),
                time_ns: run.time * 1e9,
                gflops: run.gflops,
                oi: 0.0,
                strategy,
                simd: simd.to_string(),
                tuned,
                fused: Some(true),
                flops: run.flops,
                bytes_moved: 0.0,
                achieved_gbps: 0.0,
            });
        }
    }
    // The per-run roofline-gap report: model-predicted vs measured rates
    // per (kernel, format, tensor bucket), on stderr below the CSV.
    eprint!("{}", roofline_report(&samples));
    if json {
        let path = std::path::Path::new("results/BENCH_host.json");
        match write_json(path, &records) {
            Ok(()) => eprintln!("wrote {} records to {}", records.len(), path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
    if trace {
        export_trace();
    }
    if let Some(baseline) = check_regress {
        regress_main(&baseline, &records, tol, advisory);
    }
}
