//! Host-measured kernel performance over a dataset — the real-execution
//! complement to the modeled Figures 4–7 (this machine is a fifth,
//! "Host" platform column).
//!
//! Usage: `hostrun [real|synthetic] [scale] [threads]`

use pasta_bench::datasets::{load_dataset, DatasetKind};
use pasta_bench::runner::{mode_avg_cost, run_host};
use pasta_kernels::{Ctx, Kernel};
use pasta_par::Schedule;
use pasta_platform::Format;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind: DatasetKind = args
        .first()
        .map(|s| s.parse().unwrap_or(DatasetKind::Synthetic))
        .unwrap_or(DatasetKind::Synthetic);
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let threads: usize =
        args.get(2).and_then(|s| s.parse().ok()).unwrap_or_else(pasta_par::default_threads);
    let ctx = Ctx::new(threads, Schedule::Dynamic(256));

    eprintln!("materializing dataset at scale {scale}...");
    let tensors = load_dataset(kind, scale);
    println!("tensor,name,nnz,kernel,format,time_s,gflops,oi");
    for bt in &tensors {
        for k in Kernel::ALL {
            for fmt in [Format::Coo, Format::Hicoo] {
                let run = run_host(bt, k, fmt, &ctx);
                let (flops, bytes) = mode_avg_cost(bt, k, fmt);
                println!(
                    "{},{},{},{},{},{:.6e},{:.4},{:.4}",
                    bt.profile.id,
                    bt.profile.name,
                    bt.stats.nnz,
                    k,
                    fmt,
                    run.time,
                    run.gflops,
                    flops / bytes
                );
            }
        }
    }
}
