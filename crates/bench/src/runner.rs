//! Host-measured kernel execution.
//!
//! Mirrors the paper's methodology on the machine running the suite: each
//! kernel is timed over five repetitions of the *value computation* (plans
//! and output allocation are pre-processing), and TTV/TTM/MTTKRP times are
//! further averaged over all tensor modes. GFLOPS uses the Table I flop
//! counts, exactly as the paper computes its y-axes.

use crate::datasets::{BenchTensor, RANK};
use pasta_algos::{cp_als, tucker_hooi, CpdBackend, CpdOptions, TuckerOptions};
use pasta_core::{seeded_matrix, seeded_vector, CooTensor, DenseMatrix, DenseVector, Value};
use pasta_kernels::{
    kernel_cost, lower, mttkrp_coo_traced, mttkrp_hicoo_traced, tew_values_into, ts_values_into,
    Bindings, CostParams, Ctx, EwOp, ExprGraph, ExprOut, FormatKind, FusionChoice, Kernel,
    MttkrpCooPlan, StrategyChoice, TsOp, TtmCooPlan, TtmHicooPlan, TtvCooPlan, TtvHicooPlan,
};
use pasta_obs::span_detail;
use pasta_par::{parallel_for, Atomically};
use pasta_platform::Format;
use std::time::Instant;

/// Repetitions per measurement (the paper runs each kernel five times).
pub const REPS: usize = 5;

/// One host-measured kernel result.
#[derive(Debug, Clone, PartialEq)]
pub struct HostRun {
    /// Mean kernel time in seconds (mode-averaged where applicable).
    pub time: f64,
    /// Table I flop count for the run.
    pub flops: f64,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// The MTTKRP schedules that ran, in mode order and deduplicated
    /// (e.g. `"owner"` or `"owner+privatized-dense"`); `None` for kernels
    /// without strategy dispatch.
    pub strategy: Option<String>,
}

fn time_reps<F: FnMut()>(mut f: F) -> f64 {
    // Warm-up once, then average REPS timed runs.
    f();
    let start = Instant::now();
    for _ in 0..REPS {
        f();
    }
    start.elapsed().as_secs_f64() / REPS as f64
}

/// Runs one kernel × format on the host and reports mode-averaged GFLOPS.
///
/// # Panics
///
/// Panics only on internal errors (operands are constructed consistently).
pub fn run_host(bt: &BenchTensor, kernel: Kernel, format: Format, ctx: &Ctx) -> HostRun {
    let x = &bt.tensor;
    let order = x.order();
    let m = x.nnz() as f64;
    let _span = span_detail(
        "bench",
        "bench.run_host",
        kernel.label(),
        x.nnz() as u64,
        ctx.threads as u64,
        0,
    );

    match kernel {
        Kernel::Tew => {
            let y = x.like_pattern(1.5f32);
            let mut out = vec![0.0f32; x.nnz()];
            let (xv, yv): (Vec<f32>, Vec<f32>) = match format {
                Format::Coo => (x.vals().to_vec(), y.vals().to_vec()),
                Format::Hicoo => (bt.hicoo.vals().to_vec(), vec![1.5f32; x.nnz()]),
            };
            let time = time_reps(|| {
                tew_values_into(EwOp::Add, &xv, &yv, &mut out, ctx).expect("tew");
            });
            HostRun { time, flops: m, gflops: m / time / 1e9, strategy: None }
        }
        Kernel::Ts => {
            let mut out = vec![0.0f32; x.nnz()];
            let xv: Vec<f32> = match format {
                Format::Coo => x.vals().to_vec(),
                Format::Hicoo => bt.hicoo.vals().to_vec(),
            };
            let time = time_reps(|| {
                ts_values_into(TsOp::Mul, &xv, 1.5, &mut out, ctx).expect("ts");
            });
            HostRun { time, flops: m, gflops: m / time / 1e9, strategy: None }
        }
        Kernel::Ttv => {
            let mut total = 0.0;
            for n in 0..order {
                let v: DenseVector<f32> = seeded_vector(x.shape().dim(n) as usize, 7);
                total += match format {
                    Format::Coo => {
                        let plan = TtvCooPlan::new(x, n).expect("plan");
                        let mut out = vec![0.0f32; plan.num_fibers()];
                        time_reps(|| plan.execute_values(&v, &mut out, ctx).expect("ttv"))
                    }
                    Format::Hicoo => {
                        let plan = TtvHicooPlan::new(x, n, ctx.block_size()).expect("plan");
                        let mut out = vec![0.0f32; plan.num_fibers()];
                        time_reps(|| plan.execute_values(&v, &mut out, ctx).expect("ttv"))
                    }
                };
            }
            let time = total / order as f64;
            let flops = 2.0 * m;
            HostRun { time, flops, gflops: flops / time / 1e9, strategy: None }
        }
        Kernel::Ttm => {
            let mut total = 0.0;
            for n in 0..order {
                let u: DenseMatrix<f32> = seeded_matrix(x.shape().dim(n) as usize, RANK, 9);
                total += match format {
                    Format::Coo => {
                        let plan = TtmCooPlan::new(x, n).expect("plan");
                        let mut out = vec![0.0f32; plan.num_fibers() * RANK];
                        time_reps(|| plan.execute_values(&u, &mut out, ctx).expect("ttm"))
                    }
                    Format::Hicoo => {
                        let plan = TtmHicooPlan::new(x, n, ctx.block_size()).expect("plan");
                        let mut out = vec![0.0f32; plan.num_fibers() * RANK];
                        time_reps(|| plan.execute_values(&u, &mut out, ctx).expect("ttm"))
                    }
                };
            }
            let time = total / order as f64;
            let flops = 2.0 * m * RANK as f64;
            HostRun { time, flops, gflops: flops / time / 1e9, strategy: None }
        }
        Kernel::Mttkrp => {
            let factors: Vec<DenseMatrix<f32>> = (0..order)
                .map(|mm| seeded_matrix(x.shape().dim(mm) as usize, RANK, 11 + mm as u64))
                .collect();
            // A tuned block size differing from the pre-built blocking means
            // re-blocking the tensor — pre-processing, like plan construction.
            let reblocked = (ctx.block_size() != bt.hicoo.block_size())
                .then(|| pasta_core::HiCooTensor::from_coo(x, ctx.block_size()).expect("hicoo"));
            let hicoo = reblocked.as_ref().unwrap_or(&bt.hicoo);
            let mut total = 0.0;
            let mut strategies: Vec<String> = Vec::new();
            for n in 0..order {
                let mut note = String::new();
                total += match format {
                    Format::Coo => time_reps(|| {
                        let (_, run) = mttkrp_coo_traced(x, &factors, n, ctx).expect("mttkrp");
                        note = run.strategy.to_string();
                    }),
                    Format::Hicoo => time_reps(|| {
                        let (_, run) =
                            mttkrp_hicoo_traced(hicoo, &factors, n, ctx).expect("mttkrp");
                        note = run.strategy.to_string();
                    }),
                };
                if !strategies.contains(&note) {
                    strategies.push(note);
                }
            }
            let time = total / order as f64;
            let flops = 3.0 * m * RANK as f64;
            HostRun {
                time,
                flops,
                gflops: flops / time / 1e9,
                strategy: Some(strategies.join("+")),
            }
        }
    }
}

/// The three COO-MTTKRP implementations the strategy benches compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MttkrpVariant {
    /// The pre-scheduling baseline: non-zero-parallel with atomic adds on
    /// the shared output (kept here so the kernel crate stays atomic-free).
    Atomic,
    /// Owner-computes via a [`MttkrpCooPlan`] (re-sorts once per mode).
    Owner,
    /// Privatized reduction, forced regardless of sort state.
    Privatized,
}

impl std::fmt::Display for MttkrpVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MttkrpVariant::Atomic => "atomic",
            MttkrpVariant::Owner => "owner",
            MttkrpVariant::Privatized => "privatized",
        })
    }
}

/// The retired atomic COO-MTTKRP, preserved as the bench baseline the
/// contention-free strategies are measured against.
///
/// Non-zero-parallel with one atomic CAS-add per output cell — the paper's
/// `omp atomic` formulation that the scheduling layer replaced.
///
/// # Panics
///
/// Panics on inconsistent operands (bench inputs are constructed
/// consistently; use the kernel crate's checked entry points elsewhere).
pub fn mttkrp_coo_atomic<V: Value + Atomically>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    ctx: &Ctx,
) -> DenseMatrix<V> {
    let r = factors[0].cols();
    let order = x.order();
    let mut out = DenseMatrix::zeros(x.shape().dim(n) as usize, r);
    let cells = V::as_atomics(out.as_mut_slice());
    parallel_for(x.nnz(), ctx.threads, ctx.schedule, |range| {
        let mut tmp = vec![V::ZERO; r];
        for xx in range {
            tmp.fill(x.vals()[xx]);
            for (m, factor) in factors.iter().enumerate().take(order) {
                if m != n {
                    let row = factor.row(x.mode_inds(m)[xx] as usize);
                    for (t, &u) in tmp.iter_mut().zip(row) {
                        *t *= u;
                    }
                }
            }
            let base = x.mode_inds(n)[xx] as usize * r;
            for (rr, &t) in tmp.iter().enumerate() {
                V::atomic_add(&cells[base + rr], t);
            }
        }
    });
    out
}

/// Times one COO-MTTKRP variant mode-averaged over all modes (the
/// serial-atomic vs owner-computes vs privatized comparison emitted into
/// `results/BENCH_host.json`).
///
/// # Panics
///
/// Panics only on internal errors (operands are constructed consistently).
pub fn run_host_mttkrp_variant(bt: &BenchTensor, variant: MttkrpVariant, ctx: &Ctx) -> HostRun {
    let x = &bt.tensor;
    let order = x.order();
    let m = x.nnz() as f64;
    let factors: Vec<DenseMatrix<f32>> = (0..order)
        .map(|mm| seeded_matrix(x.shape().dim(mm) as usize, RANK, 11 + mm as u64))
        .collect();
    let mut total = 0.0;
    let mut strategies: Vec<String> = Vec::new();
    for n in 0..order {
        let mut note = variant.to_string();
        total += match variant {
            MttkrpVariant::Atomic => time_reps(|| {
                mttkrp_coo_atomic(x, &factors, n, ctx);
            }),
            MttkrpVariant::Owner => {
                // Plan construction (the one-off re-sort) is pre-processing,
                // like the TTV/TTM plans: only execution is timed.
                let plan = MttkrpCooPlan::new(x, n, &ctx.with_mttkrp(StrategyChoice::Owner))
                    .expect("plan");
                time_reps(|| {
                    let (_, run) = plan.execute(&factors).expect("mttkrp");
                    note = run.strategy.to_string();
                })
            }
            MttkrpVariant::Privatized => time_reps(|| {
                let (_, run) =
                    mttkrp_coo_traced(x, &factors, n, &ctx.with_mttkrp(StrategyChoice::Privatized))
                        .expect("mttkrp");
                note = run.strategy.to_string();
            }),
        };
        if !strategies.contains(&note) {
            strategies.push(note);
        }
    }
    let time = total / order as f64;
    let flops = 3.0 * m * RANK as f64;
    HostRun { time, flops, gflops: flops / time / 1e9, strategy: Some(strategies.join("+")) }
}

/// Mode-averaged Table I cost of a kernel on this tensor (for Roofline
/// bounds and efficiency reporting).
pub fn mode_avg_cost(bt: &BenchTensor, kernel: Kernel, format: Format) -> (f64, f64) {
    let order = bt.stats.order;
    let mut flops = 0.0;
    let mut bytes = 0.0;
    for n in 0..order {
        let p = CostParams {
            m: bt.stats.nnz as f64,
            mf: bt.stats.fiber_counts[n] as f64,
            r: RANK as f64,
            nb: bt.block_stats.num_blocks as f64,
            block_size: bt.block_stats.block_size as f64,
        };
        let c = kernel_cost(kernel, &p);
        flops += c.flops;
        bytes += match format {
            Format::Coo => c.coo_bytes,
            Format::Hicoo => c.hicoo_bytes,
        };
    }
    (flops / order as f64, bytes / order as f64)
}

/// Decomposition rank for the end-to-end CPD/Tucker ablation rows.
pub const E2E_RANK: usize = 8;
/// ALS/HOOI sweeps per timed end-to-end run.
pub const E2E_ITERS: usize = 5;
/// Mode-length cap for the Tucker end-to-end tensor (see [`fold_dims`]).
pub const TUCKER_DIM_CAP: u32 = 96;

/// Folds coordinates modulo `cap` per mode (summing collisions), producing
/// a tensor with every mode length at most `cap`.
///
/// The generator profiles keep paper-scale mode lengths (up to 2²⁰), but the
/// Tucker/HOOI factor update runs a dense eigensolve per mode that is O(I³)
/// in the mode length. Folding keeps the end-to-end run dominated by the
/// sparse TTM chain — the code path the fused-vs-materialized ablation is
/// measuring — rather than by dense linear algebra.
pub fn fold_dims<V: Value>(x: &CooTensor<V>, cap: u32) -> CooTensor<V> {
    let dims: Vec<u32> = x.shape().dims().iter().map(|&d| d.min(cap)).collect();
    let mut out = CooTensor::new(pasta_core::Shape::new(dims));
    for (e, &v) in x.vals().iter().enumerate() {
        let folded: Vec<u32> = x.coords_of(e).iter().map(|&c| c % cap).collect();
        out.push(&folded, v).expect("folded coords are in range");
    }
    out.dedup_sum();
    out
}

/// Times one end-to-end CP-ALS run (rank [`E2E_RANK`], [`E2E_ITERS`] sweeps,
/// zero tolerance so both routes do identical work). `fused = true` runs the
/// fused-expression sweep ([`pasta_kernels::FusedAlsSweep`] via
/// `FusionChoice::Auto`); `fused = false` forces the kernel-at-a-time
/// baseline (`FusionChoice::Materialize`).
pub fn run_host_cpd(bt: &BenchTensor, fused: bool, ctx: &Ctx) -> HostRun {
    let choice = if fused { FusionChoice::Auto } else { FusionChoice::Materialize };
    let opts = CpdOptions {
        rank: E2E_RANK,
        max_iters: E2E_ITERS,
        tol: 0.0,
        seed: 7,
        ctx: ctx.with_fusion(choice),
        backend: CpdBackend::Coo,
    };
    let start = Instant::now();
    let model = cp_als(&bt.tensor, &opts).expect("CP-ALS on a generator profile succeeds");
    let time = start.elapsed().as_secs_f64();
    // Dominant cost: one MTTKRP per mode per sweep at 3·nnz·R flops.
    let flops =
        3.0 * bt.stats.nnz as f64 * E2E_RANK as f64 * bt.stats.order as f64 * model.iters as f64;
    let strategy = Some(if fused { "fused".into() } else { "materialized".into() });
    HostRun { time, flops, gflops: flops / time / 1e9, strategy }
}

/// Times an end-to-end CP-ALS run driven directly through a lowered
/// expression graph: the driver builds the one-edge `mttkrp` graph, lowers
/// it once through the planner, then rebinds the factor set per mode per
/// sweep — the planner-driven route the canned fused sweep wraps, measured
/// without the `cp_als` orchestration around it. Emitted as a third CPD
/// column (`CPD-GRAPH`, strategy `graph`) next to the canned-fused and
/// materialized rows.
///
/// # Panics
///
/// Panics only on internal errors (generator profiles are well-formed and
/// their Gram Hadamard products positive definite).
pub fn run_host_cpd_graph(bt: &BenchTensor, ctx: &Ctx) -> HostRun {
    use pasta_core::linalg::{gram, hadamard, normalize_columns, Cholesky};
    let x = &bt.tensor;
    let order = x.order();
    let mut factors: Vec<DenseMatrix<f32>> = (0..order)
        .map(|m| seeded_matrix(x.shape().dim(m) as usize, E2E_RANK, 7 + m as u64))
        .collect();
    let mut lambda = [1.0f32; E2E_RANK];
    let start = Instant::now();
    let mut g = ExprGraph::new();
    let leaf = g.leaf(x);
    let root = g.mttkrp(leaf, E2E_RANK, FormatKind::Coo, ctx.block_size()).expect("mttkrp node");
    let plan = lower(&g, root, ctx).expect("lowering succeeds");
    let mut grams: Vec<DenseMatrix<f32>> = factors.iter().map(gram).collect();
    for _ in 0..E2E_ITERS {
        for n in 0..order {
            let m_out = match plan.execute(&Bindings::mttkrp(&factors, n)).expect("mttkrp") {
                ExprOut::Matrix(m) => m,
                _ => unreachable!("the mttkrp head yields a matrix"),
            };
            let mut v: Option<DenseMatrix<f32>> = None;
            for (m, gm) in grams.iter().enumerate() {
                if m != n {
                    v = Some(match v {
                        Some(acc) => hadamard(&acc, gm),
                        None => gm.clone(),
                    });
                }
            }
            let v = v.expect("order >= 2");
            let ch = Cholesky::factor(&v, 1e-10f32).expect("positive definite");
            let mut a = m_out;
            ch.solve_rows(&mut a);
            let norms = normalize_columns(&mut a);
            for (l, nn) in lambda.iter_mut().zip(&norms) {
                *l = *nn;
            }
            grams[n] = gram(&a);
            factors[n] = a;
        }
    }
    let time = start.elapsed().as_secs_f64();
    let flops = 3.0 * bt.stats.nnz as f64 * E2E_RANK as f64 * order as f64 * E2E_ITERS as f64;
    HostRun { time, flops, gflops: flops / time / 1e9, strategy: Some("graph".into()) }
}

/// Times one end-to-end Tucker/HOOI run over the dim-folded tensor
/// ([`fold_dims`] at [`TUCKER_DIM_CAP`], ranks [`E2E_RANK`] per mode,
/// [`E2E_ITERS`] sweeps). `fused = true` routes the per-mode TTM chains
/// through [`pasta_kernels::FusedTtmChainPlan`]; `fused = false` forces the
/// materializing `ttm_chain` baseline.
pub fn run_host_tucker(bt: &BenchTensor, fused: bool, ctx: &Ctx) -> HostRun {
    let x = fold_dims(&bt.tensor, TUCKER_DIM_CAP);
    let choice = if fused { FusionChoice::Fuse } else { FusionChoice::Materialize };
    let order = x.order();
    let ranks = vec![E2E_RANK; order];
    let opts = TuckerOptions { ranks, max_iters: E2E_ITERS, seed: 7, ctx: ctx.with_fusion(choice) };
    let start = Instant::now();
    let _model = tucker_hooi(&x, &opts).expect("Tucker on a folded generator profile succeeds");
    let time = start.elapsed().as_secs_f64();
    // Dominant sparse cost: one (order−1)-step TTM chain per mode per sweep,
    // each step touching every remaining non-zero at 2·R flops.
    let flops =
        2.0 * x.nnz() as f64 * E2E_RANK as f64 * (order * (order - 1)) as f64 * E2E_ITERS as f64;
    let strategy = Some(if fused { "fused".into() } else { "materialized".into() });
    HostRun { time, flops, gflops: flops / time / 1e9, strategy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::load_one;

    #[test]
    fn host_runs_all_kernels_small() {
        let bt = load_one("regS", 0.01).unwrap();
        let ctx = Ctx::new(2, pasta_par::Schedule::Dynamic(256));
        for k in Kernel::ALL {
            for fmt in [Format::Coo, Format::Hicoo] {
                let r = run_host(&bt, k, fmt, &ctx);
                assert!(r.time > 0.0 && r.time.is_finite(), "{k} {fmt}");
                assert!(r.gflops > 0.0, "{k} {fmt}");
            }
        }
    }

    #[test]
    fn host_run_reports_mttkrp_strategy() {
        let bt = load_one("regS", 0.01).unwrap();
        let ctx = Ctx::new(2, pasta_par::Schedule::Static);
        let r = run_host(&bt, Kernel::Mttkrp, Format::Coo, &ctx);
        let s = r.strategy.as_deref().expect("MTTKRP reports a strategy");
        assert!(!s.is_empty());
        let r = run_host(&bt, Kernel::Tew, Format::Coo, &ctx);
        assert!(r.strategy.is_none(), "TEW has no strategy dispatch");
    }

    #[test]
    fn mttkrp_variants_agree() {
        let bt = load_one("irrS", 0.01).unwrap();
        let ctx = Ctx::new(2, pasta_par::Schedule::Static);
        for v in [MttkrpVariant::Atomic, MttkrpVariant::Owner, MttkrpVariant::Privatized] {
            let r = run_host_mttkrp_variant(&bt, v, &ctx);
            assert!(r.time > 0.0 && r.gflops > 0.0, "{v}");
            assert!(r.strategy.is_some());
        }
        // Correctness of the baseline itself, against the checked kernel.
        let factors: Vec<DenseMatrix<f32>> = (0..bt.tensor.order())
            .map(|mm| seeded_matrix(bt.tensor.shape().dim(mm) as usize, 4, 3 + mm as u64))
            .collect();
        let atomic = mttkrp_coo_atomic(&bt.tensor, &factors, 0, &ctx);
        let (checked, _) = mttkrp_coo_traced(&bt.tensor, &factors, 0, &Ctx::sequential()).unwrap();
        for (a, b) in atomic.as_slice().iter().zip(checked.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn fold_dims_caps_every_mode() {
        let bt = load_one("regS", 0.01).unwrap();
        let folded = fold_dims(&bt.tensor, 64);
        assert!(folded.shape().dims().iter().all(|&d| d <= 64));
        assert!(folded.nnz() > 0 && folded.nnz() <= bt.tensor.nnz());
        let a: f64 = bt.tensor.vals().iter().map(|&v| v as f64).sum();
        let b: f64 = folded.vals().iter().map(|&v| v as f64).sum();
        assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0), "folding preserves the value mass");
    }

    #[test]
    fn e2e_runners_produce_finite_rows() {
        let bt = load_one("regS", 0.002).unwrap();
        let ctx = Ctx::new(2, pasta_par::Schedule::Static);
        for fused in [true, false] {
            let r = run_host_cpd(&bt, fused, &ctx);
            assert!(r.time > 0.0 && r.gflops > 0.0, "cpd fused={fused}");
            let want = if fused { "fused" } else { "materialized" };
            assert_eq!(r.strategy.as_deref(), Some(want));
            let r = run_host_tucker(&bt, fused, &ctx);
            assert!(r.time > 0.0 && r.gflops > 0.0, "tucker fused={fused}");
            assert_eq!(r.strategy.as_deref(), Some(want));
        }
        let r = run_host_cpd_graph(&bt, &ctx);
        assert!(r.time > 0.0 && r.gflops > 0.0, "graph-CPD");
        assert_eq!(r.strategy.as_deref(), Some("graph"));
    }

    #[test]
    fn mode_avg_cost_positive() {
        let bt = load_one("irrS", 0.01).unwrap();
        for k in Kernel::ALL {
            let (f, b) = mode_avg_cost(&bt, k, Format::Coo);
            assert!(f > 0.0 && b > 0.0, "{k}");
            let (_, bh) = mode_avg_cost(&bt, k, Format::Hicoo);
            assert!(bh > 0.0);
        }
    }
}
