//! Criterion bench: TTV (COO fiber-parallel vs HiCOO block-parallel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pasta_bench::datasets::{load_one, BLOCK_SIZE};
use pasta_core::seeded_vector;
use pasta_kernels::{Ctx, TtvCooPlan, TtvHicooPlan};

fn bench_ttv(c: &mut Criterion) {
    let ctx = Ctx::parallel();
    let mut group = c.benchmark_group("ttv");
    group.sample_size(20);
    for key in ["regS", "irrS"] {
        let bt = load_one(key, 0.5).expect("profile");
        let m = bt.tensor.nnz();
        group.throughput(Throughput::Elements(2 * m as u64)); // 2 flops per nnz
        let n = bt.tensor.order() - 1;
        let v = seeded_vector::<f32>(bt.tensor.shape().dim(n) as usize, 7);

        let coo_plan = TtvCooPlan::new(&bt.tensor, n).unwrap();
        let mut out = vec![0.0f32; coo_plan.num_fibers()];
        group.bench_with_input(BenchmarkId::new("coo", key), &m, |b, _| {
            b.iter(|| coo_plan.execute_values(&v, &mut out, &ctx).unwrap());
        });

        let hicoo_plan = TtvHicooPlan::new(&bt.tensor, n, BLOCK_SIZE).unwrap();
        let mut out_h = vec![0.0f32; hicoo_plan.num_fibers()];
        group.bench_with_input(BenchmarkId::new("hicoo", key), &m, |b, _| {
            b.iter(|| hicoo_plan.execute_values(&v, &mut out_h, &ctx).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ttv);
criterion_main!(benches);
