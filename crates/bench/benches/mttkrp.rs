//! Criterion bench: MTTKRP with R = 16 — the contention-free strategies
//! (owner-computes, privatized reduction) against the retired atomic
//! baseline and the sequential loop, COO and HiCOO.
//!
//! Set `PASTA_BENCH_SCALE` (default 0.5) to shrink or grow the dataset;
//! CI runs `--test` mode at a small scale to exercise strategy dispatch
//! without timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pasta_bench::datasets::{load_one, RANK};
use pasta_bench::runner::mttkrp_coo_atomic;
use pasta_core::{seeded_matrix, DenseMatrix};
use pasta_kernels::{
    mttkrp_coo, mttkrp_coo_traced, mttkrp_hicoo, Ctx, MttkrpCooPlan, StrategyChoice,
};

fn bench_scale() -> f64 {
    std::env::var("PASTA_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.5)
}

fn bench_mttkrp(c: &mut Criterion) {
    let par = Ctx::parallel();
    let seq = Ctx::sequential();
    let scale = bench_scale();
    let mut group = c.benchmark_group("mttkrp");
    group.sample_size(10);
    for key in ["regS", "irrS"] {
        let bt = load_one(key, scale).expect("profile");
        let m = bt.tensor.nnz();
        group.throughput(Throughput::Elements(3 * RANK as u64 * m as u64));
        let factors: Vec<DenseMatrix<f32>> = (0..bt.tensor.order())
            .map(|mm| seeded_matrix(bt.tensor.shape().dim(mm) as usize, RANK, 11 + mm as u64))
            .collect();

        // Auto dispatch (what `run_host` measures).
        group.bench_with_input(BenchmarkId::new("coo-auto", key), &m, |b, _| {
            b.iter(|| mttkrp_coo(&bt.tensor, &factors, 0, &par).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("coo-seq", key), &m, |b, _| {
            b.iter(|| mttkrp_coo(&bt.tensor, &factors, 0, &seq).unwrap());
        });

        // Strategy ablation: atomic baseline vs the two schedules.
        group.bench_with_input(BenchmarkId::new("coo-atomic", key), &m, |b, _| {
            b.iter(|| mttkrp_coo_atomic(&bt.tensor, &factors, 0, &par));
        });
        let plan = MttkrpCooPlan::new(&bt.tensor, 0, &par.with_mttkrp(StrategyChoice::Owner))
            .expect("plan");
        group.bench_with_input(BenchmarkId::new("coo-owner", key), &m, |b, _| {
            b.iter(|| plan.execute(&factors).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("coo-priv", key), &m, |b, _| {
            b.iter(|| {
                mttkrp_coo_traced(
                    &bt.tensor,
                    &factors,
                    0,
                    &par.with_mttkrp(StrategyChoice::Privatized),
                )
                .unwrap()
            });
        });

        group.bench_with_input(BenchmarkId::new("hicoo-par", key), &m, |b, _| {
            b.iter(|| mttkrp_hicoo(&bt.hicoo, &factors, 0, &par).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mttkrp);
criterion_main!(benches);
