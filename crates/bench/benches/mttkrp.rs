//! Criterion bench: MTTKRP with R = 16 — atomic non-zero-parallel COO vs
//! block-parallel HiCOO, plus the sequential baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pasta_bench::datasets::{load_one, RANK};
use pasta_core::{seeded_matrix, DenseMatrix};
use pasta_kernels::{mttkrp_coo, mttkrp_hicoo, Ctx};

fn bench_mttkrp(c: &mut Criterion) {
    let par = Ctx::parallel();
    let seq = Ctx::sequential();
    let mut group = c.benchmark_group("mttkrp");
    group.sample_size(10);
    for key in ["regS", "irrS"] {
        let bt = load_one(key, 0.5).expect("profile");
        let m = bt.tensor.nnz();
        group.throughput(Throughput::Elements(3 * RANK as u64 * m as u64));
        let factors: Vec<DenseMatrix<f32>> = (0..bt.tensor.order())
            .map(|mm| seeded_matrix(bt.tensor.shape().dim(mm) as usize, RANK, 11 + mm as u64))
            .collect();

        group.bench_with_input(BenchmarkId::new("coo-par", key), &m, |b, _| {
            b.iter(|| mttkrp_coo(&bt.tensor, &factors, 0, &par).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("coo-seq", key), &m, |b, _| {
            b.iter(|| mttkrp_coo(&bt.tensor, &factors, 0, &seq).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("hicoo-par", key), &m, |b, _| {
            b.iter(|| mttkrp_hicoo(&bt.hicoo, &factors, 0, &par).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mttkrp);
criterion_main!(benches);
