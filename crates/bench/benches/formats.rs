//! Criterion bench: format-conversion costs and the HiCOO block-size
//! ablation (the design choice the paper fixes at B = 128).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasta_bench::datasets::load_one;
use pasta_core::{GHiCooTensor, HiCooTensor};

fn bench_formats(c: &mut Criterion) {
    let bt = load_one("irrS", 0.5).expect("profile");
    let mut group = c.benchmark_group("formats");
    group.sample_size(10);

    // COO -> HiCOO conversion across block sizes (ablation).
    for bs in [4u32, 16, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::new("coo_to_hicoo", bs), &bs, |b, &bs| {
            b.iter(|| HiCooTensor::from_coo(&bt.tensor, bs).unwrap());
        });
    }

    // gHiCOO with the last mode kept in COO form (the TTV/TTM layout).
    let order = bt.tensor.order();
    let blocked: Vec<bool> = (0..order).map(|m| m + 1 != order).collect();
    group.bench_function("coo_to_ghicoo", |b| {
        b.iter(|| GHiCooTensor::from_coo(&bt.tensor, 128, &blocked).unwrap());
    });

    // Mode-last sort (TTV/TTM pre-processing).
    group.bench_function("sort_mode_last", |b| {
        b.iter(|| {
            let mut t = bt.tensor.clone();
            t.sort_mode_last(order - 1);
            t
        });
    });

    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
