//! Criterion bench: format-conversion costs and the HiCOO block-size
//! ablation (the design choice the paper fixes at B = 128).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasta_bench::datasets::load_one;
use pasta_core::{GHiCooTensor, HiCooTensor};

fn bench_formats(c: &mut Criterion) {
    let bt = load_one("irrS", 0.5).expect("profile");
    let par_threads = pasta_par::default_threads().max(4);
    let mut group = c.benchmark_group("formats");
    group.sample_size(10);

    // COO sort through the packed-key radix path: serial vs pooled threads.
    let order = bt.tensor.order();
    let mode_order: Vec<usize> = (1..order).chain(std::iter::once(0)).collect();
    for (label, threads) in [("serial", 1usize), ("parallel", par_threads)] {
        group.bench_with_input(BenchmarkId::new("coo_sort_radix", label), &threads, |b, &t| {
            b.iter(|| {
                let mut tensor = bt.tensor.clone();
                tensor.sort_by_mode_order_threads(&mode_order, t);
                tensor
            });
        });
    }

    // COO -> HiCOO at the paper's fixed B = 128: serial vs pooled threads.
    for (label, threads) in [("serial", 1usize), ("parallel", par_threads)] {
        group.bench_with_input(BenchmarkId::new("coo_to_hicoo_radix", label), &threads, |b, &t| {
            b.iter(|| HiCooTensor::from_coo_threads(&bt.tensor, 128, t).unwrap());
        });
    }

    // COO -> HiCOO conversion across block sizes (ablation).
    for bs in [4u32, 16, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::new("coo_to_hicoo", bs), &bs, |b, &bs| {
            b.iter(|| HiCooTensor::from_coo(&bt.tensor, bs).unwrap());
        });
    }

    // gHiCOO with the last mode kept in COO form (the TTV/TTM layout).
    let blocked: Vec<bool> = (0..order).map(|m| m + 1 != order).collect();
    group.bench_function("coo_to_ghicoo", |b| {
        b.iter(|| GHiCooTensor::from_coo(&bt.tensor, 128, &blocked).unwrap());
    });

    // Mode-last sort (TTV/TTM pre-processing).
    group.bench_function("sort_mode_last", |b| {
        b.iter(|| {
            let mut t = bt.tensor.clone();
            t.sort_mode_last(order - 1);
            t
        });
    });

    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
