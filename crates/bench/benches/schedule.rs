//! Criterion bench: scheduling-strategy ablation for the irregular TTV loop
//! (the paper evaluates OpenMP "under different scheduling strategies").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasta_bench::datasets::load_one;
use pasta_core::seeded_vector;
use pasta_kernels::{Ctx, TtvCooPlan};
use pasta_par::Schedule;

fn bench_schedule(c: &mut Criterion) {
    // irrS has skewed fiber lengths -> scheduling matters.
    let bt = load_one("irrS", 0.5).expect("profile");
    let n = 0; // mode with power-law fibers
    let plan = TtvCooPlan::new(&bt.tensor, n).unwrap();
    let v = seeded_vector::<f32>(bt.tensor.shape().dim(n) as usize, 7);
    let mut out = vec![0.0f32; plan.num_fibers()];

    let mut group = c.benchmark_group("schedule/ttv");
    group.sample_size(20);
    let threads = pasta_par::default_threads();
    for (label, sched) in [
        ("static", Schedule::Static),
        ("dynamic64", Schedule::Dynamic(64)),
        ("dynamic1024", Schedule::Dynamic(1024)),
        ("guided", Schedule::Guided),
    ] {
        let ctx = Ctx::new(threads, sched);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| plan.execute_values(&v, &mut out, &ctx).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
