//! Criterion bench: TTM with the paper's R = 16 (COO vs HiCOO).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pasta_bench::datasets::{load_one, BLOCK_SIZE, RANK};
use pasta_core::seeded_matrix;
use pasta_kernels::{Ctx, TtmCooPlan, TtmHicooPlan};

fn bench_ttm(c: &mut Criterion) {
    let ctx = Ctx::parallel();
    let mut group = c.benchmark_group("ttm");
    group.sample_size(20);
    for key in ["regS", "irrS"] {
        let bt = load_one(key, 0.5).expect("profile");
        let m = bt.tensor.nnz();
        group.throughput(Throughput::Elements(2 * RANK as u64 * m as u64));
        let n = bt.tensor.order() - 1;
        let u = seeded_matrix::<f32>(bt.tensor.shape().dim(n) as usize, RANK, 9);

        let coo_plan = TtmCooPlan::new(&bt.tensor, n).unwrap();
        let mut out = vec![0.0f32; coo_plan.num_fibers() * RANK];
        group.bench_with_input(BenchmarkId::new("coo", key), &m, |b, _| {
            b.iter(|| coo_plan.execute_values(&u, &mut out, &ctx).unwrap());
        });

        let hicoo_plan = TtmHicooPlan::new(&bt.tensor, n, BLOCK_SIZE).unwrap();
        let mut out_h = vec![0.0f32; hicoo_plan.num_fibers() * RANK];
        group.bench_with_input(BenchmarkId::new("hicoo", key), &m, |b, _| {
            b.iter(|| hicoo_plan.execute_values(&u, &mut out_h, &ctx).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ttm);
criterion_main!(benches);
