//! Criterion bench: the TS value kernel (COO and HiCOO), host-measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pasta_bench::datasets::load_one;
use pasta_kernels::{ts_values_into, Ctx, TsOp};

fn bench_ts(c: &mut Criterion) {
    let ctx = Ctx::parallel();
    let mut group = c.benchmark_group("ts");
    group.sample_size(20);
    for key in ["regS", "irrS"] {
        let bt = load_one(key, 0.5).expect("profile");
        let m = bt.tensor.nnz();
        group.throughput(Throughput::Elements(m as u64));
        let mut out = vec![0.0f32; m];

        let xv = bt.tensor.vals().to_vec();
        group.bench_with_input(BenchmarkId::new("coo", key), &m, |b, _| {
            b.iter(|| ts_values_into(TsOp::Mul, &xv, 1.5, &mut out, &ctx).unwrap());
        });

        let xh = bt.hicoo.vals().to_vec();
        group.bench_with_input(BenchmarkId::new("hicoo", key), &m, |b, _| {
            b.iter(|| ts_values_into(TsOp::Mul, &xh, 1.5, &mut out, &ctx).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ts);
criterion_main!(benches);
