//! Criterion bench: the TEW value kernel (COO and HiCOO), host-measured.
//!
//! Together with `ts`/`ttv`/`ttm`/`mttkrp` this regenerates the host column
//! of the paper's Figures 4–7 with statistically sound timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pasta_bench::datasets::load_one;
use pasta_kernels::{tew_values_into, Ctx, EwOp};

fn bench_tew(c: &mut Criterion) {
    let ctx = Ctx::parallel();
    let mut group = c.benchmark_group("tew");
    group.sample_size(20);
    for key in ["regS", "irrS"] {
        let bt = load_one(key, 0.5).expect("profile");
        let m = bt.tensor.nnz();
        group.throughput(Throughput::Elements(m as u64)); // 1 flop per element
        let y = bt.tensor.like_pattern(1.5f32);
        let mut out = vec![0.0f32; m];

        let (xv, yv) = (bt.tensor.vals().to_vec(), y.vals().to_vec());
        group.bench_with_input(BenchmarkId::new("coo", key), &m, |b, _| {
            b.iter(|| tew_values_into(EwOp::Add, &xv, &yv, &mut out, &ctx).unwrap());
        });

        let xh = bt.hicoo.vals().to_vec();
        group.bench_with_input(BenchmarkId::new("hicoo", key), &m, |b, _| {
            b.iter(|| tew_values_into(EwOp::Add, &xh, &yv, &mut out, &ctx).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tew);
criterion_main!(benches);
