//! Criterion bench: CSF vs COO vs HiCOO MTTKRP — the format the paper
//! names as its next addition. CSF hoists shared-prefix work up the fiber
//! tree and needs no atomics in its root mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pasta_bench::datasets::{load_one, RANK};
use pasta_core::{seeded_matrix, CsfTensor, DenseMatrix};
use pasta_kernels::{csf::mttkrp_csf_root, mttkrp_coo, mttkrp_hicoo, Ctx};

fn bench_csf(c: &mut Criterion) {
    let ctx = Ctx::parallel();
    let mut group = c.benchmark_group("csf/mttkrp");
    group.sample_size(10);
    for key in ["regS", "irrS"] {
        let bt = load_one(key, 0.5).expect("profile");
        let m = bt.tensor.nnz();
        group.throughput(Throughput::Elements(3 * RANK as u64 * m as u64));
        let factors: Vec<DenseMatrix<f32>> = (0..bt.tensor.order())
            .map(|mm| seeded_matrix(bt.tensor.shape().dim(mm) as usize, RANK, 11 + mm as u64))
            .collect();
        let order: Vec<usize> = (0..bt.tensor.order()).collect();
        let csf = CsfTensor::from_coo(&bt.tensor, &order).unwrap();

        group.bench_with_input(BenchmarkId::new("csf", key), &m, |b, _| {
            b.iter(|| mttkrp_csf_root(&csf, &factors, &ctx).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("coo", key), &m, |b, _| {
            b.iter(|| mttkrp_coo(&bt.tensor, &factors, 0, &ctx).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("hicoo", key), &m, |b, _| {
            b.iter(|| mttkrp_hicoo(&bt.hicoo, &factors, 0, &ctx).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_csf);
criterion_main!(benches);
