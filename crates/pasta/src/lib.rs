//! # pasta — the PASTA sparse tensor benchmark suite (Rust reproduction)
//!
//! A from-scratch Rust implementation of *"A Sparse Tensor Benchmark Suite
//! for CPUs and GPUs"* (IISWC 2020): arbitrary-order sparse tensor kernels
//! (TEW, TS, TTV, TTM, MTTKRP) in COO and HiCOO formats, synthetic tensor
//! generators, Roofline performance models for the paper's four platforms,
//! a SIMT GPU simulator, and the tensor methods that motivate the kernels.
//!
//! This facade re-exports the whole workspace:
//!
//! - [`core`] (`pasta-core`) — formats: COO, sCOO, HiCOO, gHiCOO, sHiCOO;
//! - [`par`] (`pasta-par`) — the OpenMP-style parallel runtime;
//! - [`kernels`] (`pasta-kernels`) — the five kernels + Table I analysis;
//! - [`gen`] (`pasta-gen`) — Kronecker & power-law generators, Table II
//!   dataset profiles;
//! - [`memsim`] (`pasta-memsim`) — cache/DRAM models;
//! - [`platform`] (`pasta-platform`) — Table III platforms, Rooflines, ERT,
//!   the calibrated performance model;
//! - [`simt`] (`pasta-simt`) — the GPU simulator and GPU kernels;
//! - [`algos`] (`pasta-algos`) — CP-ALS, Tucker/HOOI, tensor power method;
//! - [`obs`] (`pasta-obs`) — unified tracing spans, the counter registry,
//!   and the chrome://tracing exporter;
//! - [`serve`] (`pasta-serve`) — the sharded tensor-algebra service with
//!   request batching and conversion-product caching.
//!
//! # Quickstart
//!
//! ```
//! use pasta::core::{CooTensor, DenseVector, Shape};
//! use pasta::kernels::{ttv_coo, Ctx};
//!
//! # fn main() -> Result<(), pasta::core::Error> {
//! let x = CooTensor::from_entries(
//!     Shape::new(vec![3, 3, 3]),
//!     vec![(vec![0, 1, 2], 4.0_f32), (vec![2, 2, 0], 2.0)],
//! )?;
//! let v = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
//! let y = ttv_coo(&x, &v, 2, &Ctx::parallel())?;
//! assert_eq!(y.get(&[0, 1]), Some(12.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use pasta_algos as algos;
pub use pasta_core as core;
pub use pasta_gen as gen;
pub use pasta_kernels as kernels;
pub use pasta_memsim as memsim;
pub use pasta_obs as obs;
pub use pasta_par as par;
pub use pasta_platform as platform;
pub use pasta_serve as serve;
pub use pasta_simt as simt;
