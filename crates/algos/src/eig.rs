//! A Jacobi eigensolver for small symmetric matrices.
//!
//! Tucker/HOOI needs the leading eigenvectors of the Gram matrix
//! `Y₍ₙ₎ Y₍ₙ₎ᵀ` (size `I_n × I_n`); for the moderate mode sizes the example
//! drives, the classic cyclic Jacobi rotation method is simple and robust.

use pasta_core::{DenseMatrix, Value};

/// The eigendecomposition of a symmetric matrix: `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEig<V> {
    /// Eigenvalues, sorted descending.
    pub values: Vec<V>,
    /// Eigenvectors as matrix *columns*, in the order of `values`.
    pub vectors: DenseMatrix<V>,
}

/// Computes the eigendecomposition of a symmetric matrix by cyclic Jacobi
/// rotations.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn sym_eig<V: Value>(a: &DenseMatrix<V>, sweeps: usize) -> SymEig<V> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DenseMatrix::<V>::zeros(n, n);
    for i in 0..n {
        v.set(i, i, V::ONE);
    }

    for _ in 0..sweeps {
        let mut off = V::ZERO;
        for p in 0..n {
            for q in p + 1..n {
                off += m.get(p, q) * m.get(p, q);
            }
        }
        if off.to_f64() < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq == V::ZERO {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Rotation angle.
                let theta = 0.5 * (aqq.to_f64() - app.to_f64()) / apq.to_f64();
                let t = {
                    let s = if theta >= 0.0 { 1.0 } else { -1.0 };
                    s / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                let (c, s) = (V::from_f64(c), V::from_f64(s));

                // Apply the rotation to rows/columns p, q of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                let _ = (app, aqq);
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Extract and sort descending by eigenvalue.
    let mut pairs: Vec<(V, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite eigenvalues"));
    let values: Vec<V> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    SymEig { values, vectors }
}

/// The first `r` eigenvector columns as an `n × r` matrix.
pub fn leading_vectors<V: Value>(eig: &SymEig<V>, r: usize) -> DenseMatrix<V> {
    let n = eig.vectors.rows();
    assert!(r <= n, "rank exceeds dimension");
    DenseMatrix::from_fn(n, r, |i, j| eig.vectors.get(i, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = DenseMatrix::from_fn(3, 3, |i, j| if i == j { (3 - i) as f64 } else { 0.0 });
        let e = sym_eig(&a, 10);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_vec(2, 2, vec![2.0_f64, 1.0, 1.0, 2.0]);
        let e = sym_eig(&a, 20);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = (e.vectors.get(0, 0), e.vectors.get(1, 0));
        assert!((v0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0.0 - v0.1).abs() < 1e-8);
    }

    #[test]
    fn reconstructs_matrix() {
        // A = V diag(l) V^T for a random-ish symmetric matrix.
        let base = DenseMatrix::from_fn(5, 5, |i, j| ((i * 3 + j * 7) % 11) as f64 / 11.0);
        let a = DenseMatrix::from_fn(5, 5, |i, j| base.get(i, j) + base.get(j, i));
        let e = sym_eig(&a, 30);
        for i in 0..5 {
            for j in 0..5 {
                let mut s = 0.0;
                for k in 0..5 {
                    s += e.vectors.get(i, k) * e.values[k] * e.vectors.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-8, "({i},{j}): {s} vs {}", a.get(i, j));
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = DenseMatrix::from_fn(4, 4, |i, j| 1.0 / (1.0 + (i + j) as f64));
        let e = sym_eig(&a, 30);
        for p in 0..4 {
            for q in 0..4 {
                let mut dot = 0.0;
                for k in 0..4 {
                    dot += e.vectors.get(k, p) * e.vectors.get(k, q);
                }
                let want = if p == q { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn leading_vectors_shape() {
        let a = DenseMatrix::from_fn(4, 4, |i, j| if i == j { 1.0_f32 } else { 0.0 });
        let e = sym_eig(&a, 5);
        let lead = leading_vectors(&e, 2);
        assert_eq!(lead.rows(), 4);
        assert_eq!(lead.cols(), 2);
    }
}
