//! The tensor power method, driven by repeated TTV.
//!
//! The paper motivates TTV as "a critical computational kernel of the tensor
//! power method" for orthogonal tensor decomposition (Section II-C). For a
//! cubical third-order tensor, one iteration maps
//! `v ← normalize(X ×₂ v ×₃ v)`; the fixed point is (for symmetric tensors)
//! a robust eigenvector with eigenvalue `λ = X ×₁ v ×₂ v ×₃ v`.

use pasta_core::{seeded_vector, CooTensor, DenseVector, Error, Result, Value};
use pasta_kernels::{ttv_coo, Ctx};

/// Options for the tensor power method.
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on `‖v_{k+1} − v_k‖`.
    pub tol: f64,
    /// Seed for the starting vector.
    pub seed: u64,
    /// Kernel execution context.
    pub ctx: Ctx,
}

impl Default for PowerOptions {
    fn default() -> Self {
        Self { max_iters: 100, tol: 1e-8, seed: 1, ctx: Ctx::sequential() }
    }
}

/// A rank-1 symmetric approximation `X ≈ λ · v ∘ v ∘ v`.
#[derive(Debug, Clone)]
pub struct PowerResult<V> {
    /// The unit eigenvector.
    pub vector: DenseVector<V>,
    /// The eigenvalue `λ`.
    pub lambda: V,
    /// Iterations performed.
    pub iters: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Runs the tensor power method on a cubical third-order tensor.
///
/// # Errors
///
/// Returns an error unless the tensor is third-order and cubical.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, Shape};
/// use pasta_algos::{tensor_power_method, PowerOptions};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// // lambda * e0^3 with lambda = 5: the dominant eigenpair is (5, e0).
/// let x = CooTensor::<f64>::from_entries(
///     Shape::new(vec![3, 3, 3]),
///     vec![(vec![0, 0, 0], 5.0)],
/// )?;
/// let r = tensor_power_method(&x, &PowerOptions::default())?;
/// assert!((r.lambda - 5.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn tensor_power_method<V: Value>(
    x: &CooTensor<V>,
    opts: &PowerOptions,
) -> Result<PowerResult<V>> {
    if x.order() != 3 {
        return Err(Error::OperandMismatch {
            what: format!("power method needs a third-order tensor, got order {}", x.order()),
        });
    }
    let d = x.shape().dim(0);
    if x.shape().dim(1) != d || x.shape().dim(2) != d {
        return Err(Error::OperandMismatch {
            what: format!("power method needs a cubical tensor, got {}", x.shape()),
        });
    }

    let mut v = seeded_vector::<V>(d as usize, opts.seed);
    v.normalize();
    let mut iters = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        iters += 1;
        // w = X x_2 v x_3 v  (apply mode 2 first, then mode 1 of the
        // order-2 intermediate, which was mode 1 of X).
        let t2 = ttv_coo(x, &v, 2, &opts.ctx)?; // order-2: modes (0, 1)
        let t1 = ttv_coo(&t2, &v, 1, &opts.ctx)?; // order-1: mode (0)
        let mut w = DenseVector::<V>::zeros(d as usize);
        for (coords, val) in t1.iter() {
            w[coords[0] as usize] += val;
        }
        let norm = w.normalize();
        if norm == V::ZERO {
            break; // degenerate: tensor annihilates v
        }
        // Convergence: ||w - v|| (sign-aligned).
        let dot: V = w.as_slice().iter().zip(v.as_slice()).map(|(&a, &b)| a * b).sum();
        let sign = if dot < V::ZERO { -V::ONE } else { V::ONE };
        let diff: f64 = w
            .as_slice()
            .iter()
            .zip(v.as_slice())
            .map(|(&a, &b)| {
                let e = (sign * a - b).to_f64();
                e * e
            })
            .sum::<f64>()
            .sqrt();
        v = w;
        if diff < opts.tol {
            converged = true;
            break;
        }
    }

    // lambda = X x_1 v x_2 v x_3 v.
    let mut lambda = V::ZERO;
    for (coords, val) in x.iter() {
        lambda += val * v[coords[0] as usize] * v[coords[1] as usize] * v[coords[2] as usize];
    }
    Ok(PowerResult { vector: v, lambda, iters, converged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    /// Builds lambda1 * e_a^3 + lambda2 * e_b^3.
    fn two_eig(d: u32, a: u32, la: f64, b: u32, lb: f64) -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![d, d, d]),
            vec![(vec![a, a, a], la), (vec![b, b, b], lb)],
        )
        .unwrap()
    }

    #[test]
    fn finds_dominant_eigenpair() {
        let x = two_eig(6, 1, 7.0, 4, 3.0);
        let r = tensor_power_method(&x, &PowerOptions::default()).unwrap();
        assert!(r.converged);
        assert!((r.lambda - 7.0).abs() < 1e-6, "lambda {}", r.lambda);
        assert!((r.vector[1].abs() - 1.0).abs() < 1e-6);
        assert!(r.vector[4].abs() < 1e-5);
    }

    #[test]
    fn symmetric_random_tensor_converges_to_fixed_point() {
        // A small symmetric tensor: X[i,j,k] = a_i a_j a_k (rank 1).
        let a = [0.5, -0.25, 1.0, 0.125];
        let mut x = CooTensor::<f64>::new(Shape::new(vec![4, 4, 4]));
        for i in 0..4u32 {
            for j in 0..4u32 {
                for k in 0..4u32 {
                    let v = a[i as usize] * a[j as usize] * a[k as usize];
                    x.push(&[i, j, k], v).unwrap();
                }
            }
        }
        let r = tensor_power_method(&x, &PowerOptions::default()).unwrap();
        let norm_a: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        // lambda = ||a||^3 for the rank-1 symmetric tensor.
        assert!((r.lambda.abs() - norm_a.powi(3)).abs() < 1e-6, "lambda {}", r.lambda);
    }

    #[test]
    fn rejects_non_cubical_or_wrong_order() {
        let x =
            CooTensor::<f64>::from_entries(Shape::new(vec![3, 4, 3]), vec![(vec![0, 0, 0], 1.0)])
                .unwrap();
        assert!(tensor_power_method(&x, &PowerOptions::default()).is_err());
        let m = CooTensor::<f64>::from_entries(Shape::new(vec![3, 3]), vec![(vec![0, 0], 1.0)])
            .unwrap();
        assert!(tensor_power_method(&m, &PowerOptions::default()).is_err());
    }

    #[test]
    fn zero_tensor_reports_no_convergence_blowup() {
        let x = CooTensor::<f64>::new(Shape::new(vec![4, 4, 4]));
        let r = tensor_power_method(&x, &PowerOptions::default()).unwrap();
        assert_eq!(r.lambda, 0.0);
    }
}
