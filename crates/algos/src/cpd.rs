//! CANDECOMP/PARAFAC decomposition via alternating least squares (CP-ALS).
//!
//! The application that makes MTTKRP "the most computationally expensive
//! kernel" in the paper (Section II-E): each ALS sweep updates every factor
//! matrix with one MTTKRP, a Hadamard product of Gram matrices and a small
//! SPD solve.

use pasta_core::linalg::{gram, hadamard, normalize_columns, Cholesky};
use pasta_core::{seeded_matrix, CooTensor, DenseMatrix, Error, Result, TensorStats, Value};
use pasta_kernels::{
    mttkrp_coo, mttkrp_hicoo, Ctx, FormatKind, FusedAlsSweep, FusionChoice, Kernel, TensorBucket,
    TuneTable,
};

/// Which kernel backend CP-ALS drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpdBackend {
    /// COO-MTTKRP.
    Coo,
    /// HiCOO-MTTKRP with the given block size.
    Hicoo(u32),
}

/// CP-ALS options.
#[derive(Debug, Clone, Copy)]
pub struct CpdOptions {
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Maximum ALS sweeps.
    pub max_iters: usize,
    /// Stop when the fit improves by less than this between sweeps.
    pub tol: f64,
    /// Seed for the random factor initialization.
    pub seed: u64,
    /// Kernel execution context.
    pub ctx: Ctx,
    /// Kernel backend.
    pub backend: CpdBackend,
}

impl Default for CpdOptions {
    fn default() -> Self {
        Self {
            rank: 16,
            max_iters: 50,
            tol: 1e-5,
            seed: 1,
            ctx: Ctx::sequential(),
            backend: CpdBackend::Coo,
        }
    }
}

impl CpdOptions {
    /// The MTTKRP format this run drives, per the backend.
    fn format(&self) -> FormatKind {
        match self.backend {
            CpdBackend::Coo => FormatKind::Coo,
            CpdBackend::Hicoo(_) => FormatKind::Hicoo,
        }
    }

    /// Applies measured tuned parameters from a [`TuneTable`] (the
    /// host-keyed `results/TUNE_<hostkey>.json` produced by
    /// `hostrun --tune`) to the
    /// execution context via [`Ctx::with_tuning`]: the MTTKRP row for the
    /// backend's format matching the tensor's bucket drives the sweep's
    /// schedule. No matching row leaves the context untouched.
    pub fn with_tuning_from(mut self, table: &TuneTable, stats: &TensorStats) -> Self {
        let bucket = TensorBucket::from_stats(stats).key();
        if let Some(e) = table.lookup(Kernel::Mttkrp, self.format(), &bucket) {
            self.ctx = self.ctx.with_tuning(e.params);
        }
        self
    }

    /// [`Self::with_tuning_from`] against a table file on disk; a missing
    /// or unreadable table leaves the options unchanged.
    pub fn load_tuning(self, path: &std::path::Path, stats: &TensorStats) -> Self {
        match TuneTable::load(path) {
            Ok(table) => self.with_tuning_from(&table, stats),
            Err(_) => self,
        }
    }
}

/// A rank-`R` CP model: `X ≈ Σ_r λ_r · a_r⁽¹⁾ ∘ ⋯ ∘ a_r⁽ᴺ⁾`.
#[derive(Debug, Clone)]
pub struct CpdModel<V> {
    /// Factor matrices, one per mode, with unit-norm columns.
    pub factors: Vec<DenseMatrix<V>>,
    /// Component weights `λ`.
    pub lambda: Vec<V>,
    /// Final fit `1 − ‖X − X̂‖ / ‖X‖` (1 is perfect).
    pub fit: f64,
    /// ALS sweeps performed.
    pub iters: usize,
}

impl<V: Value> CpdModel<V> {
    /// Evaluates the model at one coordinate tuple.
    pub fn predict(&self, coords: &[u32]) -> V {
        let r = self.lambda.len();
        let mut acc = V::ZERO;
        for rr in 0..r {
            let mut prod = self.lambda[rr];
            for (m, &c) in coords.iter().enumerate() {
                prod *= self.factors[m].get(c as usize, rr);
            }
            acc += prod;
        }
        acc
    }
}

/// Runs CP-ALS on a sparse tensor.
///
/// # Errors
///
/// Returns an error for a zero rank, an order-one tensor, or kernel
/// failures.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, Shape};
/// use pasta_algos::{cp_als, CpdOptions};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// // A rank-1 tensor decomposes exactly.
/// let mut x = CooTensor::<f32>::new(Shape::new(vec![4, 4, 4]));
/// for i in 0..4u32 {
///     for j in 0..4u32 {
///         x.push(&[i, j, (i + j) % 4], 1.0)?;
///     }
/// }
/// let model = cp_als(&x, &CpdOptions { rank: 8, max_iters: 30, ..Default::default() })?;
/// assert!(model.fit > 0.5);
/// # Ok(())
/// # }
/// ```
pub fn cp_als<V: Value>(x: &CooTensor<V>, opts: &CpdOptions) -> Result<CpdModel<V>> {
    if opts.rank == 0 {
        return Err(Error::OperandMismatch { what: "rank must be positive".into() });
    }
    if x.order() < 2 {
        return Err(Error::InvalidMode { mode: 0, order: x.order() });
    }
    let order = x.order();
    let r = opts.rank;

    // Random init with unit-norm columns.
    let mut factors: Vec<DenseMatrix<V>> = (0..order)
        .map(|m| {
            let mut f = seeded_matrix::<V>(x.shape().dim(m) as usize, r, opts.seed + m as u64);
            normalize_columns(&mut f);
            f
        })
        .collect();
    let mut lambda = vec![V::ONE; r];

    let norm_x = x.vals().iter().map(|&v| (v * v).to_f64()).sum::<f64>().sqrt();
    let mut fit = 0.0f64;
    let mut iters = 0;

    // Fusing the ALS sweep never enlarges the working set (the per-mode
    // outputs are the factor matrices themselves), so `Auto` fuses;
    // `Materialize` forces the kernel-at-a-time baseline for ablation.
    // The fused sweep is an expression program: `FusedAlsSweep` lowers a
    // `mttkrp(leaf)` graph once per run and rebinds factors each mode.
    if opts.ctx.fusion != FusionChoice::Materialize {
        let block = match opts.backend {
            CpdBackend::Coo => 0,
            CpdBackend::Hicoo(b) => b,
        };
        let mut plan = FusedAlsSweep::new(x, opts.format(), block, &factors, &opts.ctx)?;
        for sweep in 0..opts.max_iters {
            iters = sweep + 1;
            plan.sweep(&mut factors, &mut lambda)?;
            let new_fit = compute_fit(x, &factors, &lambda, norm_x, &plan.gram_hadamard());
            if sweep > 0 && (new_fit - fit).abs() < opts.tol {
                fit = new_fit;
                break;
            }
            fit = new_fit;
        }
        return Ok(CpdModel { factors, lambda, fit, iters });
    }

    let hicoo = match opts.backend {
        CpdBackend::Coo => None,
        CpdBackend::Hicoo(b) => Some(pasta_core::HiCooTensor::from_coo(x, b)?),
    };

    for sweep in 0..opts.max_iters {
        iters = sweep + 1;
        for n in 0..order {
            let m_out = match &hicoo {
                Some(h) => mttkrp_hicoo(h, &factors, n, &opts.ctx)?,
                None => mttkrp_coo(x, &factors, n, &opts.ctx)?,
            };
            // V = hadamard of grams of all factors but n.
            let mut v: Option<DenseMatrix<V>> = None;
            for (m, f) in factors.iter().enumerate() {
                if m == n {
                    continue;
                }
                let g = gram(f);
                v = Some(match v {
                    Some(acc) => hadamard(&acc, &g),
                    None => g,
                });
            }
            let v = v.expect("order >= 2");
            let ridge = V::from_f64(1e-10);
            let ch = Cholesky::factor(&v, ridge).ok_or_else(|| Error::OperandMismatch {
                what: "gram Hadamard product not positive definite".into(),
            })?;
            let mut a = m_out;
            ch.solve_rows(&mut a);
            let norms = normalize_columns(&mut a);
            for (l, nn) in lambda.iter_mut().zip(&norms) {
                *l = if *nn == V::ZERO { V::ZERO } else { *nn };
            }
            factors[n] = a;
        }

        let mut had: Option<DenseMatrix<V>> = None;
        for f in &factors {
            let g = gram(f);
            had = Some(match had {
                Some(acc) => hadamard(&acc, &g),
                None => g,
            });
        }
        let new_fit = compute_fit(x, &factors, &lambda, norm_x, &had.expect("at least one factor"));
        if sweep > 0 && (new_fit - fit).abs() < opts.tol {
            fit = new_fit;
            break;
        }
        fit = new_fit;
    }

    Ok(CpdModel { factors, lambda, fit, iters })
}

/// `1 − ‖X − X̂‖ / ‖X‖` computed without materializing `X̂`:
/// `‖X − X̂‖² = ‖X‖² − 2⟨X, X̂⟩ + ‖X̂‖²`. The caller supplies
/// `had = ∘_m A_mᵀA_m` (the fused sweep folds its Gram cache; the
/// kernel-at-a-time baseline recomputes every Gram).
fn compute_fit<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    lambda: &[V],
    norm_x: f64,
    had: &DenseMatrix<V>,
) -> f64 {
    let r = lambda.len();
    let order = x.order();
    // <X, model>: one pass over non-zeros.
    let mut inner = 0.0f64;
    for xx in 0..x.nnz() {
        let val = x.vals()[xx];
        let mut s = V::ZERO;
        for rr in 0..r {
            let mut prod = lambda[rr];
            for m in 0..order {
                prod *= factors[m].get(x.mode_inds(m)[xx] as usize, rr);
            }
            s += prod;
        }
        inner += (val * s).to_f64();
    }
    // ||model||^2 = λᵀ (∘_m A_mᵀA_m) λ.
    let mut norm_model_sq = 0.0f64;
    for p in 0..r {
        for q in 0..r {
            norm_model_sq += (lambda[p] * had.get(p, q) * lambda[q]).to_f64();
        }
    }
    let resid_sq = (norm_x * norm_x - 2.0 * inner + norm_model_sq).max(0.0);
    1.0 - resid_sq.sqrt() / norm_x.max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    /// Builds an exactly rank-`r` tensor from random factors.
    fn rank_r_tensor(dims: &[u32], r: usize, seed: u64) -> CooTensor<f64> {
        let factors: Vec<DenseMatrix<f64>> = dims
            .iter()
            .enumerate()
            .map(|(m, &d)| seeded_matrix(d as usize, r, seed + m as u64))
            .collect();
        let mut t = CooTensor::new(Shape::new(dims.to_vec()));
        let mut coords = vec![0u32; dims.len()];
        fill(&mut t, &factors, &mut coords, 0);
        t
    }

    fn fill(
        t: &mut CooTensor<f64>,
        factors: &[DenseMatrix<f64>],
        coords: &mut Vec<u32>,
        mode: usize,
    ) {
        if mode == factors.len() {
            let mut v = 0.0;
            for rr in 0..factors[0].cols() {
                let mut p = 1.0;
                for (m, &c) in coords.iter().enumerate() {
                    p *= factors[m].get(c as usize, rr);
                }
                v += p;
            }
            t.push(coords, v).unwrap();
            return;
        }
        for c in 0..factors[mode].rows() as u32 {
            coords[mode] = c;
            fill(t, factors, coords, mode + 1);
        }
    }

    #[test]
    fn recovers_exact_low_rank() {
        let x = rank_r_tensor(&[6, 5, 4], 2, 42);
        let model =
            cp_als(&x, &CpdOptions { rank: 2, max_iters: 200, tol: 1e-12, ..Default::default() })
                .unwrap();
        assert!(model.fit > 0.99, "fit {}", model.fit);
        assert_eq!(model.factors.len(), 3);
        assert_eq!(model.lambda.len(), 2);
    }

    #[test]
    fn hicoo_backend_matches_coo() {
        let x = rank_r_tensor(&[6, 6, 6], 2, 7);
        let coo =
            cp_als(&x, &CpdOptions { rank: 2, max_iters: 20, tol: 0.0, ..Default::default() })
                .unwrap();
        let hic = cp_als(
            &x,
            &CpdOptions {
                rank: 2,
                max_iters: 20,
                tol: 0.0,
                backend: CpdBackend::Hicoo(4),
                ..Default::default()
            },
        )
        .unwrap();
        // Same arithmetic path, deterministic init: identical trajectories.
        assert!((coo.fit - hic.fit).abs() < 1e-9, "{} vs {}", coo.fit, hic.fit);
    }

    #[test]
    fn fit_improves_with_rank() {
        let x = rank_r_tensor(&[8, 7, 6], 3, 11);
        let low = cp_als(&x, &CpdOptions { rank: 1, max_iters: 60, ..Default::default() }).unwrap();
        let high =
            cp_als(&x, &CpdOptions { rank: 3, max_iters: 60, tol: 1e-9, ..Default::default() })
                .unwrap();
        assert!(high.fit > low.fit, "{} vs {}", high.fit, low.fit);
    }

    #[test]
    fn predict_matches_tensor_for_perfect_fit() {
        let x = rank_r_tensor(&[5, 4, 3], 1, 3);
        let m =
            cp_als(&x, &CpdOptions { rank: 1, max_iters: 100, tol: 1e-13, ..Default::default() })
                .unwrap();
        for (coords, val) in x.iter().take(10) {
            let got = m.predict(&coords);
            assert!(got.approx_eq(val, 1e-3), "{got} vs {val}");
        }
    }

    #[test]
    fn fourth_order_converges() {
        let x = rank_r_tensor(&[4, 4, 4, 4], 2, 9);
        let m =
            cp_als(&x, &CpdOptions { rank: 2, max_iters: 150, tol: 1e-12, ..Default::default() })
                .unwrap();
        assert!(m.fit > 0.99, "fit {}", m.fit);
    }

    #[test]
    fn fused_sweep_is_bit_identical_to_kernel_at_a_time() {
        // The fused route caches plans and Grams but performs the same
        // arithmetic in the same order, so trajectories are identical —
        // not merely close.
        let x = rank_r_tensor(&[7, 6, 5], 3, 13);
        let run = |fusion| {
            cp_als(
                &x,
                &CpdOptions {
                    rank: 3,
                    max_iters: 15,
                    tol: 0.0,
                    ctx: Ctx::sequential().with_fusion(fusion),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let fused = run(FusionChoice::Auto);
        let mat = run(FusionChoice::Materialize);
        assert_eq!(fused.fit, mat.fit);
        assert_eq!(fused.lambda, mat.lambda);
        for (a, b) in fused.factors.iter().zip(&mat.factors) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn fused_sweep_reuses_plans_across_iterations() {
        use pasta_kernels::{counters, CounterId};
        let x = rank_r_tensor(&[6, 6, 6], 2, 21);
        pasta_kernels::obs::set_counting(true);
        let before = counters().snapshot();
        let m = cp_als(
            &x,
            &CpdOptions {
                rank: 2,
                max_iters: 10,
                tol: 0.0,
                backend: CpdBackend::Hicoo(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.fit > 0.9);
        let after = counters().snapshot();
        // One HiCOO conversion for the whole run, reused every sweep.
        assert!(
            after[CounterId::FusedPlanCacheHits] >= before[CounterId::FusedPlanCacheHits] + 10 * 3
        );
        assert!(after[CounterId::FusedChains] >= before[CounterId::FusedChains] + 10);
    }

    #[test]
    fn tuned_parameter_loading_applies_to_ctx() {
        use pasta_kernels::{TuneEntry, TuneTable, TunedParams};
        let x = rank_r_tensor(&[6, 5, 4], 2, 2);
        let stats = TensorStats::compute(&x);
        let bucket = TensorBucket::from_stats(&stats).key();
        let mut table = TuneTable::default();
        table.upsert(TuneEntry {
            kernel: Kernel::Mttkrp,
            format: FormatKind::Coo,
            bucket,
            threads: 1,
            params: TunedParams { chunk: 512, dense_threshold: 8, block_size: 32 },
            baseline_ns: 10.0,
            tuned_ns: 5.0,
        });
        let opts = CpdOptions::default().with_tuning_from(&table, &stats);
        assert_eq!(opts.ctx.tuning.map(|t| t.chunk), Some(512));
        // HiCOO backend looks up the HiCOO row; no row -> untouched.
        let opts_h = CpdOptions { backend: CpdBackend::Hicoo(4), ..Default::default() }
            .with_tuning_from(&table, &stats);
        assert!(opts_h.ctx.tuning.is_none());
        let opts_missing = CpdOptions::default()
            .load_tuning(std::path::Path::new("/nonexistent/tune.json"), &stats);
        assert!(opts_missing.ctx.tuning.is_none());
    }

    #[test]
    fn rejects_bad_options() {
        let x = rank_r_tensor(&[4, 4], 1, 1);
        assert!(cp_als(&x, &CpdOptions { rank: 0, ..Default::default() }).is_err());
        let first =
            CooTensor::<f64>::from_entries(Shape::new(vec![4]), vec![(vec![0], 1.0)]).unwrap();
        assert!(cp_als(&first, &CpdOptions::default()).is_err());
    }

    #[test]
    fn parallel_ctx_works() {
        let x = rank_r_tensor(&[6, 6, 6], 2, 5);
        let m = cp_als(
            &x,
            &CpdOptions {
                rank: 2,
                max_iters: 30,
                ctx: Ctx::new(4, pasta_par::Schedule::Dynamic(64)),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.fit > 0.9);
    }
}
