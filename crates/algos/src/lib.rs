//! # pasta-algos — tensor methods on top of the PASTA kernels
//!
//! The applications that motivate the benchmark suite's kernels, implemented
//! end-to-end on the suite's own sparse kernels (also covering the paper's
//! declared future work: "more complete tensor methods, such as
//! CANDECOMP/PARAFAC and Tucker decompositions", "TTM-chain in Tucker
//! decomposition"):
//!
//! - [`cp_als`] — CANDECOMP/PARAFAC via alternating least squares, the
//!   MTTKRP workhorse (COO or HiCOO backend);
//! - [`tucker_hooi`] — Tucker decomposition by higher-order orthogonal
//!   iteration, driving sparse [`ttm_chain`]s;
//! - [`tensor_power_method`] — the TTV-based tensor power iteration for
//!   dominant rank-1 structure;
//! - [`eig`] — the small symmetric Jacobi eigensolver HOOI needs.
//!
//! # Examples
//!
//! ```
//! use pasta_core::{CooTensor, Shape};
//! use pasta_algos::{cp_als, CpdOptions};
//!
//! # fn main() -> Result<(), pasta_core::Error> {
//! let x = CooTensor::<f32>::from_entries(
//!     Shape::new(vec![4, 4, 4]),
//!     vec![(vec![0, 1, 2], 1.0), (vec![1, 2, 3], 2.0), (vec![2, 0, 1], 3.0)],
//! )?;
//! let model = cp_als(&x, &CpdOptions { rank: 4, ..Default::default() })?;
//! assert_eq!(model.factors.len(), 3);
//! # Ok(())
//! # }
//! ```

// Dense/kernel code indexes several arrays in lockstep; iterator
// rewrites of those loops obscure the math.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpd;
pub mod eig;
pub mod power;
pub mod tucker;

pub use cpd::{cp_als, CpdBackend, CpdModel, CpdOptions};
pub use eig::{leading_vectors, sym_eig, SymEig};
pub use power::{tensor_power_method, PowerOptions, PowerResult};
pub use tucker::{ttm_chain, tucker_hooi, TuckerModel, TuckerOptions};
