//! Tucker decomposition by higher-order orthogonal iteration (HOOI),
//! driven by TTM-chains — the extension the paper's conclusion names
//! ("additional operations, such as TTM-chain in Tucker decomposition").
//!
//! Each HOOI sweep updates factor `U⁽ⁿ⁾` from the leading eigenvectors of
//! the Gram matrix of `Y₍ₙ₎`, where `Y = X ×₁ U⁽¹⁾ ⋯ ×ₙ₋₁ U⁽ⁿ⁻¹⁾ ×ₙ₊₁ …` is
//! a chain of sparse TTM calls.

use crate::eig::{leading_vectors, sym_eig};
use pasta_core::{CooTensor, DenseMatrix, Error, Result, Shape, Value};
use pasta_kernels::{ttm_coo, ttm_scoo, Ctx};

/// Tucker/HOOI options.
#[derive(Debug, Clone)]
pub struct TuckerOptions {
    /// Core ranks, one per mode.
    pub ranks: Vec<usize>,
    /// HOOI sweeps.
    pub max_iters: usize,
    /// Seed for factor initialization.
    pub seed: u64,
    /// Kernel execution context.
    pub ctx: Ctx,
}

impl Default for TuckerOptions {
    fn default() -> Self {
        Self { ranks: Vec::new(), max_iters: 5, seed: 1, ctx: Ctx::sequential() }
    }
}

/// A Tucker model: core tensor (dense, row-major) plus orthonormal factors.
#[derive(Debug, Clone)]
pub struct TuckerModel<V> {
    /// Core tensor shape (`ranks`).
    pub core_shape: Shape,
    /// Dense row-major core values.
    pub core: Vec<V>,
    /// Factor matrices `U⁽ⁿ⁾ ∈ R^{I_n × R_n}` with orthonormal columns.
    pub factors: Vec<DenseMatrix<V>>,
    /// `‖core‖ / ‖X‖` — for orthonormal factors this is the captured-energy
    /// fraction (1 is a perfect decomposition).
    pub energy: f64,
}

/// TTM-chain: multiplies `x` by `Uᵀ` in every mode except `skip`
/// (pass `skip = order` to contract every mode). Returns a COO tensor.
///
/// Our TTM convention is `Y = X ×_n U` with `U ∈ R^{I_n × R}` summing over
/// `i_n`, i.e. exactly the `X ×_n Uᵀ` of the Kolda-Bader convention — so a
/// chain over all modes shrinks `X` to the `R₁ × ⋯ × R_N` core.
///
/// # Errors
///
/// Propagates kernel errors (mode/shape mismatches).
pub fn ttm_chain<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    skip: usize,
    ctx: &Ctx,
) -> Result<CooTensor<V>> {
    // First product leaves COO; later products stay semi-sparse (ttm_scoo),
    // avoiding repeated expansion — the point of the sCOO format.
    let mut semi: Option<pasta_core::SemiCooTensor<V>> = None;
    for (n, u) in factors.iter().enumerate() {
        if n == skip {
            continue;
        }
        semi = Some(match semi {
            None => ttm_coo(x, u, n, ctx)?,
            // sCOO requires at least one sparse mode; when the chain is
            // about to densify the last one, fall back through COO.
            Some(prev) if prev.dense_modes().len() + 1 >= prev.shape().order() => {
                ttm_coo(&prev.to_coo(), u, n, ctx)?
            }
            Some(prev) => ttm_scoo(&prev, u, n, ctx)?,
        });
    }
    Ok(match semi {
        Some(s) => s.to_coo(),
        None => x.clone(),
    })
}

/// Runs HOOI.
///
/// # Errors
///
/// Returns an error for missing/invalid ranks or kernel failures.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, Shape};
/// use pasta_algos::{tucker_hooi, TuckerOptions};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let mut x = CooTensor::<f64>::new(Shape::new(vec![6, 6, 6]));
/// for i in 0..6u32 {
///     x.push(&[i, i, i], 1.0 + i as f64)?;
/// }
/// let model = tucker_hooi(&x, &TuckerOptions { ranks: vec![3, 3, 3], ..Default::default() })?;
/// assert_eq!(model.core_shape.dims(), &[3, 3, 3]);
/// # Ok(())
/// # }
/// ```
pub fn tucker_hooi<V: Value>(x: &CooTensor<V>, opts: &TuckerOptions) -> Result<TuckerModel<V>> {
    let order = x.order();
    if opts.ranks.len() != order {
        return Err(Error::OrderMismatch { left: order, right: opts.ranks.len() });
    }
    for (m, &r) in opts.ranks.iter().enumerate() {
        if r == 0 || r > x.shape().dim(m) as usize {
            return Err(Error::OperandMismatch {
                what: format!("rank {r} invalid for mode {m} of dimension {}", x.shape().dim(m)),
            });
        }
    }

    // HOSVD init: each factor starts from the leading eigenvectors of
    // X₍ₙ₎ X₍ₙ₎ᵀ. (Random init can drop a dominant axis permanently —
    // HOOI only refines within the retained subspaces.)
    let mut factors: Vec<DenseMatrix<V>> = (0..order)
        .map(|n| {
            let in_dim = x.shape().dim(n) as usize;
            let w = gram_of_matricization(x, n, in_dim);
            leading_vectors(&sym_eig(&w, 30), opts.ranks[n])
        })
        .collect();

    for _ in 0..opts.max_iters.max(1) {
        for n in 0..order {
            // Y = X x_{m != n} U_m ; U_n <- leading eigvecs of Y_(n) Y_(n)^T.
            let y = ttm_chain(x, &factors, n, &opts.ctx)?;
            let in_dim = x.shape().dim(n) as usize;
            let w = gram_of_matricization(&y, n, in_dim);
            let eig = sym_eig(&w, 30);
            factors[n] = leading_vectors(&eig, opts.ranks[n]);
        }
    }

    // Core = X x_1 U_1 ... x_N U_N, densified.
    let core_coo = ttm_chain(x, &factors, order, &opts.ctx)?;
    let core_shape = Shape::new(opts.ranks.iter().map(|&r| r as u32).collect());
    let core = core_coo.to_dense(1 << 22);

    let norm_x = x.vals().iter().map(|&v| (v * v).to_f64()).sum::<f64>().sqrt();
    let norm_core = core.iter().map(|&v| (v * v).to_f64()).sum::<f64>().sqrt();
    Ok(TuckerModel {
        core_shape,
        core,
        factors,
        energy: if norm_x > 0.0 { norm_core / norm_x } else { 0.0 },
    })
}

/// `Y₍ₙ₎ Y₍ₙ₎ᵀ` (size `I_n × I_n`) computed directly from the sparse `Y`
/// without materializing the matricization: group non-zeros by their
/// non-`n` coordinates (columns of `Y₍ₙ₎`) and accumulate outer products.
fn gram_of_matricization<V: Value>(y: &CooTensor<V>, n: usize, in_dim: usize) -> DenseMatrix<V> {
    let mut ys = y.clone();
    ys.sort_mode_last(n);
    let fi = pasta_core::FiberIndex::build(&ys, n);
    let mut w = DenseMatrix::<V>::zeros(in_dim, in_dim);
    for f in 0..fi.num_fibers() {
        let range = fi.fiber_range(f);
        let rows: Vec<(usize, V)> =
            range.map(|xx| (ys.mode_inds(n)[xx] as usize, ys.vals()[xx])).collect();
        for &(i, vi) in &rows {
            for &(j, vj) in &rows {
                let add = vi * vj;
                w.set(i, j, w.get(i, j) + add);
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::seeded_matrix;

    fn diag_tensor(d: u32) -> CooTensor<f64> {
        let mut x = CooTensor::new(Shape::new(vec![d, d, d]));
        for i in 0..d {
            x.push(&[i, i, i], (i + 1) as f64).unwrap();
        }
        x
    }

    #[test]
    fn full_rank_captures_all_energy() {
        let x = diag_tensor(5);
        let m = tucker_hooi(
            &x,
            &TuckerOptions { ranks: vec![5, 5, 5], max_iters: 3, ..Default::default() },
        )
        .unwrap();
        assert!((m.energy - 1.0).abs() < 1e-6, "energy {}", m.energy);
    }

    #[test]
    fn truncated_rank_keeps_dominant_components() {
        // Diagonal entries 1..=6: keeping ranks (3,3,3) should capture the
        // top-3 magnitudes 6,5,4 => energy sqrt(36+25+16)/sqrt(91).
        let x = diag_tensor(6);
        let m = tucker_hooi(
            &x,
            &TuckerOptions { ranks: vec![3, 3, 3], max_iters: 4, ..Default::default() },
        )
        .unwrap();
        let expect = (77.0f64 / 91.0).sqrt();
        assert!((m.energy - expect).abs() < 0.02, "energy {} expect {expect}", m.energy);
    }

    #[test]
    fn factors_are_orthonormal() {
        let x = diag_tensor(6);
        let m = tucker_hooi(
            &x,
            &TuckerOptions { ranks: vec![2, 2, 2], max_iters: 3, ..Default::default() },
        )
        .unwrap();
        for u in &m.factors {
            for p in 0..u.cols() {
                for q in 0..u.cols() {
                    let mut dot = 0.0;
                    for k in 0..u.rows() {
                        dot += u.get(k, p) * u.get(k, q);
                    }
                    let want = if p == q { 1.0 } else { 0.0 };
                    assert!((dot - want).abs() < 1e-7, "({p},{q}): {dot}");
                }
            }
        }
    }

    #[test]
    fn ttm_chain_full_contraction_shrinks_to_core_shape() {
        let x = diag_tensor(4);
        let factors: Vec<DenseMatrix<f64>> =
            (0..3).map(|m| seeded_matrix(4, 2, m as u64)).collect();
        let core = ttm_chain(&x, &factors, 3, &Ctx::sequential()).unwrap();
        assert_eq!(core.shape().dims(), &[2, 2, 2]);
    }

    #[test]
    fn rejects_bad_ranks() {
        let x = diag_tensor(4);
        assert!(
            tucker_hooi(&x, &TuckerOptions { ranks: vec![2, 2], ..Default::default() }).is_err()
        );
        assert!(
            tucker_hooi(&x, &TuckerOptions { ranks: vec![2, 2, 9], ..Default::default() }).is_err()
        );
        assert!(
            tucker_hooi(&x, &TuckerOptions { ranks: vec![2, 0, 2], ..Default::default() }).is_err()
        );
    }
}
