//! Tucker decomposition by higher-order orthogonal iteration (HOOI),
//! driven by TTM-chains — the extension the paper's conclusion names
//! ("additional operations, such as TTM-chain in Tucker decomposition").
//!
//! Each HOOI sweep updates factor `U⁽ⁿ⁾` from the leading eigenvectors of
//! the Gram matrix of `Y₍ₙ₎`, where `Y = X ×₁ U⁽¹⁾ ⋯ ×ₙ₋₁ U⁽ⁿ⁻¹⁾ ×ₙ₊₁ …` is
//! a chain of sparse TTM products.
//!
//! The chain runs on one of two routes, dispatched by the
//! fuse-vs-materialize cost model (overridable via
//! [`Ctx::fusion`](pasta_kernels::Ctx)):
//!
//! - **fused** (the default where the model allows): one lowered
//!   expression plan per skip mode — a `ttm_all_but` graph with factor
//!   slots run through [`pasta_kernels::lower`] — built once and reused
//!   across every sweep (factors rebound per execution), executing the
//!   whole chain in a single pass through per-thread workspaces — no
//!   intermediate sparse tensors, no `to_coo()` round-trips;
//! - **materialized** ([`ttm_chain`]): the kernel-at-a-time baseline that
//!   builds one semi-sparse intermediate per step, kept for ablation and
//!   regression-tested against the fused route.

use crate::eig::{leading_vectors, sym_eig};
use pasta_core::{CooTensor, DenseMatrix, Error, Result, SemiCooTensor, Shape, TensorStats, Value};
use pasta_kernels::{
    choose_fusion, counters, lower, ttm_coo, ttm_scoo, Bindings, CounterId, Ctx, ExprGraph,
    ExprOut, ExprPlan, FormatKind, FuseDecision, FusionChoice, FusionParams, Kernel, MatOperand,
    TensorBucket, TuneTable,
};

/// Tucker/HOOI options.
#[derive(Debug, Clone)]
pub struct TuckerOptions {
    /// Core ranks, one per mode.
    pub ranks: Vec<usize>,
    /// HOOI sweeps.
    pub max_iters: usize,
    /// Seed for factor initialization.
    pub seed: u64,
    /// Kernel execution context.
    pub ctx: Ctx,
}

impl Default for TuckerOptions {
    fn default() -> Self {
        Self { ranks: Vec::new(), max_iters: 5, seed: 1, ctx: Ctx::sequential() }
    }
}

impl TuckerOptions {
    /// Applies measured tuned parameters from a [`TuneTable`] (the
    /// host-keyed `results/TUNE_<hostkey>.json` produced by
    /// `hostrun --tune`) to the
    /// execution context via [`Ctx::with_tuning`]: the TTM row matching
    /// the tensor's bucket drives the chain's schedule. No matching row
    /// leaves the context untouched.
    pub fn with_tuning_from(mut self, table: &TuneTable, stats: &TensorStats) -> Self {
        let bucket = TensorBucket::from_stats(stats).key();
        if let Some(e) = table.lookup(Kernel::Ttm, FormatKind::Coo, &bucket) {
            self.ctx = self.ctx.with_tuning(e.params);
        }
        self
    }

    /// [`Self::with_tuning_from`] against a table file on disk; a missing
    /// or unreadable table leaves the options unchanged.
    pub fn load_tuning(self, path: &std::path::Path, stats: &TensorStats) -> Self {
        match TuneTable::load(path) {
            Ok(table) => self.with_tuning_from(&table, stats),
            Err(_) => self,
        }
    }
}

/// A Tucker model: core tensor (dense, row-major) plus orthonormal factors.
#[derive(Debug, Clone)]
pub struct TuckerModel<V> {
    /// Core tensor shape (`ranks`).
    pub core_shape: Shape,
    /// Dense row-major core values.
    pub core: Vec<V>,
    /// Factor matrices `U⁽ⁿ⁾ ∈ R^{I_n × R_n}` with orthonormal columns.
    pub factors: Vec<DenseMatrix<V>>,
    /// `‖core‖ / ‖X‖` — for orthonormal factors this is the captured-energy
    /// fraction (1 is a perfect decomposition).
    pub energy: f64,
}

/// Kernel-at-a-time TTM-chain: multiplies `x` by `Uᵀ` in every mode except
/// `skip` (pass `skip = order` to contract every mode), materializing one
/// semi-sparse intermediate per step. Returns a COO tensor.
///
/// Our TTM convention is `Y = X ×_n U` with `U ∈ R^{I_n × R}` summing over
/// `i_n`, i.e. exactly the `X ×_n Uᵀ` of the Kolda-Bader convention — so a
/// chain over all modes shrinks `X` to the `R₁ × ⋯ × R_N` core.
///
/// This is the ablation baseline the fused expression-graph route is
/// measured against; every intermediate it builds bumps the
/// `fused.materialized_intermediates` counter.
///
/// # Errors
///
/// Propagates kernel errors (mode/shape mismatches).
pub fn ttm_chain<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    skip: usize,
    ctx: &Ctx,
) -> Result<CooTensor<V>> {
    let c = counters();
    // First product leaves COO; later products stay semi-sparse (ttm_scoo),
    // avoiding repeated expansion — the point of the sCOO format.
    let mut semi: Option<SemiCooTensor<V>> = None;
    for (n, u) in factors.iter().enumerate() {
        if n == skip {
            continue;
        }
        c.add(CounterId::FusedMaterialized, 1);
        semi = Some(match semi {
            None => ttm_coo(x, u, n, ctx)?,
            // sCOO requires at least one sparse mode; when the chain is
            // about to densify the last one, fall back through COO.
            Some(prev) if prev.dense_modes().len() + 1 >= prev.shape().order() => {
                c.add(CounterId::FusedMaterialized, 1);
                ttm_coo(&prev.to_coo(), u, n, ctx)?
            }
            Some(prev) => ttm_scoo(&prev, u, n, ctx)?,
        });
    }
    Ok(match semi {
        Some(s) => {
            c.add(CounterId::FusedMaterialized, 1);
            s.to_coo()
        }
        None => x.clone(),
    })
}

/// Whether this run's chains execute fused, per the context override or
/// the [`choose_fusion`] cost model (sized for the widest chain of the
/// run).
fn fusion_decision<V: Value>(x: &CooTensor<V>, ranks: &[usize], ctx: &Ctx) -> bool {
    match ctx.fusion {
        FusionChoice::Fuse => true,
        FusionChoice::Materialize => false,
        FusionChoice::Auto => {
            let order = x.order();
            let rank_prod: usize = ranks.iter().product();
            // Worst chain over skip modes: most output fibers × widest block.
            let out_fibers =
                (0..order).map(|n| (x.shape().dim(n) as usize).min(x.nnz())).max().unwrap_or(0);
            let dense_volume = (0..order).map(|n| rank_prod / ranks[n].max(1)).max().unwrap_or(1);
            let p = FusionParams {
                nnz: x.nnz(),
                out_fibers,
                dense_volume,
                steps: order.saturating_sub(1),
                threads: ctx.threads,
            };
            choose_fusion(&p) == FuseDecision::Fuse
        }
    }
}

/// Runs HOOI.
///
/// # Errors
///
/// Returns an error for missing/invalid ranks or kernel failures.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, Shape};
/// use pasta_algos::{tucker_hooi, TuckerOptions};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let mut x = CooTensor::<f64>::new(Shape::new(vec![6, 6, 6]));
/// for i in 0..6u32 {
///     x.push(&[i, i, i], 1.0 + i as f64)?;
/// }
/// let model = tucker_hooi(&x, &TuckerOptions { ranks: vec![3, 3, 3], ..Default::default() })?;
/// assert_eq!(model.core_shape.dims(), &[3, 3, 3]);
/// # Ok(())
/// # }
/// ```
pub fn tucker_hooi<V: Value>(x: &CooTensor<V>, opts: &TuckerOptions) -> Result<TuckerModel<V>> {
    let order = x.order();
    if opts.ranks.len() != order {
        return Err(Error::OrderMismatch { left: order, right: opts.ranks.len() });
    }
    for (m, &r) in opts.ranks.iter().enumerate() {
        if r == 0 || r > x.shape().dim(m) as usize {
            return Err(Error::OperandMismatch {
                what: format!("rank {r} invalid for mode {m} of dimension {}", x.shape().dim(m)),
            });
        }
    }

    // HOSVD init: each factor starts from the leading eigenvectors of
    // X₍ₙ₎ X₍ₙ₎ᵀ. (Random init can drop a dominant axis permanently —
    // HOOI only refines within the retained subspaces.)
    let mut factors: Vec<DenseMatrix<V>> = (0..order)
        .map(|n| {
            let in_dim = x.shape().dim(n) as usize;
            let w = gram_of_matricization(x, n, in_dim);
            leading_vectors(&sym_eig(&w, 30), opts.ranks[n])
        })
        .collect();

    let fused = fusion_decision(x, &opts.ranks, &opts.ctx);
    // Per-run plan cache: one lowered expression plan per skip mode (index
    // `order` is the full contraction for the core), each holding its
    // skip-outermost sorted copy — the sort is paid once per run, not
    // once per sweep. Factors are bound per execution through slots, so
    // the plans survive the factor updates between sweeps.
    let mut chain_plans: Vec<Option<ExprPlan<V>>> = (0..=order).map(|_| None).collect();

    for _ in 0..opts.max_iters.max(1) {
        for n in 0..order {
            // Y = X x_{m != n} U_m ; U_n <- leading eigvecs of Y_(n) Y_(n)^T.
            let in_dim = x.shape().dim(n) as usize;
            let w = if fused {
                let plan = cached_plan(&mut chain_plans, x, &opts.ranks, n, &opts.ctx)?;
                let y = match plan.execute(&Bindings::with_mats(factors.iter().collect()))? {
                    ExprOut::Semi(y) => y,
                    _ => unreachable!("partial TTM chains produce semi-sparse tensors"),
                };
                gram_of_scoo(&y, in_dim)
            } else {
                let y = ttm_chain(x, &factors, n, &opts.ctx)?;
                gram_of_matricization(&y, n, in_dim)
            };
            let eig = sym_eig(&w, 30);
            factors[n] = leading_vectors(&eig, opts.ranks[n]);
        }
    }

    // Core = X x_1 U_1 ... x_N U_N, densified.
    let core_shape = Shape::new(opts.ranks.iter().map(|&r| r as u32).collect());
    let core = if fused {
        let plan = cached_plan(&mut chain_plans, x, &opts.ranks, order, &opts.ctx)?;
        match plan.execute(&Bindings::with_mats(factors.iter().collect()))? {
            ExprOut::Dense { vals, .. } => vals,
            _ => unreachable!("full contraction produces a dense block"),
        }
    } else {
        ttm_chain(x, &factors, order, &opts.ctx)?.to_dense(1 << 22)
    };

    let norm_x = x.vals().iter().map(|&v| (v * v).to_f64()).sum::<f64>().sqrt();
    let norm_core = core.iter().map(|&v| (v * v).to_f64()).sum::<f64>().sqrt();
    Ok(TuckerModel {
        core_shape,
        core,
        factors,
        energy: if norm_x > 0.0 { norm_core / norm_x } else { 0.0 },
    })
}

/// Lowers the `ttm_all_but(skip)` expression graph for one chain of the
/// run: every factor is a [`MatOperand::Slot`] keyed by its mode, so one
/// plan serves every sweep with the current factors bound at execute
/// time. Fusion is forced — the fuse-vs-materialize decision was already
/// made for the whole run by [`fusion_decision`].
fn build_chain_plan<'x, V: Value>(
    x: &'x CooTensor<V>,
    ranks: &[usize],
    skip: usize,
    ctx: &Ctx,
) -> Result<ExprPlan<'x, V>> {
    let mut fctx = *ctx;
    fctx.fusion = FusionChoice::Fuse;
    let mut g = ExprGraph::new();
    let leaf = g.leaf(x);
    let mats: Vec<MatOperand<V>> = (0..x.order())
        .filter(|&m| m != skip)
        .map(|m| MatOperand::Slot { slot: m, cols: ranks[m] })
        .collect();
    let root = g.ttm_all_but(leaf, skip, mats)?;
    lower(&g, root, &fctx)
}

/// Fetches the lowered chain plan for `skip` from the per-run cache,
/// building it on first use.
fn cached_plan<'p, 'x, V: Value>(
    plans: &'p mut [Option<ExprPlan<'x, V>>],
    x: &'x CooTensor<V>,
    ranks: &[usize],
    skip: usize,
    ctx: &Ctx,
) -> Result<&'p ExprPlan<'x, V>> {
    if plans[skip].is_none() {
        plans[skip] = Some(build_chain_plan(x, ranks, skip, ctx)?);
    } else {
        counters().add(CounterId::FusedPlanCacheHits, 1);
    }
    Ok(plans[skip].as_ref().expect("just built"))
}

/// `Y₍ₙ₎ Y₍ₙ₎ᵀ` straight from the fused chain's semi-sparse output: fiber
/// `f` of `y` *is* row `i_f` of the matricization (its dense block spans
/// every column), so the Gram is pairwise fiber dot products.
fn gram_of_scoo<V: Value>(y: &SemiCooTensor<V>, in_dim: usize) -> DenseMatrix<V> {
    let nf = y.num_fibers();
    let mut w = DenseMatrix::<V>::zeros(in_dim, in_dim);
    for f in 0..nf {
        let i = y.sparse_inds(0)[f] as usize;
        let fv = y.fiber_vals(f);
        for g in f..nf {
            let j = y.sparse_inds(0)[g] as usize;
            let mut dot = V::ZERO;
            for (a, b) in fv.iter().zip(y.fiber_vals(g)) {
                dot += *a * *b;
            }
            w.set(i, j, w.get(i, j) + dot);
            if g != f {
                w.set(j, i, w.get(j, i) + dot);
            }
        }
    }
    w
}

/// `Y₍ₙ₎ Y₍ₙ₎ᵀ` (size `I_n × I_n`) computed directly from the sparse `Y`
/// without materializing the matricization: group non-zeros by their
/// non-`n` coordinates (columns of `Y₍ₙ₎`) and accumulate outer products.
fn gram_of_matricization<V: Value>(y: &CooTensor<V>, n: usize, in_dim: usize) -> DenseMatrix<V> {
    let mut ys = y.clone();
    ys.sort_mode_last(n);
    let fi = pasta_core::FiberIndex::build(&ys, n);
    let mut w = DenseMatrix::<V>::zeros(in_dim, in_dim);
    for f in 0..fi.num_fibers() {
        let range = fi.fiber_range(f);
        let rows: Vec<(usize, V)> =
            range.map(|xx| (ys.mode_inds(n)[xx] as usize, ys.vals()[xx])).collect();
        for &(i, vi) in &rows {
            for &(j, vj) in &rows {
                let add = vi * vj;
                w.set(i, j, w.get(i, j) + add);
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::seeded_matrix;

    fn diag_tensor(d: u32) -> CooTensor<f64> {
        let mut x = CooTensor::new(Shape::new(vec![d, d, d]));
        for i in 0..d {
            x.push(&[i, i, i], (i + 1) as f64).unwrap();
        }
        x
    }

    #[test]
    fn full_rank_captures_all_energy() {
        let x = diag_tensor(5);
        let m = tucker_hooi(
            &x,
            &TuckerOptions { ranks: vec![5, 5, 5], max_iters: 3, ..Default::default() },
        )
        .unwrap();
        assert!((m.energy - 1.0).abs() < 1e-6, "energy {}", m.energy);
    }

    #[test]
    fn truncated_rank_keeps_dominant_components() {
        // Diagonal entries 1..=6: keeping ranks (3,3,3) should capture the
        // top-3 magnitudes 6,5,4 => energy sqrt(36+25+16)/sqrt(91).
        let x = diag_tensor(6);
        let m = tucker_hooi(
            &x,
            &TuckerOptions { ranks: vec![3, 3, 3], max_iters: 4, ..Default::default() },
        )
        .unwrap();
        let expect = (77.0f64 / 91.0).sqrt();
        assert!((m.energy - expect).abs() < 0.02, "energy {} expect {expect}", m.energy);
    }

    #[test]
    fn factors_are_orthonormal() {
        let x = diag_tensor(6);
        let m = tucker_hooi(
            &x,
            &TuckerOptions { ranks: vec![2, 2, 2], max_iters: 3, ..Default::default() },
        )
        .unwrap();
        for u in &m.factors {
            for p in 0..u.cols() {
                for q in 0..u.cols() {
                    let mut dot = 0.0;
                    for k in 0..u.rows() {
                        dot += u.get(k, p) * u.get(k, q);
                    }
                    let want = if p == q { 1.0 } else { 0.0 };
                    assert!((dot - want).abs() < 1e-7, "({p},{q}): {dot}");
                }
            }
        }
    }

    #[test]
    fn ttm_chain_full_contraction_shrinks_to_core_shape() {
        let x = diag_tensor(4);
        let factors: Vec<DenseMatrix<f64>> =
            (0..3).map(|m| seeded_matrix(4, 2, m as u64)).collect();
        let core = ttm_chain(&x, &factors, 3, &Ctx::sequential()).unwrap();
        assert_eq!(core.shape().dims(), &[2, 2, 2]);
    }

    #[test]
    fn fused_and_materialized_routes_agree() {
        // The satellite regression: the fused chain must reproduce the
        // kernel-at-a-time chain (and make its to_coo() round-trip
        // unreachable) to tight budget on a non-trivial tensor.
        let mut x = CooTensor::<f64>::new(Shape::new(vec![7, 6, 5]));
        let mut s = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..60 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let c = [(s % 7) as u32, ((s >> 8) % 6) as u32, ((s >> 16) % 5) as u32];
            x.push(&c, ((s >> 24) % 100) as f64 / 10.0 - 5.0).unwrap();
        }
        x.dedup_sum();
        let opts = |fusion| TuckerOptions {
            ranks: vec![3, 3, 3],
            max_iters: 3,
            ctx: Ctx::sequential().with_fusion(fusion),
            ..Default::default()
        };
        let fused = tucker_hooi(&x, &opts(FusionChoice::Fuse)).unwrap();
        let mat = tucker_hooi(&x, &opts(FusionChoice::Materialize)).unwrap();
        assert!(
            (fused.energy - mat.energy).abs() < 1e-9,
            "fused {} vs materialized {}",
            fused.energy,
            mat.energy
        );
        for (a, b) in fused.core.iter().zip(&mat.core) {
            assert!((a.abs() - b.abs()).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_route_materializes_no_intermediates() {
        let x = diag_tensor(6);
        pasta_kernels::obs::set_counting(true);
        let c = counters();
        let before = c.snapshot();
        let m = tucker_hooi(
            &x,
            &TuckerOptions {
                ranks: vec![2, 2, 2],
                max_iters: 2,
                ctx: Ctx::sequential().with_fusion(FusionChoice::Fuse),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.energy > 0.0);
        let after = c.snapshot();
        assert_eq!(
            after[CounterId::FusedMaterialized],
            before[CounterId::FusedMaterialized],
            "fused Tucker must not materialize intermediate sparse tensors"
        );
        assert!(after[CounterId::FusedChains] > before[CounterId::FusedChains]);
        // 2 sweeps × 3 modes reuse 3 plans; the core plan is built once.
        assert!(after[CounterId::FusedPlanCacheHits] >= before[CounterId::FusedPlanCacheHits] + 3);
    }

    #[test]
    fn tuned_parameter_loading_applies_to_ctx() {
        use pasta_kernels::{TuneEntry, TunedParams};
        let x = diag_tensor(5);
        let stats = TensorStats::compute(&x);
        let bucket = TensorBucket::from_stats(&stats).key();
        let mut table = TuneTable::default();
        table.upsert(TuneEntry {
            kernel: Kernel::Ttm,
            format: FormatKind::Coo,
            bucket,
            threads: 1,
            params: TunedParams { chunk: 1024, dense_threshold: 4, block_size: 64 },
            baseline_ns: 10.0,
            tuned_ns: 5.0,
        });
        let opts = TuckerOptions::default().with_tuning_from(&table, &stats);
        assert_eq!(opts.ctx.tuning.map(|t| t.chunk), Some(1024));
        // Missing file: options unchanged.
        let opts2 = TuckerOptions::default()
            .load_tuning(std::path::Path::new("/nonexistent/tune.json"), &stats);
        assert!(opts2.ctx.tuning.is_none());
    }

    #[test]
    fn rejects_bad_ranks() {
        let x = diag_tensor(4);
        assert!(
            tucker_hooi(&x, &TuckerOptions { ranks: vec![2, 2], ..Default::default() }).is_err()
        );
        assert!(
            tucker_hooi(&x, &TuckerOptions { ranks: vec![2, 2, 9], ..Default::default() }).is_err()
        );
        assert!(
            tucker_hooi(&x, &TuckerOptions { ranks: vec![2, 0, 2], ..Default::default() }).is_err()
        );
    }
}
