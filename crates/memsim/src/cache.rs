//! A set-associative cache model with LRU replacement.
//!
//! Used as the last-level-cache (LLC) stand-in when modeling the paper's
//! four platforms: the Roofline analysis (Observation 2) hinges on whether a
//! kernel's working set fits the LLC (19 MB Bluesky, 35 MB Wingtip, 3 MB
//! P100, 6 MB V100), and HiCOO's advantage (Observation 4) comes from
//! block-local reuse the cache model captures.

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line (block) size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A config with the given size, 64-byte lines and 16 ways — the
    /// defaults used for all modeled LLCs.
    pub fn with_size(size_bytes: usize) -> Self {
        Self { size_bytes, line_bytes: 64, ways: 16 }
    }

    /// The number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes or fewer lines than
    /// ways).
    pub fn num_sets(&self) -> usize {
        assert!(self.line_bytes > 0 && self.ways > 0, "degenerate cache geometry");
        let lines = self.size_bytes / self.line_bytes;
        assert!(lines >= self.ways, "cache smaller than one set");
        (lines / self.ways).max(1)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed (line fills).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]` (zero when no accesses occurred).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Bytes fetched from the next level (misses × line size).
    pub fn miss_bytes(&self, line_bytes: usize) -> u64 {
        self.misses * line_bytes as u64
    }
}

/// A set-associative LRU cache simulator operating on byte addresses.
///
/// # Examples
///
/// ```
/// use pasta_memsim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 64, ways: 2 });
/// assert!(!c.access(0));  // cold miss
/// assert!(c.access(0));   // hit
/// assert!(c.access(63));  // same line
/// assert!(!c.access(64)); // next line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per-set LRU stacks of line tags, most recently used last.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    num_sets: usize,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry (see [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        Self { config, sets: vec![Vec::new(); num_sets], stats: CacheStats::default(), num_sets }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses one byte address; returns `true` on a hit. A miss fills the
    /// line, evicting the LRU line of the set if full.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.num_sets as u64) as usize;
        let stack = &mut self.sets[set];
        if let Some(pos) = stack.iter().position(|&t| t == line) {
            stack.remove(pos);
            stack.push(line);
            self.stats.hits += 1;
            true
        } else {
            if stack.len() >= self.config.ways {
                stack.remove(0);
            }
            stack.push(line);
            self.stats.misses += 1;
            false
        }
    }

    /// Accesses every line overlapping `[addr, addr + bytes)`.
    pub fn access_range(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let lb = self.config.line_bytes as u64;
        let first = addr / lb;
        let last = (addr + bytes - 1) / lb;
        for line in first..=last {
            self.access(line * lb);
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines total, 2 ways, 2 sets, 64B lines.
        Cache::new(CacheConfig { size_bytes: 256, line_bytes: 64, ways: 2 })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig { size_bytes: 256, line_bytes: 64, ways: 2 };
        assert_eq!(c.num_sets(), 2);
        assert_eq!(CacheConfig::with_size(1 << 20).num_sets(), (1 << 20) / 64 / 16);
    }

    #[test]
    fn hits_within_line() {
        let mut c = tiny();
        assert!(!c.access(10));
        assert!(c.access(0));
        assert!(c.access(63));
        assert!(!c.access(64));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().accesses(), 4);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (line % 2 == 0). 2 ways.
        c.access(0); // miss, set0 = [0]
        c.access(128); // line 2: miss, set0 = [0, 2]
        c.access(0); // hit, set0 = [2, 0]
        c.access(256); // line 4: miss, evicts line 2
        assert!(c.access(0), "line 0 was MRU, must survive");
        assert!(!c.access(128), "line 2 was LRU, must be evicted");
    }

    #[test]
    fn working_set_behavior() {
        // Streaming over 2x the capacity twice: second pass still misses.
        let mut big = Cache::new(CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 });
        for pass in 0..2 {
            for addr in (0..8192u64).step_by(64) {
                big.access(addr);
            }
            let _ = pass;
        }
        assert_eq!(big.stats().hits, 0, "LRU thrashes on a 2x working set");

        // A working set within capacity is all hits on the second pass.
        let mut c = Cache::new(CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 });
        for addr in (0..2048u64).step_by(64) {
            c.access(addr);
        }
        let before = c.stats().misses;
        for addr in (0..2048u64).step_by(64) {
            assert!(c.access(addr));
        }
        assert_eq!(c.stats().misses, before);
    }

    #[test]
    fn range_access_touches_all_lines() {
        let mut c = tiny();
        c.access_range(0, 200); // lines 0..=3
        assert_eq!(c.stats().accesses(), 4);
        c.access_range(60, 8); // lines 0 and 1 again
        assert_eq!(c.stats().hits, 2);
        c.access_range(0, 0); // no-op
        assert_eq!(c.stats().accesses(), 6);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "contents cleared");
    }

    #[test]
    fn stats_helpers() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.hit_ratio(), 0.75);
        assert_eq!(s.miss_bytes(64), 64);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
