//! # pasta-memsim — cache and DRAM models
//!
//! Small analytic memory-hierarchy models backing the suite's *modeled*
//! platform runs: a set-associative LRU [`Cache`] (the LLC of each Table III
//! platform), a bandwidth/latency [`DramModel`], and the two combined as a
//! [`MemoryModel`]. The GPU simulator (`pasta-simt`) and the CPU performance
//! model (`pasta-platform`) feed kernel address streams through these to
//! obtain post-cache DRAM traffic — the quantity Roofline analysis divides
//! by obtainable bandwidth.
//!
//! # Examples
//!
//! ```
//! use pasta_memsim::{Cache, CacheConfig};
//!
//! let mut llc = Cache::new(CacheConfig::with_size(3 << 20)); // P100's 3 MB L2
//! llc.access(0);
//! llc.access(8);
//! assert_eq!(llc.stats().misses, 1); // same 64-byte line
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod dram;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use dram::{DramModel, MemoryModel};
