//! A bandwidth/latency DRAM model.
//!
//! The paper's kernels are memory bound (Figure 3): modeled execution time
//! is dominated by `bytes / obtainable_bandwidth`. The model also carries a
//! fixed per-transaction latency used by the GPU simulator's atomic and
//! coalescing costs.

/// Main/global memory characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Peak (theoretical) bandwidth in bytes per second.
    pub peak_bw: f64,
    /// Obtainable bandwidth (ERT-measured fraction of peak) in bytes/s.
    pub obtainable_bw: f64,
    /// Access latency in seconds (used for serialized transactions).
    pub latency: f64,
}

impl DramModel {
    /// Builds a model from GB/s figures and a fraction of peak that is
    /// actually obtainable (ERT typically measures 75–90 % on CPUs,
    /// 70–80 % on GPUs).
    ///
    /// # Panics
    ///
    /// Panics on non-positive bandwidth or a fraction outside `(0, 1]`.
    pub fn new(peak_gbps: f64, obtainable_fraction: f64, latency_ns: f64) -> Self {
        assert!(peak_gbps > 0.0, "bandwidth must be positive");
        assert!(
            obtainable_fraction > 0.0 && obtainable_fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        Self {
            peak_bw: peak_gbps * 1e9,
            obtainable_bw: peak_gbps * 1e9 * obtainable_fraction,
            latency: latency_ns * 1e-9,
        }
    }

    /// Time to stream `bytes` at the obtainable bandwidth.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        bytes / self.obtainable_bw
    }

    /// Time for `n` serialized transactions (latency bound), e.g. contended
    /// atomics hitting one cache line.
    pub fn serialized_time(&self, n: f64) -> f64 {
        n * self.latency
    }
}

/// A two-level memory hierarchy: one cache in front of DRAM.
///
/// Feeding it an address stream yields the DRAM traffic after cache
/// filtering — the quantity the Roofline model divides by bandwidth.
///
/// # Examples
///
/// ```
/// use pasta_memsim::{CacheConfig, DramModel, MemoryModel};
///
/// let mut m = MemoryModel::new(CacheConfig::with_size(1 << 16), DramModel::new(100.0, 0.8, 80.0));
/// m.access(0, 4);
/// m.access(0, 4); // cache hit: no extra DRAM traffic
/// assert_eq!(m.dram_bytes(), 64); // one line fill
/// ```
#[derive(Debug, Clone)]
pub struct MemoryModel {
    cache: crate::cache::Cache,
    dram: DramModel,
}

impl MemoryModel {
    /// Creates the hierarchy.
    pub fn new(cache: crate::cache::CacheConfig, dram: DramModel) -> Self {
        Self { cache: crate::cache::Cache::new(cache), dram }
    }

    /// Feeds one access of `bytes` at `addr` through the cache.
    pub fn access(&mut self, addr: u64, bytes: u64) {
        self.cache.access_range(addr, bytes);
    }

    /// DRAM bytes moved so far (cache miss fills).
    pub fn dram_bytes(&self) -> u64 {
        self.cache.stats().miss_bytes(self.cache.config().line_bytes)
    }

    /// Time to move the accumulated DRAM traffic.
    pub fn dram_time(&self) -> f64 {
        self.dram.transfer_time(self.dram_bytes() as f64)
    }

    /// The cache component.
    pub fn cache(&self) -> &crate::cache::Cache {
        &self.cache
    }

    /// The DRAM component.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// Clears cache contents and counters.
    pub fn reset(&mut self) {
        self.cache.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    #[test]
    fn bandwidth_math() {
        let d = DramModel::new(256.0, 0.8, 100.0);
        assert!((d.peak_bw - 256e9).abs() < 1.0);
        assert!((d.obtainable_bw - 204.8e9).abs() < 1.0);
        // 204.8 GB in one second.
        assert!((d.transfer_time(204.8e9) - 1.0).abs() < 1e-9);
        // 1e4 transactions x 100 ns = 1 ms.
        assert!((d.serialized_time(1e4) - 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let _ = DramModel::new(100.0, 1.5, 100.0);
    }

    #[test]
    fn hierarchy_filters_reuse() {
        let mut m =
            MemoryModel::new(CacheConfig::with_size(1 << 16), DramModel::new(100.0, 1.0, 50.0));
        for _ in 0..10 {
            for addr in (0..4096u64).step_by(4) {
                m.access(addr, 4);
            }
        }
        // 4 KiB working set resides: only the first pass misses (64 lines).
        assert_eq!(m.dram_bytes(), 4096);
        assert!(m.dram_time() > 0.0);
        assert!(m.cache().stats().hit_ratio() > 0.89);
        m.reset();
        assert_eq!(m.dram_bytes(), 0);
        assert!((m.dram().latency - 50e-9).abs() < 1e-18);
    }
}
