//! `.case` file serialization: a replayable failure record.
//!
//! The format is a line-oriented text file. Values are stored as
//! hexadecimal f32 bit patterns so a replay is bit-for-bit identical to
//! the failing run — decimal formatting would round-trip incorrectly for
//! some floats and quietly change the arithmetic under test.
//!
//! ```text
//! pasta-conformance case v1
//! cell = mttkrp/coo/cpu/priv/t4
//! label = shrunk:rand-o3
//! seed = 42
//! mode = 0
//! rank = 1
//! block = 4
//! dims = 5 4 6
//! entry = 0 1 2 0x3fc00000
//! ```

use crate::cases::Case;
use pasta_core::Coord;

/// A serialized failure: the cell that failed plus the (shrunk) case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseFile {
    /// Id of the cell to replay (must exist in [`crate::cells`]).
    pub cell: String,
    /// The input case.
    pub case: Case,
}

/// Renders a [`CaseFile`] to the `.case` text format.
pub fn render_case(cf: &CaseFile) -> String {
    let mut out = String::from("pasta-conformance case v1\n");
    out.push_str(&format!("cell = {}\n", cf.cell));
    out.push_str(&format!("label = {}\n", cf.case.label));
    out.push_str(&format!("seed = {}\n", cf.case.seed));
    out.push_str(&format!("mode = {}\n", cf.case.mode));
    out.push_str(&format!("rank = {}\n", cf.case.rank));
    out.push_str(&format!("block = {}\n", cf.case.block));
    let dims: Vec<String> = cf.case.dims.iter().map(ToString::to_string).collect();
    out.push_str(&format!("dims = {}\n", dims.join(" ")));
    for (coords, v) in &cf.case.entries {
        let cs: Vec<String> = coords.iter().map(ToString::to_string).collect();
        out.push_str(&format!("entry = {} 0x{:08x}\n", cs.join(" "), v.to_bits()));
    }
    out
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.strip_prefix(key)?.strip_prefix(" = ")
}

/// Parses the `.case` text format.
///
/// # Errors
///
/// Returns a message naming the offending line for any syntax error,
/// unknown key, missing field, or malformed number.
pub fn parse_case(text: &str) -> Result<CaseFile, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some("pasta-conformance case v1") => {}
        other => return Err(format!("bad header: {other:?}")),
    }
    let mut cell = None;
    let mut label = None;
    let mut seed = None;
    let mut mode = None;
    let mut rank = None;
    let mut block = None;
    let mut dims: Option<Vec<Coord>> = None;
    let mut entries: Vec<(Vec<Coord>, f32)> = Vec::new();
    for (n, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", n + 2);
        if let Some(v) = field(line, "cell") {
            cell = Some(v.to_string());
        } else if let Some(v) = field(line, "label") {
            label = Some(v.to_string());
        } else if let Some(v) = field(line, "seed") {
            seed = Some(v.parse::<u64>().map_err(|_| err("bad seed"))?);
        } else if let Some(v) = field(line, "mode") {
            mode = Some(v.parse::<usize>().map_err(|_| err("bad mode"))?);
        } else if let Some(v) = field(line, "rank") {
            rank = Some(v.parse::<usize>().map_err(|_| err("bad rank"))?);
        } else if let Some(v) = field(line, "block") {
            block = Some(v.parse::<u32>().map_err(|_| err("bad block"))?);
        } else if let Some(v) = field(line, "dims") {
            let parsed: Result<Vec<Coord>, _> = v.split_whitespace().map(str::parse).collect();
            dims = Some(parsed.map_err(|_| err("bad dims"))?);
        } else if let Some(v) = field(line, "entry") {
            let toks: Vec<&str> = v.split_whitespace().collect();
            let (coords_toks, bits_tok) = toks.split_at(toks.len().saturating_sub(1));
            let bits_tok = bits_tok.first().ok_or_else(|| err("empty entry"))?;
            let hex = bits_tok.strip_prefix("0x").ok_or_else(|| err("value must be 0x…"))?;
            let bits = u32::from_str_radix(hex, 16).map_err(|_| err("bad value bits"))?;
            let coords: Result<Vec<Coord>, _> = coords_toks.iter().map(|t| t.parse()).collect();
            entries.push((coords.map_err(|_| err("bad entry coordinate"))?, f32::from_bits(bits)));
        } else {
            return Err(err("unknown key"));
        }
    }
    let dims = dims.ok_or("missing dims")?;
    let order = dims.len();
    if order == 0 {
        return Err("dims must name at least one mode".into());
    }
    for (coords, _) in &entries {
        if coords.len() != order {
            return Err(format!("entry order {} does not match dims order {order}", coords.len()));
        }
    }
    Ok(CaseFile {
        cell: cell.ok_or("missing cell")?,
        case: Case {
            label: label.ok_or("missing label")?,
            dims,
            entries,
            mode: mode.ok_or("missing mode")?,
            rank: rank.ok_or("missing rank")?,
            block: block.ok_or("missing block")?,
            seed: seed.ok_or("missing seed")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{generate, Tier};

    #[test]
    fn roundtrips_bit_exactly() {
        for case in generate(Tier::Quick, 99) {
            let cf = CaseFile { cell: "tew/coo/cpu/t1".into(), case };
            let parsed = parse_case(&render_case(&cf)).expect("parse");
            assert_eq!(parsed, cf);
        }
    }

    #[test]
    fn roundtrips_awkward_floats() {
        let case = Case {
            label: "awkward".into(),
            dims: vec![2, 2],
            entries: vec![
                (vec![0, 0], f32::from_bits(0x0000_0001)), // subnormal
                (vec![1, 1], 1.0 + f32::EPSILON),
            ],
            mode: 0,
            rank: 1,
            block: 2,
            seed: 3,
        };
        let cf = CaseFile { cell: "ts/coo/gpu".into(), case };
        assert_eq!(parse_case(&render_case(&cf)).unwrap(), cf);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_case("nope").is_err());
        assert!(parse_case("pasta-conformance case v1\n").is_err()); // missing fields
        let cf = CaseFile {
            cell: "c".into(),
            case: Case {
                label: "l".into(),
                dims: vec![2],
                entries: vec![(vec![0], 1.0)],
                mode: 0,
                rank: 1,
                block: 2,
                seed: 0,
            },
        };
        let good = render_case(&cf);
        assert!(parse_case(&good.replace("0x", "")).is_err(), "decimal values rejected");
        assert!(parse_case(&good.replace("dims", "dimz")).is_err(), "unknown key rejected");
        let wrong_order = good.replace("entry = 0 ", "entry = 0 0 ");
        assert!(parse_case(&wrong_order).is_err(), "order mismatch rejected");
    }
}
