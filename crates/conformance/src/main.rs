//! Command-line driver for the conformance matrix.
//!
//! ```text
//! pasta-conformance quick [--seed N]      # gating tier, runs in seconds
//! pasta-conformance full [--seed N]       # nightly tier
//! pasta-conformance replay <file> [--fault]
//! pasta-conformance selftest [--seed N]   # prove the failure path works
//! ```
//!
//! `quick`/`full` print a worst-ULP-per-cell report; any failure is shrunk,
//! written to `conformance-failures/<cell>.case`, and the exit status is
//! non-zero. `replay` re-executes a `.case` file bit-for-bit (`--fault`
//! re-applies the selftest perturbation to reproduce an injected failure).

use pasta_conformance::matrix::{eval_cell, CellOutcome};
use pasta_conformance::{
    cells, generate, parse_case, render_case, run_matrix, CaseFile, Cell, CellReport, FaultSpec,
    Tier,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const FAILURES_DIR: &str = "conformance-failures";

fn usage() -> ExitCode {
    eprintln!(
        "usage: pasta-conformance <quick|full|selftest> [--seed N]\n       \
         pasta-conformance replay <file> [--fault]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 0x9A57A;
    let mut fault_flag = false;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--fault" => fault_flag = true,
            other => positional.push(other),
        }
    }
    // Executor panics are caught and reported per cell; the default hook
    // would spray backtraces through the report.
    std::panic::set_hook(Box::new(|_| {}));
    match positional.as_slice() {
        ["quick"] => run_tier(Tier::Quick, seed),
        ["full"] => run_tier(Tier::Full, seed),
        ["replay", file] => replay(Path::new(file), fault_flag),
        ["selftest"] => selftest(seed),
        _ => usage(),
    }
}

fn print_report(reports: &[CellReport]) {
    println!("{:<28} {:>5} {:>9} {:>7}  worst case", "cell", "cases", "worst-ULP", "budget");
    for r in reports {
        let status = if r.failure.is_some() { "  FAIL" } else { "" };
        println!(
            "{:<28} {:>5} {:>9} {:>7}  {}{status}",
            r.id, r.cases, r.worst, r.budget, r.worst_case
        );
    }
}

fn write_failure(r: &CellReport) -> Option<PathBuf> {
    let f = r.failure.as_ref()?;
    std::fs::create_dir_all(FAILURES_DIR).ok()?;
    let path = Path::new(FAILURES_DIR).join(format!("{}.case", r.id.replace('/', "_")));
    let cf = CaseFile { cell: r.id.clone(), case: f.shrunk.clone() };
    std::fs::write(&path, render_case(&cf)).ok()?;
    Some(path)
}

fn run_tier(tier: Tier, seed: u64) -> ExitCode {
    let corpus = generate(tier, seed);
    let cs = cells();
    println!(
        "pasta-conformance {:?} tier: {} cells x {} cases (seed {seed})\n",
        tier,
        cs.len(),
        corpus.len()
    );
    let reports = run_matrix(&corpus, &cs, None);
    print_report(&reports);
    let mut failed = 0usize;
    for r in &reports {
        if let Some(f) = &r.failure {
            failed += 1;
            eprintln!("\nFAIL {} on case `{}`: {}", r.id, f.case_label, f.message);
            match write_failure(r) {
                Some(path) => eprintln!(
                    "  shrunk to {} entries; replay with:\n    cargo run -p pasta-conformance -- replay {}",
                    f.shrunk.entries.len(),
                    path.display()
                ),
                None => eprintln!("  (could not write {FAILURES_DIR}/ case file)"),
            }
        }
    }
    if failed > 0 {
        eprintln!("\n{failed} of {} cells FAILED", reports.len());
        ExitCode::FAILURE
    } else {
        println!("\nall {} cells within budget", reports.len());
        ExitCode::SUCCESS
    }
}

fn find_cell(cs: &[Cell], id: &str) -> Option<usize> {
    cs.iter().position(|c| c.id == id)
}

fn replay(path: &Path, fault_flag: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let cf = match parse_case(&text) {
        Ok(cf) => cf,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let cs = cells();
    let Some(i) = find_cell(&cs, &cf.cell) else {
        eprintln!("unknown cell `{}` (registry has {} cells)", cf.cell, cs.len());
        return ExitCode::FAILURE;
    };
    let fault = fault_flag.then(|| FaultSpec { cell: cf.cell.clone() });
    println!(
        "replaying `{}` on {} ({} entries, dims {:?}, mode {}, rank {})",
        cf.case.label,
        cf.cell,
        cf.case.entries.len(),
        cf.case.dims,
        cf.case.mode,
        cf.case.rank
    );
    match eval_cell(&cs[i], &cf.case, fault.as_ref()) {
        CellOutcome::Pass(w) => {
            println!("PASS: worst ULP {w} within budget {}", cs[i].budget);
            ExitCode::SUCCESS
        }
        CellOutcome::Fail { message, .. } => {
            eprintln!("FAIL: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Injects a known-bad perturbation into one cell and checks the whole
/// failure path: detection, shrinking, serialization, and replay.
fn selftest(seed: u64) -> ExitCode {
    let corpus = generate(Tier::Quick, seed);
    let cs = cells();
    let victim = "ttv/coo/cpu/t4";
    let fault = FaultSpec { cell: victim.to_string() };

    println!("selftest 1/4: clean quick run must be green");
    let clean = run_matrix(&corpus, &cs, None);
    if let Some(r) = clean.iter().find(|r| r.failure.is_some()) {
        eprintln!("selftest FAILED: clean run has a failing cell ({})", r.id);
        return ExitCode::FAILURE;
    }

    println!("selftest 2/4: injected fault in {victim} must be caught and shrunk");
    let faulty = run_matrix(&corpus, &cs, Some(&fault));
    let victim_report = faulty.iter().find(|r| r.id == victim).expect("victim cell exists");
    let Some(f) = &victim_report.failure else {
        eprintln!("selftest FAILED: fault in {victim} was not detected");
        return ExitCode::FAILURE;
    };
    if faulty.iter().any(|r| r.id != victim && r.failure.is_some()) {
        eprintln!("selftest FAILED: fault leaked into another cell");
        return ExitCode::FAILURE;
    }
    println!(
        "  caught on `{}` ({}), shrunk to {} entries / dims {:?}",
        f.case_label,
        f.message,
        f.shrunk.entries.len(),
        f.shrunk.dims
    );

    println!("selftest 3/4: shrunk case must serialize and replay the failure");
    let Some(path) = write_failure(victim_report) else {
        eprintln!("selftest FAILED: could not write case file");
        return ExitCode::FAILURE;
    };
    let cf = match parse_case(&std::fs::read_to_string(&path).unwrap_or_default()) {
        Ok(cf) => cf,
        Err(e) => {
            eprintln!("selftest FAILED: written case does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    let i = find_cell(&cs, &cf.cell).expect("cell id survives the round-trip");
    if !matches!(eval_cell(&cs[i], &cf.case, Some(&fault)), CellOutcome::Fail { .. }) {
        eprintln!("selftest FAILED: replay with fault did not reproduce");
        return ExitCode::FAILURE;
    }

    println!("selftest 4/4: replay without the fault must pass (bug, not case)");
    if !matches!(eval_cell(&cs[i], &cf.case, None), CellOutcome::Pass(_)) {
        eprintln!("selftest FAILED: shrunk case fails even without the fault");
        return ExitCode::FAILURE;
    }
    let _ = std::fs::remove_file(&path);

    println!("selftest OK: catch -> shrink -> write -> replay all work");
    ExitCode::SUCCESS
}
