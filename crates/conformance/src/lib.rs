//! # pasta-conformance — the differential conformance harness
//!
//! Every registered (kernel × format × backend × strategy × pool size) cell
//! is executed against a reference — the dense oracles in
//! [`pasta_kernels::dense_ref`] or, where bit-identity is the contract, the
//! sequential CPU kernel — and the worst observed ULP distance per cell is
//! compared against that cell's budget:
//!
//! - **0 ULP** for the element-wise kernels (TEW, TS) on every format and
//!   backend, and for owner-computes MTTKRP against the sequential kernel on
//!   a mode-outermost-sorted tensor (the PR 2 determinism guarantee);
//! - **bounded** budgets for the reduction kernels (TTV, TTM, MTTKRP),
//!   where parallel and GPU schedules may legally reassociate sums.
//!
//! Cases come from a deterministic seeded generator ([`cases::generate`])
//! covering tensor orders 2–5, several densities, a scaled-down
//! `pasta-gen` profile, and the degenerate shapes that historically break
//! sparse kernels: empty tensors, a single fiber, all non-zeros in one
//! block, dimensions of one, and rank-1 factors.
//!
//! When a cell fails, the harness shrinks the case with the delta-debugging
//! hooks in the vendored `proptest` shim (entries via `ddmin`, dimensions
//! and rank via bisection) and serializes the minimal case to a `.case`
//! file that `cargo run -p pasta-conformance -- replay <file>` re-executes
//! bit-for-bit (values are stored as hexadecimal f32 bit patterns).
//!
//! The `quick` tier runs in seconds and gates CI; `full` adds more random
//! cases per order for the nightly job. `selftest` injects a deliberate
//! output perturbation into one cell and checks that the harness catches,
//! shrinks, writes, and replays it — exercising the failure path end to
//! end.

#![warn(missing_docs)]

pub mod casefile;
pub mod cases;
pub mod matrix;
pub mod oracle;

pub use casefile::{parse_case, render_case, CaseFile};
pub use cases::{generate, Case, Tier};
pub use matrix::{cells, run_matrix, Cell, CellReport, Failure, FaultSpec};
