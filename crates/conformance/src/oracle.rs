//! Shared output-comparison helpers.
//!
//! The integration test files used to carry their own copies of these;
//! they now live here so the conformance matrix, the integration suites
//! and any future harness agree on what "close" means.

use pasta_core::{DenseMatrix, Value};

/// Worst ULP distance over two equal-length slices, or `None` on a length
/// mismatch (a length mismatch is always a conformance failure, never a
/// rounding question).
pub fn worst_ulp<V: Value>(got: &[V], want: &[V]) -> Option<u64> {
    if got.len() != want.len() {
        return None;
    }
    Some(got.iter().zip(want).map(|(&g, &w)| g.ulp_distance(w)).max().unwrap_or(0))
}

/// Asserts element-wise approximate equality of two slices with relative
/// tolerance `tol`, panicking with the offending pair.
pub fn assert_close<V: Value>(got: &[V], want: &[V], tol: f64) {
    assert_eq!(got.len(), want.len(), "length {} vs {}", got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(g.approx_eq(*w, tol), "index {i}: {g:?} vs {w:?}");
    }
}

/// Asserts element-wise closeness of two dense matrices with relative
/// tolerance `tol`; `what` labels the comparison in the panic message.
pub fn assert_close_mat<V: Value>(
    got: &DenseMatrix<V>,
    want: &DenseMatrix<V>,
    tol: f64,
    what: &str,
) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}: {}x{} vs {}x{}",
        got.rows(),
        got.cols(),
        want.rows(),
        want.cols()
    );
    for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
        let gf = g.to_f64();
        let wf = w.to_f64();
        assert!((gf - wf).abs() <= tol * gf.abs().max(1.0), "{what}: {gf} vs {wf}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_ulp_reports_max() {
        let a = [1.0_f32, 2.0, 3.0];
        let b = [1.0_f32, f32::from_bits(2.0_f32.to_bits() + 3), 3.0];
        assert_eq!(worst_ulp(&a, &b), Some(3));
        assert_eq!(worst_ulp(&a, &a), Some(0));
        assert_eq!(worst_ulp(&a, &b[..2]), None);
        assert_eq!(worst_ulp::<f32>(&[], &[]), Some(0));
    }

    #[test]
    fn assert_close_accepts_within_tol() {
        assert_close(&[1.0_f32, 2.0], &[1.0, 2.0 + 1e-7], 1e-5);
        assert_close_mat(
            &DenseMatrix::from_fn(2, 2, |i, j| (i + j) as f64),
            &DenseMatrix::from_fn(2, 2, |i, j| (i + j) as f64 + 1e-13),
            1e-12,
            "test",
        );
    }

    #[test]
    #[should_panic(expected = "index 1")]
    fn assert_close_names_the_index() {
        assert_close(&[1.0_f32, 2.0], &[1.0, 2.5], 1e-5);
    }
}
