//! Deterministic seeded case generation.
//!
//! Every case is a small COO tensor (dims kept well under the dense
//! oracle's entry limit) plus the knobs the matrix needs: the product mode,
//! the factor rank, and the HiCOO block size. Values are drawn from
//! `[0.5, 2)` — positive and of one magnitude class — so reduction results
//! carry no catastrophic cancellation and ULP budgets stay meaningful.

use pasta_core::{CooTensor, Coord, Result, Shape};
use std::collections::BTreeSet;

/// Which slice of the case corpus to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// A small corpus that runs in seconds; gates CI.
    Quick,
    /// The quick corpus plus many more random cases per order; nightly.
    Full,
}

/// One conformance input: a tensor plus operand parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Human-readable generator label (stable across runs for a seed).
    pub label: String,
    /// Mode dimensions.
    pub dims: Vec<Coord>,
    /// Sparse entries; coordinates are in range for `dims`, deduplicated.
    pub entries: Vec<(Vec<Coord>, f32)>,
    /// Product mode for TTV/TTM/MTTKRP (`< dims.len()`).
    pub mode: usize,
    /// Factor rank for TTM/MTTKRP (`>= 1`).
    pub rank: usize,
    /// HiCOO-family block size (power of two in `2..=256`).
    pub block: u32,
    /// Seed for the derived operands (vectors, matrices, second TEW input).
    pub seed: u64,
}

impl Case {
    /// The tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Materializes the COO tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if an entry is out of range for `dims` (only
    /// possible for hand-edited `.case` files).
    pub fn tensor(&self) -> Result<CooTensor<f32>> {
        CooTensor::from_entries(Shape::new(self.dims.clone()), self.entries.iter().cloned())
    }
}

/// One SplitMix64 step.
pub(crate) fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A value in `[0.5, 2)`.
pub(crate) fn unit_val(state: &mut u64) -> f32 {
    let u = (splitmix(state) >> 40) as f32 / (1u64 << 24) as f32;
    0.5 + 1.5 * u
}

/// Random tensor over `dims` with up to `nnz` distinct entries.
fn random_case(
    label: &str,
    dims: Vec<Coord>,
    nnz: usize,
    mode: usize,
    rank: usize,
    block: u32,
    seed: u64,
) -> Case {
    let mut st = seed ^ 0xCA5E;
    let mut coords = BTreeSet::new();
    for _ in 0..nnz * 2 {
        if coords.len() >= nnz {
            break;
        }
        let c: Vec<Coord> = dims.iter().map(|&d| (splitmix(&mut st) % d as u64) as Coord).collect();
        coords.insert(c);
    }
    let entries = coords.into_iter().map(|c| (c, unit_val(&mut st))).collect();
    Case { label: label.to_string(), dims, entries, mode, rank, block, seed }
}

/// Remaps each mode's coordinates to a compact `0..k` range, preserving the
/// sparsity pattern, and rewrites values into `[0.5, 2)`. Used to shrink a
/// `pasta-gen` profile tensor (whose dims are far beyond the dense oracle
/// limit) into conformance range without losing its structure.
fn compact(
    label: &str,
    t: &CooTensor<f32>,
    mode: usize,
    rank: usize,
    block: u32,
    seed: u64,
) -> Case {
    let order = t.order();
    let mut maps: Vec<std::collections::BTreeMap<Coord, Coord>> = vec![Default::default(); order];
    for (coords, _) in t.iter() {
        for (m, &c) in coords.iter().enumerate() {
            let next = maps[m].len() as Coord;
            maps[m].entry(c).or_insert(next);
        }
    }
    let dims: Vec<Coord> = maps.iter().map(|m| (m.len() as Coord).max(1)).collect();
    let mut st = seed ^ 0x9F0F;
    let entries = t
        .iter()
        .map(|(coords, _)| {
            let c: Vec<Coord> = coords.iter().enumerate().map(|(m, x)| maps[m][x]).collect();
            (c, unit_val(&mut st))
        })
        .collect();
    Case { label: label.to_string(), dims, entries, mode, rank, block, seed }
}

/// The deterministic case corpus for `tier`, derived from `seed`.
pub fn generate(tier: Tier, seed: u64) -> Vec<Case> {
    // Random tensors across orders 2–5 and a spread of densities, then the
    // degenerate shapes.
    let mut out = vec![
        random_case("rand-o2", vec![6, 7], 17, 1, 3, 2, seed ^ 1),
        random_case("rand-o3", vec![5, 4, 6], 30, 1, 4, 4, seed ^ 2),
        random_case("rand-o3-dense", vec![4, 4, 4], 48, 2, 3, 2, seed ^ 3),
        random_case("rand-o4", vec![4, 3, 3, 4], 28, 2, 2, 2, seed ^ 4),
        random_case("rand-o5", vec![3, 2, 4, 2, 3], 20, 0, 3, 2, seed ^ 5),
        Case {
            label: "empty".into(),
            dims: vec![4, 4, 4],
            entries: Vec::new(),
            mode: 1,
            rank: 2,
            block: 2,
            seed: seed ^ 6,
        },
    ];
    {
        let mut st = seed ^ 7;
        out.push(Case {
            label: "single-entry".into(),
            dims: vec![5, 3, 4],
            entries: vec![(vec![4, 2, 1], unit_val(&mut st))],
            mode: 0,
            rank: 3,
            block: 4,
            seed: seed ^ 7,
        });
    }
    {
        // Single fiber: all entries share every coordinate but the last.
        let mut st = seed ^ 8;
        let entries = (0..6).map(|k| (vec![2, 1, k], unit_val(&mut st))).collect();
        out.push(Case {
            label: "single-fiber".into(),
            dims: vec![4, 3, 6],
            entries,
            mode: 2,
            rank: 2,
            block: 2,
            seed: seed ^ 8,
        });
    }
    {
        // Every non-zero inside one HiCOO block (coords < block size).
        let mut st = seed ^ 9;
        let mut entries = Vec::new();
        for i in 0..4u32 {
            for j in 0..3u32 {
                entries.push((vec![i, j, (i + j) % 4], unit_val(&mut st)));
            }
        }
        out.push(Case {
            label: "one-block".into(),
            dims: vec![16, 16, 16],
            entries,
            mode: 1,
            rank: 3,
            block: 4,
            seed: seed ^ 9,
        });
    }
    // Dimensions of one mixed in, and a rank-1 factor case.
    out.push(random_case("unit-dims", vec![1, 5, 1, 4], 10, 1, 2, 2, seed ^ 10));
    out.push(random_case("rank-1", vec![5, 5, 5], 24, 2, 1, 2, seed ^ 11));

    // A pasta-gen profile, scaled down and compacted into oracle range.
    if let Some(p) = pasta_gen::synthetic_profiles().into_iter().next() {
        if let Ok(t) = p.generate_scaled(0.001) {
            out.push(compact(&format!("profile-{}", p.name), &t, 0, 3, 4, seed ^ 12));
        }
    }

    if tier == Tier::Full {
        let mut st = seed ^ 0xF0_11;
        for i in 0..24u64 {
            let order = 2 + (i % 4) as usize;
            let dims: Vec<Coord> =
                (0..order).map(|_| 2 + (splitmix(&mut st) % 7) as Coord).collect();
            let cap: usize = dims.iter().map(|&d| d as usize).product();
            let nnz = 1 + (splitmix(&mut st) as usize % cap);
            let mode = (splitmix(&mut st) as usize) % order;
            let rank = 1 + (splitmix(&mut st) as usize % 5);
            let block = 1 << (1 + (splitmix(&mut st) % 3));
            out.push(random_case(
                &format!("full-rand-{i}"),
                dims,
                nnz,
                mode,
                rank,
                block as u32,
                seed ^ (0x100 + i),
            ));
        }
        if let Some(p) = pasta_gen::synthetic_profiles().into_iter().nth(3) {
            if let Ok(t) = p.generate_scaled(0.0005) {
                out.push(compact(&format!("profile-{}", p.name), &t, 1, 4, 8, seed ^ 13));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_valid() {
        let a = generate(Tier::Quick, 42);
        let b = generate(Tier::Quick, 42);
        assert_eq!(a, b);
        assert!(a.len() >= 10);
        let orders: BTreeSet<usize> = a.iter().map(Case::order).collect();
        for o in 2..=5 {
            assert!(orders.contains(&o), "missing order {o}");
        }
        for c in &a {
            assert!(c.mode < c.order(), "{}: mode out of range", c.label);
            assert!(c.rank >= 1);
            assert!(c.block.is_power_of_two() && (2..=256).contains(&c.block));
            let t = c.tensor().expect("valid entries");
            assert_eq!(t.nnz(), c.entries.len(), "{}: duplicate entries", c.label);
            // Dense images stay comfortably under the oracle limit.
            assert!(t.shape().num_entries() <= (1 << 21) as f64, "{}", c.label);
            for (_, v) in &c.entries {
                assert!((0.5..2.0).contains(v));
            }
        }
        assert!(a.iter().any(|c| c.entries.is_empty()), "empty case present");
        assert!(a.iter().any(|c| c.rank == 1), "rank-1 case present");
        assert!(a.iter().any(|c| c.dims.contains(&1)), "unit-dim case present");
    }

    #[test]
    fn full_tier_extends_quick() {
        let q = generate(Tier::Quick, 7);
        let f = generate(Tier::Full, 7);
        assert!(f.len() > q.len() + 20);
        assert_eq!(&f[..q.len()], &q[..]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(Tier::Quick, 1);
        let b = generate(Tier::Quick, 2);
        assert_ne!(a, b);
    }
}
